#!/usr/bin/env python3
"""Deterministic multi-threaded guests: real conflicts, replayable schedules.

The paper's atomicity guarantee is a multi-thread property: §4's lock
elision is sound only because region memory operations appear to other
threads at the commit instant, and conflict aborts defend that isolation
against concurrent writers.  This example runs two JDBCbench workers on one
shared table under the deterministic cooperative scheduler:

- switch points come from a seeded PRNG, so any interleaving replays
  bit-for-bit from its seed;
- the scheduler doubles as the coherence fabric: committed stores are
  checked against in-flight regions' read/write sets and *genuine*
  overlaps (no injection involved) abort those regions with reason
  "conflict", retrying through the usual backoff/fallback machinery;
- a serializability oracle checks every schedule against all serial orders
  of the same workers on both the compiled machine and the tier-0
  interpreter, and pins any lost update to its exact interleaving.

Run:  python examples/concurrency.py
"""

from repro.harness import render_concurrency, run_concurrency_chaos
from repro.runtime import SchedulePlan
from repro.vm import ATOMIC, TieredVM, VMOptions
from repro.workloads import HSQLDB_THREADED

AGGRESSIVE = ATOMIC.with_aggressive_inlining()


def one_schedule(seed: int):
    print(f"=== one seeded schedule (seed={seed}) ===")
    vm = TieredVM(
        HSQLDB_THREADED.build(), compiler_config=AGGRESSIVE,
        options=VMOptions(enable_timing=False, compile_threshold=3),
    )
    for args in HSQLDB_THREADED.warm_args:
        shared = vm.run(HSQLDB_THREADED.setup)
        vm.warm_up(HSQLDB_THREADED.worker, [[shared] + list(args)])
    vm.compile_hot(min_invocations=1)

    shared = vm.run(HSQLDB_THREADED.setup)
    vm.start_measurement()
    sched = vm.run_threads(
        [(HSQLDB_THREADED.worker, [shared] + list(args), f"w{tid}")
         for tid, args in enumerate(HSQLDB_THREADED.thread_args)],
        plan=SchedulePlan(seed=seed, quantum=(8, 32)),
    )
    stats = vm.end_measurement()
    summary = stats.summary()
    print(f"  plan: {sched.plan.describe()}")
    print(f"  per-thread results: {[t.result for t in sched.threads]}")
    print(f"  shared row count:   {shared.get('count')} "
          f"(= {sum(args[0] for args in HSQLDB_THREADED.thread_args)} inserts, "
          "no lost updates)")
    print(f"  context switches:   {summary['context_switches']}")
    print(f"  real conflicts:     {summary['real_conflict_aborts']} aborted "
          f"regions, {summary['conflict_retries']} transparent retries")
    print(f"  contended monitors: {summary['contended_acquisitions']}")
    print(f"  first switches:     "
          + " ".join(f"@{s}->t{t}" for s, t in sched.trace[:8]) + " ...\n")


def oracle_sweep():
    print("=== serializability oracle across seeds ===")
    report = run_concurrency_chaos(HSQLDB_THREADED, AGGRESSIVE, seeds=(0, 1, 2))
    print(render_concurrency(report))
    report.raise_on_failure()
    print("every schedule matched a serial order, replayed bit-for-bit,")
    print("and left all monitors quiescent.")


if __name__ == "__main__":
    one_schedule(seed=0)
    oracle_sweep()
