#!/usr/bin/env python3
"""Contended atomic primitives: FAA vs. CAS vs. LL/SC vs. elided locks.

The machine offers four ways to build the same shared-memory scenario:
one indivisible fetch-and-add uop, a compare-and-swap retry loop, a
load-linked/store-conditional retry loop, and monitor locking (which the
atomic compiler configs elide into speculative regions).  This example
puts them under real contention:

- a shared counter at 2..32 threads shows the scaling split: FAA's cost
  per increment is flat (one retired step, no retries) while the
  CAS/LL-SC loops span several steps and their lost-attempt retries grow
  superlinearly as threads pile onto the line;
- every cell is validated in-run by the serializability oracle — the
  threaded outcome must match a serial-order execution, or (for the
  queue, whose consumer assignment is schedule-dependent) satisfy the
  linearizability invariants: FIFO per producer, no loss, no duplication;
- the same scenarios under `lock-sle` turn monitor contention into
  genuine conflict-bus aborts that retry to the serial answer.

The checked-in full matrix is ``BENCH_contention.json`` (regenerate with
``python benchmarks/bench_contention.py``); see EXPERIMENTS.md
"Contention scaling".

Run:  python examples/contention.py
"""

from repro.harness import (
    figure_contention,
    render,
    render_concurrency,
    run_concurrency_chaos,
    run_contention_cell,
)
from repro.vm import NO_ATOMIC
from repro.workloads import msqueue_workload


def scaling_table():
    print("=== counter scaling: FAA flat, CAS/LL-SC retries superlinear ===")
    data = figure_contention(
        scenarios=("counter",),
        primitives=("faa", "cas", "llsc", "lock", "lock-sle"),
        threads=(2, 8, 32), iters=8,
    )
    print(render(data))
    print()


def one_cell():
    print("=== one oracle-validated cell: ticket lock via FAA, 8 threads ===")
    cell = run_contention_cell("ticket", "faa", threads=8, iters=4)
    print(f"  ops:                {cell['ops']} critical sections")
    print(f"  steps/op:           {cell['steps_per_op']:.2f}")
    print(f"  retries:            {cell['retries']}")
    print(f"  context switches:   {cell['context_switches']}")
    print(f"  oracle:             {cell['oracle']} "
          f"({'ok' if cell['oracle_ok'] else 'FAILED'})")
    print()


def queue_invariants():
    print("=== linearizability invariants: bounded MS-queue, CAS build ===")
    report = run_concurrency_chaos(
        msqueue_workload("cas", threads=4, items=4),
        NO_ATOMIC, seeds=(0, 1, 2),
    )
    print(render_concurrency(report))
    report.raise_on_failure()
    print("consumer assignment is schedule-dependent, so no serial order")
    print("is checked; the FIFO-per-producer / no-loss / no-duplication")
    print("invariants held on every seeded interleaving.")


if __name__ == "__main__":
    scaling_table()
    one_cell()
    queue_invariants()
