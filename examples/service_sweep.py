#!/usr/bin/env python3
"""Simulation as a service: multi-tenant sweeps with dedup and caching.

Figure sweeps re-run the same (workload, config, seed) cells from every
benchmark script and CI job.  The sweep service turns the batch harness
into a long-running server so that work is shared *across* callers: an
in-process :class:`repro.service.SweepServer` speaks newline-delimited
JSON over TCP, and this example walks the three serving paths with two
concurrent tenants:

- **cold** — the first tenant to ask for a cell pays for one real
  simulation on the worker pool;
- **dedup** — a second tenant asking for the same in-flight cell
  attaches to the same execution (N tenants, one compute);
- **hot** — a resubmitted cell is answered from the in-memory LRU at
  memory speed, byte-identical to the cold run (the service's
  determinism contract, enforced in tests/test_service.py).

Run:  python examples/service_sweep.py
"""

import asyncio

from repro.harness import render_cache
from repro.service import ServiceCell, SweepClient, SweepServer, canonical_json

MATRIX = [
    ServiceCell(workload="hsqldb", compiler="no-atomic"),
    ServiceCell(workload="hsqldb", compiler="atomic"),
    ServiceCell(workload="hsqldb", compiler="atomic", seed=3),
]


async def tenant(name: str, server: SweepServer, cells):
    async with await SweepClient.connect(server.host, server.port) as client:
        events = await client.sweep(cells)
        for cell, event in zip(cells, events):
            row = event["payload"]["figure_row"]
            seed = f" seed={cell.seed}" if cell.seed is not None else ""
            label = f"{cell.workload}:{cell.compiler}{seed}"
            print(f"  [{name:5s}] {label:24s} "
                  f"source={event['source']:5s} "
                  f"cycles={row['cycles']:>9,.0f} "
                  f"coverage={row['coverage']:.3f}")
        return events


async def main():
    async with SweepServer(workers=2, disk_cache=False) as server:
        print(f"=== sweep server on {server.host}:{server.port} ===")

        print("two tenants sweep the same matrix concurrently:")
        first, second = await asyncio.gather(
            tenant("alice", server, MATRIX), tenant("bob", server, MATRIX))

        print("\nresubmitting: the whole matrix is now memory-speed:")
        third = await tenant("carol", server, MATRIX)

        # the determinism contract, checked live: every tenant's bytes
        # agree, whether served cold, deduped, or from the hot cache.
        for a, b, c in zip(first, second, third):
            assert (canonical_json(a["payload"])
                    == canonical_json(b["payload"])
                    == canonical_json(c["payload"]))
        print("payloads byte-identical across cold/dedup/hot serving ✓")

        counters = server.counters()
        print(f"\nexecutions={counters['executions']} for "
              f"served={counters['served']} "
              f"(dedup_hits={counters['dedup_hits']})")
        print()
        print(render_cache(counters["cache"]))


if __name__ == "__main__":
    asyncio.run(main())
