#!/usr/bin/env python3
"""Partial inlining via atomic regions (paper §4).

Demonstrates the paper's claim that hardware atomicity makes partial
inlining "almost trivial": a method with a hot fast path and a cold slow
path is aggressively inlined; region formation asserts away the cold path
in the speculative copy and *restores the original call* on the
non-speculative path (Step 5) — so there is no code explosion and no
hand-written recovery logic.

Then we drive the cold path at runtime to show the abort → recovery →
real-call sequence in action, observed through the hardware's abort
registers.

Run:  python examples/partial_inlining.py
"""

from repro.lang import ProgramBuilder
from repro.vm import ATOMIC_AGGRESSIVE, TieredVM, VMOptions


def build_program():
    pb = ProgramBuilder()
    pb.cls("Cache", fields=["slots", "hits", "misses"])

    # Hot path: cache hit.  Cold path: recompute and fill (expensive).
    lookup = pb.method("lookup", params=("cache", "key"))
    cache, key = lookup.param(0), lookup.param(1)
    slots = lookup.getfield(cache, "slots")
    cap = lookup.alen(slots)
    slot = lookup.mod(key, cap)
    cached = lookup.aload(slots, slot)
    zero = lookup.const(0)
    lookup.br("eq", cached, zero, "miss")
    hits = lookup.getfield(cache, "hits")
    one = lookup.const(1)
    h2 = lookup.add(hits, one)
    lookup.putfield(cache, "hits", h2)
    lookup.ret(cached)
    lookup.label("miss")           # cold: "recompute" the value
    value = lookup.mul(key, lookup.const(2654435761))
    v2 = lookup.or_(value, lookup.const(1))
    lookup.astore(slots, slot, v2)
    misses = lookup.getfield(cache, "misses")
    mone = lookup.const(1)
    m2 = lookup.add(misses, mone)
    lookup.putfield(cache, "misses", m2)
    lookup.ret(v2)

    work = pb.method("work", params=("n", "flush_period"))
    n, period = work.param(0), work.param(1)
    cache = work.new("Cache")
    cap = work.const(64)
    slots = work.newarr(cap)
    work.putfield(cache, "slots", slots)
    # Pre-fill every slot so lookups hit.
    f = work.const(0)
    one = work.const(1)
    work.label("fill")
    work.br("ge", f, cap, "filled")
    v = work.or_(f, one)
    work.astore(slots, f, v)
    work.add(f, one, dst=f)
    work.jmp("fill")
    work.label("filled")

    acc = work.const(0)
    i = work.const(0)
    zero = work.const(0)
    work.label("head")
    work.safepoint()
    work.br("ge", i, n, "done")
    # Occasionally clear a slot: the next lookup of it misses (cold path).
    work.br("le", period, zero, "no_flush")
    r = work.mod(i, period)
    work.br("ne", r, zero, "no_flush")
    s = work.mod(i, cap)
    work.astore(slots, s, zero)
    work.label("no_flush")
    got = work.call("lookup", (cache, i))
    work.add(acc, got, dst=acc)
    work.add(i, one, dst=i)
    work.jmp("head")
    work.label("done")
    misses = work.getfield(cache, "misses")
    big = work.const(1 << 30)
    mm = work.mul(misses, big)
    out = work.add(acc, mm)
    work.ret(out)
    return pb.build()


def main():
    program = build_program()
    vm = TieredVM(program, compiler_config=ATOMIC_AGGRESSIVE,
                  options=VMOptions(compile_threshold=2))
    # Profile with rare flushes (1 per 200 lookups): the miss path is cold.
    vm.warm_up("work", [[400, 200]] * 4)
    compiled = vm.compile_hot(min_invocations=1)
    print("compiled:", compiled)
    record = vm.compiled["work"]
    print(f"inlined into work(): {record.inlined}")
    print(f"un-inlined on non-speculative paths: "
          f"{record.formation.uninlined if record.formation else []}")
    print(f"regions formed: {len(record.formation.regions)}")

    print("\n--- measured run with rare flushes (asserts almost never fire) ---")
    vm.start_measurement()
    result = vm.run("work", [1000, 200])
    stats = vm.end_measurement()
    print(f"result={result}  regions={stats.regions_entered} "
          f"aborted={stats.regions_aborted}")

    print("\n--- measured run WITH flushes every 50 lookups ---")
    vm.start_measurement()
    result = vm.run("work", [1000, 50])
    stats = vm.end_measurement()
    print(f"result={result}  regions={stats.regions_entered} "
          f"aborted={stats.regions_aborted} "
          f"reasons={dict(stats.abort_reasons)}")
    print(f"hardware abort registers: reason={vm.machine.abort_reason_register!r} "
          f"pc={vm.machine.abort_pc_register:#x}")
    print("\nEach abort rolled back the region and re-ran the original code,")
    print("whose restored call executed lookup()'s cold path precisely.")


if __name__ == "__main__":
    main()
