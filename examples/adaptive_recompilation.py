#!/usr/bin/env python3
"""Adaptive recompilation on abort feedback (paper §7).

A workload's behavior changes after profiling (the paper's pmd scenario):
a path that looked cold starts executing frequently, so the assert that
replaced it aborts a few percent of all regions.  The hardware reports the
abort reason and PC; the adaptive controller maps the PC through the
compiled method's abort table back to the guilty branch and recompiles
with that branch barred from assert conversion.

Run:  python examples/adaptive_recompilation.py
"""

from repro.vm import ATOMIC_AGGRESSIVE, AdaptiveController, TieredVM, VMOptions
from repro.workloads import get_workload


def main():
    workload = get_workload("pmd")
    program = workload.build()
    vm = TieredVM(program, compiler_config=ATOMIC_AGGRESSIVE,
                  options=VMOptions(compile_threshold=2))

    # Profile phase: violations are rare (1 in 2000 nodes).
    vm.warm_up("work", [[300, 2000]] * 5)
    vm.compile_hot(min_invocations=1)

    # Phase change: violations every 400 nodes — the asserts start firing.
    print("=== after the phase change, before adaptation ===")
    vm.start_measurement()
    vm.run("work", [350, 400])
    stats = vm.end_measurement()
    print(f"regions={stats.regions_entered} aborted={stats.regions_aborted} "
          f"({stats.abort_rate:.1%})")
    print(f"hardware reports: reason={vm.machine.abort_reason_register!r}, "
          f"abort pc={vm.machine.abort_pc_register:#x}")
    print(f"abort sites (method, region, assert-id) -> count: "
          f"{dict(stats.abort_sites)}")

    controller = AdaptiveController(vm, abort_rate_threshold=0.01,
                                    min_region_entries=10)
    decisions = controller.poll()
    for decision in decisions:
        print(f"\ncontroller recompiled {decision.method!r}: blocked branch "
              f"pcs {sorted(decision.blocked_pcs)} "
              f"(observed abort rate {decision.observed_rate:.1%})")

    print("\n=== same workload after adaptation ===")
    vm.start_measurement()
    vm.run("work", [350, 400])
    stats = vm.end_measurement()
    print(f"regions={stats.regions_entered} aborted={stats.regions_aborted} "
          f"({stats.abort_rate:.1%})")
    print("\nThe formerly-asserted branch is a real branch again: the cold")
    print("path executes inside the region without aborting.")


if __name__ == "__main__":
    main()
