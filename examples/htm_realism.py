#!/usr/bin/env python3
"""Best-effort HTM realism: bounded capacity, hybrid fallback, delivery.

The paper's substrate is idealized: an atomic region never fails for lack
of buffering.  Real best-effort HTMs do — Sun's Rock bounds speculation by
its store queue, cache-resident designs abort when any L1 set overflows
its ways — and real ISAs disagree on how an abort reaches software (x86
RTM jumps to a handler with a reason code; Power/z re-land at the begin
with a condition code, setjmp-style).  This example shows the simulated
machine doing all of it: capacity aborts with the "capacity" reason,
escalation to a global fallback lock (subscribed at begin time or
validated at the commit instant), and both delivery shapes — with guest
results identical to the idealized machine throughout.

Run:  python examples/htm_realism.py
"""

from repro.faults import FaultPlan
from repro.harness import figure_htm_variants, render, run_chaos
from repro.hw import (
    ABORT_REASON_CODES,
    BASELINE_4WIDE,
    CacheConfig,
    HTM_ROCK_STORE_BUFFER,
)
from repro.vm import ATOMIC
from repro.workloads import get_workload


def capacity_bounded_speculation():
    print("=== capacity-bounded speculation ===")
    rock = HTM_ROCK_STORE_BUFFER
    print(f"  {rock.name}: htm_mode={rock.htm_mode}, "
          f"{rock.spec_store_buffer_entries}-entry store buffer")
    tight = BASELINE_4WIDE.scaled(
        name="rock-4", htm_mode="store_buffer", spec_store_buffer_entries=4,
    )
    for hw in (rock, tight):
        report = run_chaos(get_workload("hsqldb"), ATOMIC, seeds=(0,),
                           hw_config=hw, max_samples=1)
        (check,) = report.checks
        assert report.ok, report.describe()
        print(f"  {hw.name:>10s}: capacity aborts "
              f"{check.stats.capacity_aborts:4d}, committed "
              f"{check.stats.regions_committed:4d} -- results still match")
    print("the 32-entry Rock buffer holds every hsqldb region; a 4-entry")
    print("buffer aborts them all to the non-speculative path. Same answers.\n")


def hybrid_fallback_lock():
    print("=== hybrid fallback lock (begin vs. end subscription) ===")
    for mode in ("begin", "end"):
        hw = BASELINE_4WIDE.scaled(
            name=f"rock4-lock-{mode}", htm_mode="store_buffer",
            spec_store_buffer_entries=4, fallback_lock_mode=mode,
        )
        report = run_chaos(get_workload("hsqldb"), ATOMIC, seeds=(0,),
                           hw_config=hw, max_samples=1)
        (check,) = report.checks
        assert report.ok, report.describe()
        print(f"  {mode:>5s}-subscribed: {check.stats.capacity_aborts} "
              f"capacity aborts; "
              f"{check.stats.fallback_lock_acquisitions} hardware-abort "
              f"recoveries serialized on the lock")
    print("every hardware-originated abort's recovery pass serialized on")
    print("the global lock -- livelock-free progress without retry roulette.\n")


def abort_delivery_shapes():
    print("=== abort delivery: RTM handler vs. Power/z setjmp ===")
    print(f"  reason codes: {ABORT_REASON_CODES}")
    tight_l1 = CacheConfig(512, 2, 64, 4)
    handler = BASELINE_4WIDE.scaled(
        name="cache-handler", htm_mode="cache_shaped", l1_config=tight_l1,
    )
    setjmp = handler.scaled(name="cache-setjmp", abort_delivery="setjmp")
    results = {}
    for hw in (handler, setjmp):
        report = run_chaos(
            get_workload("hsqldb"), ATOMIC, seeds=(0,), hw_config=hw,
            plan_factory=lambda seed: FaultPlan.seeded(seed,
                                                       interrupt_gap=None),
            max_samples=1,
        )
        (check,) = report.checks
        assert report.ok, report.describe()
        results[hw.name] = check.stats
        print(f"  {hw.name:>13s}: aborted {check.stats.regions_aborted:4d}, "
              f"setjmp deliveries {check.stats.setjmp_deliveries:4d}")
    assert results["cache-handler"].setjmp_deliveries == 0
    sj = results["cache-setjmp"]
    assert sj.setjmp_deliveries == sj.regions_aborted - sj.conflict_retries
    print("one condition-code delivery per software-visible abort; the")
    print("handler shape reports the same aborts via the reason registers.\n")


def the_whole_matrix():
    print("=== the variant sweep (also a pytest benchmark) ===")
    print(render(figure_htm_variants()))


def main():
    capacity_bounded_speculation()
    hybrid_fallback_lock()
    abort_delivery_shapes()
    the_whole_matrix()


if __name__ == "__main__":
    main()
