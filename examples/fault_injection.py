#!/usr/bin/env python3
"""Seeded chaos: adversarial fault injection converging to clean results.

The paper's reliability argument (§3, §5) is that every abort — spurious
assert, capacity overflow, interrupt, coherence conflict, guest exception —
rolls the atomic region back *totally* and re-executes non-speculatively
with identical results.  This example injects all five, from one seed, and
shows the faulted run reproducing the fault-free reference bit for bit;
then it unleashes a perpetual conflict storm and shows the forward-progress
machinery (retry budget, exponential backoff, permanent fallback patch)
terminating it.

Run:  python examples/fault_injection.py
"""

from repro.faults import FaultPlan
from repro.harness import run_chaos
from repro.hw import BASELINE_4WIDE
from repro.vm import ATOMIC
from repro.workloads import get_workload


def seeded_chaos():
    print("=== seeded chaos vs. clean references ===")
    for name in ("hsqldb", "xalan", "bloat"):
        report = run_chaos(get_workload(name), ATOMIC, seeds=(0, 1, 2),
                           max_samples=1)
        for check in report.checks:
            print(" ", check.describe())
        assert report.ok, report.describe()
    print("every faulted run matched the interpreter's return values and")
    print("the clean machine's heap fingerprint, with all monitors free.\n")


def what_a_plan_looks_like():
    print("=== the schedule is pure, hashable data ===")
    plan = FaultPlan.seeded(0)
    print(f"  {plan.describe()}")
    print(f"  hash: {hash(plan):#x} (usable as an experiment-cache key)")
    print(f"  same seed, same plan: {plan == FaultPlan.seeded(0)}\n")


def conflict_storm():
    print("=== perpetual conflict storm vs. forward progress ===")
    hw = BASELINE_4WIDE.scaled(region_retry_budget=4,
                               region_backoff_cycles=32,
                               region_fallback_threshold=64)
    report = run_chaos(
        get_workload("hsqldb"), ATOMIC, seeds=(0,), hw_config=hw,
        plan_factory=lambda seed: FaultPlan.storm("conflict", offset=2),
        max_samples=1,
    )
    (check,) = report.checks
    stats = check.stats
    print(f"  every region entry conflicted; run still finished: "
          f"{'ok' if check.ok else 'FAILED'}")
    print(f"  conflict retries (from checkpoint): {stats.conflict_retries}, "
          f"backoff stall: {stats.backoff_cycles:.0f} cycles")
    print(f"  permanent fallbacks: {dict(stats.region_fallbacks)}")
    print(f"  entries suppressed by the patch: {stats.regions_suppressed}")
    assert report.ok, report.describe()
    assert sum(stats.region_fallbacks.values()) >= 1
    print("the region was patched to its non-speculative recovery path —")
    print("no live-lock, and the results still match the references.")


def main():
    seeded_chaos()
    what_a_plan_looks_like()
    conflict_storm()


if __name__ == "__main__":
    main()
