#!/usr/bin/env python3
"""The paper's §2 worked example, end to end, with IR dumps.

Reproduces Figures 2 and 3: two sequential ``addElement`` calls on a
SuballocatedIntVector.  Shows the IR of the hot path (a) after inlining
under the baseline compiler (redundant checks/loads survive because of the
cold grow-path side entrances) and (b) inside an atomic region (cold edges
are asserts; GVN and load elimination collapse the body — with *zero*
compensation code).

Run:  python examples/suballocated_vector.py
"""

from repro.atomic import apply_sle, form_regions, region_membership
from repro.ir import Kind, build_ir, format_block
from repro.opt import InlineConfig, Inliner, optimize
from repro.runtime import Interpreter, ProfileStore
from repro.workloads.xalan import build as build_xalan


def compile_graph(atomic: bool):
    program = build_xalan()
    profiles = ProfileStore()
    interp = Interpreter(program, profiles=profiles)
    method = program.resolve_static("work")
    for _ in range(4):
        interp.invoke(method, [300])

    graph = build_ir(method, profiles.method("work"))
    inliner = Inliner(program, profiles, InlineConfig(aggressive=True))
    result = inliner.run(graph, method)
    formation = None
    if atomic:
        formation = form_regions(graph, result)
    optimize(graph)
    if atomic:
        apply_sle(graph)
        optimize(graph)
    return graph, formation


def op_histogram(graph, block_filter):
    counts = {}
    for block in graph.blocks:
        if block_filter(block):
            for op in block.ops:
                counts[op.kind.name] = counts.get(op.kind.name, 0) + 1
    return dict(sorted(counts.items(), key=lambda kv: -kv[1]))


def main():
    print("=" * 72)
    print("BASELINE: aggressive inlining, no atomic regions")
    print("=" * 72)
    base_graph, _ = compile_graph(atomic=False)
    print("op histogram:", op_histogram(base_graph, lambda b: True))

    print()
    print("=" * 72)
    print("ATOMIC: same passes + region formation (+SLE)")
    print("=" * 72)
    atomic_graph, formation = compile_graph(atomic=True)
    membership = region_membership(atomic_graph)
    print("regions formed:", len(formation.regions))
    for region in formation.regions:
        print(f"  region {region.region_id}: unroll x{region.unroll_factor}, "
              f"{len(region.asserts)} asserts")
    print("in-region op histogram:",
          op_histogram(atomic_graph, lambda b: membership.get(b.id) is not None))

    print()
    print("--- speculative region code (first blocks) ---")
    shown = 0
    for block in atomic_graph.rpo():
        if membership.get(block.id) is not None and block.ops:
            print(format_block(block))
            shown += 1
            if shown >= 4:
                break

    # Point out the headline effects.
    def count(graph, kind, pred):
        return sum(1 for b in graph.blocks if pred(b)
                   for op in b.ops if op.kind is kind)

    in_region = lambda b: membership.get(b.id) is not None  # noqa: E731
    print()
    print("Figure 3's transformation, in numbers (per region copy):")
    copies = max(1, sum(r.unroll_factor for r in formation.regions))
    for kind in (Kind.CHECK_NULL, Kind.GETFIELD, Kind.MONITOR_ENTER,
                 Kind.SLE_ENTER, Kind.ASSERT):
        base_n = count(base_graph, kind, lambda b: True)
        region_n = count(atomic_graph, kind, in_region) / copies
        print(f"  {kind.name:14s}: baseline {base_n:3d}   in-region {region_n:5.1f}")


if __name__ == "__main__":
    main()
