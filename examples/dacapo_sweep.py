#!/usr/bin/env python3
"""Run the full evaluation: all seven DaCapo-shaped benchmarks under all
four compiler configurations, printing Figure 7, Figure 8, and Table 3.

This is the long-running example (a few minutes): it performs the same
runs the benchmark suite performs.  Pass benchmark names to restrict it,
e.g.  python examples/dacapo_sweep.py xalan hsqldb
"""

import sys

from repro.harness import figure7, figure8, render, table3


def main():
    benches = sys.argv[1:] or None
    for builder in (figure7, figure8, table3):
        data = builder(benches)
        print()
        print(render(data))


if __name__ == "__main__":
    main()
