#!/usr/bin/env python3
"""Run the full evaluation: all seven DaCapo-shaped benchmarks under all
four compiler configurations, printing Figure 7, Figure 8, and Table 3.

This is the long-running example (a few minutes): it performs the same
runs the benchmark suite performs.  Pass benchmark names to restrict it,
e.g.  python examples/dacapo_sweep.py xalan hsqldb

Options:
  --workers N     compute independent cells on an N-process pool (the
                  merge order is deterministic, so the printed tables are
                  byte-identical to a serial run)
  --disk-cache    persist/reuse per-cell results in .repro-cache, keyed
                  by a content hash of the source tree and the cell
                  config (equivalent to REPRO_DISK_CACHE=1)
"""

import os
import sys

from repro.harness import figure7, figure8, prewarm_figures, render, table3


def main():
    args = sys.argv[1:]
    workers = None
    if "--workers" in args:
        at = args.index("--workers")
        workers = int(args[at + 1])
        del args[at:at + 2]
    if "--disk-cache" in args:
        args.remove("--disk-cache")
        os.environ["REPRO_DISK_CACHE"] = "1"
    benches = args or None

    computed = prewarm_figures(benches, workers=workers)
    print(f"# {computed} cells computed "
          f"({'serial' if not workers or workers <= 1 else f'{workers} workers'})")
    for builder in (figure7, figure8, table3):
        data = builder(benches)
        print()
        print(render(data))


if __name__ == "__main__":
    main()
