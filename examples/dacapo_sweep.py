#!/usr/bin/env python3
"""Run the full evaluation: all seven DaCapo-shaped benchmarks under all
four compiler configurations, printing Figure 7, Figure 8, and Table 3.

This is the long-running example (a few minutes): it performs the same
runs the benchmark suite performs.  Pass benchmark names to restrict it,
e.g.  python examples/dacapo_sweep.py xalan hsqldb

Options:
  --workers N     compute independent cells on an N-process pool (the
                  merge order is deterministic, so the printed tables are
                  byte-identical to a serial run)
  --disk-cache    persist/reuse per-cell results in .repro-cache, keyed
                  by a content hash of the source tree and the cell
                  config (equivalent to REPRO_DISK_CACHE=1)
  --supervise     route the sweep through the fault-tolerant supervisor:
                  crashed, hung, or flaky cells are retried with backoff
                  and a quarantined cell degrades to an on-demand serial
                  recompute instead of failing the sweep; prints the
                  supervisor lifecycle table after the figures
  --journal PATH  (with --supervise) append completed cells to a
                  crash-consistent journal at PATH, so an interrupted
                  sweep resumes where it left off on the next run
"""

import os
import sys

from repro.harness import (
    SupervisorConfig,
    figure7,
    figure8,
    prewarm_figures,
    prewarm_figures_supervised,
    render,
    render_supervisor,
    table3,
)


def main():
    args = sys.argv[1:]
    workers = None
    if "--workers" in args:
        at = args.index("--workers")
        workers = int(args[at + 1])
        del args[at:at + 2]
    if "--disk-cache" in args:
        args.remove("--disk-cache")
        os.environ["REPRO_DISK_CACHE"] = "1"
    supervise = "--supervise" in args
    if supervise:
        args.remove("--supervise")
    journal = None
    if "--journal" in args:
        at = args.index("--journal")
        journal = args[at + 1]
        del args[at:at + 2]
        supervise = True
    benches = args or None

    outcome = None
    if supervise:
        config = SupervisorConfig(workers=workers, journal_path=journal)
        outcome = prewarm_figures_supervised(benches, config=config)
        computed = outcome.completed + outcome.resumed
    else:
        computed = prewarm_figures(benches, workers=workers)
    print(f"# {computed} cells computed "
          f"({'serial' if not workers or workers <= 1 else f'{workers} workers'})")
    for builder in (figure7, figure8, table3):
        data = builder(benches)
        print()
        print(render(data))
    if outcome is not None:
        print()
        print(render_supervisor(outcome))


if __name__ == "__main__":
    main()
