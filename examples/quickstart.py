#!/usr/bin/env python3
"""Quickstart: compile a hot loop with and without atomic regions.

Builds a tiny guest program (a hot loop with a cold overflow path), runs it
through the full tiered VM under the baseline and the atomic-region
compiler, and prints what the hardware saw: uops, cycles, regions,
asserts, aborts.

Run:  python examples/quickstart.py
"""

from repro.lang import ProgramBuilder
from repro.vm import ATOMIC_AGGRESSIVE, NO_ATOMIC, TieredVM, VMOptions


def build_program():
    """A vector-append loop: hot fast path, cold grow path (paper Figure 2)."""
    pb = ProgramBuilder()
    pb.cls("Vec", fields=["data", "len"])

    push = pb.method("push", params=("vec", "value"))
    vec, value = push.param(0), push.param(1)
    data = push.getfield(vec, "data")
    length = push.getfield(vec, "len")
    cap = push.alen(data)
    push.br("ge", length, cap, "grow")
    push.astore(data, length, value)
    one = push.const(1)
    l2 = push.add(length, one)
    push.putfield(vec, "len", l2)
    push.ret(l2)
    push.label("grow")  # cold: double the capacity
    two = push.const(2)
    ncap = push.mul(cap, two)
    bigger = push.newarr(ncap)
    i = push.const(0)
    gone = push.const(1)
    push.label("copy")
    push.br("ge", i, length, "copied")
    v = push.aload(data, i)
    push.astore(bigger, i, v)
    push.add(i, gone, dst=i)
    push.jmp("copy")
    push.label("copied")
    push.putfield(vec, "data", bigger)
    push.astore(bigger, length, value)
    l3 = push.add(length, gone)
    push.putfield(vec, "len", l3)
    push.ret(l3)

    work = pb.method("work", params=("n",))
    n = work.param(0)
    vec = work.new("Vec")
    cap0 = work.const(4096)
    arr = work.newarr(cap0)
    work.putfield(vec, "data", arr)
    i = work.const(0)
    one = work.const(1)
    work.label("head")
    work.safepoint()
    work.br("ge", i, n, "done")
    work.call("push", (vec, i))
    work.call("push", (vec, i))
    work.add(i, one, dst=i)
    work.jmp("head")
    work.label("done")
    out = work.getfield(vec, "len")
    work.ret(out)
    return pb.build()


def run(config, label):
    program = build_program()
    vm = TieredVM(program, compiler_config=config,
                  options=VMOptions(compile_threshold=2))
    vm.warm_up("work", [[500]] * 4)       # tier-0 profiling
    vm.compile_hot(min_invocations=1)     # tier-1 compilation
    vm.start_measurement()
    result = vm.run("work", [1500])
    stats = vm.end_measurement()
    print(f"\n=== {label} ===")
    print(f"  guest result : {result}")
    print(f"  retired uops : {stats.uops_retired}")
    print(f"  cycles       : {stats.cycles:.0f}")
    print(f"  regions      : {stats.regions_entered} entered, "
          f"{stats.regions_committed} committed, "
          f"{stats.regions_aborted} aborted")
    print(f"  coverage     : {stats.coverage:.1%} of uops inside regions")
    if stats.abort_reasons:
        print(f"  abort causes : {dict(stats.abort_reasons)}")
    return stats


def main():
    base = run(NO_ATOMIC, "no-atomic (baseline compiler)")
    atomic = run(ATOMIC_AGGRESSIVE, "atomic + aggressive inlining")
    speedup = (base.cycles / atomic.cycles - 1) * 100
    reduction = (1 - atomic.uops_retired / base.uops_retired) * 100
    print(f"\nspeedup: {speedup:+.1f}%   uop reduction: {reduction:+.1f}%")
    print("(the atomic compiler asserted away the cold grow path, so the "
          "hot path's\n checks and loads deduplicate — no compensation code "
          "required)")


if __name__ == "__main__":
    main()
