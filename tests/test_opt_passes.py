"""Tests for the classical optimization passes."""

import pytest

from repro.ir import Kind, build_ir, verify_graph
from repro.lang import ProgramBuilder
from repro.opt import (
    eliminate_dead_code,
    eliminate_loads,
    fold_constants,
    optimize,
    simplify_cfg,
    value_number,
)
from repro.testutil import assert_same_outcome, profiled, random_program


def opt_transform(graph, program):
    optimize(graph, verify=True)


def count_kind(graph, kind):
    return sum(1 for b in graph.blocks for n in b.ops if n.kind is kind)


class TestConstFold:
    def test_folds_constant_arithmetic(self):
        pb = ProgramBuilder()
        m = pb.method("main")
        a = m.const(6)
        b = m.const(7)
        c = m.mul(a, b)
        m.ret(c)
        graph = build_ir(pb.build().resolve_static("main"))
        fold_constants(graph)
        verify_graph(graph)
        consts = [
            n.attrs["imm"] for blk in graph.blocks for n in blk.ops
            if n.kind is Kind.CONST
        ]
        assert 42 in consts
        assert count_kind(graph, Kind.MUL) == 0

    def test_identities(self):
        pb = ProgramBuilder()
        m = pb.method("main", params=("x",))
        x = m.param(0)
        zero = m.const(0)
        one = m.const(1)
        t1 = m.add(x, zero)       # x
        t2 = m.mul(t1, one)       # x
        t3 = m.sub(t2, zero)      # x
        t4 = m.xor(t3, t3)        # 0
        out = m.add(x, t4)        # x
        m.ret(out)
        graph = build_ir(pb.build().resolve_static("main"))
        fold_constants(graph)
        eliminate_dead_code(graph)
        verify_graph(graph)
        # Everything but the return of the parameter should fold away.
        arith = sum(count_kind(graph, k) for k in (Kind.ADD, Kind.SUB, Kind.MUL, Kind.XOR))
        assert arith == 0

    def test_check_div0_removed_for_nonzero_const(self):
        pb = ProgramBuilder()
        m = pb.method("main", params=("x",))
        seven = m.const(7)
        q = m.div(m.param(0), seven)
        m.ret(q)
        graph = build_ir(pb.build().resolve_static("main"))
        assert count_kind(graph, Kind.CHECK_DIV0) == 1
        fold_constants(graph)
        assert count_kind(graph, Kind.CHECK_DIV0) == 0

    def test_check_null_removed_for_fresh_allocation(self):
        pb = ProgramBuilder()
        pb.cls("C", fields=["f"])
        m = pb.method("main")
        obj = m.new("C")
        v = m.getfield(obj, "f")
        m.ret(v)
        graph = build_ir(pb.build().resolve_static("main"))
        assert count_kind(graph, Kind.CHECK_NULL) == 1
        fold_constants(graph)
        assert count_kind(graph, Kind.CHECK_NULL) == 0

    def test_div_by_zero_not_folded(self):
        pb = ProgramBuilder()
        m = pb.method("main")
        a = m.const(5)
        z = m.const(0)
        q = m.div(a, z)
        m.ret(q)
        program = pb.build()
        graph = build_ir(program.resolve_static("main"))
        fold_constants(graph)
        assert count_kind(graph, Kind.DIV) == 1  # trap preserved
        assert_same_outcome(program, transform=opt_transform)

    def test_alen_of_newarr_folds(self):
        pb = ProgramBuilder()
        m = pb.method("main")
        n = m.const(9)
        arr = m.newarr(n)
        length = m.alen(arr)
        m.ret(length)
        graph = build_ir(pb.build().resolve_static("main"))
        fold_constants(graph)
        assert count_kind(graph, Kind.ALEN) == 0


class TestSimplify:
    def test_constant_branch_folds_to_jump(self):
        pb = ProgramBuilder()
        m = pb.method("main")
        a = m.const(1)
        b = m.const(2)
        m.br("lt", a, b, "yes")
        dead = m.const(111)
        m.ret(dead)
        m.label("yes")
        live = m.const(222)
        m.ret(live)
        program = pb.build()
        graph = build_ir(program.resolve_static("main"))
        simplify_cfg(graph)
        verify_graph(graph)
        assert all(
            blk.terminator.kind is not Kind.BRANCH for blk in graph.blocks
        )
        assert_same_outcome(program, transform=opt_transform)

    def test_straightline_merge(self):
        pb = ProgramBuilder()
        m = pb.method("main")
        a = m.const(4)
        m.jmp("next")
        m.label("next")
        b = m.const(5)
        out = m.add(a, b)
        m.ret(out)
        graph = build_ir(pb.build().resolve_static("main"))
        before = len(graph.rpo())
        simplify_cfg(graph)
        verify_graph(graph)
        assert len(graph.rpo()) < before

    def test_phi_with_identical_inputs_removed(self):
        pb = ProgramBuilder()
        m = pb.method("main", params=("x",))
        x = m.param(0)
        zero = m.const(0)
        v = m.fresh()
        m.const(7, dst=v)
        m.br("lt", x, zero, "other")
        m.jmp("join")
        m.label("other")
        m.jmp("join")
        m.label("join")
        m.ret(v)
        program = pb.build()
        assert_same_outcome(program, transform=opt_transform, args=(1,))
        assert_same_outcome(program, transform=opt_transform, args=(-1,))


class TestGVN:
    def test_duplicate_expression_removed(self):
        pb = ProgramBuilder()
        m = pb.method("main", params=("x", "y"))
        x, y = m.param(0), m.param(1)
        a = m.add(x, y)
        b = m.add(x, y)
        out = m.mul(a, b)
        m.ret(out)
        graph = build_ir(pb.build().resolve_static("main"))
        removed = value_number(graph)
        verify_graph(graph)
        assert removed == 1
        assert count_kind(graph, Kind.ADD) == 1

    def test_commutative_canonicalization(self):
        pb = ProgramBuilder()
        m = pb.method("main", params=("x", "y"))
        x, y = m.param(0), m.param(1)
        a = m.add(x, y)
        b = m.add(y, x)
        out = m.sub(a, b)
        m.ret(out)
        graph = build_ir(pb.build().resolve_static("main"))
        assert value_number(graph) == 1

    def test_dominated_check_removed(self):
        pb = ProgramBuilder()
        pb.cls("C", fields=["f", "g"])
        m = pb.method("main", params=("obj",))
        obj = m.param(0)
        v1 = m.getfield(obj, "f")   # check_null(obj)
        v2 = m.getfield(obj, "g")   # redundant check_null(obj)
        out = m.add(v1, v2)
        m.ret(out)
        graph = build_ir(pb.build().resolve_static("main"))
        assert count_kind(graph, Kind.CHECK_NULL) == 2
        value_number(graph)
        assert count_kind(graph, Kind.CHECK_NULL) == 1

    def test_check_on_cold_path_not_hoisted(self):
        # A check on one branch side must not disappear from the other.
        pb = ProgramBuilder()
        pb.cls("C", fields=["f"])
        m = pb.method("main", params=("obj", "sel"))
        obj, sel = m.param(0), m.param(1)
        zero = m.const(0)
        out = m.fresh()
        m.const(0, dst=out)
        m.br("eq", sel, zero, "skip")
        v = m.getfield(obj, "f")
        m.mov(v, dst=out)
        m.label("skip")
        m.ret(out)
        program = pb.build()
        graph = build_ir(program.resolve_static("main"))
        value_number(graph)
        assert count_kind(graph, Kind.CHECK_NULL) == 1
        # Null receiver down the skip path must NOT trap.
        assert_same_outcome(program, transform=opt_transform, args=(None, 0))


class TestLoadElim:
    def test_redundant_field_load_removed(self):
        pb = ProgramBuilder()
        pb.cls("C", fields=["f"])
        m = pb.method("main", params=("obj",))
        obj = m.param(0)
        v1 = m.getfield(obj, "f")
        v2 = m.getfield(obj, "f")
        out = m.add(v1, v2)
        m.ret(out)
        graph = build_ir(pb.build().resolve_static("main"))
        assert eliminate_loads(graph) == 1
        assert count_kind(graph, Kind.GETFIELD) == 1

    def test_store_forwarding(self):
        pb = ProgramBuilder()
        pb.cls("C", fields=["f"])
        m = pb.method("main", params=("obj", "x"))
        obj, x = m.param(0), m.param(1)
        m.putfield(obj, "f", x)
        v = m.getfield(obj, "f")
        m.ret(v)
        graph = build_ir(pb.build().resolve_static("main"))
        assert eliminate_loads(graph) == 1
        assert count_kind(graph, Kind.GETFIELD) == 0

    def test_aliasing_store_kills(self):
        pb = ProgramBuilder()
        pb.cls("C", fields=["f"])
        m = pb.method("main", params=("a", "b"))
        a, b = m.param(0), m.param(1)
        v1 = m.getfield(a, "f")
        ten = m.const(10)
        m.putfield(b, "f", ten)  # may alias a
        v2 = m.getfield(a, "f")
        out = m.add(v1, v2)
        m.ret(out)
        graph = build_ir(pb.build().resolve_static("main"))
        assert eliminate_loads(graph) == 0
        assert count_kind(graph, Kind.GETFIELD) == 2

    def test_call_kills_loads(self):
        pb = ProgramBuilder()
        pb.cls("C", fields=["f"])
        h = pb.method("noop")
        h.ret()
        m = pb.method("main", params=("obj",))
        obj = m.param(0)
        v1 = m.getfield(obj, "f")
        m.call("noop")
        v2 = m.getfield(obj, "f")
        out = m.add(v1, v2)
        m.ret(out)
        graph = build_ir(pb.build().resolve_static("main"))
        assert eliminate_loads(graph) == 0

    def test_array_load_forwarding_same_index(self):
        pb = ProgramBuilder()
        m = pb.method("main", params=("n",))
        n = m.param(0)
        arr = m.newarr(n)
        i = m.const(0)
        x = m.const(42)
        m.astore(arr, i, x)
        v = m.aload(arr, i)
        m.ret(v)
        graph = build_ir(pb.build().resolve_static("main"))
        assert eliminate_loads(graph) == 1
        assert count_kind(graph, Kind.ALOAD) == 0

    def test_diamond_requires_both_paths(self):
        pb = ProgramBuilder()
        pb.cls("C", fields=["f"])
        m = pb.method("main", params=("obj", "sel"))
        obj, sel = m.param(0), m.param(1)
        zero = m.const(0)
        m.br("eq", sel, zero, "other")
        m.getfield(obj, "f")
        m.jmp("join")
        m.label("other")
        m.nop()
        m.label("join")
        v = m.getfield(obj, "f")  # only available on one path: must stay
        m.ret(v)
        graph = build_ir(pb.build().resolve_static("main"))
        assert eliminate_loads(graph) == 0


class TestDCE:
    def test_unused_pure_ops_removed(self):
        pb = ProgramBuilder()
        m = pb.method("main", params=("x",))
        x = m.param(0)
        m.add(x, x)           # dead
        m.mul(x, x)           # dead
        out = m.sub(x, x)
        m.ret(out)
        graph = build_ir(pb.build().resolve_static("main"))
        removed = eliminate_dead_code(graph)
        assert removed >= 2
        verify_graph(graph)

    def test_stores_and_calls_kept(self):
        pb = ProgramBuilder()
        pb.cls("C", fields=["f"])
        sink = pb.method("sink", params=("v",))
        sink.ret()
        m = pb.method("main")
        obj = m.new("C")
        one = m.const(1)
        m.putfield(obj, "f", one)
        m.call("sink", (one,))
        m.ret(one)
        graph = build_ir(pb.build().resolve_static("main"))
        eliminate_dead_code(graph)
        assert count_kind(graph, Kind.PUTFIELD) == 1
        assert count_kind(graph, Kind.CALL) == 1

    def test_unused_allocation_removed(self):
        pb = ProgramBuilder()
        pb.cls("C", fields=["f"])
        m = pb.method("main")
        m.new("C")  # dead allocation
        out = m.const(0)
        m.ret(out)
        graph = build_ir(pb.build().resolve_static("main"))
        eliminate_dead_code(graph)
        assert count_kind(graph, Kind.NEW) == 0


class TestPipelineDifferential:
    @pytest.mark.parametrize("seed", range(60))
    def test_optimized_random_programs_match(self, seed):
        program = random_program(seed + 2000)
        assert_same_outcome(program, transform=opt_transform)

    @pytest.mark.parametrize("seed", range(15))
    def test_optimized_loopy_programs_match(self, seed):
        program = random_program(
            seed + 3000, max_statements=20, max_loop_trip=9
        )
        assert_same_outcome(program, transform=opt_transform)

    def test_paper_figure3_redundancy(self):
        """The addElement pattern: after optimization, the second inlined
        copy's null check and length load are gone (Figure 3(b))."""
        pb = ProgramBuilder()
        pb.cls("V", fields=["cached", "i"])
        m = pb.method("main", params=("v", "x", "y"))
        v, x, y = m.param(0), m.param(1), m.param(2)
        one = m.const(1)
        # copy 1: cached[i] = x; i++
        cached = m.getfield(v, "cached")
        i = m.getfield(v, "i")
        m.astore(cached, i, x)
        i2 = m.add(i, one)
        m.putfield(v, "i", i2)
        # copy 2: cached[i] = y; i++
        cached_b = m.getfield(v, "cached")
        i_b = m.getfield(v, "i")
        m.astore(cached_b, i_b, y)
        i3 = m.add(i_b, one)
        m.putfield(v, "i", i3)
        m.ret(i3)
        program = pb.build()
        graph = build_ir(program.resolve_static("main"))
        n_checks_before = count_kind(graph, Kind.CHECK_NULL)
        optimize(graph, verify=True)
        # The second getfield of `cached`, its null check, and the reload of
        # field i are all eliminated by load elimination + GVN.
        assert count_kind(graph, Kind.CHECK_NULL) < n_checks_before
        assert count_kind(graph, Kind.GETFIELD) == 2  # cached, i (once each)
