"""Deterministic merge under adversarial completion order.

Satellite of ISSUE 7: the parallel runners promise results in
*submission* order regardless of how the pool schedules work.  A real
``ProcessPoolExecutor`` completes mostly in order on small sweeps, so
these tests swap in a stub executor that resolves every future in
reverse (or seeded-shuffled) order — the worst case a loaded host can
produce — and assert the merge discipline still yields byte-identical
serial results.
"""

from __future__ import annotations

import random

import pytest

from repro.harness import parallel
from repro.harness.chaos import run_chaos
from repro.harness.parallel import run_chaos_parallel, run_indexed
from repro.vm.compiler import ATOMIC_AGGRESSIVE
from repro.workloads import get_workload


class _AdversarialFuture:
    def __init__(self, pool, index):
        self._pool = pool
        self._index = index

    def result(self, timeout=None):
        self._pool._drain()
        outcome = self._pool._results[self._index]
        if isinstance(outcome, BaseException):
            raise outcome
        return outcome


class _AdversarialPool:
    """In-process ``ProcessPoolExecutor`` stand-in that completes all
    submitted calls in an adversarial order on the first ``result()``."""

    #: class-level knobs so a monkeypatched constructor signature stays
    #: identical to the real executor's.
    order = "reverse"
    completion_log: list[list[int]] = []

    def __init__(self, max_workers=None):
        self._calls = []
        self._results = {}

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def submit(self, fn, *args, **kwargs):
        index = len(self._calls)
        self._calls.append((fn, args, kwargs))
        return _AdversarialFuture(self, index)

    def _drain(self):
        if self._results:
            return
        indices = list(range(len(self._calls)))
        if self.order == "reverse":
            indices.reverse()
        else:
            random.Random(0xC0FFEE).shuffle(indices)
        type(self).completion_log.append(list(indices))
        for i in indices:
            fn, args, kwargs = self._calls[i]
            try:
                self._results[i] = fn(*args, **kwargs)
            except BaseException as exc:  # delivered via result()
                self._results[i] = exc


@pytest.fixture()
def adversarial_pool(monkeypatch):
    _AdversarialPool.completion_log = []
    monkeypatch.setattr(parallel, "ProcessPoolExecutor", _AdversarialPool)
    return _AdversarialPool


def _tag(item):
    return ("cell", item, item * item)


class TestRunIndexedMerge:
    def test_reverse_completion_still_submission_order(
            self, adversarial_pool):
        adversarial_pool.order = "reverse"
        items = list(range(12))
        assert run_indexed(items, _tag, workers=4) == [
            _tag(item) for item in items]
        # the stub really did complete out of order
        (completed,) = adversarial_pool.completion_log
        assert completed == list(reversed(range(12)))

    def test_shuffled_completion_still_submission_order(
            self, adversarial_pool):
        adversarial_pool.order = "shuffle"
        items = list(range(16))
        assert run_indexed(items, _tag, workers=4) == [
            _tag(item) for item in items]
        (completed,) = adversarial_pool.completion_log
        assert completed != list(range(16))

    def test_serial_path_never_touches_the_pool(self, adversarial_pool):
        assert run_indexed([1, 2, 3], _tag, workers=1) == [
            _tag(1), _tag(2), _tag(3)]
        assert adversarial_pool.completion_log == []


class TestChaosMergeOrder:
    """The merged chaos report re-sorts shard checks into the serial
    (sample index, seed position) order — completion order must not
    leak into the report."""

    @pytest.mark.parametrize("order", ["reverse", "shuffle"])
    def test_parallel_report_matches_serial(self, adversarial_pool, order):
        adversarial_pool.order = order
        seeds = (0, 1, 2, 3)
        serial = run_chaos(get_workload("fop"), ATOMIC_AGGRESSIVE,
                           seeds=seeds, max_samples=1)
        merged = run_chaos_parallel("fop", seeds=seeds, max_samples=1,
                                    workers=2)
        assert merged.describe() == serial.describe()
        assert merged.ok == serial.ok
        assert [(c.seed, c.sample_index) for c in merged.checks] == [
            (c.seed, c.sample_index) for c in serial.checks]
        # shards really completed out of submission order
        (completed,) = adversarial_pool.completion_log
        assert completed != sorted(completed)
