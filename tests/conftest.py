"""Test-suite configuration: bounded hypothesis profiles (ci vs. dev)."""

from repro.testutil.hypo import register_hypothesis_profiles

register_hypothesis_profiles()
