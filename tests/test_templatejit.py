"""Template-JIT suite: generative equivalence battery, golden source,
cache-eviction and fallback regressions.

The fused tier's contract is *observational inertness*: for any installed
code, any heap, and any hardware shape, running under ``dispatch="jit"``
must be byte-identical — outcome, ``ExecStats.summary()``, heap
fingerprint — to the instrumented interpretive loop.  The battery here
attacks that contract with randomly generated straight-line uop programs
(:mod:`repro.testutil.uopgen`) whose operands deliberately wander off the
fused templates' happy paths, so every bail edge re-lands in the handler
tier mid-program.

The golden test pins the *generated host source* for a hand-built region
that exercises every fused template: an emitter change that silently
reorders counter flushes or drops a read-set insert fails here first.
Regenerate intentionally with::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_templatejit.py
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.faults import FaultInjector, FaultPlan
from repro.hw.config import BASELINE_4WIDE
from repro.hw.isa import CompiledMethod, MInstr, MOp
from repro.hw.machine import Machine
from repro.hw.stats import ExecStats
from repro.hw.templatejit import (
    fused_runs,
    get_jitted,
    jit_profile,
    jit_source,
)
from repro.obs.tracer import Tracer
from repro.runtime.heap import Heap
from repro.testutil.uopgen import run_uop_case, uop_case

GOLDEN_DIR = Path(__file__).parent / "golden"

#: a regioned seed whose region commits under speculation (returns 1)
#: and whose recovery sentinel is distinct (-1102) — the pair makes
#: region-disable visible in the return value alone.
COMMITTING_REGION_SEED = 102
DISABLED_SENTINEL = -1102

#: HTM shapes whose fused code *differs* (fallback-begin emits a lock
#: check, store_buffer emits a store bound, cache_shaped emits overflow
#: tracking, setjmp changes abort delivery at re-landed begins).
JIT_HTM_MATRIX = [
    BASELINE_4WIDE,
    BASELINE_4WIDE.scaled(name="jit-rock", htm_mode="store_buffer",
                          spec_store_buffer_entries=2),
    BASELINE_4WIDE.scaled(name="jit-cache", htm_mode="cache_shaped"),
    BASELINE_4WIDE.scaled(name="jit-lock-begin", htm_mode="store_buffer",
                          spec_store_buffer_entries=2,
                          fallback_lock_mode="begin"),
    BASELINE_4WIDE.scaled(name="jit-setjmp", htm_mode="store_buffer",
                          spec_store_buffer_entries=2,
                          abort_delivery="setjmp"),
]


def _assert_tiers_agree(seed: int, timing: bool = False,
                        hw=BASELINE_4WIDE) -> None:
    case = uop_case(seed)
    base = run_uop_case(case, "interpretive", timing=timing, hw=hw)
    for tier in ("predecoded", "jit"):
        got = run_uop_case(case, tier, timing=timing, hw=hw)
        assert got == base, (
            f"seed {seed} ({hw.name}, timed={timing}): {tier} diverged\n"
            f"  {tier}: {got[0]}\n  interpretive: {base[0]}"
        )


class TestGenerativeEquivalence:
    """Satellite battery: random straight-line uop programs, three tiers,
    byte-identical outcome + stats + heap fingerprint."""

    @pytest.mark.parametrize("seed", range(60))
    def test_fixed_seeds_untimed(self, seed):
        _assert_tiers_agree(seed, timing=False)

    @pytest.mark.parametrize("seed", range(30))
    def test_fixed_seeds_timed(self, seed):
        _assert_tiers_agree(seed, timing=True)

    @pytest.mark.parametrize("hw", JIT_HTM_MATRIX[1:], ids=lambda h: h.name)
    def test_fixed_seeds_tight_htm(self, hw):
        for seed in range(20):
            _assert_tiers_agree(seed, timing=False, hw=hw)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_random_seeds(self, seed):
        _assert_tiers_agree(seed, timing=False)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_random_seeds_timed(self, seed):
        _assert_tiers_agree(seed, timing=True)

    def test_battery_reaches_every_outcome_class(self):
        """The generator must keep producing committed values, guest
        traps, *and* host-level type errors — a drift toward all-fatal
        (or all-clean) programs would quietly hollow out the battery."""
        kinds = set()
        for seed in range(200):
            outcome, _, _ = run_uop_case(uop_case(seed), "jit")
            kinds.add(outcome[0] if outcome[0] == "value" else outcome[1])
        assert "value" in kinds
        assert any(k.startswith("Guest") or k in
                   ("NullPointerError", "BoundsError") for k in kinds)
        assert "VMError" in kinds or "TypeError" in kinds


# -- golden generated source -------------------------------------------------

def _golden_method() -> CompiledMethod:
    """A hand-built method exercising every fused template exactly once,
    split across an unfused boundary (the AREGION uops) so the source
    shows both a plain run and a regioned run."""
    instrs = [
        # run 1: plain straight-line code up to the region begin.
        MInstr(MOp.CONST, dst=0, imm=7),
        MInstr(MOp.CONST_NULL, dst=1),
        MInstr(MOp.MOV, dst=2, a=0),
        MInstr(MOp.ADD, dst=2, a=2, b=0),
        MInstr(MOp.SUB, dst=3, a=2, b=0),
        MInstr(MOp.MUL, dst=3, a=3, b=3),
        MInstr(MOp.DIV, dst=4, a=3, b=0),
        MInstr(MOp.MOD, dst=4, a=3, b=0),
        MInstr(MOp.AND, dst=5, a=3, b=4),
        MInstr(MOp.OR, dst=5, a=5, b=0),
        MInstr(MOp.XOR, dst=5, a=5, b=2),
        MInstr(MOp.SHL, dst=6, a=0, b=2),
        MInstr(MOp.SHR, dst=6, a=6, b=0),
        MInstr(MOp.BR_TRAP, cond="ge", a=6, b=None),
        MInstr(MOp.AREGION_BEGIN, imm=1, target=27),
        # run 2: the speculative body — memory traffic of every kind.
        MInstr(MOp.NEWOBJ, dst=7, cls="Node"),
        MInstr(MOp.STOREF, a=7, b=0, fieldname="f0"),
        MInstr(MOp.LOADF, dst=8, a=7, fieldname="f0"),
        MInstr(MOp.CONST, dst=9, imm=2),
        MInstr(MOp.NEWARR, dst=10, a=9),
        MInstr(MOp.CONST, dst=11, imm=0),
        MInstr(MOp.STOREA, a=10, b=11, c=8),
        MInstr(MOp.LOADA, dst=8, a=10, b=11),
        MInstr(MOp.LOADLEN, dst=9, a=10),
        MInstr(MOp.LOADLOCK, dst=9, a=7),
        MInstr(MOp.CLASSOF, dst=9, a=7),
        MInstr(MOp.AREGION_END),
        # pc 27: shared tail (also the abort recovery target).
        MInstr(MOp.STORESPILL, a=8, imm=0),
        MInstr(MOp.LOADSPILL, dst=8, imm=0),
        MInstr(MOp.LOADG, dst=9, imm=0x7000),
        MInstr(MOp.BR_TRAP, cond="eq", a=8, b=1),
        MInstr(MOp.RET, a=8),
    ]
    compiled = CompiledMethod(
        name="golden_region", num_params=0, instrs=instrs,
        num_regs=12, num_spill_slots=1,
        region_entries={1: 14}, uses_regions=True,
    )
    compiled.param_locations = ()
    return compiled


class TestGoldenSource:
    def _profile(self):
        # The profile depends only on the hardware config, not the guest
        # program, so any machine on BASELINE_4WIDE yields the golden key.
        machine = Machine(uop_case(0).program, Heap(),
                          config=BASELINE_4WIDE, stats=ExecStats())
        return jit_profile(machine)

    def test_generated_source_matches_golden(self):
        source = jit_source(_golden_method(), self._profile())
        path = GOLDEN_DIR / "templatejit_source.txt"
        if os.environ.get("REGEN_GOLDEN"):
            path.write_text(source)
            pytest.skip(f"regenerated {path}")
        assert path.exists(), (
            f"missing golden file {path}; run with REGEN_GOLDEN=1 to "
            "create it"
        )
        assert source == path.read_text(), (
            "generated template-jit source changed; if the emitter change "
            "is intentional, regenerate with REGEN_GOLDEN=1 and re-run the "
            "full differential battery"
        )

    def test_golden_method_fully_fused(self):
        """The golden method must stay wall-to-wall fusable apart from
        the region uops and the RET — otherwise the golden file stops
        pinning the templates it claims to pin."""
        compiled = _golden_method()
        runs = fused_runs(compiled)
        fused = sum(end - start for start, end in runs)
        # all but AREGION_BEGIN / AREGION_END / RET
        assert fused == len(compiled.instrs) - 3

    def test_golden_source_is_compilable_python(self):
        source = jit_source(_golden_method(), self._profile())
        compile(source, "<golden>", "exec")


# -- cache eviction / invalidation -------------------------------------------

class TestCacheEviction:
    def test_disable_region_evicts_fused_code(self):
        case = uop_case(COMMITTING_REGION_SEED)
        outcome, _, _ = run_uop_case(case, "jit")
        assert outcome == ("value", 1)
        jitted_before = case.compiled._jitted
        assert jitted_before is not None
        case.compiled.disable_region(1)
        assert case.compiled._jitted is None, (
            "disable_region must drop the fused-function cache: the patch "
            "changes what aregion_begin does"
        )
        assert case.compiled._predecoded is None
        # The rebuilt fused code takes the permanent fallback path —
        # and still agrees with the interpretive loop on the patched code.
        for timing in (False, True):
            patched = run_uop_case(case, "jit", timing=timing)
            assert patched[0] == ("value", DISABLED_SENTINEL)
            assert patched == run_uop_case(case, "interpretive",
                                           timing=timing)
        assert case.compiled._jitted is not jitted_before

    def test_invalidate_predecode_drops_both_caches(self):
        case = uop_case(COMMITTING_REGION_SEED)
        run_uop_case(case, "predecoded")
        run_uop_case(case, "jit")
        assert case.compiled._predecoded is not None
        assert case.compiled._jitted is not None
        case.compiled.invalidate_predecode()
        assert case.compiled._predecoded is None
        assert case.compiled._jitted is None

    def test_profile_change_rebuilds_fused_code(self):
        """A machine with a different specialisation key (HTM shape,
        fallback mode, line size) must never reuse fused code built for
        another machine's key."""
        case = uop_case(COMMITTING_REGION_SEED)
        compiled, program = case.compiled, case.program
        mach_a = Machine(program, Heap(), config=BASELINE_4WIDE,
                         stats=ExecStats(), dispatch="jit")
        jm_a = get_jitted(compiled, mach_a)
        assert get_jitted(compiled, mach_a) is jm_a
        hw_b = BASELINE_4WIDE.scaled(name="evict-b",
                                     htm_mode="store_buffer",
                                     spec_store_buffer_entries=2,
                                     fallback_lock_mode="begin")
        mach_b = Machine(program, Heap(), config=hw_b,
                         stats=ExecStats(), dispatch="jit")
        jm_b = get_jitted(compiled, mach_b)
        assert jm_b is not jm_a
        assert jm_b.profile != jm_a.profile

    def test_variants_compile_lazily(self):
        """Only the timing variant a machine actually uses is host-
        compiled; the other stays unbuilt until first use."""
        case = uop_case(COMMITTING_REGION_SEED)
        mach = Machine(case.program, Heap(), config=BASELINE_4WIDE,
                       stats=ExecStats(), dispatch="jit")
        jm = get_jitted(case.compiled, mach)
        assert jm._tables == [None, None]
        untimed = jm.table(False)
        assert jm._tables[0] is untimed and jm._tables[1] is None
        assert jm.table(False) is untimed  # cached, not rebuilt
        timed = jm.table(True)
        assert timed is not untimed


# -- fallback gating ----------------------------------------------------------

class TestJitGating:
    def _machine(self, **kw):
        case = uop_case(0)
        return Machine(case.program, Heap(), config=BASELINE_4WIDE,
                       stats=ExecStats(), **kw)

    def test_jit_mode_knob_gates_auto_dispatch(self):
        on = self._machine(dispatch="auto")
        assert on._jit_tier  # BASELINE_4WIDE has jit_mode="on"
        off_hw = BASELINE_4WIDE.scaled(name="jit-off", jit_mode="off")
        off = Machine(uop_case(0).program, Heap(), config=off_hw,
                      stats=ExecStats(), dispatch="auto")
        assert not off._jit_tier
        forced = Machine(uop_case(0).program, Heap(), config=off_hw,
                         stats=ExecStats(), dispatch="jit")
        assert forced._jit_tier  # explicit dispatch overrides the knob

    def test_fault_injector_disables_fused_tier(self):
        """Per-uop fault probes must stay live: a machine carrying a
        fault injector silently drops from jit to pre-decoded."""
        mach = self._machine(dispatch="jit",
                             fault_injector=FaultInjector(FaultPlan()))
        assert not mach._jit_tier

    def test_traced_run_bypasses_fused_tier_byte_identically(self):
        """A tracer re-routes execution to the instrumented loop; the
        emitted events and the outcome must match a machine that never
        had a fast tier at all."""
        seed = COMMITTING_REGION_SEED
        results = []
        for dispatch in ("jit", "interpretive"):
            case = uop_case(seed)
            heap = Heap()
            stats = ExecStats()
            tracer = Tracer()
            mach = Machine(case.program, heap, config=BASELINE_4WIDE,
                           stats=stats, dispatch=dispatch, tracer=tracer)
            value = mach.execute(case.compiled, case.make_args(heap))
            results.append((value, stats.summary(), heap.fingerprint(),
                            [e.kind for e in tracer.events]))
        assert results[0] == results[1]
        assert "region_commit" in results[0][3]

    def test_prepare_builds_active_tier_cache(self):
        case = uop_case(COMMITTING_REGION_SEED)
        mach = self._machine(dispatch="jit", timing=None)
        mach.prepare(case.compiled)
        jm = case.compiled._jitted
        assert jm is not None
        assert jm._tables[0] is not None  # untimed variant, ready to run
        slow = Machine(uop_case(0).program, Heap(), config=BASELINE_4WIDE,
                       stats=ExecStats(), dispatch="interpretive")
        other = uop_case(1)
        slow.prepare(other.compiled)
        assert other.compiled._jitted is None
        assert other.compiled._predecoded is None
