"""The sweep service: protocol, dedup, caching, fairness, determinism.

Tentpole of ISSUE 9.  The load-bearing guarantee is the determinism
contract: any payload served over the wire — cold, deduped, hot-cached,
or disk-cached, under concurrent duplicate submissions and mid-stream
disconnects — is byte-identical (through ``canonical_json``) to a serial
``compute_cell``-style run of the same cell.  The satellite edge cases
(malformed JSON, unknown names, duplicate request ids, disconnects,
slow-consumer eviction) each get a typed-error test.

No pytest-asyncio in the image: every async scenario runs under a plain
``asyncio.run`` inside a sync test.
"""

from __future__ import annotations

import asyncio
import contextlib
import json

import pytest

from repro.harness import diskcache
from repro.obs import Tracer
from repro.obs.export import validate_chrome_trace
from repro.service import (
    ERROR_CODES,
    ProtocolError,
    ServiceCell,
    ServiceError,
    SweepClient,
    SweepServer,
    canonical_json,
    compute_service_cell,
    payload_digest,
    result_payload,
    validate_cell,
)
from repro.service.__main__ import parse_cell
from repro.service.protocol import decode, encode

# the seed matrix under test: fast workloads, two compiler configs, a
# seeded (fault-plan-carrying) cell, and a second workload.
MATRIX = (
    ServiceCell(workload="hsqldb", compiler="atomic"),
    ServiceCell(workload="hsqldb", compiler="no-atomic"),
    ServiceCell(workload="hsqldb", compiler="atomic", seed=3),
    ServiceCell(workload="xalan", compiler="atomic+aggr-inline"),
)
CELL = MATRIX[0]


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(scope="module")
def serial():
    """The serial reference: cell -> (key, result), computed once per
    module through the exact worker entry point the server uses."""
    return {cell: compute_service_cell(cell) for cell in MATRIX}


@pytest.fixture(scope="module")
def reference(serial):
    """cell -> canonical payload bytes of the serial run."""
    return {cell: canonical_json(result_payload(result))
            for cell, (_key, result) in serial.items()}


def prewarm(server: SweepServer, serial, cells=MATRIX) -> None:
    """Install serial results in the server's hot layer, so protocol
    tests are served at memory speed without burning compute."""
    for cell in cells:
        key, result = serial[cell]
        server.hot.put(key, result)


@contextlib.asynccontextmanager
async def connect(server: SweepServer):
    client = await SweepClient.connect(server.host, server.port)
    try:
        yield client
    finally:
        await client.close()


# -- protocol units (no server) ------------------------------------------------

class TestProtocolUnits:
    def test_encode_decode_roundtrip(self):
        frame = encode({"op": "ping", "id": "x"})
        assert frame.endswith(b"\n")
        assert decode(frame) == {"op": "ping", "id": "x"}

    def test_decode_garbage_is_bad_json(self):
        with pytest.raises(ProtocolError) as err:
            decode(b"not json at all\n")
        assert err.value.code == "bad_json"

    def test_decode_non_object_is_bad_json(self):
        with pytest.raises(ProtocolError) as err:
            decode(b"[1,2,3]\n")
        assert err.value.code == "bad_json"

    def test_error_codes_are_a_closed_set(self):
        assert "slow_consumer" in ERROR_CODES
        with pytest.raises(AssertionError):
            ProtocolError("made_up_code", "nope")

    def test_spec_roundtrip(self):
        cell = ServiceCell(workload="hsqldb", compiler="atomic",
                           hardware="2wide", seed=7, trace=True)
        assert validate_cell(cell.spec()) == cell

    @pytest.mark.parametrize("spec,code", [
        ("not a dict", "bad_request"),
        ({"workload": "hsqldb"}, "bad_request"),
        ({"workload": "hsqldb", "compiler": "atomic", "bogus": 1},
         "bad_request"),
        ({"workload": "nope", "compiler": "atomic"}, "unknown_workload"),
        ({"workload": "hsqldb", "compiler": "nope"}, "unknown_compiler"),
        ({"workload": "hsqldb", "compiler": "atomic", "hardware": "nope"},
         "unknown_hardware"),
        ({"workload": "hsqldb", "compiler": "atomic", "seed": "3"},
         "bad_request"),
        ({"workload": "hsqldb", "compiler": "atomic", "seed": True},
         "bad_request"),
        ({"workload": "hsqldb", "compiler": "atomic", "dispatch": "warp"},
         "bad_request"),
        ({"workload": "hsqldb", "compiler": "atomic", "trace": 1},
         "bad_request"),
    ])
    def test_validation_is_total(self, spec, code):
        with pytest.raises(ProtocolError) as err:
            validate_cell(spec)
        assert err.value.code == code

    def test_trace_flag_changes_the_key(self):
        plain = ServiceCell(workload="hsqldb", compiler="atomic")
        traced = ServiceCell(workload="hsqldb", compiler="atomic", trace=True)
        assert plain.key() != traced.key()

    def test_seeded_keys_are_deterministic(self):
        first = ServiceCell(workload="hsqldb", compiler="atomic", seed=9)
        second = ServiceCell(workload="hsqldb", compiler="atomic", seed=9)
        other = ServiceCell(workload="hsqldb", compiler="atomic", seed=10)
        assert first.key() == second.key()
        assert first.key() != other.key()

    def test_parse_cell_forms(self):
        assert parse_cell("hsqldb:atomic") == ServiceCell(
            workload="hsqldb", compiler="atomic")
        assert parse_cell("hsqldb:atomic:2wide:5") == ServiceCell(
            workload="hsqldb", compiler="atomic", hardware="2wide", seed=5)
        with pytest.raises(SystemExit):
            parse_cell("just-a-workload")


# -- wire-level edge cases -----------------------------------------------------

class TestWireEdges:
    def test_malformed_json_is_typed_and_survivable(self, serial):
        async def scenario():
            async with SweepServer(workers=1, disk_cache=False) as server:
                async with connect(server) as client:
                    client._writer.write(b"this is not json\n")
                    await client._writer.drain()
                    error = await client.next_control()
                    assert error["event"] == "error"
                    assert error["code"] == "bad_json"
                    # the connection survives a garbage frame
                    pong = await client.ping()
                    assert pong["event"] == "pong"
        run(scenario())

    def test_unknown_op(self):
        async def scenario():
            async with SweepServer(workers=1, disk_cache=False) as server:
                async with connect(server) as client:
                    await client.raw({"op": "launch_missiles"})
                    error = await client.next_control()
                    assert error["code"] == "unknown_op"
        run(scenario())

    def test_unknown_workload_rejects_whole_submit(self, serial):
        async def scenario():
            async with SweepServer(workers=1, disk_cache=False) as server:
                prewarm(server, serial)
                async with connect(server) as client:
                    with pytest.raises(ServiceError) as err:
                        await client.submit([
                            CELL.spec(),
                            {"workload": "nope", "compiler": "atomic"},
                        ])
                    assert err.value.code == "unknown_workload"
                    # atomic reject: the valid first cell was not served
                    counters = await client.stats()
                    assert counters["served"] == 0
        run(scenario())

    def test_empty_submit_is_bad_request(self):
        async def scenario():
            async with SweepServer(workers=1, disk_cache=False) as server:
                async with connect(server) as client:
                    with pytest.raises(ServiceError) as err:
                        await client.submit([])
                    assert err.value.code == "bad_request"
        run(scenario())

    def test_duplicate_request_id_reuse(self, serial):
        async def scenario():
            async with SweepServer(workers=1, disk_cache=False) as server:
                prewarm(server, serial)
                async with connect(server) as client:
                    first = await client.sweep([CELL], request_id="sweep-1")
                    assert first[0]["source"] == "hot"
                    with pytest.raises(ServiceError) as err:
                        await client.submit([CELL], request_id="sweep-1")
                    assert err.value.code == "duplicate_id"
                    # a fresh id on the same connection still works
                    again = await client.sweep([CELL], request_id="sweep-2")
                    assert again[0]["source"] == "hot"
        run(scenario())

    def test_duplicate_id_is_per_connection(self, serial):
        async def scenario():
            async with SweepServer(workers=1, disk_cache=False) as server:
                prewarm(server, serial)
                async with connect(server) as one:
                    await one.sweep([CELL], request_id="shared")
                async with connect(server) as two:
                    events = await two.sweep([CELL], request_id="shared")
                    assert events[0]["source"] == "hot"
        run(scenario())

    def test_ping_echoes_id_and_stats_shape(self):
        async def scenario():
            async with SweepServer(workers=1, disk_cache=False) as server:
                async with connect(server) as client:
                    await client.raw({"op": "ping", "id": "tick"})
                    pong = await client.next_control()
                    assert pong == {"event": "pong", "id": "tick"}
                    counters = await client.stats()
                    for field in ("clients", "served", "executions",
                                  "dedup_hits", "evictions", "cache"):
                        assert field in counters
                    assert counters["clients"] == 1
        run(scenario())


# -- cache serving -------------------------------------------------------------

class TestCacheServing:
    def test_hot_cell_served_without_compute(self, serial, reference):
        async def scenario():
            async with SweepServer(workers=1, disk_cache=False) as server:
                prewarm(server, serial)
                async with connect(server) as client:
                    events = await client.sweep(list(MATRIX))
                    assert [e["source"] for e in events] == ["hot"] * 4
                    for cell, event in zip(MATRIX, events):
                        assert (canonical_json(event["payload"])
                                == reference[cell])
                assert server.executions == 0
        run(scenario())

    def test_disk_hit_promotes_to_hot(self, serial, reference,
                                      tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DISK_CACHE_DIR", str(tmp_path))
        key, result = serial[CELL]
        diskcache.store(key, result)

        async def scenario():
            async with SweepServer(workers=1, disk_cache=True) as server:
                async with connect(server) as client:
                    first = await client.sweep([CELL])
                    assert first[0]["source"] == "disk"
                    assert canonical_json(first[0]["payload"]) == reference[CELL]
                    second = await client.sweep([CELL])
                    assert second[0]["source"] == "hot"
                assert server.executions == 0
                assert server.hot.counters()["disk_hits"] == 1
        run(scenario())

    def test_cold_compute_lands_in_both_layers(self, reference,
                                               tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DISK_CACHE_DIR", str(tmp_path))

        async def scenario():
            async with SweepServer(workers=1, disk_cache=True) as server:
                async with connect(server) as client:
                    cold = await client.sweep([CELL])
                    assert cold[0]["source"] == "cold"
                    assert canonical_json(cold[0]["payload"]) == reference[CELL]
                    hot = await client.sweep([CELL])
                    assert hot[0]["source"] == "hot"
                assert server.executions == 1
            # a *fresh* server over the same cache dir answers from disk
            async with SweepServer(workers=1, disk_cache=True) as server:
                async with connect(server) as client:
                    disk = await client.sweep([CELL])
                    assert disk[0]["source"] == "disk"
                    assert canonical_json(disk[0]["payload"]) == reference[CELL]
                assert server.executions == 0
        run(scenario())


# -- in-flight dedup -----------------------------------------------------------

class TestDedup:
    def test_concurrent_duplicate_submits_share_one_execution(self, reference):
        async def scenario():
            async with SweepServer(workers=1, disk_cache=False) as server:
                async with connect(server) as one, connect(server) as two:
                    first, second = await asyncio.gather(
                        one.sweep([CELL]), two.sweep([CELL]))
                    sources = sorted([first[0]["source"], second[0]["source"]])
                    assert sources == ["cold", "dedup"]
                    assert (canonical_json(first[0]["payload"])
                            == canonical_json(second[0]["payload"])
                            == reference[CELL])
                assert server.executions == 1
                assert server.metrics.counter("service.dedup_hits") == 1
        run(scenario())

    def test_duplicates_within_one_request_dedup(self, reference):
        async def scenario():
            async with SweepServer(workers=1, disk_cache=False) as server:
                async with connect(server) as client:
                    events = await client.sweep([CELL, CELL, CELL])
                    assert sorted(e["source"] for e in events) == [
                        "cold", "dedup", "dedup"]
                    for event in events:
                        assert (canonical_json(event["payload"])
                                == reference[CELL])
                assert server.executions == 1
        run(scenario())


# -- disconnects ---------------------------------------------------------------

class TestDisconnect:
    def test_mid_stream_disconnect_leaves_server_healthy(self, reference):
        async def scenario():
            async with SweepServer(workers=1, disk_cache=False) as server:
                ghost = await SweepClient.connect(server.host, server.port)
                await ghost.submit([CELL])
                # vanish before any result is streamed back
                await ghost.close()
                async with connect(server) as client:
                    events = await client.sweep([CELL])
                    # the ghost's cell kept computing; the survivor either
                    # attached to it (dedup) or hit the hot layer after it
                    # finished — never a second cold execution.
                    assert events[0]["source"] in ("dedup", "hot")
                    assert canonical_json(events[0]["payload"]) \
                        == reference[CELL]
                assert server.executions == 1
                for _ in range(100):  # the ghost's EOF is still racing in
                    if server.counters()["clients"] == 0:
                        break
                    await asyncio.sleep(0.01)
                assert server.counters()["clients"] == 0
        run(scenario())

    def test_abrupt_socket_close_is_survivable(self):
        async def scenario():
            async with SweepServer(workers=1, disk_cache=False) as server:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port)
                await reader.readline()  # hello
                writer.write(b'{"op": "submit", "cells": [{"workload": '
                             b'"hsqldb", "compiler": "atomic"}]}\n')
                await writer.drain()
                writer.close()  # no graceful goodbye
                # the server must keep answering other clients (sweeping
                # the same cell also drains the orphaned execution, so the
                # server stops with no batch in flight)
                async with connect(server) as client:
                    assert (await client.ping())["event"] == "pong"
                    events = await client.sweep([CELL])
                    assert events[0]["source"] in ("dedup", "hot")
        run(scenario())


# -- backpressure --------------------------------------------------------------

class TestBackpressure:
    def test_stalled_subscriber_is_evicted_with_typed_error(self, serial):
        async def scenario():
            async with SweepServer(workers=1, disk_cache=False,
                                   queue_limit=4) as server:
                prewarm(server, serial)
                reader, writer = await asyncio.open_connection(
                    server.host, server.port)
                await reader.readline()  # hello (drains the queue once)
                # 8 hot cells answer synchronously in one dispatch: the
                # writer task cannot drain between enqueues, so the
                # 4-deep queue must overflow -> eviction, deterministically.
                submit = {"op": "submit", "cells": [CELL.spec()] * 8}
                writer.write(json.dumps(submit).encode() + b"\n")
                await writer.drain()
                lines = []
                while True:
                    line = await asyncio.wait_for(reader.readline(),
                                                  timeout=5)
                    if not line:
                        break  # server closed on us
                    lines.append(decode(line))
                codes = [e.get("code") for e in lines
                         if e.get("event") == "error"]
                assert "slow_consumer" in codes
                assert server.counters()["evictions"] == 1
                writer.close()
                # unaffected tenants keep streaming
                async with connect(server) as client:
                    events = await client.sweep([CELL])
                    assert events[0]["source"] == "hot"
        run(scenario())

    def test_draining_client_is_not_evicted(self, serial):
        async def scenario():
            async with SweepServer(workers=1, disk_cache=False,
                                   queue_limit=256) as server:
                prewarm(server, serial)
                async with connect(server) as client:
                    events = await client.sweep([CELL] * 16)
                    assert len(events) == 16
                assert server.counters()["evictions"] == 0
        run(scenario())


# -- compute failures ----------------------------------------------------------

class TestComputeFailed:
    def test_worker_exception_is_a_typed_per_cell_error(self, monkeypatch):
        def boom(cell):
            raise RuntimeError("synthetic worker failure")

        monkeypatch.setattr("repro.service.server.compute_service_cell", boom)

        async def scenario():
            async with SweepServer(workers=1, disk_cache=False) as server:
                async with connect(server) as client:
                    handle = await client.submit([CELL])
                    with pytest.raises(ServiceError) as err:
                        await handle.results()
                    assert err.value.code == "compute_failed"
                    assert "synthetic worker failure" in err.value.detail
                    # the failed cell never poisons the cache
                    assert len(server.hot) == 0
                assert server.metrics.counter(
                    "service.compute_failures") == 1
        run(scenario())


# -- trace streaming + service observability -----------------------------------

class TestTracing:
    def test_traced_cell_streams_a_valid_chrome_trace(self):
        async def scenario():
            async with SweepServer(workers=1, disk_cache=False) as server:
                async with connect(server) as client:
                    handle = await client.submit([
                        ServiceCell(workload="hsqldb", compiler="atomic",
                                    trace=True)])
                    kinds = {}
                    async for event in handle.events():
                        kinds[event["event"]] = event
                    assert set(kinds) == {"result", "trace"}
                    document = kinds["trace"]["trace"]
                    validate_chrome_trace(document)
                    assert document["traceEvents"]
        run(scenario())

    def test_service_tracer_records_the_request_lifecycle(self, serial):
        tracer = Tracer()

        async def scenario():
            async with SweepServer(workers=1, disk_cache=False,
                                   tracer=tracer) as server:
                prewarm(server, serial)
                async with connect(server) as one, connect(server) as two:
                    await asyncio.gather(one.sweep([CELL]), two.sweep([CELL]))
        run(scenario())
        kinds = [event.kind for event in tracer.events]
        assert kinds.count("request_accepted") == 2
        assert kinds.count("cell_served") == 2  # both hot-served


# -- progress broadcasts -------------------------------------------------------

class TestWatch:
    def test_watcher_sees_progress_events(self):
        async def scenario():
            async with SweepServer(workers=1, disk_cache=False) as server:
                async with connect(server) as watcher, \
                        connect(server) as worker:
                    stream = watcher.watch()
                    watch_task = asyncio.ensure_future(stream.__anext__())
                    for _ in range(500):  # until the subscription lands
                        if any(c.watching
                               for c in server._clients.values()):
                            break
                        await asyncio.sleep(0.01)
                    await worker.sweep([CELL])
                    progress = await asyncio.wait_for(watch_task, timeout=10)
                    assert progress["event"] == "progress"
                    for field in ("pending", "inflight", "served",
                                  "executions"):
                        assert field in progress
        run(scenario())


# -- the determinism gate (acceptance criterion) -------------------------------

class TestDeterminismGate:
    def test_served_bytes_identical_to_serial_under_concurrency(
            self, serial, reference):
        """≥2 concurrent clients sweep the seed matrix against a pooled
        server while a third submits and disconnects mid-stream; every
        served payload — cold, dedup, then hot on resubmit — must be
        byte-identical to the serial reference, with matching digests,
        and the whole storm must cost exactly one execution per cell."""
        async def scenario():
            async with SweepServer(workers=2, disk_cache=False) as server:
                ghost = await SweepClient.connect(server.host, server.port)
                await ghost.submit(list(MATRIX))
                await ghost.close()  # mid-stream disconnect

                async def sweep_matrix():
                    async with connect(server) as client:
                        return await client.sweep(list(MATRIX))

                storms = await asyncio.gather(sweep_matrix(), sweep_matrix())
                for events in storms:
                    for cell, event in zip(MATRIX, events):
                        assert (canonical_json(event["payload"])
                                == reference[cell])
                        assert event["digest"] == payload_digest(
                            json.loads(reference[cell]))
                # resubmit: the whole matrix is now memory-speed
                async with connect(server) as client:
                    cached = await client.sweep(list(MATRIX))
                assert [e["source"] for e in cached] == ["hot"] * 4
                for cell, event in zip(MATRIX, cached):
                    assert canonical_json(event["payload"]) == reference[cell]
                assert server.executions == len(MATRIX)
                sources = {event["source"]
                           for events in storms for event in events}
                assert sources <= {"cold", "dedup", "hot"}
        run(scenario())
