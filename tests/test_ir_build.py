"""Tests for IR construction, analyses, and the IR executor."""

import pytest

from repro.ir import (
    Kind,
    build_ir,
    dominator_tree,
    find_loops,
    format_graph,
    loop_path_length,
    postdominator_tree,
    verify_graph,
)
from repro.lang import ProgramBuilder
from repro.testutil import (
    assert_same_outcome,
    outcome_bytecode,
    outcome_ir,
    profiled,
    random_program,
)


def loop_sum_program():
    pb = ProgramBuilder()
    m = pb.method("main", params=("n",))
    n = m.param(0)
    total = m.const(0)
    i = m.const(0)
    one = m.const(1)
    m.label("head")
    m.safepoint()
    m.br("ge", i, n, "done")
    m.add(total, i, dst=total)
    m.add(i, one, dst=i)
    m.jmp("head")
    m.label("done")
    m.ret(total)
    return pb.build()


def diamond_program():
    pb = ProgramBuilder()
    m = pb.method("main", params=("x",))
    x = m.param(0)
    zero = m.const(0)
    out = m.fresh()
    m.const(0, dst=out)
    m.br("lt", x, zero, "neg")
    m.const(1, dst=out)
    m.jmp("join")
    m.label("neg")
    m.const(-1, dst=out)
    m.label("join")
    m.ret(out)
    return pb.build()


class TestBuild:
    def test_loop_graph_verifies(self):
        graph = build_ir(loop_sum_program().resolve_static("main"))
        verify_graph(graph)

    def test_diamond_has_phi_at_join(self):
        graph = build_ir(diamond_program().resolve_static("main"))
        verify_graph(graph)
        joins = [b for b in graph.blocks if len(b.preds) == 2]
        assert joins and any(b.phis for b in joins)

    def test_checks_inserted_for_heap_ops(self):
        pb = ProgramBuilder()
        pb.cls("C", fields=["f"])
        m = pb.method("main")
        obj = m.new("C")
        v = m.getfield(obj, "f")
        n = m.const(4)
        arr = m.newarr(n)
        idx = m.const(1)
        m.astore(arr, idx, v)
        m.ret(v)
        graph = build_ir(pb.build().resolve_static("main"))
        kinds = [node.kind for b in graph.blocks for node in b.ops]
        assert Kind.CHECK_NULL in kinds
        assert Kind.CHECK_BOUNDS in kinds
        assert Kind.ALEN in kinds

    def test_profile_attaches_counts(self):
        program = loop_sum_program()
        profiles = profiled(program, args=(50,))
        graph = build_ir(program.resolve_static("main"),
                         profiles.method("main"))
        verify_graph(graph)
        assert max(b.count for b in graph.blocks) >= 50
        branches = [
            b.terminator for b in graph.blocks
            if b.terminator.kind is Kind.BRANCH
        ]
        assert any("edge_counts" in t.attrs for t in branches)

    def test_printer_smoke(self):
        graph = build_ir(loop_sum_program().resolve_static("main"))
        text = format_graph(graph)
        assert "branch" in text and "return" in text


class TestAnalyses:
    def test_dominators_of_diamond(self):
        graph = build_ir(diamond_program().resolve_static("main"))
        tree = dominator_tree(graph)
        entry = graph.entry
        for block in graph.rpo():
            assert tree.dominates(entry, block)
        join = next(b for b in graph.blocks if len(b.preds) == 2)
        sides = join.pred_blocks()
        assert not tree.dominates(sides[0], join) or not tree.dominates(sides[1], join)

    def test_postdominators_of_diamond(self):
        graph = build_ir(diamond_program().resolve_static("main"))
        tree, virtual = postdominator_tree(graph)
        join = next(b for b in graph.blocks if len(b.preds) == 2)
        branch_block = next(
            b for b in graph.blocks if b.terminator.kind is Kind.BRANCH
        )
        assert tree.dominates(join, branch_block)
        assert tree.dominates(virtual, branch_block)

    def test_loop_discovery(self):
        program = loop_sum_program()
        profiles = profiled(program, args=(25,))
        graph = build_ir(program.resolve_static("main"), profiles.method("main"))
        forest = find_loops(graph)
        assert len(forest.loops) == 1
        loop = forest.loops[0]
        assert loop.back_edges
        assert loop_path_length(loop) > 0
        assert 20 <= loop.trip_estimate() <= 30

    def test_nested_loops(self):
        pb = ProgramBuilder()
        m = pb.method("main")
        total = m.const(0)
        i = m.const(0)
        limit = m.const(5)
        one = m.const(1)
        m.label("outer")
        m.br("ge", i, limit, "done")
        j = m.const(0)
        m.label("inner")
        m.br("ge", j, limit, "outer_next")
        m.add(total, one, dst=total)
        m.add(j, one, dst=j)
        m.jmp("inner")
        m.label("outer_next")
        m.add(i, one, dst=i)
        m.jmp("outer")
        m.label("done")
        m.ret(total)
        program = pb.build()
        assert outcome_bytecode(program).value == 25
        graph = build_ir(program.resolve_static("main"))
        verify_graph(graph)
        forest = find_loops(graph)
        assert len(forest.loops) == 2
        postorder = forest.in_postorder()
        # Innermost (child) loop first.
        assert postorder[0].parent is postorder[1]


class TestDifferentialExecution:
    def test_loop_sum(self):
        assert_same_outcome(loop_sum_program(), args=(10,))

    def test_diamond_both_sides(self):
        assert_same_outcome(diamond_program(), args=(5,))
        assert_same_outcome(diamond_program(), args=(-5,))

    def test_guest_error_propagates_identically(self):
        pb = ProgramBuilder()
        m = pb.method("main")
        n = m.const(2)
        arr = m.newarr(n)
        bad = m.const(7)
        m.aload(arr, bad)
        m.ret()
        program = pb.build()
        expected = outcome_bytecode(program)
        actual, _ = outcome_ir(program)
        assert expected.error == "BoundsError"
        assert actual == expected

    def test_virtual_calls_through_dispatcher(self):
        pb = ProgramBuilder()
        pb.cls("A")
        pb.cls("B", super_name="A")
        fa = pb.method("v", params=("this",), owner="A")
        c1 = fa.const(10)
        fa.ret(c1)
        fb = pb.method("v", params=("this",), owner="B")
        c2 = fb.const(20)
        fb.ret(c2)
        m = pb.method("main")
        a = m.new("A")
        b = m.new("B")
        ra = m.vcall(a, "v")
        rb = m.vcall(b, "v")
        out = m.add(ra, rb)
        m.ret(out)
        assert_same_outcome(pb.build())

    @pytest.mark.parametrize("seed", range(40))
    def test_random_programs_roundtrip(self, seed):
        program = random_program(seed)
        assert_same_outcome(program)

    @pytest.mark.parametrize("seed", range(10))
    def test_random_heapless_programs(self, seed):
        program = random_program(seed + 1000, allow_heap=False)
        assert_same_outcome(program)
