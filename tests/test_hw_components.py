"""Unit tests for the hardware components: predictor, caches, timing,
configs, and codegen internals."""

import pytest

from repro.hw import (
    BASELINE_4WIDE,
    CHKPT_20CYCLE,
    CHKPT_SINGLE_INFLIGHT,
    CombiningPredictor,
    MemoryHierarchy,
    MInstr,
    MOp,
    OOO_2WIDE,
    OOO_2WIDE_HALF,
    TimingModel,
)
from repro.hw.cache import CacheLevel
from repro.hw.config import CacheConfig


class TestBranchPredictor:
    def test_learns_always_taken(self):
        pred = CombiningPredictor(1024, 256)
        for _ in range(100):
            pred.predict_and_update(0x400, True)
        assert pred.misprediction_rate < 0.1

    def test_learns_alternating_via_history(self):
        pred = CombiningPredictor(4096, 256)
        taken = True
        for _ in range(2000):
            pred.predict_and_update(0x500, taken)
            taken = not taken
        # gshare captures period-2 patterns nearly perfectly after warmup.
        assert pred.misprediction_rate < 0.2

    def test_random_branches_mispredict(self):
        import random

        rng = random.Random(7)
        pred = CombiningPredictor(1024, 256)
        for _ in range(2000):
            pred.predict_and_update(0x600, rng.random() < 0.5)
        assert pred.misprediction_rate > 0.25

    def test_biased_branch_low_mispredicts(self):
        import random

        rng = random.Random(7)
        pred = CombiningPredictor(1024, 256)
        for _ in range(5000):
            pred.predict_and_update(0x700, rng.random() < 0.99)
        assert pred.misprediction_rate < 0.05


class TestCaches:
    def test_repeat_access_hits(self):
        cache = CacheLevel(CacheConfig(32 * 1024, 4, 64, 4))
        cache.access(0x1000)
        assert cache.access(0x1000)
        assert cache.hits == 1 and cache.misses == 1

    def test_same_line_shares(self):
        cache = CacheLevel(CacheConfig(32 * 1024, 4, 64, 4))
        cache.access(0x1000)
        assert cache.access(0x1030)  # same 64B line

    def test_lru_eviction(self):
        # 2-way, 2-set cache: 4 lines total.
        cache = CacheLevel(CacheConfig(256, 2, 64, 4))
        a, b, c = 0x0, 0x100, 0x200  # all map to set 0
        cache.access(a)
        cache.access(b)
        cache.access(c)              # evicts a (LRU)
        assert not cache.contains(a)
        assert cache.contains(b) and cache.contains(c)

    def test_hierarchy_latencies(self):
        mem = MemoryHierarchy(BASELINE_4WIDE)
        cold = mem.access(0x10000)
        warm = mem.access(0x10000)
        assert cold > warm
        assert warm == BASELINE_4WIDE.l1_config.hit_cycles


class TestHardwareConfigs:
    def test_table1_baseline(self):
        hw = BASELINE_4WIDE
        assert hw.fetch_width == hw.issue_width == hw.retire_width == 4
        assert hw.instruction_window == 128
        assert hw.branch_mispredict_penalty == 20
        assert hw.l1_config.size_bytes == 32 * 1024
        assert hw.l2_config.size_bytes == 4 * 1024 * 1024

    def test_width_variants(self):
        assert OOO_2WIDE.fetch_width == 2
        assert OOO_2WIDE.l1_config.size_bytes == BASELINE_4WIDE.l1_config.size_bytes
        assert OOO_2WIDE_HALF.l1_config.size_bytes == 16 * 1024
        assert OOO_2WIDE_HALF.instruction_window == 64

    def test_figure9_knobs(self):
        assert CHKPT_20CYCLE.aregion_begin_stall == 20
        assert CHKPT_SINGLE_INFLIGHT.single_inflight_regions


class TestTimingModel:
    def make_uop(self, op=MOp.ADD, dst=1, a=2, b=3):
        return MInstr(op, dst=dst, a=a, b=b)

    def test_width_limits_throughput(self):
        timing = TimingModel(BASELINE_4WIDE)
        for _ in range(400):
            timing.uop(MInstr(MOp.CONST, dst=1, imm=0), None)
        # Independent uops: bounded by the 4-wide front end.
        assert timing.cycles >= 400 / 4 - 2

    def test_dependent_chain_serializes(self):
        timing = TimingModel(BASELINE_4WIDE)
        for _ in range(100):
            timing.uop(MInstr(MOp.ADD, dst=1, a=1, b=1), None)
        assert timing.cycles >= 100  # 1-cycle latency chain

    def test_narrow_machine_slower(self):
        wide = TimingModel(BASELINE_4WIDE)
        narrow = TimingModel(OOO_2WIDE)
        for model in (wide, narrow):
            for i in range(400):
                model.uop(MInstr(MOp.CONST, dst=i % 8, imm=0), None)
        assert narrow.cycles > wide.cycles

    def test_mispredict_penalty(self):
        clean = TimingModel(BASELINE_4WIDE)
        dirty = TimingModel(BASELINE_4WIDE)
        import random

        rng = random.Random(3)
        for model, chaos in ((clean, False), (dirty, True)):
            for i in range(500):
                taken = rng.random() < 0.5 if chaos else True
                model.branch(0x40, taken)
                model.uop(MInstr(MOp.BR, a=1, cond="eq"), None)
        assert dirty.cycles > clean.cycles * 1.5

    def test_region_begin_stall_config(self):
        fast = TimingModel(BASELINE_4WIDE)
        slow = TimingModel(CHKPT_20CYCLE)
        for model in (fast, slow):
            for _ in range(50):
                model.region_begin()
                model.uop(MInstr(MOp.AREGION_BEGIN, imm=0, target=0), None)
                for _ in range(5):
                    model.uop(MInstr(MOp.CONST, dst=1, imm=0), None)
                model.region_end()
                model.uop(MInstr(MOp.AREGION_END), None)
        assert slow.cycles > fast.cycles + 50 * 15

    def test_store_load_dependency(self):
        timing = TimingModel(BASELINE_4WIDE)
        base = TimingModel(BASELINE_4WIDE)
        # Chain through one memory address vs. independent addresses.
        for i in range(100):
            timing.uop(MInstr(MOp.STORELOCK, a=1, imm=1), 0x9000)
            timing.uop(MInstr(MOp.LOADLOCK, dst=2, a=1), 0x9000)
        for i in range(100):
            base.uop(MInstr(MOp.STORELOCK, a=1, imm=1), 0x9000 + i * 64)
            base.uop(MInstr(MOp.LOADLOCK, dst=2, a=1), 0x8000)
        assert timing.cycles > base.cycles

    def test_interpreter_cycles_accrue(self):
        timing = TimingModel(BASELINE_4WIDE)
        timing.add_interpreter_cycles(100)
        from repro.hw import INTERPRETER_CYCLES_PER_BYTECODE

        assert timing.cycles == 100 * INTERPRETER_CYCLES_PER_BYTECODE


class TestCodegenUnits:
    def test_parallel_copy_cycle_broken(self):
        from repro.hw.codegen import _sequentialize
        from repro.ir import Kind, Node

        a, b = Node(Kind.PHI), Node(Kind.PHI)
        # swap: a <- b, b <- a
        ordered = _sequentialize([(a, b), (b, a)])
        # A temp must appear: 3 copies for a swap.
        assert len(ordered) == 3

    def test_coalescing_removes_simple_copy(self):
        from repro.hw.codegen import _coalesce_moves

        instrs = [
            MInstr(MOp.CONST, dst=0, imm=1),
            MInstr(MOp.MOV, dst=1, a=0),
            MInstr(MOp.RET, a=1),
        ]
        intervals = {0: [0, 1], 1: [1, 2]}
        new_instrs, index_map = _coalesce_moves(instrs, intervals, {})
        assert len(new_instrs) == 2
        assert new_instrs[-1].a == 0  # RET reads the representative
