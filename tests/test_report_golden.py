"""Golden-file tests for the plain-text report renderers.

Every renderer in ``harness/report.py`` is compared byte-for-byte against
a checked-in expected output under ``tests/golden/``.  The inputs are
hand-built and fully deterministic — these tests pin the *formatting*
(alignment, column sizing, averages row, omission markers, trailer
columns), not experiment values, so a renderer change that silently
reflows every published table fails here first.

To intentionally change a format, regenerate with::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_report_golden.py

and commit the updated golden files with the renderer change.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness import (
    ConcurrencyCheck,
    ConcurrencyReport,
    render,
    render_all,
    render_concurrency,
    render_timeline,
)
from repro.harness.figures import FigureData
from repro.hw.stats import ExecStats
from repro.obs.tracer import TraceEvent

GOLDEN_DIR = Path(__file__).parent / "golden"


def assert_matches_golden(name: str, actual: str) -> None:
    path = GOLDEN_DIR / name
    if os.environ.get("REGEN_GOLDEN"):
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(actual + "\n")
        pytest.skip(f"regenerated {path}")
    assert path.exists(), (
        f"missing golden file {path}; run with REGEN_GOLDEN=1 to create it"
    )
    expected = path.read_text()[:-1]  # strip the trailing newline we add
    assert actual == expected, (
        f"{name} drifted from the checked-in golden output; if the new "
        f"format is intentional, regenerate with REGEN_GOLDEN=1"
    )


def _figure() -> FigureData:
    """A Figure-7-shaped table: floats, several benches, a note."""
    data = FigureData(
        title="figure 7: speedup over no-atomic baseline",
        columns=["no-atomic", "atomic", "no-atomic+aggr", "atomic+aggr"],
    )
    data.add("fop", [1.0, 1.0724, 1.1318, 1.25])
    data.add("hsqldb", [1.0, 1.11, 1.2, 1.3391])
    data.add("xalan", [1.0, 1.05, 1.155, 1.28])
    data.notes.append("geomean-free: arithmetic average row")
    return data


def _mixed_figure() -> FigureData:
    """Integer cells and a single row (no averages line)."""
    data = FigureData(
        title="table 3: dynamic region characteristics",
        columns=["regions", "median uops", "p90 lines"],
    )
    data.add("jython", [412, 88, 14])
    return data


def _htm_figure() -> FigureData:
    """An HTM-realism-shaped table: variant rows with counter trailers."""
    data = FigureData(
        title="HTM realism: atomic+aggr-inline on hsqldb across "
              "best-effort substrate variants",
        columns=["speedup%", "abort%", "capacity", "lock-acq", "setjmp-dlv"],
    )
    data.add("unbounded", [90.66, 0.0, 0.0, 0.0, 0.0])
    data.add("rock", [90.66, 0.0, 0.0, 0.0, 0.0])
    data.add("cache", [90.66, 0.0, 0.0, 0.0, 0.0])
    data.add("rock-4", [-36.56, 100.0, 64.0, 0.0, 0.0])
    data.add("rock4+lock", [-36.56, 100.0, 64.0, 64.0, 0.0])
    data.add("cache+sjmp", [-34.57, 74.06, 531.0, 0.0, 531.0])
    data.notes.append("realistic bounds hold every region; tightened "
                      "bounds abort to the recovery path")
    return data


def _contention_figure():
    """A contention-scaling-shaped table: scenario/primitive/thread rows
    with throughput, retry, abort, and oracle columns."""
    data = FigureData(
        title="Contention scaling: shared-memory primitives vs. threads",
        columns=["ops/kstep", "steps/op", "retries/op", "aborts", "oracle"],
    )
    data.add("counter/faa/t2", [114.29, 8.75, 0.0, 0.0, 1.0])
    data.add("counter/faa/t64", [114.29, 8.75, 0.0, 0.0, 1.0])
    data.add("counter/cas/t2", [90.91, 11.0, 0.0, 0.0, 1.0])
    data.add("counter/cas/t64", [34.18, 29.26, 0.09, 0.0, 1.0])
    data.add("ticket/lock-sle/t8", [4.42, 226.22, 0.41, 48.0, 1.0])
    data.notes.append(
        "oracle 1.00 = the threaded run matched a serial order "
        "(or every linearizability invariant, for msqueue)")
    return data


def _concurrency_report() -> ConcurrencyReport:
    def stats(switches, real, injected, contended, per_thread):
        s = ExecStats()
        s.context_switches = switches
        s.real_conflict_aborts = real
        s.injected_conflict_aborts = injected
        s.contended_acquisitions = contended
        s.uops_by_thread.update(per_thread)
        return s

    passing = ConcurrencyCheck(
        workload="counter_contention", seed=7, threads=3,
        serializable=True, replay_identical=True,
        heap_matches_interpreter=True, locks_quiescent=True,
        serial_order=(2, 0, 1),
        stats=stats(11, 2, 0, 5, {0: 1200, 1: 980, 2: 1040}),
    )
    failing = ConcurrencyCheck(
        workload="counter_contention", seed=13, threads=2,
        serializable=False, replay_identical=True,
        heap_matches_interpreter=False, locks_quiescent=True,
        serial_order=None,
        stats=stats(4, 0, 1, 2, {0: 310, 1: 295}),
        violation="lost update: final count 17 matches no serial order of {18, 19}",
        trace_path="/tmp/chaos-counter_contention-13.json",
    )
    return ConcurrencyReport(checks=[passing, failing])


def _events() -> list[TraceEvent]:
    return [
        TraceEvent(ts=100, kind="tier_compile", tid=0,
                   args=(("method", "main"), ("regions", 2))),
        TraceEvent(ts=164, kind="region_enter", tid=0,
                   args=(("method", "main"), ("region", 0))),
        TraceEvent(ts=219, kind="region_abort", tid=0,
                   args=(("reason", "assert"), ("region", 0), ("uops", 55))),
        TraceEvent(ts=240, kind="region_enter", tid=1,
                   args=(("method", "main"), ("region", 0))),
        TraceEvent(ts=301, kind="region_commit", tid=1,
                   args=(("lines", 6), ("region", 0), ("uops", 61))),
        TraceEvent(ts=355, kind="ctx_switch", tid=1, args=(("to", 0),)),
    ]


class TestFigureTables:
    def test_aligned_table_with_averages(self):
        assert_matches_golden("figure_table.txt", render(_figure()))

    def test_single_row_no_averages(self):
        assert_matches_golden("figure_single_row.txt",
                              render(_mixed_figure()))

    def test_custom_width(self):
        assert_matches_golden("figure_wide.txt", render(_figure(), width=14))

    def test_htm_variant_table(self):
        """The HTM realism table renders variant rows + counter columns
        through the same aligned-table path as the paper figures."""
        assert_matches_golden("figure_htm_variants.txt",
                              render(_htm_figure()))

    def test_render_all_joins_with_blank_line(self):
        assert_matches_golden(
            "figure_all.txt", render_all([_figure(), _mixed_figure()])
        )


class TestContentionTable:
    def test_contention_scaling_table(self):
        """The contention figure renders scenario/primitive/thread rows
        through the same aligned-table path as the paper figures."""
        assert_matches_golden("figure_contention.txt",
                              render(_contention_figure()))

    def test_single_thread_figure_regenerates_unchanged(self):
        """Invariance contract, deliberately pinning *values*: at
        threads=1 there is no contention, so every cell of the real
        contention figure is a deterministic single-threaded execution.
        Drift here means the atomic-uop semantics or the timing model
        changed underneath the published figures — exactly what this PR
        promises not to do."""
        from repro.harness import figure_contention

        data = figure_contention(
            scenarios=("counter",),
            primitives=("faa", "cas", "llsc", "lock"),
            threads=(1,), iters=4, seed=0,
        )
        assert_matches_golden("figure_contention_t1.txt", render(data))

    def test_contention_is_not_a_paper_figure(self):
        """``all_figures`` composition is pinned: the contention study is
        additive and must not ride into the published figure list."""
        import inspect

        from repro.harness import all_figures

        body = inspect.getsource(all_figures).rsplit('"""', 1)[1]
        assert "figure_contention" not in body


class TestConcurrencyReport:
    def test_mixed_pass_fail_sweep(self):
        assert_matches_golden(
            "concurrency_report.txt", render_concurrency(_concurrency_report())
        )


class TestTimeline:
    def test_full_timeline(self):
        assert_matches_golden("timeline_full.txt", render_timeline(_events()))

    def test_limited_timeline_notes_omissions(self):
        assert_matches_golden(
            "timeline_limited.txt",
            render_timeline(_events(), limit=3, title="last 3 events"),
        )

    def test_empty_timeline(self):
        assert_matches_golden("timeline_empty.txt", render_timeline([]))
