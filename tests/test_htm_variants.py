"""Best-effort HTM realism: capacity bounds, fallback lock, abort delivery.

Three families of variants, all riding the same abort/recover substrate:

- **capacity bounds** — a Rock-style tiny speculative store buffer
  (``htm_mode="store_buffer"``) and an L1-geometry bound
  (``htm_mode="cache_shaped"``) abort with the reason ``"capacity"``;
- **hybrid fallback lock** — regions that exhaust their budget serialize
  on a global lock, subscribed either at ``aregion_begin`` (eager
  conflict) or validated at the commit instant (sandboxed);
- **abort delivery** — RTM-style handler arguments (reason code + retry
  hint in registers) vs. Power/z setjmp-style condition-code re-landing.

Every variant must produce the *same guest outcomes* as the idealized
unbounded substrate; the chaos and serializability oracles run unchanged
against the variant hardware configs.
"""

import os

import pytest

from repro.faults import FaultPlan
from repro.harness import run_chaos, run_concurrency_chaos
from repro.hw import (
    ABORT_REASON_CODES,
    BASELINE_4WIDE,
    CacheConfig,
    HTM_FALLBACK_LOCK_BEGIN,
    HTM_FALLBACK_LOCK_END,
    htm_variant_configs,
)
from repro.lang import ProgramBuilder
from repro.runtime import Interpreter, MonitorStateError
from repro.vm import ATOMIC, TieredVM, VMOptions
from repro.workloads import HSQLDB_THREADED, get_workload

#: tiny L1 for cache-shaped tests: 2 sets x 2 ways of 64-byte lines — any
#: region with three speculative lines in one set overflows.
TINY_L1 = CacheConfig(256, 2, 64, 4)


def chaos_seeds() -> tuple[int, ...]:
    """Scheduler seeds for the threaded fallback-lock sweep; CI shards
    the window via ``CHAOS_SEEDS`` (same contract as test_chaos.py)."""
    spec = os.environ.get("CHAOS_SEEDS", "0,1")
    return tuple(int(part) for part in spec.split(","))


def stride_store_program(stores_per_iter=8, stride_elems=8):
    """Hot loop with a never-taken cold path (so region formation has a
    speculation benefit) whose body stores ``stores_per_iter`` array
    slots, ``stride_elems`` apart (one 64-byte line per store at 8)."""
    pb = ProgramBuilder()
    pb.cls("Acc", fields=["total", "spill"])
    m = pb.method("work", params=("n",))
    n = m.param(0)
    acc = m.new("Acc")
    arr = m.newarr(m.const(stores_per_iter * stride_elems + 1))
    i = m.const(0)
    one = m.const(1)
    zero = m.const(0)
    m.label("head")
    m.safepoint()
    m.br("ge", i, n, "done")
    t = m.getfield(acc, "total")
    m.putfield(acc, "total", m.add(t, i))
    for k in range(stores_per_iter):
        idx = m.add(zero, m.const(k * stride_elems))
        m.astore(arr, idx, i)
    m.br("lt", i, zero, "cold")               # never taken: becomes assert
    m.jmp("next")
    m.label("cold")
    s = m.getfield(acc, "spill")
    m.putfield(acc, "spill", m.add(s, one))
    m.label("next")
    m.add(i, one, dst=i)
    m.jmp("head")
    m.label("done")
    m.ret(m.getfield(acc, "total"))
    return pb.build()


def read_only_region_program(loads_per_iter=8, stride_elems=8):
    """Hot loop whose region body only *reads*: ``loads_per_iter`` array
    loads, one line apart, accumulated in a register — zero buffered
    stores, so any footprint abort proves the bound meters the read set."""
    pb = ProgramBuilder()
    m = pb.method("work", params=("n",))
    n = m.param(0)
    arr = m.newarr(m.const(loads_per_iter * stride_elems + 1))
    i = m.const(0)
    one = m.const(1)
    zero = m.const(0)
    total = m.const(0)
    m.label("head")
    m.safepoint()
    m.br("ge", i, n, "done")
    for k in range(loads_per_iter):
        idx = m.add(zero, m.const(k * stride_elems))
        v = m.aload(arr, idx)
        m.add(total, v, dst=total)
    m.add(total, i, dst=total)
    m.br("lt", i, zero, "cold")               # never taken: becomes assert
    m.jmp("next")
    m.label("cold")
    m.add(total, one, dst=total)
    m.label("next")
    m.add(i, one, dst=i)
    m.jmp("head")
    m.label("done")
    m.ret(total)
    return pb.build()


def make_vm(program, hw, fault_plan=None, dispatch="auto"):
    return TieredVM(
        program, compiler_config=ATOMIC, hw_config=hw,
        options=VMOptions(enable_timing=False, compile_threshold=3,
                          dispatch=dispatch),
        fault_plan=fault_plan,
    )


def run_program(program, hw, n=24, fault_plan=None, dispatch="auto"):
    vm = make_vm(program, hw, fault_plan=fault_plan, dispatch=dispatch)
    vm.warm_up("work", [[200]] * 3)
    vm.compile_hot(min_invocations=1)
    vm.start_measurement()
    result = vm.run("work", [n])
    stats = vm.end_measurement()
    return result, stats, vm


def reference(program, n=24):
    interp = Interpreter(program)
    return interp.invoke(program.resolve_static("work"), [n])


class TestCapacityBounds:
    def test_store_buffer_bound_aborts_with_capacity(self):
        """Rock shape: more buffered stores than the buffer has entries
        aborts "capacity" — and recovery still produces the right answer."""
        program = stride_store_program(stores_per_iter=8, stride_elems=1)
        hw = BASELINE_4WIDE.scaled(
            name="test-rock-4", htm_mode="store_buffer",
            spec_store_buffer_entries=4, region_fallback_threshold=None,
        )
        result, stats, vm = run_program(program, hw)
        assert result == reference(program)
        assert stats.abort_reasons.get("capacity", 0) > 0
        assert stats.capacity_aborts == stats.abort_reasons["capacity"]
        assert vm.machine.abort_reason_register == "capacity"
        assert vm.machine.abort_code_register == ABORT_REASON_CODES["capacity"]
        # Capacity is deterministic for a region's footprint: never
        # hinted as retryable.
        assert vm.machine.abort_retry_hint_register is False

    def test_unbounded_mode_commits_same_program(self):
        """Control: the idealized substrate commits where Rock aborts."""
        program = stride_store_program(stores_per_iter=8, stride_elems=1)
        result, stats, _ = run_program(program, BASELINE_4WIDE)
        assert result == reference(program)
        assert stats.capacity_aborts == 0
        assert stats.abort_reasons.get("capacity", 0) == 0
        assert stats.regions_committed > 0

    def test_cache_shaped_bound_uses_l1_geometry(self):
        """Cache shape: more speculative lines in one L1 set than the
        cache has ways aborts "capacity" (2 sets x 2 ways here; the
        region's 8-line array scan lands 4 lines in each set)."""
        program = stride_store_program(stores_per_iter=8, stride_elems=8)
        hw = BASELINE_4WIDE.scaled(
            name="test-cache-tiny", htm_mode="cache_shaped",
            l1_config=TINY_L1, region_fallback_threshold=None,
        )
        result, stats, _ = run_program(program, hw)
        assert result == reference(program)
        assert stats.abort_reasons.get("capacity", 0) > 0
        # Control: the same tiny L1 *without* the cache-shaped mode never
        # fires capacity — the idealized substrate only meters the global
        # line limit, which this footprint is far below.
        unbounded = BASELINE_4WIDE.scaled(
            name="test-cache-tiny-off", l1_config=TINY_L1,
        )
        result2, stats2, _ = run_program(program, unbounded)
        assert result2 == result
        assert stats2.abort_reasons.get("capacity", 0) == 0
        assert stats2.regions_committed > 0

    def test_reads_only_region_hits_line_limit(self):
        """``region_line_limit`` covers the union of both line sets: a
        region with *zero buffered stores* overflows exactly like a
        store-heavy one once its read set exceeds the bound."""
        program = read_only_region_program(loads_per_iter=8, stride_elems=8)
        hw = BASELINE_4WIDE.scaled(
            name="test-lines-4", region_line_limit=4,
            region_fallback_threshold=None,
        )
        result, stats, vm = run_program(program, hw)
        assert result == reference(program)
        assert stats.abort_reasons.get("overflow", 0) > 0
        assert vm.machine.abort_reason_register == "overflow"
        # every abort in this run is a footprint overflow driven purely
        # by tracked loads.
        assert stats.abort_reasons["overflow"] == stats.regions_aborted


class TestAbortDelivery:
    def test_handler_delivery_reports_code_and_hint(self):
        """RTM shape: after an abort the handler sees the numeric reason
        code and the retry hint in architectural registers."""
        program = stride_store_program()
        plan = FaultPlan.single("assert", region_index=2, offset=2)
        result, stats, vm = run_program(program, BASELINE_4WIDE,
                                        fault_plan=plan)
        assert result == reference(program)
        assert stats.abort_reasons.get("assert", 0) == 1
        assert vm.machine.abort_code_register == ABORT_REASON_CODES["assert"]
        assert vm.machine.abort_retry_hint_register is False

        plan = FaultPlan.single("conflict", region_index=2, offset=2)
        result, stats, vm = run_program(program, BASELINE_4WIDE,
                                        fault_plan=plan)
        assert result == reference(program)
        assert vm.machine.abort_code_register == ABORT_REASON_CODES["conflict"]
        assert vm.machine.abort_retry_hint_register is True

    def test_setjmp_delivery_sets_condition_code(self):
        """Power/z shape: every software-visible abort re-lands on the
        ``aregion_begin`` with the condition code pending — one delivery
        per visible abort, transparent conflict retries excluded."""
        program = stride_store_program()
        hw = BASELINE_4WIDE.scaled(
            name="test-setjmp", abort_delivery="setjmp",
        )
        plan = FaultPlan.storm("assert")
        result, stats, _ = run_program(program, hw, fault_plan=plan)
        assert result == reference(program)
        assert stats.setjmp_deliveries > 0
        assert stats.setjmp_deliveries == (
            stats.regions_aborted - stats.conflict_retries
        )

    def test_setjmp_outcomes_match_handler(self):
        """Delivery is a control-transfer shape, not a semantics change:
        both variants produce identical guest results and abort mixes."""
        program = stride_store_program()
        plan = FaultPlan.seeded(11, interrupt_gap=None)
        handler_result, handler_stats, _ = run_program(
            program, BASELINE_4WIDE, fault_plan=plan)
        setjmp_hw = BASELINE_4WIDE.scaled(
            name="test-setjmp-diff", abort_delivery="setjmp",
        )
        setjmp_result, setjmp_stats, _ = run_program(
            program, setjmp_hw, fault_plan=plan)
        assert setjmp_result == handler_result == reference(program)
        assert setjmp_stats.abort_reasons == handler_stats.abort_reasons
        assert setjmp_stats.regions_committed == handler_stats.regions_committed
        assert handler_stats.setjmp_deliveries == 0

    def test_setjmp_dispatch_equivalence(self):
        """The pre-decoded fast path mirrors setjmp delivery exactly."""
        program = stride_store_program()
        hw = BASELINE_4WIDE.scaled(
            name="test-setjmp-disp", abort_delivery="setjmp",
        )
        plan = FaultPlan.storm("assert")
        fast = run_program(program, hw, fault_plan=plan,
                           dispatch="predecoded")
        slow = run_program(program, hw, fault_plan=plan,
                           dispatch="interpretive")
        assert fast[0] == slow[0]
        assert fast[1].summary() == slow[1].summary()


class TestFallbackLock:
    def _forced_owner_vm(self, mode):
        program = stride_store_program()
        hw = BASELINE_4WIDE.scaled(
            name=f"test-lock-{mode}", fallback_lock_mode=mode,
        )
        vm = make_vm(program, hw)
        vm.warm_up("work", [[200]] * 3)
        vm.compile_hot(min_invocations=1)
        vm.start_measurement()
        # A foreign thread "holds" the fallback lock; single-threaded, no
        # scheduler can ever release it.
        vm.machine.fallback_lock.force_owner(7)
        return vm

    def test_begin_subscriber_aborts_while_lock_taken(self):
        """Begin-time subscription: the region conflicts immediately on a
        held lock, burns its retry budget, and the escalation fails fast
        with no scheduler to wait on (mirroring contended monitors)."""
        vm = self._forced_owner_vm("begin")
        with pytest.raises(MonitorStateError, match="fallback lock"):
            vm.run("work", [24])
        stats = vm.machine.stats
        budget = vm.machine.config.region_retry_budget
        assert stats.regions_committed == 0
        # transparent retries + the one visible abort that escalated.
        assert stats.abort_reasons.get("conflict", 0) == budget + 1
        assert stats.conflict_retries == budget
        assert stats.real_conflict_aborts == budget + 1

    def test_end_subscriber_validates_at_commit_instant(self):
        """Sandboxed subscription: the region runs blind and only fails
        its lock validation at ``aregion_end`` — every attempt executes
        the whole body before aborting, unlike the begin-time probe."""
        begin_vm = self._forced_owner_vm("begin")
        with pytest.raises(MonitorStateError, match="fallback lock"):
            begin_vm.run("work", [24])
        end_vm = self._forced_owner_vm("end")
        with pytest.raises(MonitorStateError, match="fallback lock"):
            end_vm.run("work", [24])
        stats = end_vm.machine.stats
        budget = end_vm.machine.config.region_retry_budget
        assert stats.regions_committed == 0
        assert stats.abort_reasons.get("conflict", 0) == budget + 1
        # Same abort ladder, strictly more speculative work: each end-mode
        # attempt ran to the commit point before noticing the lock.
        assert end_vm.machine.uops_executed > begin_vm.machine.uops_executed

    def test_begin_mode_adds_exactly_the_lock_line(self):
        """Eager subscription costs one read-set line per region; the
        sandboxed mode tracks nothing until the commit instant."""
        program = stride_store_program()
        begin_hw = BASELINE_4WIDE.scaled(
            name="test-lock-lines-b", fallback_lock_mode="begin")
        end_hw = BASELINE_4WIDE.scaled(
            name="test-lock-lines-e", fallback_lock_mode="end")
        _, begin_stats, _ = run_program(program, begin_hw)
        _, end_stats, _ = run_program(program, end_hw)
        assert begin_stats.regions_committed == end_stats.regions_committed
        assert begin_stats.region_lines == [
            lines + 1 for lines in end_stats.region_lines
        ]

    def test_escalation_serializes_and_releases(self):
        """End to end, lock free: a capacity storm escalates every region
        to the lock; the recovery passes serialize, the answer is right,
        and the lock is free again when the run ends."""
        program = stride_store_program()
        hw = BASELINE_4WIDE.scaled(
            name="test-lock-escalate", fallback_lock_mode="begin",
        )
        plan = FaultPlan.storm("capacity")
        result, stats, vm = run_program(program, hw, fault_plan=plan)
        assert result == reference(program)
        assert stats.capacity_aborts > 0
        assert stats.fallback_lock_acquisitions > 0
        assert vm.machine.fallback_lock.is_free()

    @pytest.mark.parametrize("hw", [HTM_FALLBACK_LOCK_BEGIN,
                                    HTM_FALLBACK_LOCK_END],
                             ids=lambda hw: hw.name)
    def test_fallback_modes_stay_serializable(self, hw):
        """The serializability oracle passes unchanged on the hybrid
        fallback-lock machines under seeded thread schedules."""
        report = run_concurrency_chaos(
            HSQLDB_THREADED, ATOMIC, seeds=chaos_seeds(), hw_config=hw,
        )
        assert report.checks
        report.raise_on_failure()


class TestVariantChaosMatrix:
    """The acceptance sweep: every best-effort shape through the 3-way
    chaos oracle with capacity faults armed (5 variants x 4 seeds = 20
    seeded runs)."""

    VARIANTS = [hw for hw in htm_variant_configs()
                if hw.name != BASELINE_4WIDE.name]

    @pytest.mark.parametrize("hw", VARIANTS, ids=lambda hw: hw.name)
    def test_variant_survives_seeded_chaos(self, hw):
        plan_factory = lambda seed: FaultPlan.seeded(  # noqa: E731
            seed, capacity_rate=0.08)
        report = run_chaos(
            get_workload("hsqldb"), ATOMIC, seeds=(0, 1, 2, 3),
            hw_config=hw, plan_factory=plan_factory, max_samples=1,
        )
        assert len(report.checks) == 4
        report.raise_on_failure()
        assert report.total_faults_scheduled > 0

    def test_matrix_fires_capacity_aborts(self):
        """The sweep genuinely exercises the new reason: under the Rock
        shape the seeded capacity faults produce "capacity" aborts that
        are visible in ExecStats and the metrics projection."""
        from repro.obs import Metrics

        plan_factory = lambda seed: FaultPlan.seeded(  # noqa: E731
            seed, capacity_rate=0.3)
        hw = next(hw for hw in self.VARIANTS
                  if hw.htm_mode == "store_buffer")
        report = run_chaos(
            get_workload("hsqldb"), ATOMIC, seeds=(0, 1, 2, 3),
            hw_config=hw, plan_factory=plan_factory, max_samples=1,
        )
        report.raise_on_failure()
        total = sum(check.stats.capacity_aborts for check in report.checks)
        assert total > 0
        for check in report.checks:
            metrics = Metrics.from_stats(check.stats)
            assert metrics.counter("capacity_aborts") == (
                check.stats.capacity_aborts
            )
            assert metrics.summary() == check.stats.summary()
