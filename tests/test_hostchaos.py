"""Host-chaos differential checks: the supervisor under seeded host faults.

The headline invariant (ISSUE 7 / DESIGN.md §11): under every seeded
host-fault scenario — worker kill, hang past the cell budget, transient
exception, corrupted disk-cache entry — and under kill-and-resume, a
supervised sweep's merged results are **byte-identical** to a clean
serial run, and quarantine fires only after the configured retry budget.

``HOSTCHAOS_SEEDS`` (comma-separated ints) widens the seed matrix in CI;
on a red run the failure manifest is dumped to ``HOSTCHAOS_MANIFEST_DIR``
(default ``.``) for artifact upload.
"""

from __future__ import annotations

import json
import os
import pickle
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.harness import diskcache
from repro.harness.hostchaos import (
    ChaoticCell,
    HostFaultPlan,
    TransientHostFault,
    _smoke_value,
    claim_attempt,
    corrupt_cache_entries,
    run_host_chaos,
    write_manifest,
)
from repro.harness.supervisor import Journal, SupervisorConfig, run_supervised
from repro.obs import Tracer


def _seeds() -> list[int]:
    raw = os.environ.get("HOSTCHAOS_SEEDS", "0,1,2")
    return [int(token) for token in raw.split(",") if token.strip()]


def _manifest_on_failure(outcome, name: str) -> None:
    """Dump the failure manifest where CI uploads artifacts from."""
    if outcome.ok:
        return
    directory = Path(os.environ.get("HOSTCHAOS_MANIFEST_DIR", "."))
    write_manifest(outcome, directory / f"{name}.manifest.json")


def _work(spec) -> int:
    """A pure, cheap, deterministic cell (the serial reference is exact)."""
    index, salt = spec
    acc = salt
    for k in range(1, 1500):
        acc = (acc * 33 + index * k) % 1000003
    return acc


class TestSeededFaultMatrix:
    """Kill + hang + transient-exception storms, per seed."""

    @pytest.mark.parametrize("seed", _seeds())
    def test_supervised_sweep_byte_identical_to_serial(self, seed, tmp_path):
        items = [(index, seed) for index in range(8)]
        plan = HostFaultPlan(
            seed=seed, kill_rate=0.12, hang_rate=0.15, error_rate=0.25,
            max_faults_per_cell=2, hang_s=3.0,
        )
        config = SupervisorConfig(
            workers=2, cell_timeout_s=0.6, max_attempts=8,
            backoff_base_s=0.001, backoff_max_s=0.01,
        )
        tracer = Tracer()
        outcome = run_host_chaos(
            items, _work, plan, config, state_dir=tmp_path / "attempts",
            tracer=tracer,
        )
        _manifest_on_failure(outcome, f"matrix-seed{seed}")
        # quarantine must only fire after the budget; the plan faults at
        # most max_faults_per_cell=2 < max_attempts=8 leading attempts,
        # so no cell may be quarantined here.
        assert outcome.ok, outcome.manifest()
        expected = [_work(item) for item in items]
        assert pickle.dumps(outcome.results) == pickle.dumps(expected)
        # lifecycle events carry deterministic sequence timestamps
        assert [e.ts for e in tracer.events] == list(
            range(1, len(tracer.events) + 1))

    @pytest.mark.parametrize("seed", _seeds()[:1])
    def test_serial_supervised_matches_too(self, seed, tmp_path):
        """workers=1: kills/hangs are suppressed in-process (by design),
        transient exceptions still fire and retry."""
        items = [(index, seed) for index in range(6)]
        plan = HostFaultPlan(seed=seed, error_rate=0.6,
                             max_faults_per_cell=2)
        outcome = run_host_chaos(
            items, _work, plan,
            SupervisorConfig(workers=1, max_attempts=4,
                             backoff_base_s=0.0005),
            state_dir=tmp_path / "attempts",
        )
        _manifest_on_failure(outcome, f"serial-seed{seed}")
        assert outcome.ok
        assert outcome.results == [_work(item) for item in items]

    def test_quarantine_fires_exactly_at_budget(self, tmp_path):
        """A poisoned cell (faults forever) quarantines after exactly
        ``max_attempts`` tries; healthy cells still complete."""
        items = [(index, 0) for index in range(4)]
        plan = HostFaultPlan(seed=1, error_rate=1.0,
                             max_faults_per_cell=10 ** 9)
        outcome = run_host_chaos(
            items, _work, plan,
            SupervisorConfig(workers=1, max_attempts=3,
                             backoff_base_s=0.0005),
            state_dir=tmp_path / "attempts",
        )
        assert not outcome.ok
        assert outcome.quarantined == len(items)
        assert all(f.attempts == 3 for f in outcome.failures)
        assert all(f.kind == "exception" for f in outcome.failures)
        assert "TransientHostFault" in outcome.failures[0].error

    def test_plan_is_deterministic(self):
        plan = HostFaultPlan(seed=3, kill_rate=0.2, hang_rate=0.2,
                             error_rate=0.2)
        schedule = [plan.fault_for(f"cell{i}", a)
                    for i in range(20) for a in range(3)]
        replay = [plan.fault_for(f"cell{i}", a)
                  for i in range(20) for a in range(3)]
        assert schedule == replay
        assert any(fault is not None for fault in schedule)
        # the convergence guarantee: attempts past the fault budget are
        # always clean
        assert all(plan.fault_for(f"cell{i}", 2) is None for i in range(20))

    def test_chaotic_cell_attempt_counter_is_cross_invocation(self, tmp_path):
        assert claim_attempt(tmp_path, "k") == 0
        assert claim_attempt(tmp_path, "k") == 1
        assert claim_attempt(tmp_path, "other") == 0
        assert claim_attempt(tmp_path, "k") == 2

    def test_error_fault_raises_in_process(self, tmp_path):
        plan = HostFaultPlan(seed=0, error_rate=1.0)
        cell = ChaoticCell(_work, plan, tmp_path)
        with pytest.raises(TransientHostFault):
            cell((0, 0))


def _cached_work(spec) -> int:
    """A cell that round-trips through the disk cache (workers inherit
    ``REPRO_DISK_CACHE_DIR`` via fork)."""
    key = ("hostchaos-cached", spec)
    hit = diskcache.load(key)
    if hit is not None:
        return hit
    result = _work(spec)
    diskcache.store(key, result)
    return result


class TestCacheCorruptionChaos:
    def test_corrupted_entries_quarantined_and_recomputed(
            self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_DISK_CACHE_DIR", str(tmp_path / "cache"))
        items = [(index, 7) for index in range(6)]
        expected = [_work(item) for item in items]

        # populate the cache, then corrupt a seeded subset of entries
        warm = run_supervised(items, _cached_work,
                              config=SupervisorConfig(workers=1))
        assert warm.results == expected
        corrupted = corrupt_cache_entries(tmp_path / "cache", seed=0,
                                          rate=0.7)
        assert corrupted, "seeded corruption must hit at least one entry"

        before = diskcache.quarantined_entries
        rerun = run_supervised(items, _cached_work,
                               config=SupervisorConfig(workers=1))
        assert rerun.ok
        # byte-identical despite serving from a half-corrupt cache
        assert pickle.dumps(rerun.results) == pickle.dumps(expected)
        assert diskcache.quarantined_entries - before == len(corrupted)
        # corrupt bytes were moved aside (the entry itself is re-stored
        # fresh by the recompute, so the .pickle path exists again)
        for path in corrupted:
            assert path.with_suffix(".corrupt").exists()


class TestKillAndResume:
    """SIGKILL a journaled sweep mid-flight; the resumed run must splice
    journaled cells in and still match the serial golden."""

    def _spawn(self, journal: Path, manifest: Path | None = None,
               expect_resume: bool = False) -> subprocess.Popen:
        argv = [
            sys.executable, "-m", "repro.harness.hostchaos",
            "--journal", str(journal), "--cells", "10",
            "--cell-ms", "250", "--workers", "2",
        ]
        if expect_resume:
            argv.append("--expect-resume")
        if manifest is not None:
            argv += ["--manifest", str(manifest)]
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
        return subprocess.Popen(argv, env=env, stdout=subprocess.PIPE,
                                stderr=subprocess.DEVNULL, text=True)

    def test_sigkill_midflight_then_resume(self, tmp_path):
        journal = tmp_path / "sweep.journal"
        first = self._spawn(journal)
        try:
            # wait until some (but not all) cells are journaled, then kill
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                done = len(Journal(journal).load())
                if done >= 2:
                    break
                if first.poll() is not None:
                    break
                time.sleep(0.05)
            interrupted = first.poll() is None
            if interrupted:
                first.send_signal(signal.SIGKILL)
            first.wait(timeout=30)
        finally:
            if first.poll() is None:
                first.kill()

        journaled = Journal(journal).load()
        assert journaled, "no cell completed before the kill"
        resume = self._spawn(journal, manifest=tmp_path / "resume.json",
                             expect_resume=interrupted)
        stdout, _ = resume.communicate(timeout=120)
        assert resume.returncode == 0, stdout
        payload = json.loads(stdout.strip().splitlines()[-1])
        assert payload["identical_to_serial"] is True
        assert payload["quarantined"] == 0
        if interrupted:
            assert payload["resumed"] >= len(journaled) > 0
        manifest = json.loads((tmp_path / "resume.json").read_text())
        assert manifest["quarantined"] == 0

    def test_smoke_values_match_module_reference(self):
        """The CLI's serial reference is the same pure function the
        worker computes — pin one value so both sides stay honest."""
        assert _smoke_value(0) == _smoke_value(0)
        assert _smoke_value(1) != _smoke_value(2)
