"""Unit coverage for the data-cache model (hw/cache.py).

The cache was previously exercised only through whole-workload timing
runs; these tests pin the edge cases directly: set-index aliasing across
the spill-frame address region, deterministic true-LRU eviction order,
the two-level latency composition, and the line math the atomic-region
read/write sets share with the hierarchy at region boundaries.
"""

import pytest

from repro.hw import BASELINE_4WIDE
from repro.hw.cache import CacheLevel, MemoryHierarchy
from repro.hw.config import CacheConfig, HardwareConfig
from repro.hw.machine import CODE_BASE, SPILL_BASE

#: tiny direct-mapped-ish level: 4 sets x 2 ways of 64-byte lines.
TINY = CacheConfig(size_bytes=512, ways=2, line_bytes=64, hit_cycles=4)


class TestLineMath:
    def test_line_shift_matches_line_bytes(self):
        assert CacheLevel(TINY).line_shift == 6
        assert CacheLevel(CacheConfig(1024, 2, 128, 4)).line_shift == 7

    def test_addresses_within_one_line_hit(self):
        level = CacheLevel(TINY)
        assert not level.access(0x1000)       # cold miss
        for offset in (0, 1, 8, 63):          # every byte of the line
            assert level.access(0x1000 + offset)
        assert level.hits == 4
        assert level.misses == 1

    def test_line_boundary_is_a_new_line(self):
        level = CacheLevel(TINY)
        level.access(0x1000 + 63)             # last byte of line
        assert not level.access(0x1000 + 64)  # first byte of the next

    def test_hierarchy_line_of_matches_machine_line_shift(self):
        """The machine's region read/write sets (addr >> line_shift) and
        the hierarchy must agree on what a line is, or footprint-overflow
        aborts would be checked against the wrong granularity."""
        hierarchy = MemoryHierarchy(BASELINE_4WIDE)
        shift = BASELINE_4WIDE.line_shift
        for address in (0, 63, 64, CODE_BASE, SPILL_BASE, SPILL_BASE + 8):
            assert hierarchy.line_of(address) == address >> shift


class TestSpillFrameAliasing:
    """Spill frames live at SPILL_BASE + n*0x10000; 0x10000 is a multiple
    of every set count here, so consecutive frames' slot-0 addresses alias
    to the same set and compete for its ways."""

    def test_spill_frames_alias_to_one_set(self):
        level = CacheLevel(TINY)
        frames = [SPILL_BASE + n * 0x10000 for n in range(4)]
        lines = [a >> level.line_shift for a in frames]
        sets = {line & level.set_mask for line in lines}
        assert len(set(lines)) == 4           # distinct lines...
        assert len(sets) == 1                 # ...one set: true aliasing

    def test_aliased_frames_evict_each_other(self):
        level = CacheLevel(TINY)
        a, b, c = (SPILL_BASE + n * 0x10000 for n in range(3))
        level.access(a)
        level.access(b)                       # set now holds [a, b]
        assert not level.access(c)            # third alias: a evicted
        assert not level.contains(a)
        assert level.contains(b)
        assert level.contains(c)

    def test_code_and_spill_regions_do_not_collide_on_lines(self):
        level = CacheLevel(TINY)
        assert (CODE_BASE >> level.line_shift) != (
            SPILL_BASE >> level.line_shift)


class TestEvictionOrderDeterminism:
    def test_true_lru_evicts_least_recent(self):
        level = CacheLevel(TINY)
        set_stride = (level.set_mask + 1) << level.line_shift
        a, b = 0x0, set_stride * 4            # same set, different lines
        level.access(a)
        level.access(b)
        level.access(a)                       # a is now most recent
        level.access(set_stride * 8)          # evicts b, not a
        assert level.contains(a)
        assert not level.contains(b)

    def test_identical_access_sequences_identical_state(self):
        sequence = [0x0, 0x1000, 0x40, SPILL_BASE, 0x1000, SPILL_BASE + 64,
                    0x0, 0x2000, SPILL_BASE, 0x1040]
        one, two = CacheLevel(TINY), CacheLevel(TINY)
        for address in sequence:
            one.access(address)
            two.access(address)
        assert one.sets == two.sets
        assert (one.hits, one.misses) == (two.hits, two.misses)

    def test_invalidate_removes_only_the_line(self):
        level = CacheLevel(TINY)
        set_stride = (level.set_mask + 1) << level.line_shift
        a, b = 0x0, set_stride
        level.access(a)
        level.access(b)
        level.invalidate(a)
        assert not level.contains(a)
        assert level.contains(b)
        level.invalidate(a)                   # idempotent on absent lines
        assert level.contains(b)


class TestHierarchyLatencies:
    def test_latency_composition(self):
        hw = HardwareConfig()
        hierarchy = MemoryHierarchy(hw)
        l1 = hw.l1_config.hit_cycles
        l2 = hw.l2_config.hit_cycles
        mem = hw.memory_latency_cycles
        assert hierarchy.access(0x5000) == l1 + l2 + mem  # cold: memory
        assert hierarchy.access(0x5000) == l1             # hot in L1
        hierarchy.l1.invalidate(0x5000)
        assert hierarchy.access(0x5000) == l1 + l2        # L2 holds it

    def test_miss_rate_accounting(self):
        hierarchy = MemoryHierarchy(HardwareConfig())
        assert hierarchy.l1_miss_rate == 0.0              # no accesses yet
        hierarchy.access(0x0)
        hierarchy.access(0x0)
        hierarchy.access(0x0)
        assert hierarchy.accesses == 3
        assert hierarchy.l1_miss_rate == pytest.approx(1 / 3)


def _region_loop_program(stores_per_iter: int, stride_elems: int):
    """A hot loop with a never-taken cold path (so region formation has a
    speculation benefit) whose body stores to ``stores_per_iter`` addresses
    ``stride_elems`` elements apart — spreading one iteration's write set
    across that many cache lines."""
    from repro.lang import ProgramBuilder

    pb = ProgramBuilder()
    pb.cls("Acc", fields=["total", "spill"])
    m = pb.method("work", params=("n",))
    n = m.param(0)
    acc = m.new("Acc")
    arr = m.newarr(m.const(stores_per_iter * stride_elems + 1))
    i = m.const(0)
    one = m.const(1)
    zero = m.const(0)
    m.label("head")
    m.safepoint()
    m.br("ge", i, n, "done")
    t = m.getfield(acc, "total")
    m.putfield(acc, "total", m.add(t, i))
    for k in range(stores_per_iter):
        idx = m.add(zero, m.const(k * stride_elems))
        m.astore(arr, idx, i)
    m.br("lt", i, zero, "cold")               # never taken: becomes assert
    m.jmp("next")
    m.label("cold")
    s = m.getfield(acc, "spill")
    m.putfield(acc, "spill", m.add(s, one))
    m.label("next")
    m.add(i, one, dst=i)
    m.jmp("head")
    m.label("done")
    m.ret(m.getfield(acc, "total"))
    return pb.build()


def _run_region_loop(program, hw, n):
    from repro.vm import ATOMIC, TieredVM, VMOptions

    vm = TieredVM(
        program, compiler_config=ATOMIC, hw_config=hw,
        options=VMOptions(enable_timing=False, compile_threshold=3),
    )
    vm.warm_up("work", [[200]] * 3)
    vm.compile_hot(min_invocations=1)
    vm.start_measurement()
    result = vm.run("work", [n])
    stats = vm.end_measurement()
    return result, stats


class TestRegionBoundaryLineSets:
    """The read/write sets a region tracks are exactly the lines the
    hierarchy would see: one entry per touched line, split at the 64-byte
    boundary — and the footprint-overflow bound meters lines, not stores."""

    def test_region_write_set_uses_l1_line_granularity(self):
        # 4 stores per iteration, all within one 64-byte line (8-byte
        # elements, stride 1): the write set must count one line for all
        # four, not one per store.
        program = _region_loop_program(stores_per_iter=4, stride_elems=1)
        result, stats = _run_region_loop(program, BASELINE_4WIDE, n=24)
        assert result == sum(range(24))
        assert stats.regions_committed > 0
        assert stats.region_lines, "committed regions must record lines"
        # footprint: the one shared array line + object/spill lines — far
        # fewer than the ~4 stores/iteration would suggest at byte
        # granularity.
        assert max(stats.region_lines) <= 8

    def test_region_lines_grow_with_line_spread(self):
        """Same store count, spread across one line per store: the
        recorded footprint must grow by roughly the spread, pinning
        ``addr >> line_shift`` (not address or byte counting) as the
        set granularity."""
        dense = _region_loop_program(stores_per_iter=6, stride_elems=1)
        sparse = _region_loop_program(stores_per_iter=6, stride_elems=8)
        _, dense_stats = _run_region_loop(dense, BASELINE_4WIDE, n=24)
        _, sparse_stats = _run_region_loop(sparse, BASELINE_4WIDE, n=24)
        assert dense_stats.regions_committed > 0
        assert sparse_stats.regions_committed > 0
        # 6 stores x 8-element stride = 6 distinct 64-byte lines vs 1.
        assert max(sparse_stats.region_lines) >= max(
            dense_stats.region_lines) + 4

    def test_footprint_overflow_at_region_boundary(self):
        """A region touching more distinct lines than region_line_limit
        aborts with reason "overflow" at retirement and resumes on the
        non-speculative path — with an unchanged guest result."""
        program = _region_loop_program(stores_per_iter=24, stride_elems=8)
        hw = BASELINE_4WIDE.scaled(region_line_limit=16,
                                   region_fallback_threshold=None)
        result, stats = _run_region_loop(program, hw, n=24)
        assert result == sum(range(24))
        assert stats.regions_entered > 0
        assert stats.abort_reasons.get("overflow", 0) > 0
        # every abort in this run is a footprint overflow, and the
        # wide-footprint loop regions all abort (any committed regions are
        # line-free stragglers like the method epilogue).
        assert stats.abort_reasons.get("overflow", 0) == stats.regions_aborted
        assert stats.regions_aborted > stats.regions_committed
        assert all(lines == 0 for lines in stats.region_lines)
        # Control: the same program under the baseline 448-line limit
        # commits every region.
        control, control_stats = _run_region_loop(
            _region_loop_program(stores_per_iter=24, stride_elems=8),
            BASELINE_4WIDE, n=24,
        )
        assert control == result
        assert control_stats.regions_committed > 0
        assert control_stats.abort_reasons.get("overflow", 0) == 0
