"""Tests for the tier-0 interpreter: semantics, traps, and profiling."""

import pytest

from repro.lang import MethodBuilder, ProgramBuilder, validate_program
from repro.runtime import (
    BoundsError,
    GuestArithmeticError,
    Interpreter,
    NullPointerError,
    VMError,
    guest_div,
    guest_mod,
    wrap_int,
)


def build_and_run(pb, entry="main", args=(), fuel=2_000_000):
    program = pb.build()
    validate_program(program)
    interp = Interpreter(program, fuel=fuel)
    return interp.run(entry, list(args)), interp


def countdown_program(n):
    """main(): loop i from n down to 0, accumulate sum."""
    pb = ProgramBuilder()
    m = pb.method("main", params=("n",))
    n_reg = m.param(0)
    total = m.const(0)
    i = m.mov(n_reg)
    zero = m.const(0)
    one = m.const(1)
    m.label("head")
    m.safepoint()
    m.br("le", i, zero, "done")
    m.add(total, i, dst=total)
    m.sub(i, one, dst=i)
    m.jmp("head")
    m.label("done")
    m.ret(total)
    return pb


class TestArithmetic:
    def test_loop_sum(self):
        result, _ = build_and_run(countdown_program(10), args=(10,))
        assert result == 55

    def test_wrap_int_overflow(self):
        assert wrap_int(2**63) == -(2**63)
        assert wrap_int(-(2**63) - 1) == 2**63 - 1
        assert wrap_int(5) == 5

    def test_guest_div_truncates_toward_zero(self):
        assert guest_div(7, 2) == 3
        assert guest_div(-7, 2) == -3
        assert guest_div(7, -2) == -3
        assert guest_div(-7, -2) == 3

    def test_guest_mod_sign_follows_dividend(self):
        assert guest_mod(7, 3) == 1
        assert guest_mod(-7, 3) == -1
        assert guest_mod(7, -3) == 1

    def test_div_by_zero_traps(self):
        with pytest.raises(GuestArithmeticError):
            guest_div(1, 0)
        with pytest.raises(GuestArithmeticError):
            guest_mod(1, 0)

    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("and_", 0b1100, 0b1010, 0b1000),
            ("or_", 0b1100, 0b1010, 0b1110),
            ("xor", 0b1100, 0b1010, 0b0110),
            ("shl", 3, 2, 12),
            ("shr", -8, 1, -4),
        ],
    )
    def test_bitwise(self, op, a, b, expected):
        pb = ProgramBuilder()
        m = pb.method("main")
        ra = m.const(a)
        rb = m.const(b)
        out = getattr(m, op)(ra, rb)
        m.ret(out)
        result, _ = build_and_run(pb)
        assert result == expected


class TestHeapSemantics:
    def test_object_fields_roundtrip(self):
        pb = ProgramBuilder()
        pb.cls("Point", fields=["x", "y"])
        m = pb.method("main")
        p = m.new("Point")
        x = m.const(3)
        m.putfield(p, "x", x)
        y = m.const(4)
        m.putfield(p, "y", y)
        gx = m.getfield(p, "x")
        gy = m.getfield(p, "y")
        out = m.add(gx, gy)
        m.ret(out)
        result, _ = build_and_run(pb)
        assert result == 7

    def test_array_roundtrip_and_length(self):
        pb = ProgramBuilder()
        m = pb.method("main")
        n = m.const(5)
        arr = m.newarr(n)
        idx = m.const(2)
        val = m.const(42)
        m.astore(arr, idx, val)
        got = m.aload(arr, idx)
        length = m.alen(arr)
        out = m.add(got, length)
        m.ret(out)
        result, _ = build_and_run(pb)
        assert result == 47

    def test_null_getfield_traps(self):
        pb = ProgramBuilder()
        pb.cls("C", fields=["f"])
        m = pb.method("main")
        nul = m.const_null()
        m.getfield(nul, "f")
        m.ret()
        with pytest.raises(NullPointerError):
            build_and_run(pb)

    def test_bounds_trap(self):
        pb = ProgramBuilder()
        m = pb.method("main")
        n = m.const(3)
        arr = m.newarr(n)
        bad = m.const(3)
        m.aload(arr, bad)
        m.ret()
        with pytest.raises(BoundsError):
            build_and_run(pb)

    def test_negative_index_traps(self):
        pb = ProgramBuilder()
        m = pb.method("main")
        n = m.const(3)
        arr = m.newarr(n)
        bad = m.const(-1)
        m.aload(arr, bad)
        m.ret()
        with pytest.raises(BoundsError):
            build_and_run(pb)

    def test_fields_default_to_zero(self):
        pb = ProgramBuilder()
        pb.cls("C", fields=["f"])
        m = pb.method("main")
        obj = m.new("C")
        v = m.getfield(obj, "f")
        m.ret(v)
        result, _ = build_and_run(pb)
        assert result == 0


class TestCalls:
    def test_static_call(self):
        pb = ProgramBuilder()
        f = pb.method("double", params=("x",))
        two = f.const(2)
        out = f.mul(f.param(0), two)
        f.ret(out)
        m = pb.method("main")
        arg = m.const(21)
        r = m.call("double", (arg,))
        m.ret(r)
        result, _ = build_and_run(pb)
        assert result == 42

    def test_virtual_dispatch_picks_override(self):
        pb = ProgramBuilder()
        pb.cls("Base")
        pb.cls("Derived", super_name="Base")
        bf = pb.method("kind", params=("this",), owner="Base")
        k = bf.const(1)
        bf.ret(k)
        df = pb.method("kind", params=("this",), owner="Derived")
        k2 = df.const(2)
        df.ret(k2)
        m = pb.method("main")
        obj = m.new("Derived")
        r = m.vcall(obj, "kind")
        m.ret(r)
        result, _ = build_and_run(pb)
        assert result == 2

    def test_recursion(self):
        pb = ProgramBuilder()
        f = pb.method("fib", params=("n",))
        n = f.param(0)
        two = f.const(2)
        f.br("lt", n, two, "base")
        one = f.const(1)
        nm1 = f.sub(n, one)
        nm2 = f.sub(n, two)
        a = f.call("fib", (nm1,))
        b = f.call("fib", (nm2,))
        out = f.add(a, b)
        f.ret(out)
        f.label("base")
        f.ret(n)
        m = pb.method("main")
        arg = m.const(10)
        r = m.call("fib", (arg,))
        m.ret(r)
        result, _ = build_and_run(pb)
        assert result == 55


class TestProfiling:
    def test_branch_bias_recorded(self):
        result, interp = build_and_run(countdown_program(100), args=(100,))
        prof = interp.profiles.method("main")
        assert prof.invocations == 1
        # One branch site: taken once (exit), not-taken 100 times.
        (bprof,) = prof.branches.values()
        assert bprof.taken == 1
        assert bprof.not_taken == 100
        assert bprof.is_cold_taken()

    def test_receiver_profile_recorded(self):
        pb = ProgramBuilder()
        pb.cls("A")
        pb.cls("B", super_name="A")
        f = pb.method("id", params=("this",), owner="A")
        v = f.const(0)
        f.ret(v)
        m = pb.method("main")
        a = m.new("A")
        b = m.new("B")
        m.vcall(a, "id")
        m.vcall(a, "id")
        m.vcall(b, "id")
        m.ret()
        _, interp = build_and_run(pb)
        prof = interp.profiles.method("main")
        sites = list(prof.call_sites.values())
        assert len(sites) == 3  # three textual call sites
        merged = {}
        for site in sites:
            for k, v in site.receivers.items():
                merged[k] = merged.get(k, 0) + v
        assert merged == {"A": 2, "B": 1}

    def test_block_counts_track_loop(self):
        _, interp = build_and_run(countdown_program(10), args=(10,))
        prof = interp.profiles.method("main")
        assert max(prof.block_counts.values()) >= 10

    def test_fuel_exhaustion(self):
        pb = ProgramBuilder()
        m = pb.method("main")
        m.label("spin")
        m.jmp("spin")
        program = pb.build()
        with pytest.raises(VMError, match="fuel"):
            Interpreter(program, fuel=1000).run("main")

    def test_arity_check(self):
        pb = ProgramBuilder()
        m = pb.method("main", params=("x",))
        m.ret(m.param(0))
        program = pb.build()
        with pytest.raises(VMError, match="expected 1"):
            Interpreter(program).run("main", [])


class TestHeapAddressing:
    def test_addresses_disjoint_and_aligned(self):
        from repro.runtime import Heap

        heap = Heap()
        o1 = heap.new_object("C", {"a": 0, "b": 1})
        o2 = heap.new_object("C", {"a": 0, "b": 1})
        assert o2.base >= o1.base + o1.size_bytes()
        assert o1.base % 16 == 0 and o2.base % 16 == 0

    def test_field_and_element_addresses(self):
        from repro.runtime import Heap

        heap = Heap()
        obj = heap.new_object("C", {"a": 0, "b": 1})
        assert obj.field_address("b") - obj.field_address("a") == 8
        arr = heap.new_array(4)
        assert arr.element_address(1) - arr.element_address(0) == 8
        assert arr.length_address() < arr.element_address(0)
