"""Abort-path state restoration, across all five abort reasons.

The paper's whole correctness story (§3.2) is that an abort discards the
region *totally*: registers and spill slots revert to the checkpoint, the
store buffer (including speculative lock-word writes and allocations) is
dropped, and the abort-reason / abort-PC registers tell the runtime what
happened.  These tests drive each abort reason through the fault injector
and check the machine state afterwards against clean references.
"""

from dataclasses import replace

import pytest

from repro.atomic import FormationConfig
from repro.faults import FaultPlan
from repro.hw import BASELINE_4WIDE
from repro.lang import ProgramBuilder
from repro.runtime import Interpreter
from repro.runtime.locks import MAIN_THREAD
from repro.runtime.heap import GuestObject
from repro.vm import ATOMIC, TieredVM, VMOptions

#: SLE off so monitor enters/exits inside regions emit real lock-word
#: stores, exercising the lock-log rollback (owner/depth/reserver).
ATOMIC_NOSLE = replace(
    ATOMIC.with_aggressive_inlining(), sle=False, name="atomic-nosle",
)

#: The pressure program has no checks/monitors to elide, so region
#: formation needs the benefit heuristic relaxed to wrap its loop.
ATOMIC_FORCED = replace(
    ATOMIC, name="atomic-forced",
    formation=FormationConfig(require_benefit=False),
)

ALL_REASONS = ("assert", "overflow", "interrupt", "conflict", "exception")


def synchronized_counter_program():
    """Hot loop calling a synchronized method (monitors inside regions)."""
    pb = ProgramBuilder()
    pb.cls("Counter", fields=["v"])
    bump = pb.method("bump", params=("this", "i"), owner="Counter",
                     synchronized=True)
    this, i = bump.param(0), bump.param(1)
    v = bump.getfield(this, "v")
    v2 = bump.add(v, i)
    bump.putfield(this, "v", v2)
    bump.ret(v2)

    m = pb.method("work", params=("n", "trip"))
    n = m.param(0)
    c = m.new("Counter")
    i = m.const(0)
    one = m.const(1)
    m.label("head")
    m.safepoint()
    m.br("ge", i, n, "done")
    m.vcall(c, "bump", (i,))
    m.add(i, one, dst=i)
    m.jmp("head")
    m.label("done")
    out = m.getfield(c, "v")
    m.ret(out)
    return pb.build()


def pressure_program():
    """Enough simultaneously-live values to force spill slots."""
    pb = ProgramBuilder()
    pb.cls("Acc", fields=["total"])
    m = pb.method("work", params=("n", "trip"))
    n = m.param(0)
    acc = m.new("Acc")
    i = m.const(0)
    one = m.const(1)
    # Many loop-carried accumulators: more live ranges than machine regs.
    accs = [m.const(k) for k in range(20)]
    m.label("head")
    m.safepoint()
    m.br("ge", i, n, "done")
    for k in range(len(accs)):
        m.add(accs[k], i, dst=accs[k])
    t = m.getfield(acc, "total")
    t2 = m.add(t, i)
    m.putfield(acc, "total", t2)
    m.add(i, one, dst=i)
    m.jmp("head")
    m.label("done")
    total = m.getfield(acc, "total")
    for k in range(len(accs)):
        m.add(total, accs[k], dst=total)
    m.ret(total)
    return pb.build()


def make_plan(reason):
    if reason == "interrupt":
        return FaultPlan.periodic_interrupts(500)
    if reason == "overflow":
        return FaultPlan.single("overflow", region_index=4, line_limit=0)
    return FaultPlan.single(reason, region_index=4, offset=3)


def run_vm(program, fault_plan, config=ATOMIC_NOSLE, measure=(200, 0)):
    vm = TieredVM(
        program, compiler_config=config, hw_config=BASELINE_4WIDE,
        options=VMOptions(enable_timing=False, compile_threshold=3),
        fault_plan=fault_plan,
    )
    vm.warm_up("work", [[100, 0]] * 3)
    vm.compile_hot(min_invocations=1)
    vm.start_measurement()
    result = vm.run("work", list(measure))
    stats = vm.end_measurement()
    return result, stats, vm


def interpreter_reference(program, args=(200, 0)):
    """Same invocation history as :func:`run_vm`: 3 warm runs + 1 measured."""
    interp = Interpreter(program)
    method = program.resolve_static("work")
    for _ in range(3):
        interp.invoke(method, [100, 0])
    result = interp.invoke(method, list(args))
    return result, interp.heap


class TestLockRestoration:
    @pytest.mark.parametrize("reason", ALL_REASONS)
    def test_locks_quiescent_after_abort(self, reason):
        program = synchronized_counter_program()
        result, stats, vm = run_vm(program, make_plan(reason))
        expected, _ = interpreter_reference(program)
        assert result == expected
        assert stats.abort_reasons.get(reason, 0) >= 1
        assert vm.heap.locks_quiescent()

    def test_owner_depth_reserver_rolled_back(self):
        """An abort between monitor-enter and monitor-exit restores the
        exact pre-region lock word, including the reservation bias."""
        program = synchronized_counter_program()
        result, stats, vm = run_vm(
            program, FaultPlan.storm("assert", offset=4),
        )
        expected, _ = interpreter_reference(program)
        assert result == expected
        assert stats.abort_reasons["assert"] >= 1
        counters = [
            obj for obj in vm.heap.allocations
            if isinstance(obj, GuestObject) and obj.class_name == "Counter"
        ]
        assert counters
        for obj in counters:
            assert obj.lock.owner is None
            assert obj.lock.depth == 0
            # The reservation was established non-speculatively during
            # warm-up/recovery and must survive every rollback.
            assert obj.lock.reserver == MAIN_THREAD

    def test_lock_state_matches_interpreter(self):
        """Fingerprints include (owner, depth): faulted heap ends with the
        same monitor state the interpreter produces."""
        program = synchronized_counter_program()
        _, _, vm = run_vm(program, make_plan("exception"))
        _, ref_heap = interpreter_reference(program)
        faulted = [e for e in vm.heap.fingerprint() if e[0] == "obj"]
        reference = [e for e in ref_heap.fingerprint() if e[0] == "obj"]
        assert faulted == reference


class TestSpillRestoration:
    def test_program_actually_spills(self):
        program = pressure_program()
        _, _, vm = run_vm(program, None, config=ATOMIC_FORCED)
        assert vm.compiled["work"].compiled.num_spill_slots > 0

    @pytest.mark.parametrize("reason", ALL_REASONS)
    def test_spilled_values_survive_abort(self, reason):
        """Aborts restore the spill frame: loop-carried values kept in
        memory come back bit-exact, so the final sum is unperturbed."""
        program = pressure_program()
        result, stats, vm = run_vm(program, make_plan(reason), config=ATOMIC_FORCED)
        expected, _ = interpreter_reference(program)
        assert vm.compiled["work"].compiled.num_spill_slots > 0
        assert result == expected
        assert stats.abort_reasons.get(reason, 0) >= 1


class TestAbortRegisters:
    @pytest.mark.parametrize("reason", ALL_REASONS)
    def test_reason_and_pc_registers(self, reason):
        """§3.2: the runtime reads *why* and *where* from two registers."""
        program = synchronized_counter_program()
        _, stats, vm = run_vm(program, make_plan(reason))
        assert stats.abort_reasons.get(reason, 0) >= 1
        assert vm.machine.abort_reason_register == reason
        assert vm.machine.abort_pc_register is not None

    def test_registers_hold_last_abort(self):
        program = synchronized_counter_program()
        events = (
            FaultPlan.single("assert", region_index=2, offset=3).events[0],
            FaultPlan.single("exception", region_index=6, offset=3).events[0],
        )
        _, stats, vm = run_vm(program, FaultPlan(events=events))
        assert stats.abort_reasons["assert"] == 1
        assert stats.abort_reasons["exception"] == 1
        assert vm.machine.abort_reason_register == "exception"


class TestHeapRollback:
    def test_speculative_allocations_discarded(self):
        """Objects allocated inside an aborted region vanish: the faulted
        heap has exactly the allocations of the clean machine run."""
        program = synchronized_counter_program()
        _, stats, faulted_vm = run_vm(
            program, FaultPlan.single("conflict", region_index=4, offset=3),
        )
        _, _, clean_vm = run_vm(program, None)
        assert stats.abort_reasons["conflict"] >= 1
        assert faulted_vm.heap.fingerprint() == clean_vm.heap.fingerprint()
        assert len(faulted_vm.heap.allocations) == len(clean_vm.heap.allocations)

    def test_heap_mark_rollback_unit(self):
        """Heap mark/rollback restores cursor, counters, and the
        allocation list exactly."""
        from repro.runtime.heap import Heap

        heap = Heap()
        layout = ("a", "b")
        heap.new_object("C", layout)
        mark = heap.mark()
        before = heap.fingerprint()
        heap.new_object("C", layout)
        heap.new_array(8)
        assert heap.fingerprint() != before
        heap.rollback_to(mark)
        assert heap.fingerprint() == before
        assert len(heap.allocations) == 1
