"""Unit tests for the program/method builders and the validator."""

import pytest

from repro.lang import (
    MethodBuilder,
    Op,
    ProgramBuilder,
    ValidationError,
    validate_program,
)
from repro.runtime import Interpreter


def run_static(program, name, args=()):
    return Interpreter(program, fuel=1_000_000).run(name, list(args))


class TestMethodBuilder:
    def test_label_patching(self):
        b = MethodBuilder("f", params=("n",))
        n = b.param(0)
        zero = b.const(0)
        b.br("le", n, zero, "neg")
        one = b.const(1)
        b.ret(one)
        b.label("neg")
        minus = b.const(-1)
        b.ret(minus)
        method = b.build()
        br = next(i for i in method.instrs if i.op is Op.BR)
        assert method.instrs[br.target].op is Op.CONST
        assert method.instrs[br.target].imm == -1

    def test_undefined_label_raises(self):
        b = MethodBuilder("f")
        b.jmp("nowhere")
        with pytest.raises(ValueError, match="nowhere"):
            b.build()

    def test_duplicate_label_raises(self):
        b = MethodBuilder("f")
        b.label("x")
        with pytest.raises(ValueError):
            b.label("x")

    def test_implicit_ret_appended(self):
        b = MethodBuilder("f")
        b.const(5)
        method = b.build()
        assert method.instrs[-1].op is Op.RET

    def test_named_vars_are_stable(self):
        b = MethodBuilder("f", params=("p",))
        assert b.var("p") == b.param(0)
        x = b.var("x")
        assert b.var("x") == x
        assert b.var("y") != x

    def test_param_out_of_range(self):
        b = MethodBuilder("f", params=("p",))
        with pytest.raises(IndexError):
            b.param(1)

    def test_bad_condition_rejected(self):
        b = MethodBuilder("f", params=("a", "b"))
        with pytest.raises(ValueError):
            b.br("spaceship", b.param(0), b.param(1), "x")


class TestSynchronizedLowering:
    def test_monitor_pair_wraps_body(self):
        pb = ProgramBuilder()
        pb.cls("C")
        m = pb.method("f", params=("this",), owner="C", synchronized=True)
        v = m.const(42)
        m.ret(v)
        program = pb.build()
        instrs = program.classes["C"].methods["f"].instrs
        assert instrs[0].op is Op.MENTER
        ret_index = next(i for i, ins in enumerate(instrs) if ins.op is Op.RET)
        assert instrs[ret_index - 1].op is Op.MEXIT

    def test_branch_targets_shifted(self):
        pb = ProgramBuilder()
        pb.cls("C")
        m = pb.method("f", params=("this", "n"), owner="C", synchronized=True)
        n = m.param(1)
        zero = m.const(0)
        m.br("le", n, zero, "done")
        one = m.const(1)
        m.ret(one)
        m.label("done")
        m.ret(zero)
        program = pb.build()
        validate_program(program)
        method = program.classes["C"].methods["f"]
        br = next(i for i in method.instrs if i.op is Op.BR)
        # Target lands on the MEXIT that guards the 'done' return.
        assert method.instrs[br.target].op is Op.MEXIT

    def test_synchronized_needs_receiver(self):
        b = MethodBuilder("f", params=(), synchronized=True)
        b.ret()
        with pytest.raises(ValueError):
            b.build()

    def test_synchronized_executes_and_releases(self):
        pb = ProgramBuilder()
        pb.cls("C", fields=["v"])
        m = pb.method("bump", params=("this",), owner="C", synchronized=True)
        this = m.param(0)
        v = m.getfield(this, "v")
        one = m.const(1)
        nv = m.add(v, one)
        m.putfield(this, "v", nv)
        m.ret(nv)
        main = pb.method("main")
        obj = main.new("C")
        r1 = main.vcall(obj, "bump")
        r2 = main.vcall(obj, "bump")
        main.ret(r2)
        program = pb.build()
        validate_program(program)
        assert run_static(program, "main") == 2


class TestValidator:
    def test_valid_program_passes(self):
        pb = ProgramBuilder()
        m = pb.method("main")
        v = m.const(1)
        m.ret(v)
        validate_program(pb.build())

    def test_branch_target_out_of_range(self):
        pb = ProgramBuilder()
        m = pb.method("main")
        m.const(0)
        m.ret()
        program = pb.build()
        program.methods["main"].instrs[0] = type(program.methods["main"].instrs[0])(
            Op.JMP, target=99
        )
        with pytest.raises(ValidationError, match="out of range"):
            validate_program(program)

    def test_read_before_write_detected(self):
        pb = ProgramBuilder()
        m = pb.method("main")
        ghost = m.fresh()
        m.ret(ghost)
        with pytest.raises(ValidationError, match="read"):
            validate_program(pb.build())

    def test_conditionally_defined_register_flagged(self):
        pb = ProgramBuilder()
        m = pb.method("main", params=("p",))
        p = m.param(0)
        zero = m.const(0)
        out = m.fresh()
        m.br("le", p, zero, "skip")
        m.const(7, dst=out)
        m.label("skip")
        m.ret(out)  # undefined when branch taken
        with pytest.raises(ValidationError, match="read"):
            validate_program(pb.build())

    def test_unknown_callee_detected(self):
        pb = ProgramBuilder()
        m = pb.method("main")
        m.call("ghost")
        m.ret()
        with pytest.raises(ValidationError, match="ghost"):
            validate_program(pb.build())

    def test_arity_mismatch_detected(self):
        pb = ProgramBuilder()
        f = pb.method("f", params=("a", "b"))
        f.ret(f.param(0))
        m = pb.method("main")
        arg = m.const(1)
        m.call("f", (arg,))
        m.ret()
        with pytest.raises(ValidationError, match="expects 2"):
            validate_program(pb.build())

    def test_unknown_class_detected(self):
        pb = ProgramBuilder()
        m = pb.method("main")
        m.new("Ghost")
        m.ret()
        with pytest.raises(ValidationError, match="Ghost"):
            validate_program(pb.build())

    def test_inheritance_cycle_detected(self):
        pb = ProgramBuilder()
        pb.cls("A", super_name="B")
        pb.cls("B", super_name="A")
        m = pb.method("main")
        m.ret()
        with pytest.raises(ValidationError, match="cycle"):
            validate_program(pb.build())

    def test_unknown_virtual_method_detected(self):
        pb = ProgramBuilder()
        pb.cls("A")
        m = pb.method("main")
        obj = m.new("A")
        m.vcall(obj, "ghost")
        m.ret()
        with pytest.raises(ValidationError, match="ghost"):
            validate_program(pb.build())
