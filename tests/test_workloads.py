"""Tests for the synthetic DaCapo workloads and the experiment harness."""

import pytest

from repro.harness import run_workload, verify_workload_correctness
from repro.harness.experiment import clear_cache
from repro.hw import BASELINE_4WIDE
from repro.lang import validate_program
from repro.runtime import Interpreter
from repro.vm import ATOMIC, ATOMIC_AGGRESSIVE, NO_ATOMIC
from repro.workloads import ALL_WORKLOADS, get_workload, workload_names

FAST_BENCHES = ["hsqldb", "xalan"]


class TestWorkloadStructure:
    def test_registry_complete(self):
        assert workload_names() == [
            "antlr", "bloat", "fop", "hsqldb", "jython", "pmd", "xalan"
        ]

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("eclipse")

    @pytest.mark.parametrize("name", workload_names())
    def test_programs_validate(self, name):
        program = get_workload(name).build()
        validate_program(program)

    @pytest.mark.parametrize("name", workload_names())
    def test_deterministic_builds(self, name):
        w = get_workload(name)
        p1, p2 = w.build(), w.build()
        interp1, interp2 = Interpreter(p1), Interpreter(p2)
        args = list(w.samples[0].measure_args[0])
        m1 = p1.resolve_static(w.entry)
        m2 = p2.resolve_static(w.entry)
        assert interp1.invoke(m1, list(args)) == interp2.invoke(m2, list(args))

    def test_sample_weights_positive(self):
        for w in ALL_WORKLOADS.values():
            assert w.total_weight() > 0
            assert all(s.weight > 0 for s in w.samples)

    def test_jython_force_monomorphic_sites(self):
        w = get_workload("jython")
        sites = w.force_monomorphic_sites(w.build())
        assert sites and all(name == "getitem" for name, _pc in sites)


class TestHarness:
    @pytest.mark.parametrize("name", FAST_BENCHES)
    @pytest.mark.parametrize("config", [NO_ATOMIC, ATOMIC_AGGRESSIVE],
                             ids=lambda c: c.name)
    def test_vm_matches_interpreter(self, name, config):
        verify_workload_correctness(get_workload(name), config)

    def test_run_result_metrics(self):
        w = get_workload("hsqldb")
        base = run_workload(w, NO_ATOMIC, BASELINE_4WIDE, timing=False,
                            use_cache=False)
        atomic = run_workload(w, ATOMIC_AGGRESSIVE, BASELINE_4WIDE,
                              timing=False, use_cache=False)
        assert base.uops > 0
        assert atomic.uops < base.uops           # Figure 8 direction
        assert atomic.coverage > 0.3             # Table 3
        assert atomic.mean_region_size > 10
        reduction = atomic.uop_reduction_over(base)
        assert 0 < reduction < 60

    def test_cache_reuses_runs(self):
        clear_cache()
        w = get_workload("hsqldb")
        first = run_workload(w, NO_ATOMIC, BASELINE_4WIDE, timing=False)
        second = run_workload(w, NO_ATOMIC, BASELINE_4WIDE, timing=False)
        assert first is second
        clear_cache()

    def test_weighted_ratio_uses_phase_weights(self):
        w = get_workload("pmd")  # four phases with distinct weights
        base = run_workload(w, NO_ATOMIC, BASELINE_4WIDE, timing=False,
                            use_cache=False)
        atomic = run_workload(w, ATOMIC, BASELINE_4WIDE, timing=False,
                              use_cache=False)
        assert len(base.samples) == 4
        ratio = atomic.weighted_ratio(base, lambda s: float(s.uops))
        assert ratio > 0

    def test_force_monomorphic_changes_jython(self):
        w = get_workload("jython")
        plain = run_workload(w, ATOMIC, BASELINE_4WIDE, timing=False,
                             use_cache=False)
        forced = run_workload(w, ATOMIC, BASELINE_4WIDE, timing=False,
                              force_monomorphic=True, use_cache=False)
        # Forcing monomorphism inlines getitem: strictly fewer uops.
        assert forced.uops < plain.uops
