"""Tests for the deterministic fault-injection subsystem (repro.faults)."""

import pytest

from repro.faults import (
    FAULT_KINDS,
    FaultEvent,
    FaultInjector,
    FaultPlan,
)
from repro.hw import BASELINE_4WIDE
from repro.lang import ProgramBuilder
from repro.runtime import VMError
from repro.vm import ATOMIC, TieredVM, VMOptions


def region_loop_program():
    """Hot loop with a region-friendly cold path (see test_hw_machine)."""
    pb = ProgramBuilder()
    pb.cls("Acc", fields=["total"])
    m = pb.method("work", params=("n", "trip"))
    n, trip = m.param(0), m.param(1)
    acc = m.new("Acc")
    i = m.const(0)
    one = m.const(1)
    zero = m.const(0)
    m.label("head")
    m.safepoint()
    m.br("ge", i, n, "done")
    t = m.getfield(acc, "total")
    t2 = m.add(t, i)
    m.putfield(acc, "total", t2)
    m.br("le", trip, zero, "next")
    r = m.mod(i, trip)
    m.br("ne", r, zero, "next")
    big = m.mul(t2, t2)
    m.putfield(acc, "total", big)
    m.label("next")
    m.add(i, one, dst=i)
    m.jmp("head")
    m.label("done")
    out = m.getfield(acc, "total")
    m.ret(out)
    return pb.build()


def run_with_faults(program, fault_plan=None, fault_injector=None,
                    measure=(200, 0), warm=(100, 0), config=ATOMIC,
                    hw=BASELINE_4WIDE, **vm_kwargs):
    vm = TieredVM(
        program, compiler_config=config, hw_config=hw,
        options=VMOptions(enable_timing=False, compile_threshold=3),
        fault_plan=fault_plan, fault_injector=fault_injector, **vm_kwargs,
    )
    vm.warm_up("work", [list(warm)] * 3)
    vm.compile_hot(min_invocations=1)
    vm.start_measurement()
    result = vm.run("work", list(measure))
    stats = vm.end_measurement()
    return result, stats, vm


def reference_result(program, args):
    from repro.runtime import Interpreter

    interp = Interpreter(program)
    method = program.resolve_static("work")
    return interp.invoke(method, list(args))


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("meltdown")

    def test_interrupt_needs_absolute_uop(self):
        with pytest.raises(ValueError, match="absolute at_uop"):
            FaultEvent("interrupt")
        with pytest.raises(ValueError, match="region-relative"):
            FaultEvent("conflict", at_uop=100)

    def test_seeded_schedules_need_seed(self):
        with pytest.raises(ValueError, match="need a seed"):
            FaultPlan(region_rates=(("conflict", 0.5),))

    def test_plans_are_hashable_cache_keys(self):
        a = FaultPlan.seeded(7)
        b = FaultPlan.seeded(7)
        c = FaultPlan.seeded(8)
        assert a == b and hash(a) == hash(b)
        assert a != c
        assert len({a, b, c}) == 2

    def test_describe_mentions_layers(self):
        text = FaultPlan.seeded(3).describe()
        assert "seed=3" in text
        assert FaultPlan.periodic_interrupts(100).describe() == (
            "interrupts every 100 uops"
        )
        assert FaultPlan().describe() == "no faults"

    def test_storm_covers_every_region(self):
        plan = FaultPlan.storm("conflict", offset=5)
        injector = FaultInjector(plan)
        for _ in range(10):
            sched = injector.schedule_region(record=None)
            assert sched.conflict_at == 5
        assert injector.scheduled["conflict"] == 10


class TestFaultInjectorDeterminism:
    def test_same_seed_same_schedule(self):
        seeds_a = FaultInjector(FaultPlan.seeded(42))
        seeds_b = FaultInjector(FaultPlan.seeded(42))
        for _ in range(200):
            a = seeds_a.schedule_region(record=None)
            b = seeds_b.schedule_region(record=None)
            assert (a.conflict_at, a.assert_at, a.exception_at, a.line_limit) \
                == (b.conflict_at, b.assert_at, b.exception_at, b.line_limit)
        assert seeds_a.scheduled == seeds_b.scheduled

    def test_different_seeds_diverge(self):
        a = FaultInjector(FaultPlan.seeded(1))
        b = FaultInjector(FaultPlan.seeded(2))
        draws_a = [a.schedule_region(None).conflict_at for _ in range(100)]
        draws_b = [b.schedule_region(None).conflict_at for _ in range(100)]
        assert draws_a != draws_b

    def test_reset_rewinds_schedule(self):
        injector = FaultInjector(FaultPlan.seeded(9))
        first = [injector.schedule_region(None).assert_at for _ in range(50)]
        injector.reset()
        again = [injector.schedule_region(None).assert_at for _ in range(50)]
        assert first == again

    def test_indexed_event_fires_once_on_target_region(self):
        plan = FaultPlan.single("assert", region_index=3, offset=7)
        injector = FaultInjector(plan)
        offsets = [injector.schedule_region(None).assert_at for _ in range(6)]
        assert offsets == [None, None, None, 7, None, None]


class TestInterruptThreshold:
    def test_threshold_never_silently_missed(self):
        """An interrupt whose boundary lands between checks still pends.

        The old ``uops % interval == 0`` test fired only if a check landed
        exactly on the modulo boundary; an absolute threshold fires at the
        first check at-or-after it.
        """
        injector = FaultInjector(FaultPlan.periodic_interrupts(100))
        # Checks at 97 and 205: the uop-100 boundary falls between them.
        assert not injector.take_interrupt(97)
        assert injector.take_interrupt(205)
        # Re-armed relative to delivery: no stale-interrupt storm.
        assert not injector.take_interrupt(206)
        assert injector.take_interrupt(305)

    def test_one_shot_absolute_interrupt(self):
        injector = FaultInjector(FaultPlan.single("interrupt", at_uop=500))
        assert not injector.take_interrupt(499)
        assert injector.take_interrupt(10_000)   # late check still fires
        assert not injector.take_interrupt(20_000)  # one-shot

    def test_machine_interrupt_uses_absolute_threshold(self):
        """End to end: a sparse-check execution still sees interrupts."""
        program = region_loop_program()
        result, stats, _ = run_with_faults(
            program, fault_plan=FaultPlan.periodic_interrupts(997),
            measure=(300, 0),
        )
        assert result == reference_result(program, (300, 0))
        assert stats.abort_reasons.get("interrupt", 0) >= 1


class TestInjectedFaultKinds:
    @pytest.mark.parametrize("kind", ["assert", "exception", "conflict"])
    def test_region_fault_aborts_and_recovers(self, kind):
        program = region_loop_program()
        plan = FaultPlan.single(kind, region_index=5, offset=2)
        result, stats, vm = run_with_faults(program, fault_plan=plan)
        assert result == reference_result(program, (200, 0))
        assert stats.abort_reasons.get(kind, 0) >= 1
        assert vm.machine.abort_reason_register == kind

    def test_capacity_pressure_forces_overflow(self):
        program = region_loop_program()
        plan = FaultPlan.single("overflow", region_index=5, line_limit=0)
        result, stats, vm = run_with_faults(program, fault_plan=plan)
        assert result == reference_result(program, (200, 0))
        assert stats.abort_reasons.get("overflow", 0) >= 1
        assert vm.machine.abort_reason_register == "overflow"

    def test_store_buffer_pressure_forces_capacity(self):
        program = region_loop_program()
        plan = FaultPlan.single("capacity", region_index=5, store_limit=0)
        result, stats, vm = run_with_faults(program, fault_plan=plan)
        assert result == reference_result(program, (200, 0))
        assert stats.abort_reasons.get("capacity", 0) >= 1
        assert stats.capacity_aborts >= 1
        assert vm.machine.abort_reason_register == "capacity"

    def test_capacity_storm_terminates(self):
        """Every region hits the shrunken store buffer; the fallback
        escalation must still finish with the right answer."""
        program = region_loop_program()
        plan = FaultPlan.storm("capacity")
        result, stats, _ = run_with_faults(program, fault_plan=plan)
        assert result == reference_result(program, (200, 0))
        assert stats.capacity_aborts >= 1
        assert stats.regions_committed == 0

    def test_all_kinds_named(self):
        assert set(FAULT_KINDS) == {
            "interrupt", "conflict", "overflow", "assert", "exception",
            "capacity",
        }


class TestLegacyShims:
    def test_interrupt_interval_option_still_works(self):
        program = region_loop_program()
        vm = TieredVM(
            program, compiler_config=ATOMIC,
            options=VMOptions(enable_timing=False, compile_threshold=3,
                              interrupt_interval=997),
        )
        vm.warm_up("work", [[100, 0]] * 3)
        vm.compile_hot(min_invocations=1)
        vm.start_measurement()
        result = vm.run("work", [300, 0])
        stats = vm.end_measurement()
        assert result == reference_result(program, (300, 0))
        assert stats.abort_reasons.get("interrupt", 0) >= 1
        # The shim built a real injector under the hood.
        assert vm.machine.fault_injector is not None
        assert vm.machine.fault_injector.plan.interrupt_interval == 997

    def test_conflict_injector_callback_still_works(self):
        program = region_loop_program()
        calls = {"n": 0}

        def injector(record):
            calls["n"] += 1
            return 3 if calls["n"] == 5 else None

        result, stats, _ = run_with_faults(
            program, measure=(100, 0), conflict_injector=injector,
        )
        assert result == reference_result(program, (100, 0))
        assert stats.abort_reasons.get("conflict", 0) >= 1
        assert calls["n"] > 5

    def test_legacy_hooks_and_plan_are_exclusive(self):
        program = region_loop_program()
        with pytest.raises(VMError, match="cannot be combined"):
            TieredVM(
                program, compiler_config=ATOMIC,
                options=VMOptions(enable_timing=False,
                                  interrupt_interval=100),
                fault_plan=FaultPlan.seeded(0),
            )

    def test_plan_and_injector_are_exclusive(self):
        program = region_loop_program()
        with pytest.raises(VMError, match="not both"):
            TieredVM(
                program, compiler_config=ATOMIC,
                options=VMOptions(enable_timing=False),
                fault_plan=FaultPlan.seeded(0),
                fault_injector=FaultInjector(FaultPlan.seeded(0)),
            )
