"""Tests for atomic-region formation, asserts, SLE, and partial inlining."""

import pytest

from repro.atomic import (
    FormationConfig,
    apply_sle,
    blocks_by_region,
    candidate_positions,
    eliminate_postdominated_checks,
    form_regions,
    pi_cost,
    select_acyclic_boundaries,
    trace_dominant_path,
)
from repro.ir import Kind, build_ir, verify_graph
from repro.lang import ProgramBuilder
from repro.opt import InlineConfig, Inliner, optimize
from repro.testutil import (
    assert_same_outcome,
    outcome_bytecode,
    outcome_ir,
    profiled,
    random_program,
)


def hot_cold_loop_program(n_iters=200, cold_every=0):
    """A hot loop with a cold path taken every ``cold_every`` iterations
    (never, when 0) — the canonical region-formation shape."""
    pb = ProgramBuilder()
    pb.cls("Acc", fields=["total", "spill"])
    m = pb.method("main", params=("n", "cold_every"))
    n, ce = m.param(0), m.param(1)
    acc = m.new("Acc")
    i = m.const(0)
    one = m.const(1)
    zero = m.const(0)
    m.label("head")
    m.safepoint()
    m.br("ge", i, n, "done")
    # hot body: total += i
    t = m.getfield(acc, "total")
    t2 = m.add(t, i)
    m.putfield(acc, "total", t2)
    # cold path: every `cold_every` iterations, spill
    m.br("le", ce, zero, "next")
    r = m.mod(i, ce)
    m.br("ne", r, zero, "next")
    m.br("eq", zero, zero, "cold")
    m.label("cold")
    s = m.getfield(acc, "spill")
    s2 = m.add(s, one)
    m.putfield(acc, "spill", s2)
    m.label("next")
    m.add(i, one, dst=i)
    m.jmp("head")
    m.label("done")
    out = m.getfield(acc, "total")
    sp = m.getfield(acc, "spill")
    out2 = m.mul(out, m.const(1000))
    out3 = m.add(out2, sp)
    m.ret(out3)
    return pb.build()


def form_transform(config=None, inline=False, inline_cfg=None, sle=False,
                   opt=True):
    """A compiler-shaped transform for differential testing."""

    def transform(graph, program):
        from repro.testutil.diff import profiled  # noqa: F401

        profiles = transform.profiles
        inline_result = None
        if inline:
            inliner = Inliner(program, profiles, inline_cfg or InlineConfig())
            root = program.resolve_static(transform.entry)
            inline_result = inliner.run(graph, root)
        result = form_regions(graph, inline_result, config)
        transform.result = result
        if opt:
            optimize(graph, verify=False)
        if sle:
            apply_sle(graph)
            optimize(graph, verify=False)
        return None

    transform.entry = "main"
    return transform


class TestEquationOne:
    def test_pi_cost_zero_at_target(self):
        assert pi_cost(200, 200) == 0.0

    def test_pi_cost_symmetric_penalty(self):
        assert pi_cost(100, 200) > 0
        assert pi_cost(0, 200) == float("inf")

    def test_pi_prefers_balanced_split(self):
        # Splitting 400 ops at the midpoint beats a 100/300 split.
        balanced = pi_cost(200, 200) + pi_cost(200, 200)
        skewed = pi_cost(100, 200) + pi_cost(300, 200)
        assert balanced < skewed


class TestBoundarySelection:
    def test_loop_gets_per_iteration_region(self):
        program = hot_cold_loop_program()
        profiles = profiled(program, args=(300, 0))
        executor = assert_same_outcome(
            program, transform=form_transform(), args=(300, 0),
            profiles=profiles,
        )
        # Regions were entered and committed, and no aborts occurred.
        assert executor.regions_entered > 0
        assert executor.regions_committed == executor.regions_entered
        assert not executor.aborts

    def test_asserts_fire_and_recover(self):
        program = hot_cold_loop_program()
        # Profile with the cold path never taken...
        profiles = profiled(program, args=(300, 0))
        # ...then execute with the cold path taken every 10 iterations.
        executor = assert_same_outcome(
            program, transform=form_transform(), args=(300, 10),
            profiles=profiles,
        )
        assert executor.regions_entered > 0
        assert any(a.reason == "assert" for a in executor.aborts)

    def test_region_code_contains_asserts_not_branches(self):
        program = hot_cold_loop_program()
        profiles = profiled(program, args=(300, 0))
        t = form_transform(opt=False)
        assert_same_outcome(program, transform=t, args=(300, 0),
                            profiles=profiles)
        result = t.result
        assert result.regions
        region = result.regions[0]
        assert region.asserts, "cold branches should have become asserts"


class TestDifferentialFormation:
    @pytest.mark.parametrize("seed", range(40))
    def test_formed_random_programs_same_input(self, seed):
        program = random_program(seed + 5000, parametric=True)
        profiles = profiled(program, args=(1,))
        assert_same_outcome(
            program, transform=form_transform(), args=(1,), profiles=profiles
        )

    @pytest.mark.parametrize("seed", range(40))
    def test_formed_random_programs_shifted_input(self, seed):
        """Profile with p=1, execute with p=-7: cold paths execute, asserts
        fire, recovery must produce identical results."""
        program = random_program(seed + 5000, parametric=True)
        profiles = profiled(program, args=(1,))
        assert_same_outcome(
            program, transform=form_transform(), args=(-7,), profiles=profiles
        )

    @pytest.mark.parametrize("seed", range(20))
    def test_formed_with_inlining_and_sle(self, seed):
        program = random_program(seed + 6000, parametric=True)
        profiles = profiled(program, args=(2,))
        assert_same_outcome(
            program,
            transform=form_transform(inline=True, sle=True),
            args=(2,),
            profiles=profiles,
        )
        assert_same_outcome(
            program,
            transform=form_transform(inline=True, sle=True),
            args=(-9,),
            profiles=profiles,
        )


class TestPartialInlining:
    def make_program(self):
        """Hot loop calling addElement-style method with hot/cold paths."""
        pb = ProgramBuilder()
        pb.cls("Vec", fields=["data", "idx"])
        add = pb.method("add_element", params=("vec", "x"))
        vec, x = add.param(0), add.param(1)
        data = add.getfield(vec, "data")
        idx = add.getfield(vec, "idx")
        length = add.alen(data)
        add.br("ge", idx, length, "grow")
        add.astore(data, idx, x)
        one = add.const(1)
        idx2 = add.add(idx, one)
        add.putfield(vec, "idx", idx2)
        add.ret(idx2)
        add.label("grow")  # cold: allocate bigger array, copy (simplified)
        two = add.const(2)
        nlen = add.mul(length, two)
        bigger = add.newarr(nlen)
        j = add.const(0)
        one2 = add.const(1)
        add.label("copy")
        add.br("ge", j, length, "copied")
        v = add.aload(data, j)
        add.astore(bigger, j, v)
        add.add(j, one2, dst=j)
        add.jmp("copy")
        add.label("copied")
        add.putfield(vec, "data", bigger)
        add.astore(bigger, idx, x)
        idx3 = add.add(idx, one2)
        add.putfield(vec, "idx", idx3)
        add.ret(idx3)

        m = pb.method("main", params=("n",))
        n = m.param(0)
        vec = m.new("Vec")
        cap = m.const(64)
        arr = m.newarr(cap)
        m.putfield(vec, "data", arr)
        zero = m.const(0)
        m.putfield(vec, "idx", zero)
        i = m.const(0)
        one = m.const(1)
        m.label("head")
        m.safepoint()
        m.br("ge", i, n, "done")
        m.call("add_element", (vec, i))
        m.call("add_element", (vec, i))
        m.add(i, one, dst=i)
        m.jmp("head")
        m.label("done")
        out = m.getfield(vec, "idx")
        m.ret(out)
        return pb.build()

    def test_partial_inline_hot_path_no_growth(self):
        program = self.make_program()
        profiles = profiled(program, args=(20,))  # never grows (64 slots)
        t = form_transform(inline=True,
                           inline_cfg=InlineConfig(aggressive=True))
        executor = assert_same_outcome(
            program, transform=t, args=(20,), profiles=profiles
        )
        assert t.result.regions, "expected regions around the loop"
        assert executor.regions_entered > 0

    def test_partial_inline_cold_path_aborts_to_real_call(self):
        program = self.make_program()
        profiles = profiled(program, args=(20,))
        t = form_transform(inline=True,
                           inline_cfg=InlineConfig(aggressive=True))
        # 40 insertions into a 64-slot vector: growth (cold path) happens.
        executor = assert_same_outcome(
            program, transform=t, args=(40,), profiles=profiles
        )
        assert any(a.reason == "assert" for a in executor.aborts)


class TestSLE:
    def make_program(self):
        pb = ProgramBuilder()
        pb.cls("Counter", fields=["v"])
        bump = pb.method("bump", params=("this",), owner="Counter",
                         synchronized=True)
        this = bump.param(0)
        v = bump.getfield(this, "v")
        one = bump.const(1)
        v2 = bump.add(v, one)
        bump.putfield(this, "v", v2)
        bump.ret(v2)

        m = pb.method("main", params=("n",))
        n = m.param(0)
        c = m.new("Counter")
        i = m.const(0)
        one = m.const(1)
        m.label("head")
        m.safepoint()
        m.br("ge", i, n, "done")
        m.vcall(c, "bump")
        m.add(i, one, dst=i)
        m.jmp("head")
        m.label("done")
        out = m.getfield(c, "v")
        m.ret(out)
        return pb.build()

    def test_monitors_elided_in_region(self):
        program = self.make_program()
        profiles = profiled(program, args=(150,))
        t = form_transform(inline=True, sle=True,
                           inline_cfg=InlineConfig(aggressive=True))
        executor = assert_same_outcome(
            program, transform=t, args=(150,), profiles=profiles
        )
        assert executor.regions_entered > 0

    def test_sle_counts_pairs(self):
        program = self.make_program()
        profiles = profiled(program, args=(150,))

        elided = []

        def transform(graph, program_):
            inliner = Inliner(program_, profiles, InlineConfig(aggressive=True))
            result = inliner.run(graph, program_.resolve_static("main"))
            form_regions(graph, result)
            optimize(graph)
            elided.append(apply_sle(graph))
            optimize(graph)

        assert_same_outcome(program, transform=transform, args=(150,),
                            profiles=profiles)
        assert elided[0] >= 1


class TestPostDomChecks:
    def test_subsumed_check_removed(self):
        pb = ProgramBuilder()
        m = pb.method("main", params=("n",))
        n = m.param(0)
        cap = m.const(8)
        arr = m.newarr(cap)
        i = m.const(0)
        one = m.const(1)
        limit = m.const(6)
        m.label("head")
        m.safepoint()
        m.br("ge", i, limit, "done")
        m.astore(arr, i, i)        # check_bounds(len, i)
        i1 = m.add(i, one)
        m.astore(arr, i1, i1)      # check_bounds(len, i+1) subsumes the above
        m.add(i, one, dst=i)
        m.jmp("head")
        m.label("done")
        z = m.const(0)
        out = m.aload(arr, z)
        m.ret(out)
        program = pb.build()
        profiles = profiled(program, args=(0,))

        counts = {}

        def transform(graph, program_):
            # The loop has no cold paths, so keep its region despite the
            # no-benefit policy: the benefit here IS the postdom check elim.
            form_regions(graph, None, FormationConfig(require_benefit=False))
            optimize(graph)
            def count():
                return sum(
                    1 for b in graph.blocks for op in b.ops
                    if op.kind is Kind.CHECK_BOUNDS
                )
            counts["before"] = count()
            counts["removed"] = eliminate_postdominated_checks(graph)
            counts["after"] = count()
            optimize(graph)

        assert_same_outcome(program, transform=transform, args=(0,),
                            profiles=profiles)
        assert counts["removed"] >= 1
        assert counts["after"] == counts["before"] - counts["removed"]
