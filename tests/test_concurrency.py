"""Multi-threaded guest execution: contended monitors, SLE aborts on held
locks, real memory-conflict detection, replay, and the serializability
oracle.

The PR's acceptance bar: a two-thread counter increment under elided
monitors produces the serial total for *every* chaos seed (no lost
updates); genuine cross-thread conflicts abort and retry through the
existing backoff/fallback machinery with correct ``ExecStats`` accounting;
and any schedule replays bit-for-bit from its seed.

``CHAOS_SEEDS`` (comma-separated ints) widens the seed matrix in CI.
"""

import os
from dataclasses import replace

import pytest

from repro.harness import run_concurrency_chaos
from repro.hw import BASELINE_4WIDE
from repro.lang import ProgramBuilder
from repro.runtime import DeadlockError, Interpreter, MonitorStateError, SchedulePlan
from repro.runtime.locks import MAIN_THREAD
from repro.vm import ATOMIC, NO_ATOMIC, TieredVM, VMOptions
from repro.workloads import (
    HSQLDB_THREADED,
    PRIMITIVES,
    SCENARIOS,
    contention_workload,
    counter_workload,
    msqueue_workload,
    ticket_workload,
)
from repro.workloads.base import ThreadedWorkload

ATOMIC_INLINE = ATOMIC.with_aggressive_inlining()
ATOMIC_NOSLE = replace(ATOMIC_INLINE, sle=False, name="atomic-nosle")


def chaos_seeds():
    raw = os.environ.get("CHAOS_SEEDS", "0,1,2")
    return tuple(int(s) for s in raw.split(",") if s.strip())


def counter_program(nested=False, double=False):
    """Shared counter bumped through synchronized methods.

    ``nested=True`` routes bumps through ``outer`` -> ``inner`` (both
    synchronized on the same receiver; inlining nests the elided pairs in
    one region).  ``double=True`` makes each loop iteration bump twice
    (two balanced elided pairs across blocks of one region).
    """
    pb = ProgramBuilder()
    pb.cls("Counter", fields=["v"])

    bump = pb.method("bump", params=("this", "i"), owner="Counter",
                     synchronized=True)
    this, i = bump.param(0), bump.param(1)
    v = bump.getfield(this, "v")
    v2 = bump.add(v, i)
    bump.putfield(this, "v", v2)
    bump.ret(v2)

    if nested:
        outer = pb.method("outer", params=("this", "i"), owner="Counter",
                          synchronized=True)
        ot, oi = outer.param(0), outer.param(1)
        r = outer.vcall(ot, "bump", (oi,))
        outer.ret(r)

    # Monitor held across a long loop: only released at method return.
    hold = pb.method("hold", params=("this", "n"), owner="Counter",
                     synchronized=True)
    ht, hn = hold.param(0), hold.param(1)
    hi = hold.const(0)
    hone = hold.const(1)
    hold.label("head")
    hold.safepoint()
    hold.br("ge", hi, hn, "done")
    hv = hold.getfield(ht, "v")
    hv2 = hold.add(hv, hone)
    hold.putfield(ht, "v", hv2)
    hold.add(hi, hone, dst=hi)
    hold.jmp("head")
    hold.label("done")
    hold.ret(hn)

    setup = pb.method("setup", params=())
    c = setup.new("Counter")
    setup.ret(c)

    m = pb.method("work", params=("c", "n"))
    c, n = m.param(0), m.param(1)
    i = m.const(0)
    one = m.const(1)
    m.label("head")
    m.safepoint()
    m.br("ge", i, n, "done")
    m.vcall(c, "outer" if nested else "bump", (one,))
    if double:
        m.vcall(c, "bump", (one,))
    m.add(i, one, dst=i)
    m.jmp("head")
    m.label("done")
    out = m.getfield(c, "v")
    m.ret(out)

    holder = pb.method("holder", params=("c", "n"))
    hc, hn2 = holder.param(0), holder.param(1)
    hr = holder.vcall(hc, "hold", (hn2,))
    holder.ret(hr)
    return pb.build()


def make_vm(program, config=ATOMIC_INLINE, warm_n=50):
    vm = TieredVM(
        program, compiler_config=config, hw_config=BASELINE_4WIDE,
        options=VMOptions(enable_timing=False, compile_threshold=3),
    )
    c0 = vm.run("setup")
    vm.warm_up("work", [[c0, warm_n]] * 3)
    vm.compile_hot(min_invocations=1)
    return vm


def two_thread_bump(seed, config=ATOMIC_INLINE, n=100, quantum=(8, 32),
                    program=None):
    vm = make_vm(program if program is not None else counter_program(),
                 config=config)
    counter = vm.run("setup")
    vm.start_measurement()
    sched = vm.run_threads(
        [("work", [counter, n], "a"), ("work", [counter, n], "b")],
        plan=SchedulePlan(seed=seed, quantum=quantum),
    )
    stats = vm.end_measurement()
    return counter.get("v"), stats, sched, vm


class TestLockWordContention:
    def test_enter_blocked_does_not_steal(self):
        from repro.runtime import LockWord
        lock = LockWord()
        assert lock.enter(0) == "unreserved"
        before = lock.acquisitions
        assert lock.enter(1) == "blocked"
        assert lock.owner == 0 and lock.depth == 1
        assert lock.acquisitions == before

    def test_interpreter_contended_monitor_without_scheduler_raises(self):
        program = counter_program()
        interp = Interpreter(program)
        counter = interp.invoke(program.resolve_static("setup"), [])
        counter.lock.force_owner(MAIN_THREAD + 1)
        with pytest.raises(MonitorStateError):
            interp.invoke(program.resolve_static("work"), [counter, 5])

    def test_machine_contended_monitor_without_scheduler_raises(self):
        """Blocked STORELOCK in a region aborts as a conflict; the recovery
        path then hits the same contention non-speculatively and, with no
        scheduler to park on, must raise rather than steal the lock."""
        vm = make_vm(counter_program(), config=ATOMIC_NOSLE)
        counter = vm.run("setup")
        counter.lock.force_owner(MAIN_THREAD + 1)
        with pytest.raises(MonitorStateError):
            vm.run("work", [counter, 5])


class TestTwoThreadCounter:
    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_no_lost_updates_under_sle(self, seed):
        total, stats, sched, vm = two_thread_bump(seed)
        assert total == 200, f"lost update: {total} != 200 (seed {seed})"
        assert [t.result for t in sched.threads] != [None, None]
        assert vm.heap.locks_quiescent()
        assert stats.context_switches > 0
        assert sorted(stats.uops_by_thread) == [0, 1]

    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_no_lost_updates_without_sle(self, seed):
        total, stats, _sched, vm = two_thread_bump(seed, config=ATOMIC_NOSLE)
        assert total == 200
        assert vm.heap.locks_quiescent()

    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_nested_elided_pairs(self, seed):
        total, _stats, _sched, vm = two_thread_bump(
            seed, program=counter_program(nested=True))
        assert total == 200
        assert vm.heap.locks_quiescent()

    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_cross_block_elided_pairs(self, seed):
        total, _stats, _sched, vm = two_thread_bump(
            seed, program=counter_program(double=True))
        assert total == 400
        assert vm.heap.locks_quiescent()

    def test_real_conflicts_abort_and_retry_with_accounting(self):
        saw_conflicts = False
        for seed in chaos_seeds():
            total, stats, _sched, _vm = two_thread_bump(seed)
            assert total == 200
            # Nothing was injected: every conflict abort is genuine, and
            # the split accounting must agree with the reason counter.
            assert stats.injected_conflict_aborts == 0
            assert (stats.real_conflict_aborts
                    + stats.injected_conflict_aborts
                    == stats.abort_reasons.get("conflict", 0))
            if stats.real_conflict_aborts:
                saw_conflicts = True
                # Conflicts go through the transparent retry path first.
                assert stats.conflict_retries > 0
        assert saw_conflicts, "no seed produced a genuine conflict"

    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_schedule_replays_bit_for_bit(self, seed):
        total1, stats1, sched1, vm1 = two_thread_bump(seed)
        total2, stats2, sched2, vm2 = two_thread_bump(seed)
        assert total1 == total2
        assert sched1.trace == sched2.trace
        assert stats1.uops_retired == stats2.uops_retired
        assert stats1.real_conflict_aborts == stats2.real_conflict_aborts
        assert vm1.heap.fingerprint() == vm2.heap.fingerprint()


class TestSLEAbortOnHeldLock:
    @pytest.mark.parametrize("seed", chaos_seeds())
    def test_elision_aborts_and_falls_back(self, seed):
        """One thread *really* holds the monitor (interpreted ``hold``
        keeps it owned across many steps); the other's elided regions must
        observe the owner, abort with reason "sle", and take the
        non-speculative recovery path — parking until release."""
        vm = make_vm(counter_program())
        counter = vm.run("setup")
        vm.start_measurement()
        vm.run_threads(
            [("work", [counter, 80], "bumper"),
             ("holder", [counter, 120], "holder")],
            plan=SchedulePlan(seed=seed, quantum=(8, 32)),
        )
        stats = vm.end_measurement()
        assert counter.get("v") == 80 + 120
        assert vm.heap.locks_quiescent()
        assert stats.abort_reasons.get("sle", 0) > 0, (
            f"elision never aborted on a held lock (seed {seed}): "
            f"{dict(stats.abort_reasons)}"
        )
        assert stats.contended_acquisitions > 0

    def test_deadlock_is_detected(self):
        """A guest thread parking on a monitor nobody will release ends the
        run with a DeadlockError naming the schedule."""
        vm = make_vm(counter_program())
        counter = vm.run("setup")
        counter.lock.force_owner(7)  # phantom owner, never releases
        with pytest.raises(DeadlockError):
            vm.run_threads(
                [("work", [counter, 5], "doomed")],
                plan=SchedulePlan(seed=0),
            )


def racy_counter_workload():
    """Unsynchronized read-modify-write: the canonical lost update."""
    pb = ProgramBuilder()
    pb.cls("Counter", fields=["v"])
    setup = pb.method("setup", params=())
    c = setup.new("Counter")
    setup.ret(c)
    w = pb.method("worker", params=("c", "n"))
    c, n = w.param(0), w.param(1)
    i = w.const(0)
    one = w.const(1)
    w.label("head")
    w.safepoint()
    w.br("ge", i, n, "done")
    v = w.getfield(c, "v")
    v2 = w.add(v, one)
    w.putfield(c, "v", v2)
    w.add(i, one, dst=i)
    w.jmp("head")
    w.label("done")
    w.ret(n)
    program = pb.build()
    return ThreadedWorkload(
        name="racy-counter",
        description="unsynchronized shared counter (must be caught)",
        build=lambda: program,
        setup="setup",
        worker="worker",
        thread_args=[[40], [40]],
        warm_args=[[20]] * 3,
    )


class TestSerializabilityOracle:
    def test_threaded_hsqldb_is_serializable(self):
        report = run_concurrency_chaos(
            HSQLDB_THREADED, ATOMIC_INLINE, seeds=chaos_seeds()[:2],
        )
        report.raise_on_failure()
        assert all(c.replay_identical for c in report.checks)
        assert all(c.heap_matches_interpreter for c in report.checks)
        # The sweep exercised the conflict bus, not just disjoint lines.
        assert any(c.stats.real_conflict_aborts > 0 for c in report.checks)

    def test_lost_update_detector_fires(self, tmp_path):
        """Remove the monitors and the regions, and the oracle must call
        out the atomicity violation with the schedule that produced it."""
        report = run_concurrency_chaos(
            racy_counter_workload(), NO_ATOMIC,
            seeds=(0, 1, 2, 3), quantum=(3, 9), trace_dir=str(tmp_path),
        )
        failures = report.failures()
        assert failures, "racy counter was never caught"
        for check in failures:
            assert not check.serializable
            assert check.serial_order is None
            assert check.violation is not None
            assert "atomicity violation" in check.violation
            assert "interleaving" in check.violation
            # The failing schedule's lifecycle trace lands next to the seed.
            assert check.trace_path is not None
            # Determinism is orthogonal to atomicity: the broken schedule
            # still replays exactly.
            assert check.replay_identical
        with pytest.raises(AssertionError, match="serializability"):
            report.raise_on_failure()


class TestContentionLinearizability:
    """The linearizability battery over the contention scenarios.

    Every architectural primitive (FAA, CAS loop, LL/SC loop, monitor
    lock) drives each scenario across the chaos seed matrix; the oracle
    checks serial-order equivalence where the workload is whole-thread
    serializable and the scenario's own invariants everywhere.
    """

    @pytest.mark.parametrize("primitive", PRIMITIVES)
    def test_counter_total_matches_serial(self, primitive):
        report = run_concurrency_chaos(
            counter_workload(primitive, threads=4, iters=6),
            NO_ATOMIC, seeds=chaos_seeds(),
        )
        report.raise_on_failure()
        for check in report.checks:
            # Symmetric workers: the identity order is the canonical witness.
            assert check.serial_order == (0, 1, 2, 3)
            assert check.heap_matches_interpreter
            assert not check.invariant_failures

    @pytest.mark.parametrize("primitive", PRIMITIVES)
    def test_ticket_mutual_exclusion(self, primitive):
        report = run_concurrency_chaos(
            ticket_workload(primitive, threads=4, iters=4),
            NO_ATOMIC, seeds=chaos_seeds(),
        )
        report.raise_on_failure()
        for check in report.checks:
            # The guest itself observed zero foreign owner stamps.
            assert check.threaded_results == [0, 0, 0, 0]

    @pytest.mark.parametrize("primitive", PRIMITIVES)
    def test_queue_fifo_per_producer(self, primitive):
        report = run_concurrency_chaos(
            msqueue_workload(primitive, threads=4, items=4),
            NO_ATOMIC, seeds=chaos_seeds(),
        )
        report.raise_on_failure()
        for check in report.checks:
            # Consumer assignment is schedule-dependent: serial-order
            # matching is off and the FIFO/no-loss invariants carry the
            # check instead.
            assert check.serial_order is None
            assert check.serializable
            assert check.replay_identical

    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_elided_lock_regions(self, scenario):
        """The lock builds under the atomic config: monitors compile to
        elided-lock regions and the same oracle must still hold."""
        report = run_concurrency_chaos(
            contention_workload(scenario, "lock", threads=4, iters=3),
            ATOMIC_INLINE, seeds=chaos_seeds()[:2],
        )
        report.raise_on_failure()
        assert any(c.stats.regions_entered > 0 for c in report.checks)

    def test_contended_cas_actually_fails(self):
        """At eight threads on one line the CAS loop must lose races —
        otherwise the scenario is not exercising contention at all."""
        failures = 0
        for seed in chaos_seeds():
            report = run_concurrency_chaos(
                counter_workload("cas", threads=8, iters=8),
                NO_ATOMIC, seeds=(seed,),
            )
            report.raise_on_failure()
            failures += sum(c.stats.cas_failures for c in report.checks)
        assert failures > 0, "no CAS ever failed across the seed matrix"

    def test_invariant_detector_fires_on_racy_counter(self, tmp_path):
        """Strip the synchronization and the invariant battery — not the
        serial-order matcher, which is off — must catch the lost update."""
        def total_is_80(shared, results, heap):
            v = shared.get("v")
            return None if v == 80 else f"lost updates: total {v} != 80"

        workload = replace(
            racy_counter_workload(), name="racy-counter-invariant",
            serializable=False, invariants=[total_is_80],
        )
        report = run_concurrency_chaos(
            workload, NO_ATOMIC, seeds=(0, 1, 2, 3), quantum=(3, 9),
            trace_dir=str(tmp_path),
        )
        failures = report.failures()
        assert failures, "racy counter was never caught by the invariant"
        for check in failures:
            assert check.serializable  # serial matching was opted out
            assert check.invariant_failures
            assert "lost updates" in check.invariant_failures[0]
            assert check.trace_path is not None
            assert check.replay_identical
