"""Differential chaos acceptance: seeded faults vs. clean references.

The PR's acceptance bar: a seeded chaos run (>=3 seeds x >=3 workloads)
injecting interrupts, conflicts, capacity shrinks, spurious asserts, and
guest exceptions produces bit-identical guest heap state and return values
to the fault-free interpreter reference, and a forced perpetual-abort
schedule terminates via the retry-budget fallback with the event visible
in ``ExecStats``.

``CHAOS_SEEDS`` (comma-separated ints) widens the seed matrix in CI.
"""

import os
from collections import Counter

import pytest

from repro.faults import FaultPlan
from repro.harness import run_chaos
from repro.hw import BASELINE_4WIDE
from repro.vm import ATOMIC
from repro.workloads import get_workload

CHAOS_WORKLOADS = ("hsqldb", "xalan", "bloat")


def chaos_seeds():
    raw = os.environ.get("CHAOS_SEEDS", "0,1,2")
    return tuple(int(s) for s in raw.split(",") if s.strip())


class TestSeededChaos:
    @pytest.mark.parametrize("name", CHAOS_WORKLOADS)
    def test_workload_survives_seeded_faults(self, name):
        report = run_chaos(
            get_workload(name), ATOMIC,
            seeds=chaos_seeds(), max_samples=1,
        )
        assert report.checks, "no samples ran"
        report.raise_on_failure()
        # The sweep actually exercised the injector.
        assert report.total_faults_scheduled > 0
        for check in report.checks:
            assert check.results_match_interpreter
            assert check.heap_matches_clean
            assert check.locks_quiescent

    def test_sweep_covers_every_abort_reason(self):
        """Across the matrix, all five architectural abort reasons fire."""
        reasons = Counter()
        for name in CHAOS_WORKLOADS:
            report = run_chaos(
                get_workload(name), ATOMIC,
                seeds=chaos_seeds(), max_samples=1,
            )
            report.raise_on_failure()
            for check in report.checks:
                reasons.update(check.stats.abort_reasons)
        assert set(reasons) == {
            "assert", "overflow", "interrupt", "conflict", "exception"
        }

    def test_same_seed_reproduces_identical_run(self):
        """Determinism: two sweeps with one seed agree fault-for-fault."""
        a = run_chaos(get_workload("hsqldb"), ATOMIC, seeds=(7,),
                      max_samples=1)
        b = run_chaos(get_workload("hsqldb"), ATOMIC, seeds=(7,),
                      max_samples=1)
        assert a.ok and b.ok
        assert [c.faults_scheduled for c in a.checks] \
            == [c.faults_scheduled for c in b.checks]
        assert [dict(c.stats.abort_reasons) for c in a.checks] \
            == [dict(c.stats.abort_reasons) for c in b.checks]
        assert [c.faulted_results for c in a.checks] \
            == [c.faulted_results for c in b.checks]

    def test_heap_matches_interpreter_when_recorded(self):
        """The interpreter-heap comparison is recorded per check; for these
        workloads the optimizer preserves every allocation, so it holds."""
        report = run_chaos(get_workload("hsqldb"), ATOMIC,
                           seeds=chaos_seeds(), max_samples=1)
        report.raise_on_failure()
        assert all(c.heap_matches_interpreter for c in report.checks)


class TestAbortStormTermination:
    def test_conflict_storm_terminates_via_fallback(self):
        """Every region entry conflicts forever; the retry budget and the
        permanent fallback patch keep the run finite and correct."""
        hw = BASELINE_4WIDE.scaled(
            region_retry_budget=4, region_fallback_threshold=64,
        )
        report = run_chaos(
            get_workload("hsqldb"), ATOMIC, seeds=(0,), hw_config=hw,
            plan_factory=lambda seed: FaultPlan.storm("conflict", offset=2),
            max_samples=1,
        )
        report.raise_on_failure()
        (check,) = report.checks
        assert check.stats.conflict_retries > 0
        assert sum(check.stats.region_fallbacks.values()) >= 1
        assert check.stats.regions_suppressed > 0

    def test_assert_storm_terminates_too(self):
        hw = BASELINE_4WIDE.scaled(region_fallback_threshold=16)
        report = run_chaos(
            get_workload("xalan"), ATOMIC, seeds=(0,), hw_config=hw,
            plan_factory=lambda seed: FaultPlan.storm("assert", offset=2),
            max_samples=1,
        )
        report.raise_on_failure()
        (check,) = report.checks
        assert sum(check.stats.region_fallbacks.values()) >= 1

    def test_report_describe_is_informative(self):
        report = run_chaos(get_workload("bloat"), ATOMIC, seeds=(0,),
                           max_samples=1)
        text = report.describe()
        assert "bloat" in text
        assert "failure(s)" in text
