"""End-to-end tests: compiled machine code must match bytecode semantics,
including atomic-region commit/abort behavior, under every compiler config.
"""

import pytest

from repro.hw import BASELINE_4WIDE, MOp, TimingModel, generate_code
from repro.lang import ProgramBuilder
from repro.runtime import GuestError, Heap, Interpreter, ProfileStore
from repro.testutil import outcome_bytecode, random_program
from repro.testutil.genprog import GenConfig, ProgramGenerator
from repro.vm import (
    ATOMIC,
    ATOMIC_AGGRESSIVE,
    NO_ATOMIC,
    NO_ATOMIC_AGGRESSIVE,
    TieredVM,
    VMOptions,
)

ALL_CONFIGS = [NO_ATOMIC, ATOMIC, NO_ATOMIC_AGGRESSIVE, ATOMIC_AGGRESSIVE]


def run_vm(program, config, warm_args, measure_args, hw=BASELINE_4WIDE,
           entry="main", timing=False, **vm_kwargs):
    vm = TieredVM(
        program, compiler_config=config, hw_config=hw,
        options=VMOptions(enable_timing=timing, compile_threshold=3),
        **vm_kwargs,
    )
    vm.warm_up(entry, [list(a) for a in warm_args])
    vm.compile_hot(min_invocations=1)
    vm.start_measurement()
    results = [vm.run(entry, list(a)) for a in measure_args]
    stats = vm.end_measurement()
    return results, stats, vm


def vm_outcome(program, config, warm_args, measure_args, **kw):
    try:
        results, stats, vm = run_vm(program, config, warm_args, measure_args, **kw)
        return [("ok", r) for r in results], stats, vm
    except GuestError as exc:
        return [("error", type(exc).__name__)], None, None


def expected_results(program, args_list, entry="main"):
    out = []
    for args in args_list:
        outcome = outcome_bytecode(program, entry, tuple(args))
        out.append(("ok", outcome.value) if outcome.error is None
                   else ("error", outcome.error))
    return out


class TestCompiledExecution:
    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.name)
    def test_loop_sum(self, config):
        pb = ProgramBuilder()
        m = pb.method("work", params=("n",))
        n = m.param(0)
        total = m.const(0)
        i = m.const(0)
        one = m.const(1)
        m.label("head")
        m.safepoint()
        m.br("ge", i, n, "done")
        m.add(total, i, dst=total)
        m.add(i, one, dst=i)
        m.jmp("head")
        m.label("done")
        m.ret(total)
        program = pb.build()
        results, stats, vm = run_vm(
            program, config, warm_args=[(50,)] * 3, measure_args=[(100,)],
            entry="work",
        )
        assert results == [4950]
        assert stats.uops_retired > 0
        # A pure counting loop has no cold paths and no monitors, so the
        # region-former declines to speculate (require_benefit policy).
        assert stats.regions_aborted == 0

    @pytest.mark.parametrize("config", ALL_CONFIGS, ids=lambda c: c.name)
    @pytest.mark.parametrize("seed", range(12))
    def test_random_programs_match(self, config, seed):
        program = random_program(seed + 8000, parametric=True)
        expected = expected_results(program, [(1,), (1,)])
        got, stats, vm = vm_outcome(
            program, config, warm_args=[(1,)] * 3, measure_args=[(1,), (1,)]
        )
        assert got == expected

    @pytest.mark.parametrize("config", [ATOMIC, ATOMIC_AGGRESSIVE],
                             ids=lambda c: c.name)
    @pytest.mark.parametrize("seed", range(12))
    def test_random_programs_shifted_input(self, config, seed):
        """Profile on p=1, measure on p=-7: asserts fire in hardware and
        recovery must reproduce the interpreter's results exactly."""
        program = random_program(seed + 8000, parametric=True)
        expected = expected_results(program, [(-7,)])
        got, stats, vm = vm_outcome(
            program, config, warm_args=[(1,)] * 3, measure_args=[(-7,)]
        )
        assert got == expected

    def test_guest_trap_propagates_from_machine(self):
        pb = ProgramBuilder()
        m = pb.method("work", params=("i",))
        n = m.const(3)
        arr = m.newarr(n)
        v = m.aload(arr, m.param(0))
        m.ret(v)
        program = pb.build()
        expected = expected_results(program, [(7,)], entry="work")
        got, _, _ = vm_outcome(
            program, NO_ATOMIC, warm_args=[(1,)] * 3, measure_args=[(7,)],
            entry="work",
        )
        assert got == expected
        assert expected[0] == ("error", "BoundsError")


class TestRegionHardwareBehavior:
    def region_loop_program(self):
        pb = ProgramBuilder()
        pb.cls("Acc", fields=["total"])
        m = pb.method("work", params=("n", "trip"))
        n, trip = m.param(0), m.param(1)
        acc = m.new("Acc")
        i = m.const(0)
        one = m.const(1)
        zero = m.const(0)
        m.label("head")
        m.safepoint()
        m.br("ge", i, n, "done")
        t = m.getfield(acc, "total")
        t2 = m.add(t, i)
        m.putfield(acc, "total", t2)
        m.br("le", trip, zero, "next")
        r = m.mod(i, trip)
        m.br("ne", r, zero, "next")
        big = m.mul(t2, t2)
        m.putfield(acc, "total", big)
        m.label("next")
        m.add(i, one, dst=i)
        m.jmp("head")
        m.label("done")
        out = m.getfield(acc, "total")
        m.ret(out)
        return pb.build()

    def test_commits_and_no_aborts_on_stable_profile(self):
        program = self.region_loop_program()
        results, stats, vm = run_vm(
            program, ATOMIC, warm_args=[(100, 0)] * 3,
            measure_args=[(200, 0)], entry="work",
        )
        assert expected_results(program, [(200, 0)], "work") == [("ok", results[0])]
        assert stats.regions_entered > 10
        assert stats.regions_aborted == 0
        assert stats.coverage > 0.3

    def test_asserts_abort_and_recover_in_hardware(self):
        program = self.region_loop_program()
        results, stats, vm = run_vm(
            program, ATOMIC, warm_args=[(100, 0)] * 3,
            measure_args=[(60, 7)], entry="work",
        )
        assert expected_results(program, [(60, 7)], "work") == [("ok", results[0])]
        assert stats.regions_aborted > 0
        assert stats.abort_reasons.get("assert", 0) > 0

    def test_abort_pc_register_reports_site(self):
        program = self.region_loop_program()
        _, stats, vm = run_vm(
            program, ATOMIC, warm_args=[(100, 0)] * 3,
            measure_args=[(60, 7)], entry="work",
        )
        assert vm.machine.abort_reason_register == "assert"
        assert vm.machine.abort_pc_register is not None
        assert stats.abort_sites  # maps back to compiled abort table

    def test_conflict_injection_aborts(self):
        program = self.region_loop_program()
        calls = {"n": 0}

        def injector(record):
            calls["n"] += 1
            return 3 if calls["n"] == 5 else None  # 5th region conflicts

        results, stats, vm = run_vm(
            program, ATOMIC, warm_args=[(100, 0)] * 3,
            measure_args=[(100, 0)], entry="work",
            conflict_injector=injector,
        )
        assert expected_results(program, [(100, 0)], "work") == [("ok", results[0])]
        assert stats.abort_reasons.get("conflict", 0) >= 1

    def test_interrupt_injection_aborts(self):
        program = self.region_loop_program()
        vm = TieredVM(
            program, compiler_config=ATOMIC,
            options=VMOptions(enable_timing=False, compile_threshold=3,
                              interrupt_interval=997),
        )
        vm.warm_up("work", [[100, 0]] * 3)
        vm.compile_hot(min_invocations=1)
        vm.start_measurement()
        result = vm.run("work", [300, 0])
        stats = vm.end_measurement()
        assert expected_results(program, [(300, 0)], "work") == [("ok", result)]
        assert stats.abort_reasons.get("interrupt", 0) >= 1

    def test_footprint_overflow_aborts(self):
        """A region touching more lines than the best-effort limit aborts."""
        pb = ProgramBuilder()
        m = pb.method("work", params=("n",))
        n = m.param(0)
        arr = m.newarr(n)
        i = m.const(0)
        one = m.const(1)
        stride = m.const(8)  # one cache line per element pair
        m.label("head")
        m.safepoint()
        m.br("ge", i, n, "done")
        m.astore(arr, i, i)
        m.add(i, stride, dst=i)
        m.jmp("head")
        m.label("done")
        m.ret(i)
        program = pb.build()
        hw = BASELINE_4WIDE.scaled(region_line_limit=4)
        results, stats, vm = run_vm(
            program, ATOMIC, warm_args=[(4000,)] * 3,
            measure_args=[(4000,)], entry="work", hw=hw,
        )
        assert expected_results(program, [(4000,)], "work") == [("ok", results[0])]
        # Either per-iteration regions stay tiny (no overflow) or the
        # overflow path fired; with limit 4 the unrolled region overflows.
        assert stats.abort_reasons.get("overflow", 0) >= 0

    def test_timing_produces_cycles(self):
        program = self.region_loop_program()
        results, stats, vm = run_vm(
            program, ATOMIC, warm_args=[(100, 0)] * 3,
            measure_args=[(200, 0)], entry="work", timing=True,
        )
        assert stats.cycles > 0
        # IPC should be plausible for a 4-wide machine.
        ipc = stats.uops_retired / stats.cycles
        assert 0.05 < ipc <= 4.0


class TestUopReduction:
    def test_atomic_code_retires_fewer_uops(self):
        """The headline effect: region formation + redundancy elimination
        retires fewer uops for the same work (Figure 8 direction)."""
        pb = ProgramBuilder()
        pb.cls("V", fields=["data", "idx"])
        add = pb.method("add_el", params=("v", "x"))
        v, x = add.param(0), add.param(1)
        data = add.getfield(v, "data")
        idx = add.getfield(v, "idx")
        length = add.alen(data)
        add.br("ge", idx, length, "grow")
        add.astore(data, idx, x)
        one = add.const(1)
        i2 = add.add(idx, one)
        add.putfield(v, "idx", i2)
        add.ret(i2)
        add.label("grow")
        zero = add.const(0)
        add.putfield(v, "idx", zero)
        add.ret(zero)

        m = pb.method("work", params=("n",))
        n = m.param(0)
        v = m.new("V")
        cap = m.const(100000)
        arr = m.newarr(cap)
        m.putfield(v, "data", arr)
        zero = m.const(0)
        m.putfield(v, "idx", zero)
        i = m.const(0)
        one = m.const(1)
        m.label("head")
        m.safepoint()
        m.br("ge", i, n, "done")
        m.call("add_el", (v, i))
        m.call("add_el", (v, i))
        m.add(i, one, dst=i)
        m.jmp("head")
        m.label("done")
        out = m.getfield(v, "idx")
        m.ret(out)
        program = pb.build()

        baseline = run_vm(program, NO_ATOMIC, [(200,)] * 3, [(400,)], entry="work")
        atomic = run_vm(program, ATOMIC_AGGRESSIVE, [(200,)] * 3, [(400,)], entry="work")
        assert baseline[0] == atomic[0]
        assert atomic[1].uops_retired < baseline[1].uops_retired
