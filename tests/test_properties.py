"""Property-based tests (hypothesis) on core invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atomic.boundaries import pi_cost, select_acyclic_boundaries
from repro.runtime import compare, guest_div, guest_mod, wrap_int
from repro.testutil import assert_same_outcome, profiled
from repro.testutil.genprog import GenConfig, ProgramGenerator

int64 = st.integers(min_value=-(2**63), max_value=2**63 - 1)
small_int = st.integers(min_value=-(10**6), max_value=10**6)


class TestGuestArithmetic:
    @given(int64)
    def test_wrap_int_idempotent(self, x):
        assert wrap_int(wrap_int(x)) == wrap_int(x)

    @given(st.integers())
    def test_wrap_int_range(self, x):
        w = wrap_int(x)
        assert -(2**63) <= w < 2**63

    @given(int64, int64)
    def test_wrap_add_matches_modular(self, a, b):
        assert wrap_int(a + b) == wrap_int((a + b) % 2**64)

    @given(small_int, small_int.filter(lambda b: b != 0))
    def test_div_mod_reconstruct(self, a, b):
        q, r = guest_div(a, b), guest_mod(a, b)
        assert q * b + r == a

    @given(small_int, small_int.filter(lambda b: b != 0))
    def test_mod_sign_follows_dividend(self, a, b):
        r = guest_mod(a, b)
        assert r == 0 or (r > 0) == (a > 0)

    @given(small_int, small_int)
    def test_compare_total_order(self, a, b):
        assert compare("lt", a, b) == (not compare("ge", a, b))
        assert compare("le", a, b) == (not compare("gt", a, b))
        assert compare("eq", a, b) == (not compare("ne", a, b))


class TestEquationOne:
    @given(st.floats(min_value=1.0, max_value=10_000.0),
           st.floats(min_value=1.0, max_value=10_000.0))
    def test_pi_cost_nonnegative(self, size, target):
        assert pi_cost(size, target) >= 0.0

    @given(st.floats(min_value=1.0, max_value=10_000.0))
    def test_pi_cost_zero_only_at_target(self, target):
        assert pi_cost(target, target) == 0.0
        assert pi_cost(target * 2, target) > 0.0

    @given(st.floats(min_value=10.0, max_value=1000.0),
           st.floats(min_value=1.0, max_value=500.0))
    def test_pi_symmetric_in_ratio(self, target, delta):
        # Π((R-r)²/(R·r)) penalizes r = R·k and r = R/k equally.
        k = 1.0 + delta / target
        lo = pi_cost(target / k, target)
        hi = pi_cost(target * k, target)
        assert abs(lo - hi) < 1e-6 * max(lo, hi, 1.0)


class TestDifferentialProperty:
    """The heavyweight oracle: random programs through the whole compiler."""

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6),
           st.integers(min_value=-10, max_value=10))
    def test_region_formation_preserves_semantics(self, seed, arg):
        from repro.atomic import form_regions
        from repro.opt import optimize

        program = ProgramGenerator(
            GenConfig(seed=seed, parametric=True, max_statements=10)
        ).generate()
        profiles = profiled(program, args=(1,))

        def transform(graph, _program):
            form_regions(graph)
            optimize(graph)

        assert_same_outcome(program, transform=transform, args=(arg,),
                            profiles=profiles)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_compiled_machine_matches_interpreter(self, seed):
        from repro.testutil import outcome_bytecode
        from repro.vm import ATOMIC_AGGRESSIVE, TieredVM, VMOptions
        from repro.runtime import GuestError

        program = ProgramGenerator(
            GenConfig(seed=seed, parametric=True, max_statements=10)
        ).generate()
        expected = outcome_bytecode(program, args=(-3,))
        vm = TieredVM(program, ATOMIC_AGGRESSIVE,
                      options=VMOptions(enable_timing=False,
                                        compile_threshold=1))
        vm.warm_up("main", [[1]] * 3)
        vm.compile_hot(min_invocations=1)
        try:
            value = vm.run("main", [-3])
            got = (value, None)
        except GuestError as exc:
            got = (None, type(exc).__name__)
        assert got == (expected.value, expected.error)


def _atomic_reference(initial, ops):
    """Pure-Python sequential model of the atomic uops on one field.

    Mirrors the architectural contract: FAA returns the old value, CAS
    returns 1/0 and stores on match, LL loads and reserves, SC succeeds
    iff the reservation is live (cleared either way), and a thread's own
    stores never kill its own reservation — only other threads' do, which
    is unobservable single-threaded.  The fold hashes every uop result and
    the final field value so any divergence shows up in one integer.
    """
    value = initial
    reserved = False
    acc = 0
    for op in ops:
        kind = op[0]
        if kind == "faa":
            result, value = value, wrap_int(value + op[1])
        elif kind == "cas":
            result = 1 if value == op[1] else 0
            if result:
                value = op[2]
        elif kind == "ll":
            result, reserved = value, True
        elif kind == "sc":
            result, reserved = (1 if reserved else 0), False
            if result:
                value = op[1]
        else:  # put: plain store; own stores leave own reservation live
            value, result = op[1], 0
        acc = wrap_int(acc * 31 + result)
    return wrap_int(acc * 31 + value)


def _atomic_program(ops):
    """Guest program applying ``ops`` to one field, folding as above."""
    from repro.lang import ProgramBuilder

    pb = ProgramBuilder()
    pb.cls("Cell", fields=["n"])
    w = pb.method("work", params=("init",))
    init = w.param(0)
    cell = w.new("Cell")
    w.putfield(cell, "n", init)
    prime = w.const(31)
    acc = w.const(0)
    for op in ops:
        kind = op[0]
        if kind == "faa":
            delta = w.const(op[1])
            result = w.faa(cell, "n", delta)
        elif kind == "cas":
            expected = w.const(op[1])
            update = w.const(op[2])
            result = w.cas(cell, "n", expected, update)
        elif kind == "ll":
            result = w.ll(cell, "n")
        elif kind == "sc":
            update = w.const(op[1])
            result = w.sc(cell, "n", update)
        else:  # put
            update = w.const(op[1])
            w.putfield(cell, "n", update)
            result = w.const(0)
        scaled = w.mul(acc, prime)
        w.add(scaled, result, dst=acc)
    final = w.getfield(cell, "n")
    scaled = w.mul(acc, prime)
    out = w.add(scaled, final)
    w.ret(out)
    return pb.build()


_atomic_val = st.integers(min_value=0, max_value=3)
_atomic_ops = st.lists(
    st.one_of(
        st.tuples(st.just("faa"), st.integers(min_value=-2, max_value=3)),
        st.tuples(st.just("cas"), _atomic_val, _atomic_val),
        st.tuples(st.just("ll")),
        st.tuples(st.just("sc"), _atomic_val),
        st.tuples(st.just("put"), _atomic_val),
    ),
    min_size=1, max_size=16,
)


class TestAtomicUopProperties:
    """Every atomic uop against the sequential reference model, through
    every execution tier, and under multi-threaded contention."""

    @given(_atomic_ops, _atomic_val)
    def test_interpreter_matches_reference(self, ops, initial):
        from repro.testutil import outcome_bytecode

        outcome = outcome_bytecode(_atomic_program(ops), entry="work",
                                   args=(initial,))
        assert outcome.error is None
        assert outcome.value == _atomic_reference(initial, ops)

    @settings(max_examples=25, deadline=None)
    @given(_atomic_ops, _atomic_val)
    def test_region_formation_preserves_atomics(self, ops, initial):
        from repro.atomic import form_regions
        from repro.opt import optimize

        program = _atomic_program(ops)
        profiles = profiled(program, entry="work", args=(1,))

        def transform(graph, _program):
            form_regions(graph)
            optimize(graph)

        assert_same_outcome(program, transform=transform, entry="work",
                            args=(initial,), profiles=profiles)

    @settings(max_examples=15, deadline=None)
    @given(_atomic_ops, _atomic_val,
           st.sampled_from(["interpretive", "predecoded"]))
    def test_machine_tiers_match_reference(self, ops, initial, dispatch):
        from repro.vm import ATOMIC_AGGRESSIVE, TieredVM, VMOptions

        program = _atomic_program(ops)
        vm = TieredVM(program, ATOMIC_AGGRESSIVE,
                      options=VMOptions(enable_timing=False,
                                        compile_threshold=1,
                                        dispatch=dispatch))
        vm.warm_up("work", [[1]] * 3)
        vm.compile_hot(min_invocations=1)
        assert vm.run("work", [initial]) == _atomic_reference(initial, ops)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6),
           st.sampled_from(["faa", "cas", "llsc", "lock"]),
           st.integers(min_value=2, max_value=6),
           st.integers(min_value=1, max_value=6))
    def test_threaded_counter_never_loses_updates(self, seed, primitive,
                                                  threads, iters):
        from repro.runtime import SchedulePlan
        from repro.vm import NO_ATOMIC, TieredVM, VMOptions
        from repro.workloads.contention import build_counter

        program = build_counter(primitive)
        vm = TieredVM(program, NO_ATOMIC,
                      options=VMOptions(enable_timing=False,
                                        compile_threshold=3))
        warm = vm.run("setup")
        vm.warm_up("worker", [[warm, 2]] * 3)
        vm.compile_hot(min_invocations=1)
        counter = vm.run("setup")
        vm.run_threads(
            [("worker", [counter, iters], f"t{tid}")
             for tid in range(threads)],
            plan=SchedulePlan(seed=seed, quantum=(4, 16)),
        )
        assert counter.get("n") == threads * iters
        assert not vm.heap.reservations


class TestPredictorProperties:
    @given(st.lists(st.booleans(), min_size=1, max_size=200))
    def test_counts_consistent(self, outcomes):
        from repro.hw import CombiningPredictor

        pred = CombiningPredictor(1024, 256)
        for taken in outcomes:
            pred.predict_and_update(0x1234, taken)
        assert pred.predictions == len(outcomes)
        assert 0 <= pred.mispredictions <= pred.predictions


class TestCacheProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1,
                    max_size=300))
    def test_hits_plus_misses(self, addresses):
        from repro.hw.cache import CacheLevel
        from repro.hw.config import CacheConfig

        cache = CacheLevel(CacheConfig(4096, 2, 64, 4))
        for address in addresses:
            cache.access(address)
        assert cache.hits + cache.misses == len(addresses)

    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), min_size=1,
                    max_size=100))
    def test_ways_never_exceeded(self, addresses):
        from repro.hw.cache import CacheLevel
        from repro.hw.config import CacheConfig

        cache = CacheLevel(CacheConfig(1024, 2, 64, 4))
        for address in addresses:
            cache.access(address)
        assert all(len(ways) <= 2 for ways in cache.sets)
