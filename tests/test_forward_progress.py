"""Forward-progress guarantee: retry budgets, backoff, permanent fallback.

The paper (§3, §5) requires that the hardware "guarantee forward progress":
a region that aborts persistently must not live-lock the program.  The
machine retries conflict aborts from the checkpoint (with exponential
backoff) up to a budget, then takes the software recovery path; a region
whose aborts form a long enough streak is patched so its ``aregion_begin``
jumps straight to the alt-PC forever after.
"""

import pytest

from repro.faults import FaultInjector, FaultPlan
from repro.hw import BASELINE_4WIDE
from repro.lang import ProgramBuilder
from repro.runtime import Interpreter
from repro.vm import ATOMIC, TieredVM, VMOptions

from test_faults import region_loop_program


def run(program, hw, fault_plan=None, measure=(200, 0), timing=False):
    vm = TieredVM(
        program, compiler_config=ATOMIC, hw_config=hw,
        options=VMOptions(enable_timing=timing, compile_threshold=3),
        fault_plan=fault_plan,
    )
    vm.warm_up("work", [[100, 0]] * 3)
    vm.compile_hot(min_invocations=1)
    vm.start_measurement()
    result = vm.run("work", list(measure))
    stats = vm.end_measurement()
    return result, stats, vm


def expected(program, args):
    interp = Interpreter(program)
    return interp.invoke(program.resolve_static("work"), list(args))


class TestConflictRetry:
    def test_single_conflict_retries_within_budget(self):
        """One conflicting region entry: retried, then it succeeds."""
        program = region_loop_program()
        hw = BASELINE_4WIDE.scaled(region_retry_budget=4)
        plan = FaultPlan.single("conflict", region_index=5, offset=2)
        result, stats, _ = run(program, hw, plan)
        assert result == expected(program, (200, 0))
        # The retry redraws the schedule; the one-shot event is spent, so
        # exactly one conflict abort and one transparent retry happen.
        assert stats.abort_reasons["conflict"] == 1
        assert stats.conflict_retries == 1
        assert stats.region_fallbacks == {}

    def test_persistent_conflict_exhausts_budget_then_recovers(self):
        """A region that conflicts on every attempt burns budget+1 aborts,
        then takes the software recovery path — it never live-locks."""
        program = region_loop_program()
        hw = BASELINE_4WIDE.scaled(
            region_retry_budget=3, region_fallback_threshold=None,
        )
        plan = FaultPlan.storm("conflict", offset=2)
        result, stats, _ = run(program, hw, plan, measure=(40, 0))
        assert result == expected(program, (40, 0))
        entries = stats.entries_by_region[("work", 0)]
        aborts = stats.aborts_by_region[("work", 0)]
        # Every original entry retries 3 times then falls back: 4 aborts per
        # logical entry, and all entries abort.
        assert aborts == entries
        assert stats.conflict_retries == (aborts // 4) * 3

    def test_exponential_backoff_accounted(self):
        program = region_loop_program()
        hw = BASELINE_4WIDE.scaled(
            region_retry_budget=3, region_backoff_cycles=10,
            region_fallback_threshold=None,
        )
        plan = FaultPlan.single("conflict", region_index=2, offset=2)

        # The one-shot event is consumed by the first attempt; to keep the
        # conflict persistent across retries use a storm limited by measure
        # size instead.
        plan = FaultPlan.storm("conflict", offset=2)
        result, stats, _ = run(program, hw, plan, measure=(2, 0))
        assert result == expected(program, (2, 0))
        # Each logical entry stalls 10 + 20 + 40 cycles before giving up.
        per_entry = 10 + 20 + 40
        logical_entries = stats.conflict_retries // 3
        assert stats.backoff_cycles == per_entry * logical_entries

    def test_backoff_charged_to_timing(self):
        program = region_loop_program()
        hw = BASELINE_4WIDE.scaled(
            region_retry_budget=2, region_backoff_cycles=1000,
            region_fallback_threshold=None,
        )
        plan = FaultPlan.storm("conflict", offset=2)
        _, with_backoff, _ = run(program, hw, plan, measure=(20, 0),
                                 timing=True)
        hw_free = hw.scaled(region_backoff_cycles=0)
        _, without, _ = run(program, hw_free, plan, measure=(20, 0),
                            timing=True)
        assert with_backoff.backoff_cycles > 0
        assert without.backoff_cycles == 0
        assert with_backoff.cycles > without.cycles

    def test_commit_resets_retry_state(self):
        """Spaced-out conflicts never accumulate toward the budget."""
        program = region_loop_program()
        hw = BASELINE_4WIDE.scaled(region_retry_budget=1,
                                   region_fallback_threshold=4)
        # One conflict every 10th region entry: commits in between reset
        # both the retry count and the abort streak.
        events = tuple(
            FaultPlan.single("conflict", region_index=i, offset=2).events[0]
            for i in range(10, 100, 10)
        )
        plan = FaultPlan(events=events)
        result, stats, _ = run(program, hw, plan)
        assert result == expected(program, (200, 0))
        assert stats.abort_reasons["conflict"] >= 1
        assert stats.region_fallbacks == {}  # streaks never reached 4


class TestPermanentFallback:
    def test_abort_storm_escalates_to_fallback(self):
        """The acceptance scenario: a perpetual-abort schedule terminates
        via the retry-budget fallback, visible in ExecStats."""
        program = region_loop_program()
        hw = BASELINE_4WIDE.scaled(
            region_retry_budget=2, region_fallback_threshold=5,
        )
        plan = FaultPlan.storm("conflict", offset=2)
        result, stats, vm = run(program, hw, plan)
        assert result == expected(program, (200, 0))
        assert stats.region_fallbacks == {("work", 0): 1}
        assert stats.regions_suppressed > 0
        # After the patch no further region entries (or faults) happen.
        record = vm.compiled["work"]
        assert record.compiled.disabled_regions == {0}
        # 5 streak entries x (2 retries + 1 fallback abort) = 15 aborts.
        assert stats.regions_aborted == 15

    def test_assert_storm_also_escalates(self):
        """Non-conflict aborts skip the retry budget but still escalate."""
        program = region_loop_program()
        hw = BASELINE_4WIDE.scaled(region_fallback_threshold=5)
        plan = FaultPlan.storm("assert", offset=2)
        result, stats, _ = run(program, hw, plan)
        assert result == expected(program, (200, 0))
        assert stats.abort_reasons["assert"] == 5
        assert stats.region_fallbacks == {("work", 0): 1}
        assert stats.conflict_retries == 0

    def test_threshold_none_disables_escalation(self):
        program = region_loop_program()
        hw = BASELINE_4WIDE.scaled(
            region_retry_budget=0, region_fallback_threshold=None,
        )
        plan = FaultPlan.storm("assert", offset=2)
        result, stats, _ = run(program, hw, plan, measure=(50, 0))
        assert result == expected(program, (50, 0))
        assert stats.region_fallbacks == {}
        assert stats.regions_suppressed == 0
        # Every entry aborted; recovery always made progress regardless.
        assert stats.regions_aborted == stats.regions_entered

    def test_recompilation_preserves_the_patch(self):
        """The patch is a durable forward-progress decision: recompiling
        (adaptively or otherwise) carries it onto the new code object."""
        program = region_loop_program()
        hw = BASELINE_4WIDE.scaled(region_retry_budget=0,
                                   region_fallback_threshold=3)
        vm = TieredVM(
            program, compiler_config=ATOMIC, hw_config=hw,
            options=VMOptions(enable_timing=False, compile_threshold=3),
            fault_plan=FaultPlan.storm("conflict", offset=2),
        )
        vm.warm_up("work", [[100, 0]] * 3)
        vm.compile_hot(min_invocations=1)
        vm.start_measurement()
        vm.run("work", [100, 0])
        vm.end_measurement()
        assert vm.compiled["work"].compiled.disabled_regions == {0}

        vm.recompile("work", set())
        fresh = vm.compiled["work"].compiled
        assert fresh.disabled_regions == {0}

        # The suppressed region must stay suppressed on the fresh code:
        # re-running enters no regions and injects no further faults.
        vm.start_measurement()
        result = vm.run("work", [100, 0])
        stats = vm.end_measurement()
        assert result == expected(program, (100, 0))
        assert stats.regions_entered == 0
        assert stats.regions_suppressed > 0

    def test_summary_exposes_forward_progress_counters(self):
        program = region_loop_program()
        hw = BASELINE_4WIDE.scaled(region_retry_budget=1,
                                   region_fallback_threshold=3)
        plan = FaultPlan.storm("conflict", offset=2)
        _, stats, _ = run(program, hw, plan)
        summary = stats.summary()
        assert summary["region_fallbacks"] == 1
        assert summary["conflict_retries"] > 0
        assert summary["regions_suppressed"] > 0


class TestProgressStateIsolation:
    def test_streaks_are_per_region_code(self):
        """Two regions in different methods escalate independently."""
        pb = ProgramBuilder()
        pb.cls("Acc", fields=["total"])
        for name in ("work", "work2"):
            m = pb.method(name, params=("n", "trip"))
            n, trip = m.param(0), m.param(1)
            acc = m.new("Acc")
            i = m.const(0)
            one = m.const(1)
            zero = m.const(0)
            m.label("head")
            m.safepoint()
            m.br("ge", i, n, "done")
            t = m.getfield(acc, "total")
            t2 = m.add(t, i)
            m.putfield(acc, "total", t2)
            m.br("le", trip, zero, "next")
            r = m.mod(i, trip)
            m.br("ne", r, zero, "next")
            big = m.mul(t2, t2)
            m.putfield(acc, "total", big)
            m.label("next")
            m.add(i, one, dst=i)
            m.jmp("head")
            m.label("done")
            out = m.getfield(acc, "total")
            m.ret(out)
        program = pb.build()
        hw = BASELINE_4WIDE.scaled(region_retry_budget=0,
                                   region_fallback_threshold=3)
        vm = TieredVM(
            program, compiler_config=ATOMIC, hw_config=hw,
            options=VMOptions(enable_timing=False, compile_threshold=3),
            fault_injector=FaultInjector(FaultPlan.storm("assert", offset=2)),
        )
        vm.warm_up("work", [[100, 0]] * 3)
        vm.warm_up("work2", [[100, 0]] * 3)
        vm.compile_hot(min_invocations=1)
        vm.start_measurement()
        r1 = vm.run("work", [50, 0])
        r2 = vm.run("work2", [50, 0])
        stats = vm.end_measurement()
        assert r1 == r2 == expected(program, (50, 0))
        assert stats.region_fallbacks[("work", 0)] == 1
        assert stats.region_fallbacks[("work2", 0)] == 1


class TestPredecodeInvalidation:
    """The pre-decoded dispatch cache must never outlive a forward-progress
    patch: ``disable_region`` invalidates it, and the rebuilt fast path
    honours the suppression."""

    def _patched_vm(self, dispatch):
        program = region_loop_program()
        hw = BASELINE_4WIDE.scaled(region_retry_budget=0,
                                   region_fallback_threshold=3)
        vm = TieredVM(
            program, compiler_config=ATOMIC, hw_config=hw,
            options=VMOptions(enable_timing=False, compile_threshold=3,
                              dispatch=dispatch),
            fault_plan=FaultPlan.storm("conflict", offset=2),
        )
        vm.warm_up("work", [[100, 0]] * 3)
        vm.compile_hot(min_invocations=1)
        vm.start_measurement()
        result = vm.run("work", [100, 0])
        vm.end_measurement()
        return program, vm, result

    def test_disable_region_invalidates_predecode_cache(self):
        program, vm, result = self._patched_vm("predecoded")
        compiled = vm.compiled["work"].compiled
        assert result == expected(program, (100, 0))
        assert compiled.disabled_regions == {0}
        # The fast path executed this method, then the storm escalated to
        # a patch: disable_region must have dropped the pre-decoded form.
        assert compiled._predecoded is None

        # The next fast-path run rebuilds the cache against the patched
        # region table: no region entries, correct result.
        vm.start_measurement()
        again = vm.run("work", [100, 0])
        stats = vm.end_measurement()
        assert again == result
        assert stats.regions_entered == 0
        assert stats.regions_suppressed > 0
        assert compiled._predecoded is not None

    def test_patched_fast_and_slow_paths_agree(self):
        """Post-patch behaviour is dispatch-invariant: the suppressed
        region suppresses identically either way."""
        outcomes = {}
        for dispatch in ("predecoded", "interpretive"):
            program, vm, result = self._patched_vm(dispatch)
            vm.start_measurement()
            again = vm.run("work", [100, 0])
            stats = vm.end_measurement()
            outcomes[dispatch] = (result, again, stats.summary())
        assert outcomes["predecoded"] == outcomes["interpretive"]

    def test_adaptive_recompile_keeps_regions_quiet(self):
        """An AdaptiveController recompile after an assert storm must not
        resurrect aborting regions — across the recompile *and* the fresh
        pre-decode cache, the method stays on the non-speculative path."""
        from repro.vm import AdaptiveController

        program = region_loop_program()
        # Genuine assert aborts: the cold path (every iteration, trip=1)
        # was never profiled, so its branch became a region assert.
        hw = BASELINE_4WIDE.scaled(region_fallback_threshold=None)
        vm = TieredVM(
            program, compiler_config=ATOMIC, hw_config=hw,
            options=VMOptions(enable_timing=False, compile_threshold=3,
                              dispatch="predecoded"),
        )
        vm.warm_up("work", [[100, 0]] * 3)
        vm.compile_hot(min_invocations=1)
        vm.start_measurement()
        first = vm.run("work", [60, 1])
        stats = vm.end_measurement()
        assert first == expected(program, (60, 1))
        assert stats.abort_reasons["assert"] > 0

        controller = AdaptiveController(
            vm, abort_rate_threshold=0.01, min_region_entries=1,
        )
        decisions = controller.poll()
        assert decisions, "the assert storm must trigger a recompile"
        assert decisions[0].method == "work"

        # Post-recompile: same results, and the offending assert is gone —
        # no aborts on the rebuilt (and freshly pre-decoded) code.
        vm.start_measurement()
        again = vm.run("work", [60, 1])
        stats = vm.end_measurement()
        assert again == first
        assert stats.regions_aborted == 0
