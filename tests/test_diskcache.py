"""Disk-cache hardening: checksummed entries, quarantine, non-fatal store.

Satellite of ISSUE 7: ``store`` must never let a pickling failure escape
(the original bug: only ``OSError`` was caught, so an unpicklable
``RunResult`` variant crashed the whole sweep), and ``load`` must treat
any byte-level corruption as a quarantined miss, never an exception.
"""

from __future__ import annotations

import os
import pickle
import threading

import pytest

from repro.harness import diskcache


@pytest.fixture()
def cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_DISK_CACHE_DIR", str(tmp_path))
    return tmp_path


def _entry_files(cache):
    return sorted(cache.glob("*.pickle"))


class TestRoundTrip:
    def test_store_then_load(self, cache):
        key = ("bench", "fop", 2, "htm")
        diskcache.store(key, {"throughput": 1.25, "aborts": [1, 2, 3]})
        assert diskcache.load(key) == {"throughput": 1.25,
                                       "aborts": [1, 2, 3]}

    def test_miss_returns_none(self, cache):
        assert diskcache.load(("never", "stored")) is None

    def test_keys_do_not_collide(self, cache):
        diskcache.store(("a",), 1)
        diskcache.store(("b",), 2)
        assert diskcache.load(("a",)) == 1
        assert diskcache.load(("b",)) == 2

    def test_entry_is_checksummed_on_disk(self, cache):
        diskcache.store(("k",), "value")
        (entry,) = _entry_files(cache)
        data = entry.read_bytes()
        assert data.startswith(diskcache._MAGIC)
        payload = data[len(diskcache._MAGIC) + diskcache._DIGEST_SIZE:]
        assert pickle.loads(payload) == "value"


class TestStoreNeverRaises:
    def test_unpicklable_result_is_swallowed(self, cache):
        """Regression: a PicklingError must not escape ``store``."""
        diskcache.store(("bad",), threading.Lock())  # must not raise
        assert diskcache.load(("bad",)) is None

    def test_unpicklable_result_leaves_no_litter(self, cache):
        diskcache.store(("bad",), lambda: None)  # local lambda: unpicklable
        assert list(cache.glob("*.tmp")) == []
        assert _entry_files(cache) == []

    def test_unwritable_directory_is_swallowed(self, cache, monkeypatch):
        blocker = cache / "not-a-dir"
        blocker.write_text("a file where the cache dir should be")
        monkeypatch.setenv("REPRO_DISK_CACHE_DIR", str(blocker / "cache"))
        diskcache.store(("k",), 1)  # mkdir fails (OSError): swallowed
        assert diskcache.load(("k",)) is None

    def test_good_store_after_bad_store(self, cache):
        diskcache.store(("bad",), threading.Lock())
        diskcache.store(("good",), 42)
        assert diskcache.load(("good",)) == 42


class TestQuarantine:
    def _stored_entry(self, cache, key=("victim",), value="payload"):
        diskcache.store(key, value)
        (entry,) = _entry_files(cache)
        return key, entry

    def test_bitflip_is_quarantined(self, cache):
        key, entry = self._stored_entry(cache)
        data = bytearray(entry.read_bytes())
        data[-1] ^= 0xFF
        entry.write_bytes(bytes(data))
        before = diskcache.quarantined_entries
        assert diskcache.load(key) is None
        assert diskcache.quarantined_entries == before + 1
        assert not entry.exists()
        assert entry.with_suffix(".corrupt").exists()

    def test_quarantined_entry_is_never_reread(self, cache):
        key, entry = self._stored_entry(cache)
        entry.write_bytes(diskcache._MAGIC + b"\0" * 40)
        assert diskcache.load(key) is None
        # second load is a plain miss: the file moved aside
        before = diskcache.quarantined_entries
        assert diskcache.load(key) is None
        assert diskcache.quarantined_entries == before

    def test_truncated_entry(self, cache):
        key, entry = self._stored_entry(cache)
        entry.write_bytes(entry.read_bytes()[:len(diskcache._MAGIC) + 10])
        assert diskcache.load(key) is None
        assert entry.with_suffix(".corrupt").exists()

    def test_empty_entry(self, cache):
        key, entry = self._stored_entry(cache)
        entry.write_bytes(b"")
        assert diskcache.load(key) is None
        assert entry.with_suffix(".corrupt").exists()

    def test_legacy_unchecksummed_entry(self, cache):
        """Pre-magic raw-pickle files are quarantined on sight."""
        key, entry = self._stored_entry(cache)
        entry.write_bytes(pickle.dumps("legacy raw pickle"))
        assert diskcache.load(key) is None
        assert entry.with_suffix(".corrupt").exists()

    def test_checksum_holds_but_payload_unloadable(self, cache):
        """A valid checksum over garbage pickle bytes still quarantines."""
        key, entry = self._stored_entry(cache)
        payload = b"not a pickle at all"
        import hashlib
        entry.write_bytes(diskcache._MAGIC
                          + hashlib.sha256(payload).digest() + payload)
        before = diskcache.quarantined_entries
        assert diskcache.load(key) is None
        assert diskcache.quarantined_entries == before + 1

    def test_overwrite_heals_quarantined_key(self, cache):
        key, entry = self._stored_entry(cache)
        entry.write_bytes(b"junk")
        assert diskcache.load(key) is None
        diskcache.store(key, "healed")
        assert diskcache.load(key) == "healed"


class TestEnabledFlag:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
        assert diskcache.enabled(True) is True
        assert diskcache.enabled(False) is False
        assert diskcache.enabled() is False
        monkeypatch.setenv("REPRO_DISK_CACHE", "1")
        assert diskcache.enabled() is True
        assert diskcache.enabled(False) is False
