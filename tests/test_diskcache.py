"""Disk-cache hardening: checksummed entries, quarantine, non-fatal store.

Satellite of ISSUE 7: ``store`` must never let a pickling failure escape
(the original bug: only ``OSError`` was caught, so an unpicklable
``RunResult`` variant crashed the whole sweep), and ``load`` must treat
any byte-level corruption as a quarantined miss, never an exception.
"""

from __future__ import annotations

import os
import pickle
import threading

import pytest

from repro.harness import diskcache


@pytest.fixture()
def cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_DISK_CACHE_DIR", str(tmp_path))
    return tmp_path


def _entry_files(cache):
    return sorted(cache.glob("*.pickle"))


class TestRoundTrip:
    def test_store_then_load(self, cache):
        key = ("bench", "fop", 2, "htm")
        diskcache.store(key, {"throughput": 1.25, "aborts": [1, 2, 3]})
        assert diskcache.load(key) == {"throughput": 1.25,
                                       "aborts": [1, 2, 3]}

    def test_miss_returns_none(self, cache):
        assert diskcache.load(("never", "stored")) is None

    def test_keys_do_not_collide(self, cache):
        diskcache.store(("a",), 1)
        diskcache.store(("b",), 2)
        assert diskcache.load(("a",)) == 1
        assert diskcache.load(("b",)) == 2

    def test_entry_is_checksummed_on_disk(self, cache):
        diskcache.store(("k",), "value")
        (entry,) = _entry_files(cache)
        data = entry.read_bytes()
        assert data.startswith(diskcache._MAGIC)
        payload = data[len(diskcache._MAGIC) + diskcache._DIGEST_SIZE:]
        assert pickle.loads(payload) == "value"


class TestStoreNeverRaises:
    def test_unpicklable_result_is_swallowed(self, cache):
        """Regression: a PicklingError must not escape ``store``."""
        diskcache.store(("bad",), threading.Lock())  # must not raise
        assert diskcache.load(("bad",)) is None

    def test_unpicklable_result_leaves_no_litter(self, cache):
        diskcache.store(("bad",), lambda: None)  # local lambda: unpicklable
        assert list(cache.glob("*.tmp")) == []
        assert _entry_files(cache) == []

    def test_unwritable_directory_is_swallowed(self, cache, monkeypatch):
        blocker = cache / "not-a-dir"
        blocker.write_text("a file where the cache dir should be")
        monkeypatch.setenv("REPRO_DISK_CACHE_DIR", str(blocker / "cache"))
        diskcache.store(("k",), 1)  # mkdir fails (OSError): swallowed
        assert diskcache.load(("k",)) is None

    def test_good_store_after_bad_store(self, cache):
        diskcache.store(("bad",), threading.Lock())
        diskcache.store(("good",), 42)
        assert diskcache.load(("good",)) == 42


class TestQuarantine:
    def _stored_entry(self, cache, key=("victim",), value="payload"):
        diskcache.store(key, value)
        (entry,) = _entry_files(cache)
        return key, entry

    def test_bitflip_is_quarantined(self, cache):
        key, entry = self._stored_entry(cache)
        data = bytearray(entry.read_bytes())
        data[-1] ^= 0xFF
        entry.write_bytes(bytes(data))
        before = diskcache.quarantined_entries
        assert diskcache.load(key) is None
        assert diskcache.quarantined_entries == before + 1
        assert not entry.exists()
        assert entry.with_suffix(".corrupt").exists()

    def test_quarantined_entry_is_never_reread(self, cache):
        key, entry = self._stored_entry(cache)
        entry.write_bytes(diskcache._MAGIC + b"\0" * 40)
        assert diskcache.load(key) is None
        # second load is a plain miss: the file moved aside
        before = diskcache.quarantined_entries
        assert diskcache.load(key) is None
        assert diskcache.quarantined_entries == before

    def test_truncated_entry(self, cache):
        key, entry = self._stored_entry(cache)
        entry.write_bytes(entry.read_bytes()[:len(diskcache._MAGIC) + 10])
        assert diskcache.load(key) is None
        assert entry.with_suffix(".corrupt").exists()

    def test_empty_entry(self, cache):
        key, entry = self._stored_entry(cache)
        entry.write_bytes(b"")
        assert diskcache.load(key) is None
        assert entry.with_suffix(".corrupt").exists()

    def test_legacy_unchecksummed_entry(self, cache):
        """Pre-magic raw-pickle files are quarantined on sight."""
        key, entry = self._stored_entry(cache)
        entry.write_bytes(pickle.dumps("legacy raw pickle"))
        assert diskcache.load(key) is None
        assert entry.with_suffix(".corrupt").exists()

    def test_checksum_holds_but_payload_unloadable(self, cache):
        """A valid checksum over garbage pickle bytes still quarantines."""
        key, entry = self._stored_entry(cache)
        payload = b"not a pickle at all"
        import hashlib
        entry.write_bytes(diskcache._MAGIC
                          + hashlib.sha256(payload).digest() + payload)
        before = diskcache.quarantined_entries
        assert diskcache.load(key) is None
        assert diskcache.quarantined_entries == before + 1

    def test_overwrite_heals_quarantined_key(self, cache):
        key, entry = self._stored_entry(cache)
        entry.write_bytes(b"junk")
        assert diskcache.load(key) is None
        diskcache.store(key, "healed")
        assert diskcache.load(key) == "healed"


class TestAtomicPublish:
    """ISSUE 9 satellite: SIGKILL-style truncated writes are impossible
    to observe.  ``store`` publishes with temp-file + fsync +
    ``os.replace``, so the final path only ever holds a complete record
    — the checksum is a second line of defence, not the first."""

    def test_fsync_happens_before_publish(self, cache, monkeypatch):
        calls = []
        real_fsync, real_replace = os.fsync, os.replace
        monkeypatch.setattr(
            os, "fsync", lambda fd: (calls.append("fsync"), real_fsync(fd)))
        monkeypatch.setattr(
            os, "replace",
            lambda src, dst: (calls.append("replace"),
                              real_replace(src, dst)))
        diskcache.store(("k",), "value")
        assert calls == ["fsync", "replace"]

    def test_record_is_complete_at_publish_time(self, cache, monkeypatch):
        """At the instant of the rename — the only moment an entry can
        appear at its final path — the temp file already holds the full
        verified record.  A SIGKILL one instruction earlier leaves *no*
        entry; one instruction later leaves the whole one."""
        captured = {}
        real_replace = os.replace

        def capture_then_replace(src, dst):
            captured["bytes"] = open(src, "rb").read()
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", capture_then_replace)
        diskcache.store(("k",), {"payload": list(range(64))})
        assert diskcache._verified_payload(captured["bytes"]) is not None
        assert pickle.loads(
            diskcache._verified_payload(captured["bytes"])
        ) == {"payload": list(range(64))}

    def test_kill_before_publish_leaves_no_entry(self, cache, monkeypatch):
        """Simulated SIGKILL between write and rename: the final path
        never comes into existence, so a reader sees a clean miss — not
        a truncated entry, not a quarantine."""
        monkeypatch.setattr(os, "replace",
                            lambda src, dst: None)  # the rename never ran
        before = diskcache.quarantined_entries
        diskcache.store(("k",), "value")
        assert _entry_files(cache) == []
        assert diskcache.load(("k",)) is None
        assert diskcache.quarantined_entries == before  # miss, not corrupt

    def test_kill_during_write_leaves_no_entry(self, cache, monkeypatch):
        """Simulated death mid-write (the fsync never completes): no
        entry, and no temp litter either on the exception path."""
        def dying_fsync(fd):
            raise OSError("simulated power loss")

        monkeypatch.setattr(os, "fsync", dying_fsync)
        diskcache.store(("k",), "value")
        assert _entry_files(cache) == []
        assert list(cache.glob("*.tmp")) == []
        assert diskcache.load(("k",)) is None

    def test_no_write_prefix_is_ever_observable(self, cache, monkeypatch):
        """The adversarial sweep: for *every* prefix of the record a
        dying writer could have flushed, the final path stays absent —
        torn states live only under temp names that ``load`` never
        reads."""
        real_replace = os.replace
        record = {}
        monkeypatch.setattr(
            os, "replace",
            lambda src, dst: record.update(
                bytes=open(src, "rb").read()) or real_replace(src, dst))
        diskcache.store(("k",), "value")
        monkeypatch.setattr(os, "replace", real_replace)
        full = record["bytes"]
        key2 = ("other-key",)
        final = diskcache._entry_path(key2)
        for cut in range(len(full)):  # every possible kill point
            tmp = final.parent / f"dead-writer-{cut}.tmp"
            tmp.write_bytes(full[:cut])
            assert not final.exists()
            assert diskcache.load(key2) is None

    def test_concurrent_overwrite_is_all_or_nothing(self, cache):
        """Two writers racing the same key: a reader sees one of the two
        complete values, never an interleaving."""
        key = ("contested",)
        diskcache.store(key, "first" * 1000)
        diskcache.store(key, "second" * 1000)
        assert diskcache.load(key) in ("first" * 1000, "second" * 1000)


class TestHotCache:
    """ISSUE 9 satellite: the in-memory LRU layer in front of ``load``."""

    def test_miss_then_hot_hit(self, cache):
        hot = diskcache.HotCache(capacity=4)
        result, source = hot.get(("k",), disk=False)
        assert (result, source) == (None, None)
        hot.put(("k",), "value")
        assert hot.get(("k",), disk=False) == ("value", "hot")
        assert hot.counters()["hot_hits"] == 1
        assert hot.counters()["misses"] == 1

    def test_disk_hit_promotes(self, cache):
        diskcache.store(("k",), "durable")
        hot = diskcache.HotCache(capacity=4)
        assert hot.get(("k",)) == ("durable", "disk")
        # promoted: the second lookup never touches the disk
        assert hot.get(("k",)) == ("durable", "hot")
        counters = hot.counters()
        assert counters["disk_hits"] == 1
        assert counters["hot_hits"] == 1

    def test_disk_false_skips_the_disk_layer(self, cache):
        diskcache.store(("k",), "durable")
        hot = diskcache.HotCache(capacity=4)
        assert hot.get(("k",), disk=False) == (None, None)

    def test_put_disk_true_persists_atomically(self, cache):
        hot = diskcache.HotCache(capacity=4)
        hot.put(("k",), "both layers", disk=True)
        assert diskcache.load(("k",)) == "both layers"
        assert diskcache.HotCache(capacity=4).get(("k",)) == \
            ("both layers", "disk")

    def test_lru_evicts_least_recently_used(self, cache):
        hot = diskcache.HotCache(capacity=2)
        hot.put(("a",), 1)
        hot.put(("b",), 2)
        hot.get(("a",), disk=False)   # refresh a: b is now the LRU
        hot.put(("c",), 3)            # evicts b
        assert hot.get(("a",), disk=False) == (1, "hot")
        assert hot.get(("b",), disk=False) == (None, None)
        assert hot.get(("c",), disk=False) == (3, "hot")
        assert len(hot) == 2

    def test_capacity_clamps_to_one(self, cache):
        hot = diskcache.HotCache(capacity=0)
        assert hot.capacity == 1
        hot.put(("a",), 1)
        hot.put(("b",), 2)
        assert len(hot) == 1

    def test_capacity_default_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_HOT_CACHE_SIZE", "7")
        assert diskcache.HotCache().capacity == 7
        monkeypatch.setenv("REPRO_HOT_CACHE_SIZE", "not-a-number")
        assert diskcache.HotCache().capacity == 256
        monkeypatch.delenv("REPRO_HOT_CACHE_SIZE")
        assert diskcache.HotCache().capacity == 256

    def test_clear_resets_entries_and_counters(self, cache):
        hot = diskcache.HotCache(capacity=4)
        hot.put(("a",), 1)
        hot.get(("a",), disk=False)
        hot.get(("missing",), disk=False)
        hot.clear()
        assert len(hot) == 0
        counters = hot.counters()
        assert (counters["hot_hits"], counters["misses"]) == (0, 0)

    def test_module_level_shared_instance(self, cache):
        diskcache.clear_hot()
        try:
            assert diskcache.load_hot(("k",), disk=False) == (None, None)
            diskcache.store_hot(("k",), "shared")
            assert diskcache.load_hot(("k",), disk=False) == ("shared", "hot")
        finally:
            diskcache.clear_hot()

    def test_render_cache_report(self, cache):
        from repro.harness.report import render_cache

        hot = diskcache.HotCache(capacity=8)
        hot.put(("a",), 1)
        hot.get(("a",), disk=False)
        hot.get(("a",), disk=False)
        hot.get(("miss",), disk=False)
        text = render_cache(hot.counters())
        assert "result cache" in text
        for column in ("hot", "disk", "miss", "quar", "hit%"):
            assert column in text
        assert "66.67" in text  # 2 hits / 3 lookups


class TestEnabledFlag:
    def test_explicit_wins(self, monkeypatch):
        monkeypatch.delenv("REPRO_DISK_CACHE", raising=False)
        assert diskcache.enabled(True) is True
        assert diskcache.enabled(False) is False
        assert diskcache.enabled() is False
        monkeypatch.setenv("REPRO_DISK_CACHE", "1")
        assert diskcache.enabled() is True
        assert diskcache.enabled(False) is False
