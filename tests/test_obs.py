"""Observability subsystem tests: tracer semantics, Chrome export schema,
metrics subsumption, failure dumps, and the text timeline.

The contracts pinned here:

- the null tracer emits nothing and stores nothing (the zero-overhead path);
- the ring buffer bounds memory and *flags* truncation instead of growing;
- exported Chrome traces satisfy :func:`repro.obs.validate_chrome_trace`
  (required fields, known phases, balanced B/E slices when untruncated);
- ``Metrics.from_stats(stats).summary() == stats.summary()`` for any
  execution — the registry subsumes ``ExecStats`` without changing a figure;
- a failing chaos / concurrency-chaos check dumps a schema-valid Chrome
  trace containing the aborting region's enter/abort pair;
- scheduler context-switch events mirror ``sched.trace`` one-for-one.
"""

import json

import pytest

from repro.faults import FaultPlan
from repro.harness import render_timeline, run_chaos, run_concurrency_chaos, run_workload
from repro.harness import chaos as chaos_mod
from repro.hw.stats import ExecStats, RegionExecution
from repro.obs import (
    ALLOWED_PHASES,
    EVENT_KINDS,
    Histogram,
    Metrics,
    NULL_TRACER,
    TraceEvent,
    Tracer,
    dump_chrome_trace,
    to_chrome_trace,
    validate_chrome_trace,
)
from repro.runtime import SchedulePlan
from repro.vm import ATOMIC, TieredVM, VMOptions
from repro.workloads import HSQLDB_THREADED, get_workload

ATOMIC_INLINE = ATOMIC.with_aggressive_inlining()


@pytest.fixture(scope="module")
def traced_run():
    """One traced hsqldb execution shared by the read-only tests below."""
    tracer = Tracer()
    result = run_workload(get_workload("hsqldb"), ATOMIC, tracer=tracer)
    return tracer, result


def _threaded_traced(seed=0):
    """One traced deterministic multi-threaded run of HSQLDB_THREADED."""
    workload = HSQLDB_THREADED
    tracer = Tracer()
    vm = TieredVM(
        workload.build(),
        compiler_config=ATOMIC_INLINE,
        options=VMOptions(enable_timing=False, compile_threshold=3),
        tracer=tracer,
    )
    for args in workload.warm_args:
        shared = vm.run(workload.setup)
        vm.warm_up(workload.worker, [[shared] + list(args)])
    vm.compile_hot(min_invocations=1)
    shared = vm.run(workload.setup)
    vm.start_measurement()
    sched = vm.run_threads(
        [(workload.worker, [shared] + list(args), f"w{tid}")
         for tid, args in enumerate(workload.thread_args)],
        plan=SchedulePlan(seed=seed),
    )
    stats = vm.end_measurement()
    return tracer, sched, stats


class TestTracer:
    def test_null_tracer_emits_and_stores_nothing(self):
        for _ in range(2):
            NULL_TRACER.region_enter(1, 0, "m", 0, 4)
            NULL_TRACER.region_abort(2, 0, "m", 0, "assert", 4, 9, 1, 1)
            NULL_TRACER.ctx_switch(3, 1, from_tid=0)
            NULL_TRACER.interrupt(4)
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.events == ()
        assert NULL_TRACER.emitted == 0
        assert NULL_TRACER.truncated is False

    def test_events_are_typed_and_comparable(self):
        tracer = Tracer()
        tracer.region_enter(5, 1, method="M.f", region=0, pc=12)
        (event,) = tracer.events
        assert event == TraceEvent(
            ts=5, kind="region_enter", tid=1,
            args=(("method", "M.f"), ("pc", 12), ("region", 0)),
        )
        assert event.arg("pc") == 12
        assert event.arg("missing", "x") == "x"
        assert "region_enter" in event.describe()
        assert event.kind in EVENT_KINDS
        # frozen => hashable => streams compare with plain ==
        assert len({event, event}) == 1

    def test_ring_truncates_and_flags(self):
        tracer = Tracer(capacity=4)
        for ts in range(10):
            tracer.interrupt(ts)
        assert len(tracer) == 4
        assert tracer.emitted == 10
        assert tracer.truncated is True
        assert [e.ts for e in tracer.events] == [6, 7, 8, 9]  # oldest dropped
        tracer.clear()
        assert len(tracer) == 0 and tracer.emitted == 0
        assert tracer.truncated is False

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestMachineEmission:
    def test_region_events_mirror_stats(self, traced_run):
        tracer, result = traced_run
        kinds = [event.kind for event in tracer.events]
        entered = sum(s.stats.regions_entered for s in result.samples)
        committed = sum(s.stats.regions_committed for s in result.samples)
        aborted = sum(s.stats.regions_aborted for s in result.samples)
        assert kinds.count("region_enter") == entered > 0
        assert kinds.count("region_commit") == committed
        assert kinds.count("region_abort") == aborted
        assert kinds.count("tier_compile") >= 1

    def test_commit_carries_footprint(self, traced_run):
        tracer, _result = traced_run
        commits = [e for e in tracer.events if e.kind == "region_commit"]
        assert commits
        for event in commits:
            assert event.arg("uops") > 0
            assert event.arg("lines_read") >= 0
            assert event.arg("lines_written") >= 0

    def test_fault_injection_events(self):
        workload = get_workload("hsqldb")
        sample = workload.samples[0]
        tracer = Tracer()
        vm = TieredVM(
            workload.build(),
            compiler_config=ATOMIC,
            options=VMOptions(enable_timing=False, compile_threshold=3),
            fault_plan=FaultPlan.storm("assert", offset=2),
            tracer=tracer,
        )
        vm.warm_up(workload.entry, [list(a) for a in sample.warm_args])
        vm.compile_hot(min_invocations=1)
        for args in sample.measure_args:
            vm.run(workload.entry, list(args))
        kinds = {event.kind for event in tracer.events}
        assert "fault_armed" in kinds
        aborts = [e for e in tracer.events if e.kind == "region_abort"]
        assert any(e.arg("reason") == "assert" for e in aborts)


class TestChromeExport:
    def test_real_trace_validates(self, traced_run):
        tracer, _result = traced_run
        document = to_chrome_trace(tracer.events, truncated=tracer.truncated)
        validate_chrome_trace(document)
        phases = {entry["ph"] for entry in document["traceEvents"]}
        assert phases <= set(ALLOWED_PHASES)
        ends = [e for e in document["traceEvents"] if e["ph"] == "E"]
        assert all(e["args"]["outcome"] in ("commit", "abort") for e in ends)

    def test_dump_roundtrip(self, traced_run, tmp_path):
        tracer, _result = traced_run
        path = dump_chrome_trace(
            tracer.events, str(tmp_path / "sub" / "run.trace.json"),
            truncated=tracer.truncated,
        )
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        validate_chrome_trace(document)
        assert document["otherData"]["clock"] == "retired-uops"

    def test_validator_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])
        with pytest.raises(ValueError):
            validate_chrome_trace({})
        good = to_chrome_trace(
            [TraceEvent(1, "interrupt", 0)], truncated=False
        )
        validate_chrome_trace(good)

        missing = json.loads(json.dumps(good))
        del missing["traceEvents"][0]["ts"]
        with pytest.raises(ValueError, match="missing"):
            validate_chrome_trace(missing)

        bad_phase = json.loads(json.dumps(good))
        bad_phase["traceEvents"][0]["ph"] = "X"
        with pytest.raises(ValueError, match="phase"):
            validate_chrome_trace(bad_phase)

        bad_cat = json.loads(json.dumps(good))
        bad_cat["traceEvents"][0]["cat"] = "mystery"
        with pytest.raises(ValueError, match="category"):
            validate_chrome_trace(bad_cat)

        negative_ts = json.loads(json.dumps(good))
        negative_ts["traceEvents"][0]["ts"] = -1
        with pytest.raises(ValueError, match="ts"):
            validate_chrome_trace(negative_ts)

    def test_balance_check_skipped_when_truncated(self):
        # An enter whose commit fell off the ring: unbalanced on purpose.
        lone_enter = [TraceEvent(
            1, "region_enter", 0,
            args=(("method", "M.f"), ("pc", 0), ("region", 0)),
        )]
        with pytest.raises(ValueError, match="unbalanced"):
            validate_chrome_trace(to_chrome_trace(lone_enter, truncated=False))
        validate_chrome_trace(to_chrome_trace(lone_enter, truncated=True))


class TestMetrics:
    def _synthetic_stats(self):
        stats = ExecStats()
        stats.uops_retired = 10_000
        stats.cycles = 2_500.0
        stats.branches = 800
        stats.mispredicts = 40
        stats.conflict_retries = 3
        stats.regions_suppressed = 1
        stats.context_switches = 5
        stats.uops_by_thread[0] = 6_000
        stats.uops_by_thread[1] = 4_000
        for i in range(6):
            stats.note_region(RegionExecution(
                region_key=("M.f", 0), uops=20 + i, lines_read=2,
                lines_written=1 + i % 2, committed=True,
            ))
        stats.note_region(RegionExecution(
            region_key=("M.g", 1), committed=False, abort_reason="assert",
            abort_pc=7,
        ))
        stats.note_region(RegionExecution(
            region_key=("M.g", 1), committed=False, abort_reason="conflict",
        ))
        stats.note_fallback(("M.g", 1))
        stats.uops_in_regions = sum(stats.region_sizes)
        return stats

    def test_subsumes_execstats_summary(self):
        stats = self._synthetic_stats()
        metrics = Metrics.from_stats(stats)
        assert metrics.summary() == stats.summary()
        assert metrics.counter("aborts.reason.assert") == 1
        assert metrics.counter("aborts.reason.conflict") == 1
        assert metrics.counter("uops.thread.1") == 4_000

    def test_subsumes_real_run(self, traced_run):
        _tracer, result = traced_run
        for sample in result.samples:
            metrics = Metrics.from_stats(sample.stats)
            assert metrics.summary() == sample.stats.summary()
            assert (metrics.histogram("region.footprint_lines").quantile(0.5)
                    == sample.stats.region_line_quantile(0.5))
            assert (metrics.histogram("region.footprint_lines").quantile(0.95)
                    == sample.stats.region_line_quantile(0.95))

    def test_empty_stats_summaries_agree(self):
        stats = ExecStats()
        assert Metrics.from_stats(stats).summary() == stats.summary()

    def test_histogram_buckets(self):
        histogram = Histogram((2, 4, 8))
        for value in (1, 2, 3, 9, 100):
            histogram.observe(value)
        assert histogram.count == 5
        assert sum(histogram.bucket_counts) == 5
        snap = histogram.snapshot()
        assert snap["buckets"]["le_2"] == 2   # values 1, 2
        assert snap["buckets"]["inf"] == 2    # values 9, 100
        assert histogram.mean == pytest.approx(23.0)
        with pytest.raises(ValueError):
            Histogram((4, 2))


class TestFailureDumps:
    def test_forced_chaos_failure_dumps_valid_trace(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            chaos_mod.ChaosCheck, "ok", property(lambda self: False)
        )
        report = run_chaos(
            get_workload("hsqldb"), ATOMIC, seeds=(0,), max_samples=1,
            plan_factory=lambda seed: FaultPlan.storm("assert", offset=2),
            trace_dir=str(tmp_path),
        )
        (check,) = report.checks
        assert check.trace_path is not None
        with open(check.trace_path, encoding="utf-8") as handle:
            document = json.load(handle)
        validate_chrome_trace(document)
        entries = document["traceEvents"]
        abort_ends = [
            (i, e) for i, e in enumerate(entries)
            if e["ph"] == "E" and e["args"].get("outcome") == "abort"
        ]
        assert abort_ends, "forced abort storm produced no abort slice"
        index, abort = abort_ends[0]
        assert any(
            e["ph"] == "B" and e["name"] == abort["name"]
            for e in entries[:index]
        ), "aborting region has no matching enter slice"
        assert check.trace_path in check.describe()

    def test_forced_concurrency_failure_dumps_trace(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            chaos_mod.ConcurrencyCheck, "ok", property(lambda self: False)
        )
        report = run_concurrency_chaos(
            HSQLDB_THREADED, ATOMIC_INLINE, seeds=(0,),
            trace_dir=str(tmp_path),
        )
        (check,) = report.checks
        assert check.trace_path is not None
        with open(check.trace_path, encoding="utf-8") as handle:
            validate_chrome_trace(json.load(handle))

    def test_trace_dir_resolution(self, monkeypatch, tmp_path):
        monkeypatch.delenv("CHAOS_TRACE_DIR", raising=False)
        assert chaos_mod._resolve_trace_dir(None) == "."
        monkeypatch.setenv("CHAOS_TRACE_DIR", str(tmp_path))
        assert chaos_mod._resolve_trace_dir(None) == str(tmp_path)
        assert chaos_mod._resolve_trace_dir("explicit") == "explicit"


class TestSchedulerEvents:
    def test_ctx_switch_mirrors_schedule_trace(self):
        tracer, sched, stats = _threaded_traced(seed=0)
        switches = [e for e in tracer.events if e.kind == "ctx_switch"]
        assert [(e.ts, e.tid) for e in switches] == sched.trace
        assert switches[0].arg("from_tid") == -1
        assert stats.context_switches == sched.context_switches

    def test_threaded_replay_is_bit_identical(self):
        first, _, _ = _threaded_traced(seed=3)
        second, _, _ = _threaded_traced(seed=3)
        assert first.events == second.events


class TestTimeline:
    def test_render_timeline(self):
        events = [
            TraceEvent(10, "region_enter", 0,
                       args=(("method", "M.f"), ("pc", 4), ("region", 0))),
            TraceEvent(42, "region_abort", 0,
                       args=(("method", "M.f"), ("reason", "assert"))),
        ]
        text = render_timeline(events)
        assert "region_enter" in text
        assert "reason=assert" in text
        assert "2 event(s)" in text

    def test_render_timeline_limit(self):
        events = [TraceEvent(ts, "interrupt", 0) for ts in range(20)]
        text = render_timeline(events, limit=5)
        assert "15 earlier events omitted" in text
        assert "20 event(s)" in text
        assert "\n        19    0" in text

    def test_timeline_of_real_trace(self, traced_run):
        tracer, _result = traced_run
        text = render_timeline(tracer.events, limit=50)
        assert "region_enter" in text
        assert f"{tracer.emitted} event(s)" in text or "event(s)" in text
