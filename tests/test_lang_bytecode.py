"""Unit tests for the bytecode model: programs, classes, layouts, vtables."""

import pytest

from repro.lang import ClassDef, Instr, Method, Op, Program


def make_method(name="m", owner=None, instrs=None, num_params=0, num_regs=4):
    return Method(
        name=name,
        num_params=num_params,
        instrs=instrs if instrs is not None else [Instr(Op.RET)],
        num_regs=num_regs,
        owner=owner,
    )


class TestProgramStructure:
    def test_add_and_resolve_static_method(self):
        program = Program()
        m = make_method("main")
        program.add_method(m)
        assert program.resolve_static("main") is m

    def test_duplicate_static_method_rejected(self):
        program = Program()
        program.add_method(make_method("main"))
        with pytest.raises(ValueError):
            program.add_method(make_method("main"))

    def test_duplicate_class_rejected(self):
        program = Program()
        program.add_class(ClassDef("A"))
        with pytest.raises(ValueError):
            program.add_class(ClassDef("A"))

    def test_unknown_static_method(self):
        with pytest.raises(KeyError):
            Program().resolve_static("missing")

    def test_qualified_name(self):
        assert make_method("f").qualified_name == "f"
        assert make_method("f", owner="C").qualified_name == "C.f"


class TestFieldLayout:
    def test_simple_layout(self):
        program = Program()
        program.add_class(ClassDef("A", fields=["x", "y"]))
        assert program.field_layout("A") == {"x": 0, "y": 1}

    def test_inherited_fields_come_first(self):
        program = Program()
        program.add_class(ClassDef("Base", fields=["a"]))
        program.add_class(ClassDef("Derived", fields=["b", "c"], super_name="Base"))
        assert program.field_layout("Derived") == {"a": 0, "b": 1, "c": 2}

    def test_shadowed_field_shares_slot(self):
        program = Program()
        program.add_class(ClassDef("Base", fields=["a"]))
        program.add_class(ClassDef("Derived", fields=["a", "b"], super_name="Base"))
        layout = program.field_layout("Derived")
        assert layout["a"] == 0 and layout["b"] == 1

    def test_layout_cache_invalidated_on_new_class(self):
        program = Program()
        program.add_class(ClassDef("A", fields=["x"]))
        assert program.field_layout("A") == {"x": 0}
        program.add_class(ClassDef("B", fields=["y"], super_name="A"))
        assert program.field_layout("B") == {"x": 0, "y": 1}


class TestVirtualDispatch:
    def test_vtable_inheritance_and_override(self):
        program = Program()
        program.add_class(ClassDef("Base"))
        program.add_class(ClassDef("Derived", super_name="Base"))
        base_m = make_method("f", owner="Base")
        program.add_method(base_m)
        assert program.resolve_virtual("Derived", "f") is base_m
        override = make_method("f", owner="Derived")
        program.add_method(override)
        assert program.resolve_virtual("Derived", "f") is override
        assert program.resolve_virtual("Base", "f") is base_m

    def test_missing_virtual_method(self):
        program = Program()
        program.add_class(ClassDef("A"))
        with pytest.raises(KeyError):
            program.resolve_virtual("A", "nope")

    def test_all_methods_enumerates_statics_and_virtuals(self):
        program = Program()
        program.add_class(ClassDef("A"))
        program.add_method(make_method("s"))
        program.add_method(make_method("v", owner="A"))
        names = {m.qualified_name for m in program.all_methods()}
        assert names == {"s", "A.v"}


class TestInstrRepr:
    def test_repr_is_stable(self):
        instr = Instr(Op.ADD, dst=2, a=0, b=1)
        text = repr(instr)
        assert "add" in text and "r2" in text
