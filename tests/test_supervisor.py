"""Sweep-supervisor unit tests: the retry → backoff → fallback ladder.

Covers each rung in isolation — clean pass-through, transient-exception
retry, quarantine after the budget, hung-cell timeout + pool rebuild,
worker-kill (``BrokenProcessPool``) recovery, degradation to serial —
plus the crash-consistent journal (torn tails, corrupt records, resume)
and the supervised entry points in :mod:`repro.harness.parallel`.

Cell functions live at module level (the pool path pickles them) and
coordinate cross-process attempt counts through
:func:`repro.harness.hostchaos.claim_attempt`.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle

import pytest

from repro.harness import run_indexed, run_supervised
from repro.harness.hostchaos import claim_attempt
from repro.harness.parallel import default_workers
from repro.harness.supervisor import Journal, SupervisorConfig
from repro.obs import Tracer


#: fast ladder for tests: no real wall-clock spent on backoff.
def _config(**overrides) -> SupervisorConfig:
    defaults = dict(backoff_base_s=0.0005, backoff_max_s=0.002)
    defaults.update(overrides)
    return SupervisorConfig(**defaults)


def _square(x):
    return x * x


def _flaky(spec):
    """Fails the first ``fail_times`` attempts, then succeeds."""
    value, state_dir, fail_times = spec
    attempt = claim_attempt(state_dir, repr(spec))
    if attempt < fail_times:
        raise RuntimeError(f"transient failure, attempt {attempt}")
    return value * 2


def _kill_once(spec):
    """Dies with ``os._exit`` on its first pool attempt, then succeeds."""
    value, state_dir = spec
    attempt = claim_attempt(state_dir, repr(spec))
    if attempt == 0 and multiprocessing.parent_process() is not None:
        os._exit(113)
    return value + 100


def _kill_always(spec):
    """Dies on *every* pool attempt — only serial execution can finish it."""
    value, _state_dir = spec
    if multiprocessing.parent_process() is not None:
        os._exit(113)
    return value + 7


def _hang_once(spec):
    """Hangs well past the cell budget on its first attempt."""
    import time

    value, state_dir = spec
    attempt = claim_attempt(state_dir, repr(spec))
    if attempt == 0 and multiprocessing.parent_process() is not None:
        time.sleep(10.0)
    return value * 3


class TestCleanSweep:
    def test_serial_matches_run_indexed(self):
        items = list(range(8))
        outcome = run_supervised(items, _square, config=_config(workers=1))
        assert outcome.results == run_indexed(items, _square, workers=1)
        assert outcome.ok and outcome.completed == 8
        assert outcome.retries == outcome.timeouts == 0
        assert outcome.pool_rebuilds == 0 and not outcome.degraded_serial

    def test_pool_matches_run_indexed(self):
        items = list(range(6))
        outcome = run_supervised(items, _square, config=_config(workers=2))
        assert outcome.results == [x * x for x in items]
        assert outcome.ok and outcome.retries == 0

    def test_clean_sweep_emits_no_lifecycle_events(self):
        tracer = Tracer()
        outcome = run_supervised(
            list(range(4)), _square, config=_config(workers=1),
            tracer=tracer)
        assert outcome.ok
        assert tracer.events == []

    def test_metrics_registry_populated(self):
        outcome = run_supervised(
            list(range(5)), _square, config=_config(workers=1))
        assert outcome.metrics.counter("supervisor.cells_total") == 5
        assert outcome.metrics.counter("supervisor.cells_completed") == 5
        assert outcome.metrics.counter("supervisor.cell_retry") == 0


class TestRetryLadder:
    def test_transient_exception_retried_then_succeeds(self, tmp_path):
        items = [(v, str(tmp_path), 2) for v in range(4)]
        tracer = Tracer()
        outcome = run_supervised(
            items, _flaky, config=_config(workers=1, max_attempts=4),
            tracer=tracer)
        assert outcome.ok
        assert outcome.results == [v * 2 for v in range(4)]
        assert outcome.retries == 8  # 2 transient failures per cell
        kinds = [event.kind for event in tracer.events]
        assert kinds.count("cell_retry") == 8
        assert "quarantine" not in kinds
        # deterministic supervisor timestamps: the event sequence number
        assert [event.ts for event in tracer.events] == list(
            range(1, len(tracer.events) + 1))

    def test_backoff_grows_exponentially(self, tmp_path):
        tracer = Tracer()
        outcome = run_supervised(
            [(1, str(tmp_path), 3)], _flaky,
            config=_config(workers=1, max_attempts=5, backoff_base_s=0.001,
                           backoff_factor=2.0, backoff_max_s=1.0),
            tracer=tracer)
        assert outcome.ok
        backoffs = [event.arg("backoff_s") for event in tracer.events
                    if event.kind == "cell_retry"]
        assert backoffs == [0.001, 0.002, 0.004]

    def test_quarantine_after_budget(self, tmp_path):
        items = [(0, str(tmp_path), 99), (1, str(tmp_path), 0),
                 (2, str(tmp_path), 99)]
        tracer = Tracer()
        outcome = run_supervised(
            items, _flaky, config=_config(workers=1, max_attempts=2),
            tracer=tracer)
        assert not outcome.ok and outcome.quarantined == 2
        # quarantine fires only after the configured budget, never before
        assert all(f.attempts == 2 for f in outcome.failures)
        assert {f.index for f in outcome.failures} == {0, 2}
        # the sweep continued: partial results plus an explicit manifest
        assert outcome.results[1] == 2
        assert outcome.results[0] is None and outcome.results[2] is None
        manifest = outcome.manifest()
        assert manifest["quarantined"] == 2
        assert len(manifest["failures"]) == 2
        assert all(f["kind"] == "exception" for f in manifest["failures"])
        assert [e.kind for e in tracer.events].count("quarantine") == 2
        with pytest.raises(RuntimeError, match="quarantined"):
            outcome.raise_on_failure()


class TestPoolRecovery:
    def test_worker_kill_rebuilds_pool_and_recovers(self, tmp_path):
        items = [(v, str(tmp_path)) for v in range(6)]
        tracer = Tracer()
        outcome = run_supervised(
            items, _kill_once,
            config=_config(workers=2, max_attempts=8), tracer=tracer)
        assert outcome.ok
        assert outcome.results == [v + 100 for v in range(6)]
        assert outcome.pool_rebuilds >= 1
        assert any(e.kind == "pool_rebuild" for e in tracer.events)

    def test_hung_cell_times_out_and_recovers(self, tmp_path):
        items = [(v, str(tmp_path)) for v in range(4)]
        tracer = Tracer()
        outcome = run_supervised(
            items, _hang_once,
            config=_config(workers=2, max_attempts=8, cell_timeout_s=0.5),
            tracer=tracer)
        assert outcome.ok
        assert outcome.results == [v * 3 for v in range(4)]
        assert outcome.timeouts >= 1 and outcome.pool_rebuilds >= 1
        kinds = {event.kind for event in tracer.events}
        assert "cell_timeout" in kinds and "pool_rebuild" in kinds

    def test_persistent_kills_degrade_to_serial(self, tmp_path):
        items = [(v, str(tmp_path)) for v in range(4)]
        tracer = Tracer()
        outcome = run_supervised(
            items, _kill_always,
            config=_config(workers=2, max_attempts=10, max_pool_rebuilds=1),
            tracer=tracer)
        # the pool can never finish these; serial execution can
        assert outcome.ok and outcome.degraded_serial
        assert outcome.results == [v + 7 for v in range(4)]
        assert outcome.pool_rebuilds == 2  # budget of 1, then the give-up
        assert any(e.kind == "degrade_serial" for e in tracer.events)


class TestJournal:
    def test_round_trip(self, tmp_path):
        journal = Journal(tmp_path / "j.bin")
        journal.append("a", {"x": 1})
        journal.append("b", [1, 2, 3])
        assert journal.load() == {"a": {"x": 1}, "b": [1, 2, 3]}

    def test_torn_tail_discarded(self, tmp_path):
        path = tmp_path / "j.bin"
        journal = Journal(path)
        for key in ("a", "b", "c"):
            journal.append(key, key * 3)
        data = path.read_bytes()
        path.write_bytes(data[:-5])  # SIGKILL mid-append
        assert journal.load() == {"a": "aaa", "b": "bbb"}

    def test_corrupt_record_stops_replay(self, tmp_path):
        path = tmp_path / "j.bin"
        journal = Journal(path)
        journal.append("a", 1)
        intact = len(path.read_bytes())
        journal.append("b", 2)
        data = bytearray(path.read_bytes())
        data[intact + 45] ^= 0xFF  # flip a byte inside record 2's payload
        path.write_bytes(bytes(data))
        assert journal.load() == {"a": 1}

    def test_missing_journal_is_empty(self, tmp_path):
        assert Journal(tmp_path / "nope.bin").load() == {}

    def test_resume_skips_completed_cells(self, tmp_path):
        journal_path = tmp_path / "j.bin"
        items = list(range(8))
        first = run_supervised(
            items[:4], _square,
            config=_config(workers=1, journal_path=journal_path))
        assert first.ok and first.completed == 4
        resumed = run_supervised(
            items, _square,
            config=_config(workers=1, journal_path=journal_path))
        assert resumed.ok
        assert resumed.resumed == 4 and resumed.completed == 4
        assert resumed.results == [x * x for x in items]
        assert resumed.metrics.counter("supervisor.cells_resumed") == 4

    def test_resume_results_byte_identical(self, tmp_path):
        journal_path = tmp_path / "j.bin"
        items = list(range(6))
        run_supervised(items[:3], _square,
                       config=_config(workers=1, journal_path=journal_path))
        resumed = run_supervised(
            items, _square,
            config=_config(workers=2, journal_path=journal_path))
        serial = [_square(x) for x in items]
        assert pickle.dumps(resumed.results) == pickle.dumps(serial)


class TestDefaultWorkersHardening:
    def test_malformed_value_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4x")
        with pytest.warns(RuntimeWarning, match="malformed REPRO_WORKERS"):
            assert default_workers() == 1

    def test_word_value_falls_back_to_serial(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "four")
        with pytest.warns(RuntimeWarning):
            assert default_workers() == 1

    def test_valid_and_empty_values_unchanged(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "4")
        assert default_workers() == 4
        monkeypatch.setenv("REPRO_WORKERS", "")
        assert default_workers() == 1
        monkeypatch.delenv("REPRO_WORKERS")
        assert default_workers() == 1

    def test_supervisor_inherits_default_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "not-a-number")
        with pytest.warns(RuntimeWarning):
            outcome = run_supervised([1, 2, 3], _square, config=_config())
        assert outcome.ok and outcome.results == [1, 4, 9]


class TestSupervisedHarnessEntryPoints:
    """The supervised prewarm/chaos wrappers stay byte-identical to the
    bare serial drivers (the determinism headline, on real cells)."""

    def test_prewarm_figures_supervised_matches_serial(self):
        from repro.harness import (
            clear_cache, figure7, figure8, prewarm_figures_supervised,
            render,
        )

        benches = ["fop"]
        clear_cache()
        serial = (render(figure7(benches)), render(figure8(benches)))
        clear_cache()
        outcome = prewarm_figures_supervised(
            benches, config=_config(workers=2))
        assert outcome.ok and outcome.quarantined == 0
        supervised = (render(figure7(benches)), render(figure8(benches)))
        clear_cache()
        assert supervised == serial

    def test_run_chaos_parallel_supervised_matches_serial(self):
        from repro.harness import run_chaos, run_chaos_parallel
        from repro.harness.parallel import COMPILER_CONFIGS
        from repro.vm.compiler import ATOMIC_AGGRESSIVE
        from repro.workloads import get_workload

        seeds = (0, 1, 2)
        serial = run_chaos(
            get_workload("fop"), COMPILER_CONFIGS[ATOMIC_AGGRESSIVE.name],
            seeds=seeds, max_samples=1,
        )
        supervised = run_chaos_parallel(
            "fop", seeds=seeds, max_samples=1,
            supervisor=_config(workers=2),
        )
        assert supervised.host_failures == []
        assert supervised.describe() == serial.describe()
        assert [c.stats.summary() for c in supervised.checks] == [
            c.stats.summary() for c in serial.checks
        ]
