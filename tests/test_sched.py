"""Deterministic scheduler unit tests (no VM): seeding, switching,
blocking, deadlock detection, and the conflict bus."""

import pytest

from repro.faults import derive_seed
from repro.runtime import (
    DeadlockError,
    DeterministicScheduler,
    LockWord,
    SchedulePlan,
    VMError,
)


def stepper(sched, log, label, n):
    """A guest fn that retires ``n`` steps, logging each."""
    def fn():
        for i in range(n):
            log.append((label, i))
            sched.on_step()
        return label
    return fn


def run_logged(seed, labels=("a", "b", "c"), n=40, quantum=(1, 4)):
    sched = DeterministicScheduler(SchedulePlan(seed=seed, quantum=quantum))
    log = []
    for label in labels:
        sched.spawn(stepper(sched, log, label, n), name=label)
    sched.run()
    return sched, log


class TestSchedulePlan:
    def test_quantum_validation(self):
        with pytest.raises(ValueError):
            SchedulePlan(quantum=(0, 4))
        with pytest.raises(ValueError):
            SchedulePlan(quantum=(8, 4))

    def test_rng_stream_is_seed_deterministic(self):
        a, b = SchedulePlan(seed=7).rng(), SchedulePlan(seed=7).rng()
        assert [a.randint(0, 1 << 30) for _ in range(8)] == [
            b.randint(0, 1 << 30) for _ in range(8)
        ]

    def test_sched_stream_independent_of_fault_stream(self):
        """One chaos seed drives distinct schedule and fault PRNG streams."""
        assert derive_seed(5, "sched") != derive_seed(5, "faults")
        assert derive_seed(5, "sched") != derive_seed(6, "sched")


class TestDeterminism:
    def test_same_seed_same_interleaving(self):
        sched1, log1 = run_logged(seed=3)
        sched2, log2 = run_logged(seed=3)
        assert log1 == log2
        assert sched1.trace == sched2.trace

    def test_different_seeds_differ(self):
        _, log0 = run_logged(seed=0)
        assert any(run_logged(seed=s)[1] != log0 for s in (1, 2, 3))

    def test_threads_actually_interleave(self):
        sched, log = run_logged(seed=0)
        switch_points = sum(
            1 for prev, cur in zip(log, log[1:]) if prev[0] != cur[0]
        )
        assert switch_points > 2
        assert sched.context_switches > 2
        assert [t.result for t in sched.threads] == ["a", "b", "c"]
        assert all(t.state == "finished" for t in sched.threads)

    def test_per_thread_step_accounting(self):
        sched, _ = run_logged(seed=1, n=25)
        assert [t.steps for t in sched.threads] == [25, 25, 25]


class TestBlockingAndDeadlock:
    def test_blocked_threads_park_and_recontend(self):
        sched = DeterministicScheduler(SchedulePlan(seed=2, quantum=(1, 3)))
        lock = LockWord()
        cell = {"v": 0}

        def worker():
            me = sched.current.tid
            for _ in range(10):
                outcome = lock.enter(me)
                while outcome == "blocked":
                    sched.block_on(lock)
                    outcome = lock.enter(me)
                v = cell["v"]
                sched.on_step()          # switch point inside the monitor
                cell["v"] = v + 1
                lock.exit(me)
                if lock.waiters:
                    sched.wake_all(lock)
                sched.on_step()
            return me

        for i in range(3):
            sched.spawn(worker, name=f"w{i}")
        sched.run()
        # Mutual exclusion held: no increment was lost.
        assert cell["v"] == 30
        assert lock.owner is None and not lock.waiters

    def test_deadlock_raises_with_dump(self):
        sched = DeterministicScheduler(SchedulePlan(seed=0))
        lock = LockWord()
        lock.force_owner(99)  # an owner that will never release

        def doomed():
            if lock.enter(sched.current.tid) == "blocked":
                sched.block_on(lock)

        sched.spawn(doomed, name="doomed")
        with pytest.raises(DeadlockError) as err:
            sched.run()
        assert "no runnable guest thread" in str(err.value)

    def test_guest_error_propagates_after_wind_down(self):
        sched = DeterministicScheduler(SchedulePlan(seed=0, quantum=(1, 2)))

        def fine():
            for _ in range(10):
                sched.on_step()

        def broken():
            sched.on_step()
            raise ValueError("guest blew up")

        sched.spawn(fine, name="fine")
        sched.spawn(broken, name="broken")
        with pytest.raises(ValueError, match="guest blew up"):
            sched.run()


class TestLifecycle:
    def test_run_is_single_shot(self):
        sched, _ = run_logged(seed=0, labels=("a",), n=3)
        with pytest.raises(VMError):
            sched.run()
        with pytest.raises(VMError):
            sched.spawn(lambda: None)

    def test_empty_scheduler_runs(self):
        assert DeterministicScheduler().run() == []


class TestConflictBus:
    def test_store_log_only_while_regions_in_flight(self):
        sched = DeterministicScheduler()
        done = []

        def fn():
            sched.note_store(0x1000)          # no region in flight: dropped
            assert sched.store_log == []
            index = sched.region_begin(sched.current.tid)
            assert index == 0 and sched.logging
            sched.note_store(0x2040)
            sched.note_store_line(7, 99)
            assert sched.store_log == [(0, 0x2040 >> sched.line_shift),
                                       (7, 99)]
            sched.region_end(sched.current.tid)
            assert not sched.logging and sched.store_log == []
            done.append(True)

        sched.spawn(fn)
        sched.run()
        assert done == [True]
