"""Tests for the tier-1 compiler driver and its configurations."""

import pytest

from repro.hw.isa import MOp
from repro.lang import ProgramBuilder
from repro.runtime import Interpreter, ProfileStore
from repro.vm import (
    ATOMIC,
    ATOMIC_AGGRESSIVE,
    NO_ATOMIC,
    NO_ATOMIC_AGGRESSIVE,
    compile_method,
)


def hot_cold_program():
    pb = ProgramBuilder()
    pb.cls("Box", fields=["v"])
    m = pb.method("work", params=("n", "mode"))
    n, mode = m.param(0), m.param(1)
    box = m.new("Box")
    i = m.const(0)
    one = m.const(1)
    zero = m.const(0)
    m.label("head")
    m.safepoint()
    m.br("ge", i, n, "done")
    v = m.getfield(box, "v")
    v2 = m.add(v, i)
    m.putfield(box, "v", v2)
    m.br("eq", mode, zero, "next")
    neg = m.sub(zero, v2)
    m.putfield(box, "v", neg)
    m.label("next")
    m.add(i, one, dst=i)
    m.jmp("head")
    m.label("done")
    out = m.getfield(box, "v")
    m.ret(out)
    return pb.build()


def profiled_program():
    program = hot_cold_program()
    profiles = ProfileStore()
    interp = Interpreter(program, profiles=profiles)
    method = program.resolve_static("work")
    for _ in range(5):
        interp.invoke(method, [100, 0])
    return program, method, profiles


class TestCompilerConfigs:
    def test_four_paper_configurations(self):
        names = {c.name for c in
                 (NO_ATOMIC, ATOMIC, NO_ATOMIC_AGGRESSIVE, ATOMIC_AGGRESSIVE)}
        assert names == {
            "no-atomic", "atomic",
            "no-atomic+aggr-inline", "atomic+aggr-inline",
        }
        assert not NO_ATOMIC.atomic and ATOMIC.atomic
        assert ATOMIC_AGGRESSIVE.inline.aggressive
        assert ATOMIC_AGGRESSIVE.inline.effective_threshold() == \
            5 * ATOMIC.inline.effective_threshold()

    def test_baseline_emits_no_region_instructions(self):
        program, method, profiles = profiled_program()
        record = compile_method(program, method, profiles, NO_ATOMIC)
        ops = {i.op for i in record.compiled.instrs}
        assert MOp.AREGION_BEGIN not in ops
        assert MOp.AREGION_END not in ops
        assert not record.compiled.uses_regions

    def test_atomic_emits_region_instructions(self):
        program, method, profiles = profiled_program()
        record = compile_method(program, method, profiles, ATOMIC)
        ops = [i.op for i in record.compiled.instrs]
        assert MOp.AREGION_BEGIN in ops
        assert MOp.AREGION_END in ops
        assert MOp.AREGION_ABORT in ops  # the cold mode-branch's stub
        assert record.compiled.uses_regions
        assert record.formation is not None and record.formation.regions

    def test_abort_table_maps_to_bytecode(self):
        program, method, profiles = profiled_program()
        record = compile_method(program, method, profiles, ATOMIC)
        assert record.compiled.abort_sites
        for abort_id, (src_pc, region_id) in record.compiled.abort_sites.items():
            assert src_pc is None or 0 <= src_pc < len(method.instrs)

    def test_blocked_asserts_suppress_conversion(self):
        program, method, profiles = profiled_program()
        plain = compile_method(program, method, profiles, ATOMIC)
        blocked_pcs = frozenset(
            pc for pc, _ in plain.compiled.abort_sites.values()
            if pc is not None
        )
        reblocked = compile_method(
            program, method, profiles, ATOMIC, blocked_asserts=blocked_pcs
        )
        plain_aborts = sum(
            1 for i in plain.compiled.instrs if i.op is MOp.BR_ABORT
        )
        blocked_aborts = sum(
            1 for i in reblocked.compiled.instrs if i.op is MOp.BR_ABORT
        )
        assert blocked_aborts < plain_aborts

    def test_compilation_is_deterministic(self):
        program, method, profiles = profiled_program()
        a = compile_method(program, method, profiles, ATOMIC_AGGRESSIVE)
        b = compile_method(program, method, profiles, ATOMIC_AGGRESSIVE)
        assert [i.op for i in a.compiled.instrs] == \
            [i.op for i in b.compiled.instrs]
        assert a.inlined == b.inlined

    def test_region_entries_recorded(self):
        program, method, profiles = profiled_program()
        record = compile_method(program, method, profiles, ATOMIC)
        for rid, index in record.compiled.region_entries.items():
            assert record.compiled.instrs[index].op is MOp.AREGION_BEGIN
