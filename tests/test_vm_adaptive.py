"""Tests for the tiered VM and §7 adaptive recompilation."""

import pytest

from repro.lang import ProgramBuilder
from repro.vm import (
    ATOMIC,
    AdaptiveController,
    NO_ATOMIC,
    TieredVM,
    VMOptions,
)


def phase_change_program():
    """A hot loop whose 'rare' path becomes frequent after profiling —
    the paper's pmd scenario (§6.1: 'a path that initially appears cold is
    removed from the atomic regions and then later starts to be frequently
    executed')."""
    pb = ProgramBuilder()
    pb.cls("Acc", fields=["total"])
    m = pb.method("work", params=("n", "mode"))
    n, mode = m.param(0), m.param(1)
    acc = m.new("Acc")
    i = m.const(0)
    one = m.const(1)
    zero = m.const(0)
    m.label("head")
    m.safepoint()
    m.br("ge", i, n, "done")
    t = m.getfield(acc, "total")
    t2 = m.add(t, i)
    m.putfield(acc, "total", t2)
    m.br("eq", mode, zero, "next")     # mode != 0: take the 'cold' path
    t3 = m.mul(t2, one)
    neg = m.sub(zero, t3)
    m.putfield(acc, "total", neg)
    m.label("next")
    m.add(i, one, dst=i)
    m.jmp("head")
    m.label("done")
    out = m.getfield(acc, "total")
    m.ret(out)
    return pb.build()


class TestTieredVM:
    def test_auto_compilation_kicks_in(self):
        program = phase_change_program()
        vm = TieredVM(program, NO_ATOMIC,
                      options=VMOptions(enable_timing=False, compile_threshold=5))
        for _ in range(10):
            vm.run("work", [20, 0])
        assert "work" in vm.compiled
        assert vm.compilations >= 1

    def test_interpreted_and_compiled_agree(self):
        program = phase_change_program()
        vm = TieredVM(program, ATOMIC,
                      options=VMOptions(enable_timing=False, compile_threshold=3))
        interpreted = vm.run("work", [30, 0])
        for _ in range(5):
            vm.run("work", [30, 0])
        compiled = vm.run("work", [30, 0])
        assert "work" in vm.compiled
        assert interpreted == compiled

    def test_measurement_protocol(self):
        program = phase_change_program()
        vm = TieredVM(program, ATOMIC,
                      options=VMOptions(enable_timing=True, compile_threshold=3))
        vm.warm_up("work", [[50, 0]] * 5)
        vm.compile_hot(min_invocations=1)
        vm.start_measurement()
        vm.run("work", [100, 0])
        stats = vm.end_measurement()
        assert stats.uops_retired > 0
        assert stats.cycles > 0
        assert stats.regions_entered > 0

    def test_mixed_tier_calls(self):
        """A compiled caller invoking an interpreted callee through the VM."""
        pb = ProgramBuilder()
        cold = pb.method("cold_helper", params=("x",))
        two = cold.const(2)
        out = cold.mul(cold.param(0), two)
        cold.ret(out)
        m = pb.method("work", params=("n",))
        n = m.param(0)
        total = m.const(0)
        i = m.const(0)
        one = m.const(1)
        m.label("head")
        m.safepoint()
        m.br("ge", i, n, "done")
        # A call too rare to compile but present on the warm path: the
        # inliner threshold is generous, so force non-inlining via depth.
        r = m.call("cold_helper", (i,))
        m.add(total, r, dst=total)
        m.add(i, one, dst=i)
        m.jmp("head")
        m.label("done")
        m.ret(total)
        program = pb.build()
        vm = TieredVM(program, NO_ATOMIC,
                      options=VMOptions(enable_timing=False, compile_threshold=3))
        vm.warm_up("work", [[10]] * 5)
        # Compile only the caller.
        vm.compile(program.resolve_static("work"))
        vm.start_measurement()
        result = vm.run("work", [10])
        stats = vm.end_measurement()
        assert result == 2 * sum(range(10))


class TestAdaptiveRecompilation:
    def test_phase_change_causes_aborts_then_recovery(self):
        program = phase_change_program()
        vm = TieredVM(program, ATOMIC,
                      options=VMOptions(enable_timing=False, compile_threshold=3))
        # Profile in mode 0 (cold path never taken).
        vm.warm_up("work", [[100, 0]] * 5)
        vm.compile_hot(min_invocations=1)

        # Phase change: mode 1 takes the formerly-cold path every iteration.
        vm.start_measurement()
        expected = vm.run("work", [100, 1])
        stats_before = vm.end_measurement()
        assert stats_before.regions_aborted > 0
        abort_rate_before = stats_before.abort_rate
        assert abort_rate_before > 0.02

        # The adaptive controller reacts by recompiling with the offending
        # assert blocked.
        controller = AdaptiveController(vm, abort_rate_threshold=0.02,
                                        min_region_entries=10)
        decisions = controller.poll()
        assert decisions, "controller should have recompiled"
        assert decisions[0].method == "work"
        assert decisions[0].blocked_pcs

        # After recompilation the same workload stops aborting.
        vm.start_measurement()
        result = vm.run("work", [100, 1])
        stats_after = vm.end_measurement()
        assert result == expected
        assert stats_after.abort_rate < abort_rate_before

    def test_controller_idle_when_no_aborts(self):
        program = phase_change_program()
        vm = TieredVM(program, ATOMIC,
                      options=VMOptions(enable_timing=False, compile_threshold=3))
        vm.warm_up("work", [[100, 0]] * 5)
        vm.compile_hot(min_invocations=1)
        vm.start_measurement()
        vm.run("work", [100, 0])
        vm.end_measurement()
        controller = AdaptiveController(vm)
        assert controller.poll() == []


def two_method_program():
    """Two independent hot methods sharing one VM: 'work' has a
    profile-sensitive cold path, 'steady' never aborts."""
    pb = ProgramBuilder()
    pb.cls("Acc", fields=["total"])

    m = pb.method("work", params=("n", "mode"))
    n, mode = m.param(0), m.param(1)
    acc = m.new("Acc")
    i = m.const(0)
    one = m.const(1)
    zero = m.const(0)
    m.label("head")
    m.safepoint()
    m.br("ge", i, n, "done")
    t = m.getfield(acc, "total")
    t2 = m.add(t, i)
    m.putfield(acc, "total", t2)
    m.br("eq", mode, zero, "next")
    t3 = m.mul(t2, one)
    neg = m.sub(zero, t3)
    m.putfield(acc, "total", neg)
    m.label("next")
    m.add(i, one, dst=i)
    m.jmp("head")
    m.label("done")
    out = m.getfield(acc, "total")
    m.ret(out)

    # Same shape as 'work' (a cold path gives region formation its assert-
    # conversion benefit) but always run with mode=0, so it never aborts.
    s = pb.method("steady", params=("n", "mode"))
    n, mode = s.param(0), s.param(1)
    acc = s.new("Acc")
    i = s.const(0)
    one = s.const(1)
    zero = s.const(0)
    s.label("head")
    s.safepoint()
    s.br("ge", i, n, "done")
    t = s.getfield(acc, "total")
    t2 = s.add(t, i)
    s.putfield(acc, "total", t2)
    s.br("eq", mode, zero, "next")
    t3 = s.mul(t2, one)
    neg = s.sub(zero, t3)
    s.putfield(acc, "total", neg)
    s.label("next")
    s.add(i, one, dst=i)
    s.jmp("head")
    s.label("done")
    out = s.getfield(acc, "total")
    s.ret(out)
    return pb.build()


class TestPerMethodAbortRates:
    """Satellite fix: rates are per method, not global over all regions."""

    def make_vm(self):
        program = two_method_program()
        vm = TieredVM(program, ATOMIC,
                      options=VMOptions(enable_timing=False, compile_threshold=3))
        vm.warm_up("work", [[100, 0]] * 5)
        vm.warm_up("steady", [[100, 0]] * 5)
        vm.compile_hot(min_invocations=1)
        return program, vm

    def test_quiet_hot_method_cannot_dilute_noisy_one(self):
        """'steady' racks up far more clean region entries than 'work' has
        aborting ones.  A global aborts/entries ratio would fall below the
        threshold and miss the recompilation; the per-method rate must not."""
        program, vm = self.make_vm()
        vm.start_measurement()
        vm.run("work", [60, 1])          # phase change: aborts every region
        for _ in range(40):
            vm.run("steady", [200, 0])   # mountains of clean entries
        stats = vm.end_measurement()

        work_aborts = stats.aborts_by_method["work"]
        total_entries = stats.regions_entered
        assert work_aborts > 0
        global_rate = stats.regions_aborted / total_entries
        per_method_rate = stats.method_abort_rate("work")
        threshold = 0.2
        # The scenario is only meaningful if the dilution is real:
        assert global_rate < threshold < per_method_rate

        controller = AdaptiveController(vm, abort_rate_threshold=threshold,
                                        min_region_entries=10)
        decisions = controller.poll()
        assert [d.method for d in decisions] == ["work"]
        assert decisions[0].observed_rate >= threshold

    def test_noisy_neighbour_does_not_trigger_quiet_method(self):
        program, vm = self.make_vm()
        vm.start_measurement()
        vm.run("work", [60, 1])
        vm.run("steady", [200, 0])
        vm.end_measurement()
        controller = AdaptiveController(vm, abort_rate_threshold=0.02,
                                        min_region_entries=10)
        decisions = controller.poll()
        assert "steady" not in {d.method for d in decisions}

    def test_seen_entries_make_polls_incremental(self):
        """After a decision, both abort and entry baselines advance: a
        second poll with no fresh activity must not re-decide."""
        program, vm = self.make_vm()
        vm.start_measurement()
        vm.run("work", [60, 1])
        vm.end_measurement()
        controller = AdaptiveController(vm, abort_rate_threshold=0.02,
                                        min_region_entries=10)
        first = controller.poll()
        assert first
        assert controller._seen_entries["work"] == \
            vm.stats.entries_by_method["work"]
        assert controller.poll() == []  # no new aborts since the decision

    def test_per_method_counters_tracked_in_stats(self):
        program, vm = self.make_vm()
        vm.start_measurement()
        vm.run("work", [60, 1])
        vm.run("steady", [100, 0])
        stats = vm.end_measurement()
        assert stats.entries_by_method["work"] > 0
        assert stats.entries_by_method["steady"] > 0
        assert stats.aborts_by_method["work"] > 0
        assert stats.aborts_by_method.get("steady", 0) == 0
        assert stats.method_abort_rate("steady") == 0.0
        assert stats.method_abort_rate("nonexistent") == 0.0
