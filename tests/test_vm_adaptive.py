"""Tests for the tiered VM and §7 adaptive recompilation."""

import pytest

from repro.lang import ProgramBuilder
from repro.vm import (
    ATOMIC,
    AdaptiveController,
    NO_ATOMIC,
    TieredVM,
    VMOptions,
)


def phase_change_program():
    """A hot loop whose 'rare' path becomes frequent after profiling —
    the paper's pmd scenario (§6.1: 'a path that initially appears cold is
    removed from the atomic regions and then later starts to be frequently
    executed')."""
    pb = ProgramBuilder()
    pb.cls("Acc", fields=["total"])
    m = pb.method("work", params=("n", "mode"))
    n, mode = m.param(0), m.param(1)
    acc = m.new("Acc")
    i = m.const(0)
    one = m.const(1)
    zero = m.const(0)
    m.label("head")
    m.safepoint()
    m.br("ge", i, n, "done")
    t = m.getfield(acc, "total")
    t2 = m.add(t, i)
    m.putfield(acc, "total", t2)
    m.br("eq", mode, zero, "next")     # mode != 0: take the 'cold' path
    t3 = m.mul(t2, one)
    neg = m.sub(zero, t3)
    m.putfield(acc, "total", neg)
    m.label("next")
    m.add(i, one, dst=i)
    m.jmp("head")
    m.label("done")
    out = m.getfield(acc, "total")
    m.ret(out)
    return pb.build()


class TestTieredVM:
    def test_auto_compilation_kicks_in(self):
        program = phase_change_program()
        vm = TieredVM(program, NO_ATOMIC,
                      options=VMOptions(enable_timing=False, compile_threshold=5))
        for _ in range(10):
            vm.run("work", [20, 0])
        assert "work" in vm.compiled
        assert vm.compilations >= 1

    def test_interpreted_and_compiled_agree(self):
        program = phase_change_program()
        vm = TieredVM(program, ATOMIC,
                      options=VMOptions(enable_timing=False, compile_threshold=3))
        interpreted = vm.run("work", [30, 0])
        for _ in range(5):
            vm.run("work", [30, 0])
        compiled = vm.run("work", [30, 0])
        assert "work" in vm.compiled
        assert interpreted == compiled

    def test_measurement_protocol(self):
        program = phase_change_program()
        vm = TieredVM(program, ATOMIC,
                      options=VMOptions(enable_timing=True, compile_threshold=3))
        vm.warm_up("work", [[50, 0]] * 5)
        vm.compile_hot(min_invocations=1)
        vm.start_measurement()
        vm.run("work", [100, 0])
        stats = vm.end_measurement()
        assert stats.uops_retired > 0
        assert stats.cycles > 0
        assert stats.regions_entered > 0

    def test_mixed_tier_calls(self):
        """A compiled caller invoking an interpreted callee through the VM."""
        pb = ProgramBuilder()
        cold = pb.method("cold_helper", params=("x",))
        two = cold.const(2)
        out = cold.mul(cold.param(0), two)
        cold.ret(out)
        m = pb.method("work", params=("n",))
        n = m.param(0)
        total = m.const(0)
        i = m.const(0)
        one = m.const(1)
        m.label("head")
        m.safepoint()
        m.br("ge", i, n, "done")
        # A call too rare to compile but present on the warm path: the
        # inliner threshold is generous, so force non-inlining via depth.
        r = m.call("cold_helper", (i,))
        m.add(total, r, dst=total)
        m.add(i, one, dst=i)
        m.jmp("head")
        m.label("done")
        m.ret(total)
        program = pb.build()
        vm = TieredVM(program, NO_ATOMIC,
                      options=VMOptions(enable_timing=False, compile_threshold=3))
        vm.warm_up("work", [[10]] * 5)
        # Compile only the caller.
        vm.compile(program.resolve_static("work"))
        vm.start_measurement()
        result = vm.run("work", [10])
        stats = vm.end_measurement()
        assert result == 2 * sum(range(10))


class TestAdaptiveRecompilation:
    def test_phase_change_causes_aborts_then_recovery(self):
        program = phase_change_program()
        vm = TieredVM(program, ATOMIC,
                      options=VMOptions(enable_timing=False, compile_threshold=3))
        # Profile in mode 0 (cold path never taken).
        vm.warm_up("work", [[100, 0]] * 5)
        vm.compile_hot(min_invocations=1)

        # Phase change: mode 1 takes the formerly-cold path every iteration.
        vm.start_measurement()
        expected = vm.run("work", [100, 1])
        stats_before = vm.end_measurement()
        assert stats_before.regions_aborted > 0
        abort_rate_before = stats_before.abort_rate
        assert abort_rate_before > 0.02

        # The adaptive controller reacts by recompiling with the offending
        # assert blocked.
        controller = AdaptiveController(vm, abort_rate_threshold=0.02,
                                        min_region_entries=10)
        decisions = controller.poll()
        assert decisions, "controller should have recompiled"
        assert decisions[0].method == "work"
        assert decisions[0].blocked_pcs

        # After recompilation the same workload stops aborting.
        vm.start_measurement()
        result = vm.run("work", [100, 1])
        stats_after = vm.end_measurement()
        assert result == expected
        assert stats_after.abort_rate < abort_rate_before

    def test_controller_idle_when_no_aborts(self):
        program = phase_change_program()
        vm = TieredVM(program, ATOMIC,
                      options=VMOptions(enable_timing=False, compile_threshold=3))
        vm.warm_up("work", [[100, 0]] * 5)
        vm.compile_hot(min_invocations=1)
        vm.start_measurement()
        vm.run("work", [100, 0])
        vm.end_measurement()
        controller = AdaptiveController(vm)
        assert controller.poll() == []
