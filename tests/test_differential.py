"""Cross-tier differential-fuzz sweep, with tracing as a no-op observer.

Every seeded random guest program is pushed through every execution tier —
tier-0 interpreter, raw IR, the optimization pipeline, atomic-region
formation, and the compiled machine — and all five must agree on the
observable outcome (return value, guest exception, heap digest where
available).  Programs are ``parametric``: they are profiled with one
argument and measured with another, so region-formed code genuinely fires
its hardware asserts and the sweep exercises abort/rollback, not just the
commit path.

On top of the tier oracle, the sweep proves the observability subsystem is
invisible: running with a live :class:`repro.obs.Tracer` must produce
byte-identical outcomes and ``ExecStats.summary()`` dicts as the null
tracer, and two traced runs of the same seed must produce bit-identical
event streams.

The seed window is CI-shardable: ``DIFF_SEED_BASE`` / ``DIFF_SEED_COUNT``
environment variables move it (defaults cover seeds 0..49).
"""

from __future__ import annotations

import os

import pytest

from repro.atomic import form_regions
from repro.harness import run_workload
from repro.hw import BASELINE_4WIDE, CacheConfig
from repro.obs import Tracer
from repro.opt import optimize
from repro.runtime import GuestError
from repro.testutil import outcome_bytecode, outcome_ir, profiled
from repro.testutil.genprog import GenConfig, ProgramGenerator
from repro.vm import ATOMIC_AGGRESSIVE, TieredVM, VMOptions
from repro.workloads import get_workload, workload_names

_SEED_BASE = int(os.environ.get("DIFF_SEED_BASE", "0"))
_SEED_COUNT = int(os.environ.get("DIFF_SEED_COUNT", "50"))
SEEDS = list(range(_SEED_BASE, _SEED_BASE + _SEED_COUNT))

#: profile with one argument, measure with another: the cold paths the
#: profile never saw become asserts in region-formed code, and the
#: measurement argument walks straight into them.
WARM_ARG = 1
RUN_ARG = -3


def _generate(seed: int):
    return ProgramGenerator(
        GenConfig(seed=seed, parametric=True, max_statements=10)
    ).generate()


def _run_tiered(program, tracer=None, timing=True, dispatch="auto", hw=None):
    """Full tiered execution: warm-up, compile, measure one call."""
    kwargs = {} if hw is None else {"hw_config": hw}
    vm = TieredVM(
        program,
        ATOMIC_AGGRESSIVE,
        options=VMOptions(enable_timing=timing, compile_threshold=1,
                          dispatch=dispatch),
        tracer=tracer,
        **kwargs,
    )
    vm.warm_up("main", [[WARM_ARG]] * 3)
    vm.compile_hot(min_invocations=1)
    vm.start_measurement()
    try:
        value, error = vm.run("main", [RUN_ARG]), None
    except GuestError as exc:
        value, error = None, type(exc).__name__
    stats = vm.end_measurement()
    return value, error, stats


class TestCrossTierSweep:
    """Seeded programs through interpreter -> IR -> opt -> regions -> machine."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_all_tiers_agree(self, seed):
        program = _generate(seed)
        expected = outcome_bytecode(program, args=(RUN_ARG,))
        profiles = profiled(program, args=(WARM_ARG,))

        raw_ir, _ = outcome_ir(program, args=(RUN_ARG,), profiles=profiles)
        assert raw_ir == expected, f"seed {seed}: raw IR diverged"

        def opt_only(graph, _program):
            optimize(graph)  # mutates in place; returns pipeline stats

        opt_ir, _ = outcome_ir(
            program, args=(RUN_ARG,), transform=opt_only, profiles=profiles,
        )
        assert opt_ir == expected, f"seed {seed}: optimized IR diverged"

        def regions_then_opt(graph, _program):
            form_regions(graph)
            optimize(graph)

        region_ir, _ = outcome_ir(
            program, args=(RUN_ARG,), transform=regions_then_opt,
            profiles=profiles,
        )
        assert region_ir == expected, f"seed {seed}: region-formed IR diverged"

        value, error, _stats = _run_tiered(program, timing=False)
        assert (value, error) == (expected.value, expected.error), (
            f"seed {seed}: compiled machine diverged"
        )

    def test_sweep_fires_asserts(self):
        """The parametric warm/run split must actually exercise aborts:
        a sweep where every region commits would prove nothing about
        rollback."""
        aborted = 0
        for seed in SEEDS:
            _, _, stats = _run_tiered(_generate(seed), timing=False)
            aborted += stats.regions_aborted
        assert aborted > 0


class TestTracingChangesNothing:
    """The headline oracle: a live tracer is observationally inert."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_traced_run_byte_identical(self, seed):
        program = _generate(seed)
        null_value, null_error, null_stats = _run_tiered(program)
        tracer = Tracer()
        value, error, stats = _run_tiered(_generate(seed), tracer=tracer)
        assert (value, error) == (null_value, null_error)
        assert stats.summary() == null_stats.summary()
        # Same seed, same tracer: the event stream replays bit-for-bit.
        replay = Tracer()
        _run_tiered(_generate(seed), tracer=replay)
        assert replay.events == tracer.events
        assert replay.emitted == tracer.emitted

    def test_region_activity_is_traced(self):
        """At least one sweep seed must produce region lifecycle events —
        otherwise the bit-identical assertion above compares empty lists."""
        kinds = set()
        for seed in SEEDS[:10]:
            tracer = Tracer()
            _run_tiered(_generate(seed), tracer=tracer)
            kinds.update(event.kind for event in tracer.events)
        assert "region_enter" in kinds
        assert "tier_compile" in kinds


#: the host fast tiers under differential test: the pre-decoded arrays
#: (the PR 4 contract) and the template-jit fused functions riding the
#: same invalidation discipline.
FAST_DISPATCHES = ["predecoded", "jit"]


class TestDispatchEquivalence:
    """Every fast dispatch tier is observationally inert: byte-identical
    outcomes, ``ExecStats.summary()`` dicts, and traced event streams
    versus the interpretive loop, seed by seed."""

    @pytest.mark.parametrize("dispatch", FAST_DISPATCHES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fast_path_byte_identical(self, seed, dispatch):
        """Timed run: same outcome and stats summary — including every
        cycle-level counter the timing model feeds — both dispatch ways."""
        fast = _run_tiered(_generate(seed), dispatch=dispatch)
        slow = _run_tiered(_generate(seed), dispatch="interpretive")
        assert (fast[0], fast[1]) == (slow[0], slow[1]), (
            f"seed {seed}: {dispatch} dispatch disagrees on the outcome"
        )
        assert fast[2].summary() == slow[2].summary(), (
            f"seed {seed}: {dispatch} dispatch disagrees on ExecStats"
        )

    @pytest.mark.parametrize("dispatch", FAST_DISPATCHES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fast_path_byte_identical_functional(self, seed, dispatch):
        """Untimed run: the functional-mode stats agree too."""
        fast = _run_tiered(_generate(seed), timing=False,
                           dispatch=dispatch)
        slow = _run_tiered(_generate(seed), timing=False,
                           dispatch="interpretive")
        assert (fast[0], fast[1]) == (slow[0], slow[1])
        assert fast[2].summary() == slow[2].summary()

    @pytest.mark.parametrize("dispatch", FAST_DISPATCHES)
    @pytest.mark.parametrize("seed", SEEDS[:10])
    def test_traced_event_streams_identical(self, seed, dispatch):
        """With a live tracer both modes must emit bit-identical event
        streams (the fast tiers yield to the instrumented loop rather
        than skip emission sites)."""
        fast_tracer = Tracer()
        fast = _run_tiered(_generate(seed), tracer=fast_tracer,
                           dispatch=dispatch)
        slow_tracer = Tracer()
        slow = _run_tiered(_generate(seed), tracer=slow_tracer,
                           dispatch="interpretive")
        assert (fast[0], fast[1]) == (slow[0], slow[1])
        assert fast[2].summary() == slow[2].summary()
        assert fast_tracer.events == slow_tracer.events
        assert fast_tracer.emitted == slow_tracer.emitted


#: bounded-capacity x fallback-mode x delivery matrix for the variant
#: equivalence sweep: tight bounds so seeded programs actually trip them.
_TINY_L1 = CacheConfig(256, 2, 64, 4)
HTM_MATRIX = [
    BASELINE_4WIDE.scaled(name="diff-rock", htm_mode="store_buffer",
                          spec_store_buffer_entries=2),
    BASELINE_4WIDE.scaled(name="diff-cache", htm_mode="cache_shaped",
                          l1_config=_TINY_L1),
    BASELINE_4WIDE.scaled(name="diff-rock-lock-begin",
                          htm_mode="store_buffer",
                          spec_store_buffer_entries=2,
                          fallback_lock_mode="begin"),
    BASELINE_4WIDE.scaled(name="diff-cache-lock-end",
                          htm_mode="cache_shaped", l1_config=_TINY_L1,
                          fallback_lock_mode="end"),
    BASELINE_4WIDE.scaled(name="diff-rock-setjmp", htm_mode="store_buffer",
                          spec_store_buffer_entries=2,
                          abort_delivery="setjmp"),
    BASELINE_4WIDE.scaled(name="diff-rock-lock-setjmp",
                          htm_mode="store_buffer",
                          spec_store_buffer_entries=2,
                          fallback_lock_mode="begin",
                          abort_delivery="setjmp"),
]


class TestHTMVariantEquivalence:
    """Every best-effort HTM shape is a *performance* variant, never a
    semantics variant: seeded programs must produce the same observable
    outcome on capacity-bounded, fallback-locked, and setjmp-delivered
    machines as on the idealized unbounded substrate."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_variants_agree_with_unbounded(self, seed):
        program = _generate(seed)
        base_value, base_error, _ = _run_tiered(program, timing=False)
        for hw in HTM_MATRIX:
            value, error, _ = _run_tiered(
                _generate(seed), timing=False, hw=hw)
            assert (value, error) == (base_value, base_error), (
                f"seed {seed}: {hw.name} diverged from unbounded baseline"
            )

    @pytest.mark.parametrize("hw", HTM_MATRIX, ids=lambda h: h.name)
    def test_jit_matches_interpretive_on_variants(self, hw):
        """The fused tier specialises its emitted code per HTM shape
        (store bounds, cache-shaped overflow tracking, fallback-begin
        lock checks, setjmp delivery) — every specialisation must stay
        byte-identical to the interpretive loop on that same shape."""
        for seed in SEEDS[:15]:
            jit = _run_tiered(_generate(seed), timing=False,
                              dispatch="jit", hw=hw)
            slow = _run_tiered(_generate(seed), timing=False,
                               dispatch="interpretive", hw=hw)
            assert (jit[0], jit[1]) == (slow[0], slow[1]), (
                f"seed {seed}: jit diverged on {hw.name}"
            )
            assert jit[2].summary() == slow[2].summary(), (
                f"seed {seed}: jit stats diverged on {hw.name}"
            )

    def test_sweep_fires_capacity_aborts(self):
        """The tight bounds must actually trip on sweep programs — a
        sweep where no region ever hits capacity proves nothing about
        the bounded recovery paths."""
        total = 0
        for seed in SEEDS:
            _, _, stats = _run_tiered(
                _generate(seed), timing=False, hw=HTM_MATRIX[0])
            total += stats.capacity_aborts
            if total:
                break
        assert total > 0


#: deterministic atomic-uop programs (scenario builders driven
#: single-threaded): name -> (program factory, warm worker args, run
#: worker args).  Warm and run args differ so compiled code sees operand
#: shapes the profile never did.
def _atomic_cases():
    from repro.workloads.contention import (
        build_counter, build_msqueue, build_ticket,
    )

    cases = []
    for primitive in ("faa", "cas", "llsc", "lock"):
        cases.append((f"counter-{primitive}",
                      lambda p=primitive: build_counter(p), [3], [12]))
    for primitive in ("faa", "llsc"):
        cases.append((f"ticket-{primitive}",
                      lambda p=primitive: build_ticket(p), [2, 9], [6, 7]))
    for primitive in ("cas", "lock"):
        cases.append((f"msqueue-{primitive}",
                      lambda p=primitive: build_msqueue(p, 1, 1, 4),
                      [1, 2, 2, 0], [1, 4, 4, 0]))
    return cases


ATOMIC_CASES = _atomic_cases()


def _run_atomic(build, warm_args, run_args, tracer=None, timing=True,
                dispatch="auto", hw=None):
    """Tiered run of a contention worker: returns (value, heap fp, stats)."""
    kwargs = {} if hw is None else {"hw_config": hw}
    vm = TieredVM(
        build(),
        ATOMIC_AGGRESSIVE,
        options=VMOptions(enable_timing=timing, compile_threshold=1,
                          dispatch=dispatch),
        tracer=tracer,
        **kwargs,
    )
    for _ in range(3):
        warm_shared = vm.run("setup")  # fresh state per warm invocation
        vm.warm_up("worker", [[warm_shared] + list(warm_args)])
    vm.compile_hot(min_invocations=1)
    shared = vm.run("setup")
    vm.start_measurement()
    value = vm.run("worker", [shared] + list(run_args))
    stats = vm.end_measurement()
    return value, vm.heap.fingerprint(), stats


class TestAtomicUopEquivalence:
    """The atomic primitives are execution-strategy invariant: every
    FAA/CAS/LL-SC/monitor program produces a byte-identical outcome (return
    value, heap fingerprint, ``ExecStats.summary()`` — which now carries
    the atomic-uop counters) across the interpretive loop, the pre-decoded
    fast path, tracing on/off, and every best-effort HTM shape."""

    @pytest.mark.parametrize("dispatch", FAST_DISPATCHES)
    @pytest.mark.parametrize("name,build,warm,run",
                             ATOMIC_CASES,
                             ids=[c[0] for c in ATOMIC_CASES])
    def test_dispatch_modes_byte_identical(self, name, build, warm, run,
                                           dispatch):
        fast = _run_atomic(build, warm, run, dispatch=dispatch)
        slow = _run_atomic(build, warm, run, dispatch="interpretive")
        assert fast[0] == slow[0], f"{name}: return values diverged"
        assert fast[1] == slow[1], f"{name}: heap fingerprints diverged"
        assert fast[2].summary() == slow[2].summary(), (
            f"{name}: dispatch modes disagree on ExecStats"
        )
        # The sweep must actually execute atomic uops to prove anything.
        summary = fast[2].summary()
        if "lock" not in name:
            assert (summary["faa_ops"] + summary["cas_ops"]
                    + summary["sc_ops"]) > 0, f"{name}: no atomic uops ran"

    @pytest.mark.parametrize("name,build,warm,run",
                             ATOMIC_CASES,
                             ids=[c[0] for c in ATOMIC_CASES])
    def test_tracing_is_inert(self, name, build, warm, run):
        null = _run_atomic(build, warm, run)
        tracer = Tracer()
        traced = _run_atomic(build, warm, run, tracer=tracer)
        assert traced[0] == null[0]
        assert traced[1] == null[1]
        assert traced[2].summary() == null[2].summary()
        replay = Tracer()
        _run_atomic(build, warm, run, tracer=replay)
        assert replay.events == tracer.events
        assert replay.emitted == tracer.emitted

    @pytest.mark.parametrize("name,build,warm,run",
                             ATOMIC_CASES,
                             ids=[c[0] for c in ATOMIC_CASES])
    def test_htm_variants_agree(self, name, build, warm, run):
        from repro.hw import htm_variant_configs

        base_value, base_fp, _ = _run_atomic(build, warm, run, timing=False)
        for hw in htm_variant_configs():
            value, fp, _ = _run_atomic(build, warm, run, timing=False, hw=hw)
            assert (value, fp) == (base_value, base_fp), (
                f"{name}: {hw.name} diverged from unbounded baseline"
            )


class TestParallelSweepEquivalence:
    """The sharded parallel runner merges deterministically: parallel and
    serial sweeps over the same seeds/cells are byte-identical."""

    BENCHES = ["fop", "hsqldb"]

    def test_figure_tables_identical_parallel_vs_serial(self):
        from repro.harness import (
            clear_cache, figure7, figure8, prewarm_figures, render,
        )

        clear_cache()
        serial = (render(figure7(self.BENCHES)),
                  render(figure8(self.BENCHES)))
        clear_cache()
        prewarm_figures(self.BENCHES, workers=2)
        parallel = (render(figure7(self.BENCHES)),
                    render(figure8(self.BENCHES)))
        clear_cache()
        assert parallel == serial

    def test_chaos_matrix_identical_parallel_vs_serial(self):
        from repro.harness import run_chaos, run_chaos_parallel
        from repro.harness.parallel import COMPILER_CONFIGS

        seeds = (0, 1, 2, 3)
        serial = run_chaos(
            get_workload("fop"), COMPILER_CONFIGS[ATOMIC_AGGRESSIVE.name],
            seeds=seeds, max_samples=1,
        )
        parallel = run_chaos_parallel(
            "fop", seeds=seeds, max_samples=1, workers=2,
        )
        assert parallel.describe() == serial.describe()
        assert [c.stats.summary() for c in parallel.checks] == [
            c.stats.summary() for c in serial.checks
        ]


class TestWorkloadFiguresUnchanged:
    """Figure 7/8 inputs are byte-identical with tracing enabled (the
    EXPERIMENTS.md contract: published figures run with the null tracer,
    but a traced rerun reproduces them exactly)."""

    @pytest.mark.parametrize("name", workload_names())
    def test_stats_identical_traced_vs_null(self, name):
        workload = get_workload(name)
        baseline = run_workload(workload, ATOMIC_AGGRESSIVE, use_cache=False)
        traced = run_workload(
            workload, ATOMIC_AGGRESSIVE, tracer=Tracer(capacity=1 << 16)
        )
        assert len(baseline.samples) == len(traced.samples)
        for base, trace in zip(baseline.samples, traced.samples):
            assert trace.guest_results == base.guest_results
            assert trace.stats.summary() == base.stats.summary()

    @pytest.mark.parametrize("dispatch", FAST_DISPATCHES)
    @pytest.mark.parametrize("name", workload_names())
    def test_stats_identical_fast_vs_interpretive(self, name, dispatch):
        """Figure 7/8 inputs are byte-identical under every dispatch mode
        — the published tables cannot depend on the host fast tiers."""
        workload = get_workload(name)
        fast = run_workload(workload, ATOMIC_AGGRESSIVE, use_cache=False,
                            dispatch=dispatch)
        slow = run_workload(workload, ATOMIC_AGGRESSIVE, use_cache=False,
                            dispatch="interpretive")
        assert len(fast.samples) == len(slow.samples)
        for f, s in zip(fast.samples, slow.samples):
            assert f.guest_results == s.guest_results
            assert f.stats.summary() == s.stats.summary()
