"""Figure 9: sensitivity to the hardware atomic-primitive implementation.

Paper shape: a 20-cycle stall at every ``aregion_begin``, or restricting
the pipeline to a single in-flight region, erases most of the benefit of
atomic regions — "both of these configurations effectively eliminate the
benefit... the sole exception is antlr, which shows limited sensitivity
because its execution uses atomic regions rather sparingly."
"""

from repro.harness import figure9, render


def test_figure9_hardware_sensitivity(once):
    data = once(figure9)
    print()
    print(render(data))
    averages = data.averages()
    chkpt_avg, stall_avg, single_avg = averages

    # Degraded implementations lose a substantial part of the benefit,
    # with single-inflight (full serialization) worse than the fixed stall.
    assert stall_avg < chkpt_avg - 3.0
    assert single_avg < stall_avg
    assert single_avg < 0.6 * chkpt_avg
    # antlr barely cares (sparse region usage).
    antlr = data.rows["antlr"]
    assert abs(antlr[0] - antlr[1]) < 4.0
