"""Table 3: atomic region statistics under atomic+aggressive inlining.

Paper shape: coverage spans a wide range (9%..87%) with antlr lowest and
jython/hsqldb/xalan high; abort rates stay in the few-percent range with
fop/antlr essentially abort-free; region sizes tens-to-hundreds of uops.
"""

from repro.harness import render, table3


def test_table3_region_statistics(once):
    data = once(table3)
    print()
    print(render(data))
    coverage = {b: v[0] for b, v in data.rows.items()}
    abort_pct = {b: v[3] for b, v in data.rows.items()}
    size = {b: v[2] for b, v in data.rows.items()}

    # antlr sits in the low-coverage group (paper: 9%, lowest with fop).
    assert coverage["antlr"] <= sorted(coverage.values())[1]
    assert coverage["antlr"] < 0.25
    # The high-coverage group (paper: bloat/hsqldb/jython/xalan >= 69%).
    assert coverage["hsqldb"] > 0.5
    assert coverage["jython"] > 0.4
    # Abort rates: fop and antlr essentially never abort.
    assert abort_pct["antlr"] < 0.2
    assert abort_pct["fop"] < 0.2
    # Every abort rate stays within an order of magnitude of the paper's.
    assert all(rate < 15.0 for rate in abort_pct.values())
    # Region sizes are tens to hundreds of uops.
    assert all(10 <= s <= 500 for s in size.values() if s > 0)
