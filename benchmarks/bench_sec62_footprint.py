"""§6.2: architectural analysis of atomic regions.

Paper shape: a non-trivial fraction of regions exceeds the 128-entry
instruction window (so checkpoints, not the ROB, must provide recovery);
data footprints are small — most regions touch <10 cache lines, ~50 lines
covers 99%, and overflows of the L1-bounded best-effort limit are
essentially nonexistent.
"""

from repro.harness import render, section62


def test_section62_footprints(once):
    data = once(section62)
    print()
    print(render(data))
    p99 = {b: v[2] for b, v in data.rows.items()}
    medians = {b: v[1] for b, v in data.rows.items()}
    max_lines = {b: v[3] for b, v in data.rows.items()}

    populated = [b for b, v in data.rows.items() if v[3] > 0]
    assert populated, "at least some benchmarks must form regions"
    # Footprints are tiny relative to a 512-line L1.
    assert all(medians[b] <= 50 for b in populated)
    assert all(p99[b] <= 100 for b in populated)
    assert all(max_lines[b] <= 448 for b in populated), "no overflow aborts"
    # Some benchmark has regions beyond the 128-uop window: register
    # checkpoints (not the ROB) must provide recovery, as the paper argues.
    over_window = {b: v[0] for b, v in data.rows.items()}
    assert max(over_window.values()) > 10.0
