#!/usr/bin/env python3
"""Sweep-service throughput: cold / deduped / cached cells per second.

Closed-loop load against an in-process :class:`repro.service.SweepServer`:
``--clients`` tenants each submit one cell at a time and wait for its
result, so per-cell latency is a real round trip (validate, schedule,
compute or cache hit, stream back), not a batch amortisation.  Three
phases exercise the three serving paths:

- ``cold``   — unique seeded cells, every one a real simulation on the
  worker pool (the floor: this is what the service *saves* elsewhere)
- ``dedup``  — every client sweeps the *same* fresh cells concurrently;
  in-flight dedup collapses N tenants to one execution per cell
- ``cached`` — the cold cells resubmitted for several rounds, answered
  from the in-memory LRU at memory speed

and emits ``BENCH_service.json``::

    {"workers": ..., "clients": ...,
     "cold":   {"served": ..., "wall_s": ..., "cells_per_s": ...,
                "p50_ms": ..., "p99_ms": ...},
     "dedup":  {..., "executions": ...},
     "cached": {...},
     "cached_speedup_p50": ...}

Usage:
    python benchmarks/bench_service.py [--output BENCH_service.json]
        [--check] [--quick] [--clients 3] [--cold-cells 6]
        [--cached-rounds 5] [--workers N]

``--check`` exits non-zero unless the cached p50 is at least
:data:`CACHED_SPEEDUP_FLOOR` x faster than the cold p50 — the CI
perf-smoke gate (a served cached cell must stay memory-speed).  Run
standalone, not under pytest: the point is wall-clock.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.service import ServiceCell, SweepClient, SweepServer  # noqa: E402

#: minimum cold-p50 / cached-p50 ratio (the acceptance criterion).
CACHED_SPEEDUP_FLOOR = 10.0

#: the benchmark workload: the fastest cell in the suite, so the cold
#: floor is compute-dominated but the run stays CI-sized.
WORKLOAD, COMPILER = "hsqldb", "atomic"


def cell(seed: int) -> ServiceCell:
    return ServiceCell(workload=WORKLOAD, compiler=COMPILER, seed=seed)


def percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


async def closed_loop(server: SweepServer, cells: list[ServiceCell],
                      latencies: list[float], digests: dict) -> None:
    """One tenant: submit each cell alone and wait for its result."""
    client = await SweepClient.connect(server.host, server.port)
    try:
        for item in cells:
            begin = time.perf_counter()
            (event,) = await client.sweep([item])
            latencies.append((time.perf_counter() - begin) * 1000.0)
            digests.setdefault(item, set()).add(event["digest"])
    finally:
        await client.close()


async def phase(server: SweepServer, per_client: list[list[ServiceCell]],
                digests: dict) -> dict:
    latencies: list[float] = []
    begin = time.perf_counter()
    await asyncio.gather(*(closed_loop(server, cells, latencies, digests)
                           for cells in per_client))
    wall = time.perf_counter() - begin
    return {
        "served": len(latencies),
        "wall_s": round(wall, 4),
        "cells_per_s": round(len(latencies) / wall, 2),
        "p50_ms": round(percentile(latencies, 0.50), 3),
        "p99_ms": round(percentile(latencies, 0.99), 3),
    }


async def run_bench(clients: int, cold_cells: int, cached_rounds: int,
                    workers: int | None) -> dict:
    digests: dict = {}
    async with SweepServer(workers=workers, disk_cache=False) as server:
        # cold: unique cells, spread round-robin across the tenants.
        cold = [cell(seed) for seed in range(cold_cells)]
        per_client = [cold[index::clients] for index in range(clients)]
        cold_stats = await phase(server, per_client, digests)
        cold_execs = server.executions

        # dedup: every tenant asks for the same fresh cells at once.
        shared = [cell(seed) for seed in range(1000, 1000 + max(
            2, cold_cells // 2))]
        dedup_stats = await phase(server, [list(shared)] * clients, digests)
        dedup_stats["executions"] = server.executions - cold_execs
        dedup_stats["dedup_hits"] = server.counters()["dedup_hits"]

        # cached: the cold matrix again, now answered from the hot LRU.
        cached_stats = await phase(
            server, [list(cold) * cached_rounds] * clients, digests)

        counters = server.counters()

    # every phase that served a cell must agree on its digest.
    diverged = {k: v for k, v in digests.items() if len(v) > 1}
    if diverged:
        raise AssertionError(
            f"served digests diverged across phases: {diverged}")
    if dedup_stats["executions"] != len(shared):
        raise AssertionError(
            f"dedup failed to collapse executions: {dedup_stats}")

    return {
        "workload": f"{WORKLOAD}:{COMPILER}",
        "clients": clients,
        "workers": counters["workers"],
        "cold": cold_stats,
        "dedup": dedup_stats,
        "cached": cached_stats,
        "cached_speedup_p50": round(
            cold_stats["p50_ms"] / max(cached_stats["p50_ms"], 1e-6), 1),
        "hot_hits": counters["cache"]["hot_hits"],
    }


def check_gate(results: dict) -> int:
    speedup = results["cached_speedup_p50"]
    if speedup < CACHED_SPEEDUP_FLOOR:
        print(f"SERVICE CACHE REGRESSION: cached p50 only {speedup:.1f}x "
              f"faster than cold (< {CACHED_SPEEDUP_FLOOR:.0f}x floor)")
        return 1
    print(f"cache check ok: cached p50 {speedup:.1f}x faster than cold "
          f"(>= {CACHED_SPEEDUP_FLOOR:.0f}x floor)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None,
                        help="write BENCH_service.json here "
                             "(default: repo root)")
    parser.add_argument("--check", action="store_true",
                        help="fail unless cached p50 beats cold p50 by "
                             f"{CACHED_SPEEDUP_FLOOR:.0f}x")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (fewer cells and rounds)")
    parser.add_argument("--clients", type=int, default=3)
    parser.add_argument("--cold-cells", type=int, default=6)
    parser.add_argument("--cached-rounds", type=int, default=5)
    parser.add_argument("--workers", type=int, default=None,
                        help="worker processes (default: REPRO_WORKERS)")
    args = parser.parse_args()
    if args.quick:
        args.cold_cells = min(args.cold_cells, 4)
        args.cached_rounds = min(args.cached_rounds, 2)

    results = asyncio.run(run_bench(
        args.clients, args.cold_cells, args.cached_rounds, args.workers))
    print(f"cold   {results['cold']['cells_per_s']:8.2f} cells/s  "
          f"p50 {results['cold']['p50_ms']:9.2f}ms  "
          f"p99 {results['cold']['p99_ms']:9.2f}ms")
    print(f"dedup  {results['dedup']['cells_per_s']:8.2f} cells/s  "
          f"p50 {results['dedup']['p50_ms']:9.2f}ms  "
          f"({results['dedup']['executions']} executions for "
          f"{results['dedup']['served']} served)")
    print(f"cached {results['cached']['cells_per_s']:8.2f} cells/s  "
          f"p50 {results['cached']['p50_ms']:9.2f}ms  "
          f"p99 {results['cached']['p99_ms']:9.2f}ms  "
          f"({results['cached_speedup_p50']:.1f}x cold p50)")

    output = Path(args.output) if args.output else (
        Path(__file__).resolve().parents[1] / "BENCH_service.json"
    )
    output.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    if args.check:
        return check_gate(results)
    return 0


if __name__ == "__main__":
    sys.exit(main())
