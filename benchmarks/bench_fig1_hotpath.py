"""Figure 1 / §1: the jython hot-loop motivation.

The paper opens with Jython's hottest loop: a long hot path through dozens
of strongly-biased branches that a conventional compiler cannot collapse,
where "aggressive speculative optimizations can remove more than two-thirds
of the instructions" once the hot path is isolated in an atomic region.

This benchmark measures dynamic uops per interpreted bytecode step for the
jython workload and checks that region formation substantially thins the
hot path relative to the baseline compiler on identical work.
"""

from repro.harness import run_workload
from repro.hw import BASELINE_4WIDE
from repro.vm import ATOMIC_AGGRESSIVE, NO_ATOMIC
from repro.workloads import get_workload


def hot_path_density():
    workload = get_workload("jython")
    base = run_workload(workload, NO_ATOMIC, BASELINE_4WIDE)
    atomic = run_workload(workload, ATOMIC_AGGRESSIVE, BASELINE_4WIDE)
    steps = sum(args[0] for args in workload.samples[0].measure_args)
    base_density = base.samples[0].uops / steps
    atomic_density = atomic.samples[0].uops / steps
    return base_density, atomic_density


def test_figure1_hot_path_thinning(once):
    base_density, atomic_density = once(hot_path_density)
    reduction = 100.0 * (1 - atomic_density / base_density)
    print(f"\nFigure 1 analogue (jython dispatch loop):")
    print(f"  baseline uops/step: {base_density:6.1f}")
    print(f"  atomic   uops/step: {atomic_density:6.1f}")
    print(f"  hot-path thinning:  {reduction:6.1f}%")
    assert atomic_density < base_density, "regions must thin the hot path"
    assert reduction > 3.0
