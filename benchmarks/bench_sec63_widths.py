"""§6.3: narrower cores.

Paper shape: "the relative speedups achieved by our atomic region-based
optimizations closely tracked the 4-wide OOO results (generally within a
percent or two)" on a 2-wide machine and a 2-wide machine with halved
structures.
"""

from repro.harness import render, section63


def test_section63_core_widths(once):
    data = once(section63)
    print()
    print(render(data))
    averages = data.averages()
    four_wide, two_wide, two_wide_half = averages
    # The averages track each other within a few percent.
    assert abs(four_wide - two_wide) < 6.0
    assert abs(four_wide - two_wide_half) < 6.0
    # Per-benchmark sign agreement for the decisive winners/losers.
    for bench, values in data.rows.items():
        if abs(values[0]) > 5.0:
            assert values[0] * values[1] > 0, f"{bench} flips sign at 2-wide"
