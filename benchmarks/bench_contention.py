#!/usr/bin/env python3
"""Contention scaling sweep: atomic primitives under high thread counts.

Runs the (scenario x primitive x threads) contention matrix — shared
counter, ticket lock, and bounded MS-style queue, each via FAA, a CAS
retry loop, an LL/SC retry loop, monitor locking, and monitor locking
compiled to elided-lock regions — under the seeded deterministic
scheduler, and emits ``BENCH_contention.json``::

    {"meta": {...},
     "cells": [{"scenario": ..., "primitive": ..., "threads": ...,
                "steps_per_op": ..., "retries": ..., "oracle_ok": ...},
               ...]}

Every cell is validated in-run by the serializability oracle: the
threaded guest results and heap must be byte-identical to a serial-order
execution of the same workers (or, for the queue — whose consumer
assignment is legitimately schedule-dependent — satisfy the
linearizability invariant battery).  The sweep then asserts the scaling
shape the primitives are supposed to have: FAA's steps-per-op stays flat
from 2 to 64 threads (one indivisible uop, O(n) total work) while the
CAS/LL-SC loops' lost-attempt retries grow superlinearly in the thread
count (the O(n^2) coherence storm).

Usage:
    python benchmarks/bench_contention.py [--output BENCH_contention.json]
        [--threads 2,4,8,16,32,64] [--iters 8] [--seed 0] [--quick]

``--quick`` shrinks the thread axis to 2,8 for the CI smoke gate; the
superlinearity checks need an 8x thread span and are skipped below it
(the oracle and flatness checks always run).  Run standalone, not under
pytest: a full sweep is minutes of scheduled guest execution.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.harness import CONTENTION_PRIMITIVES, run_contention_cell  # noqa: E402
from repro.workloads.contention import SCENARIOS                      # noqa: E402

DEFAULT_THREADS = (2, 4, 8, 16, 32, 64)

#: FAA steps-per-op may drift this much across the whole thread axis and
#: still count as "flat" (it is exactly flat today; the budget absorbs
#: future scheduler-overhead accounting changes, not real scaling).
FLATNESS_BUDGET = 0.10


def run_matrix(threads: tuple, iters: int, seed: int) -> list[dict]:
    cells = []
    for scenario in SCENARIOS:
        for primitive in CONTENTION_PRIMITIVES:
            for count in threads:
                begin = time.perf_counter()
                cell = run_contention_cell(
                    scenario, primitive, count, iters=iters, seed=seed,
                )
                wall = time.perf_counter() - begin
                cells.append(cell)
                print(f"{scenario:8s} {primitive:9s} t={count:3d}  "
                      f"steps/op={cell['steps_per_op']:8.2f}  "
                      f"retries={cell['retries']:5d}  "
                      f"aborts={cell['regions_aborted']:4d}  "
                      f"oracle={'ok' if cell['oracle_ok'] else 'FAIL'}  "
                      f"({wall:.2f}s)")
    return cells


def check_scaling(cells: list[dict], threads: tuple) -> list[str]:
    """The acceptance shape: every oracle green, FAA flat, CAS superlinear."""
    failures = []
    for cell in cells:
        if not cell["oracle_ok"]:
            failures.append(
                f"{cell['scenario']}/{cell['primitive']}/t{cell['threads']}: "
                f"oracle check failed ({cell['oracle']})")
    index = {(c["scenario"], c["primitive"], c["threads"]): c
             for c in cells}
    tmin, tmax = min(threads), max(threads)

    # FAA: zero retries, flat per-op cost across the whole axis.
    for count in threads:
        cell = index[("counter", "faa", count)]
        if cell["retries"] != 0:
            failures.append(
                f"counter/faa/t{count}: {cell['retries']} retries "
                "(FAA must be indivisible)")
    lo = index[("counter", "faa", tmin)]["steps_per_op"]
    hi = index[("counter", "faa", tmax)]["steps_per_op"]
    if hi > lo * (1.0 + FLATNESS_BUDGET):
        failures.append(
            f"counter/faa: steps/op grew {lo:.2f} -> {hi:.2f} across "
            f"t{tmin}->t{tmax} (not flat)")

    # CAS/LL-SC: retry traffic must exist and outgrow the thread count.
    if tmax >= 8 * tmin:
        for primitive in ("cas", "llsc"):
            series = [index[("counter", primitive, count)]
                      for count in threads]
            last = series[-1]
            if last["retries"] == 0:
                failures.append(
                    f"counter/{primitive}/t{tmax}: no retries at the top "
                    "of the thread axis (no contention observed)")
                continue
            anchor = next(c for c in series if c["retries"])
            if anchor is last:
                continue  # retries only appeared at the top: superlinear
            thread_ratio = last["threads"] / anchor["threads"]
            retry_ratio = last["retries"] / anchor["retries"]
            if retry_ratio <= thread_ratio:
                failures.append(
                    f"counter/{primitive}: retries grew {retry_ratio:.1f}x "
                    f"over a {thread_ratio:.1f}x thread span "
                    f"(t{anchor['threads']}->t{tmax}: not superlinear)")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None,
                        help="write BENCH_contention.json here "
                             "(default: repo root)")
    parser.add_argument("--threads", default=None,
                        help="comma-separated thread counts "
                             "(default: 2,4,8,16,32,64)")
    parser.add_argument("--iters", type=int, default=8,
                        help="atomic ops per worker thread")
    parser.add_argument("--seed", type=int, default=0,
                        help="schedule seed for every cell")
    parser.add_argument("--quick", action="store_true",
                        help="CI smoke: thread axis 2,8 only")
    args = parser.parse_args()

    if args.threads:
        threads = tuple(int(t) for t in args.threads.split(","))
    elif args.quick:
        threads = (2, 8)
    else:
        threads = DEFAULT_THREADS

    begin = time.perf_counter()
    cells = run_matrix(threads, args.iters, args.seed)
    wall = time.perf_counter() - begin
    failures = check_scaling(cells, threads)

    results = {
        "meta": {
            "threads": list(threads),
            "iters": args.iters,
            "seed": args.seed,
            "scenarios": list(SCENARIOS),
            "primitives": list(CONTENTION_PRIMITIVES),
            "oracle_all_ok": all(c["oracle_ok"] for c in cells),
            "scaling_ok": not failures,
        },
        "cells": cells,
    }
    output = Path(args.output) if args.output else (
        Path(__file__).resolve().parents[1] / "BENCH_contention.json"
    )
    output.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output} ({len(cells)} cells, {wall:.1f}s)")
    if failures:
        print("SCALING CHECK FAILED:", *failures, sep="\n  ")
        return 1
    print("scaling check ok: FAA flat, CAS/LL-SC retries superlinear, "
          "every cell oracle-validated")
    return 0


if __name__ == "__main__":
    sys.exit(main())
