"""§7 (future work): adaptive recompilation driven by hardware abort
diagnosis.

Paper claim exercised: pmd's slowdown comes from a post-profiling behavior
change whose "negative impacts on performance can be eliminated through
adaptive recompilation when an atomic region begins to frequently abort";
the hardware's abort-reason/abort-PC registers identify the failing
assertion, and recompiling with that branch barred from assert conversion
removes the aborts.
"""

from repro.harness import render, section7_adaptive


def test_section7_adaptive_recompilation(once):
    data = once(section7_adaptive, "pmd")
    print()
    print(render(data))
    static_speedup, static_abort, _ = data.rows["static"]
    adaptive_speedup, adaptive_abort, recompiles = data.rows["adaptive"]

    assert static_abort > 0.5, "pmd's phase change must cause aborts"
    assert recompiles >= 1, "the controller must recompile"
    assert adaptive_abort < static_abort, "recompilation must cut aborts"
    assert adaptive_speedup >= static_speedup - 1.0
