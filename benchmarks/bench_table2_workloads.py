"""Table 2: the benchmark roster, plus end-to-end correctness of each
workload under the most aggressive configuration (the harness's version of
'the benchmark suite runs')."""

from repro.harness import render, table2, verify_workload_correctness
from repro.vm import ATOMIC_AGGRESSIVE
from repro.workloads import ALL_WORKLOADS


def test_table2_roster(once):
    data = once(table2)
    print()
    print(render(data))
    assert set(data.rows) == {
        "antlr", "bloat", "fop", "hsqldb", "jython", "pmd", "xalan"
    }
    # Multi-phase benchmarks carry multiple samples (paper Table 2's '#').
    assert data.rows["antlr"][0] == 4
    assert data.rows["bloat"][0] == 4
    assert data.rows["pmd"][0] == 4
    assert data.rows["fop"][0] == 2
    assert data.rows["hsqldb"][0] == 1


def test_workloads_compute_correct_results(once):
    def verify_all():
        for workload in ALL_WORKLOADS.values():
            verify_workload_correctness(workload, ATOMIC_AGGRESSIVE)
        return True

    assert once(verify_all)
