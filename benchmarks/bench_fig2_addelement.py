"""Figures 2–3 / §2: the SuballocatedIntVector.addElement example.

The paper's worked example: two sequential ``addElement`` calls expose
redundancy (second null check, second length load, re-incremented index)
that a conventional compiler must preserve because of the cold grow-path
side entrances — but that vanishes inside an atomic region, *without any
compensation code*.

Measured here at the IR level (exact operation counts) and end-to-end
(dynamic uops per insert pair).
"""

from repro.harness import run_workload
from repro.hw import BASELINE_4WIDE
from repro.ir import Kind, build_ir
from repro.opt import InlineConfig, Inliner, optimize
from repro.atomic import apply_sle, form_regions
from repro.runtime import Interpreter, ProfileStore
from repro.vm import ATOMIC_AGGRESSIVE, NO_ATOMIC
from repro.workloads import get_workload
from repro.workloads.xalan import build as build_xalan


def _count(graph, kind):
    return sum(1 for b in graph.blocks for n in b.ops if n.kind is kind)


def ir_level_comparison():
    """Compile xalan's work() both ways.

    The baseline counts cover its hot loop; the atomic counts cover the
    *speculative region body only*, normalized by the number of unrolled
    loop-body copies, so both sides express "operations per loop iteration
    on the hot path".
    """
    from repro.atomic import region_membership

    program = build_xalan()
    profiles = ProfileStore()
    interp = Interpreter(program, profiles=profiles)
    method = program.resolve_static("work")
    for _ in range(4):
        interp.invoke(method, [300])

    def kinds_in(graph, block_filter):
        counts = {}
        for block in graph.blocks:
            if not block_filter(block):
                continue
            for op in block.ops:
                counts[op.kind] = counts.get(op.kind, 0) + 1
        return counts

    # Baseline: whole compiled graph ~ the loop body (plus small epilogue).
    graph = build_ir(method, profiles.method("work"))
    inliner = Inliner(program, profiles, InlineConfig(aggressive=True))
    inliner.run(graph, method)
    optimize(graph)
    base_counts = kinds_in(graph, lambda b: True)

    # Atomic: in-region ops only, normalized per unrolled body copy.
    graph = build_ir(method, profiles.method("work"))
    inliner = Inliner(program, profiles, InlineConfig(aggressive=True))
    result = inliner.run(graph, method)
    formation = form_regions(graph, result)
    optimize(graph)
    apply_sle(graph)
    optimize(graph)
    membership = region_membership(graph)
    region_counts = kinds_in(graph, lambda b: membership.get(b.id) is not None)
    copies = max(1, sum(r.unroll_factor for r in formation.regions))

    def norm(counts, scale):
        return {
            "null_checks": counts.get(Kind.CHECK_NULL, 0) / scale,
            "bounds_checks": counts.get(Kind.CHECK_BOUNDS, 0) / scale,
            "field_loads": counts.get(Kind.GETFIELD, 0) / scale,
            "monitor_enters": counts.get(Kind.MONITOR_ENTER, 0) / scale,
            "sle_enters": counts.get(Kind.SLE_ENTER, 0) / scale,
        }

    return norm(base_counts, 1), norm(region_counts, copies)


def test_figure2_static_redundancy(once):
    baseline, atomic = once(ir_level_comparison)
    print(f"\nFigure 2/3 analogue (hot-path ops per loop iteration):")
    for key in baseline:
        print(f"  {key:16s} baseline={baseline[key]:5.1f} atomic={atomic[key]:5.1f}")
    # The region version deduplicates checks and loads on the hot path.
    assert atomic["field_loads"] < baseline["field_loads"]
    assert atomic["null_checks"] <= baseline["null_checks"]
    # SLE converts monitor pairs: enters become sle_enters (fewer uops,
    # no exits at all); no plain monitor enter survives in the region.
    assert atomic["sle_enters"] > 0
    assert atomic["monitor_enters"] == 0


def test_figure2_dynamic_uops(once):
    def densities():
        workload = get_workload("xalan")
        base = run_workload(workload, NO_ATOMIC, BASELINE_4WIDE)
        atomic = run_workload(workload, ATOMIC_AGGRESSIVE, BASELINE_4WIDE)
        pairs = sum(args[0] for args in workload.samples[0].measure_args)
        return base.samples[0].uops / pairs, atomic.samples[0].uops / pairs

    base_density, atomic_density = once(densities)
    print(f"\n  baseline uops/insert-pair: {base_density:6.1f}")
    print(f"  atomic   uops/insert-pair: {atomic_density:6.1f}")
    assert atomic_density < base_density
