"""Shared fixtures for the figure/table benchmarks.

Runs are memoized in :mod:`repro.harness.experiment`'s module cache, so the
many figures sharing the same (workload, compiler, hardware) runs only pay
for them once per pytest session.
"""

import pytest

from repro.testutil.hypo import register_hypothesis_profiles

register_hypothesis_profiles()


@pytest.fixture
def once(benchmark):
    """Run the measured callable exactly once (simulations are themselves
    the experiment; statistical repetition adds nothing but wall time)."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run
