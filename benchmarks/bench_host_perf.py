#!/usr/bin/env python3
"""Host-performance trajectory: wall-clock the host dispatch tiers.

Times representative workload cells — the paper's marker-delimited
measurement sweeps on compiled code, which is exactly what the fast
dispatch tiers accelerate — under all three dispatch strategies
(interpretive, pre-decoded, template-jit) in the same process, asserts
they produce byte-identical ``ExecStats`` summaries and guest results,
and emits ``BENCH_host.json``::

    {"<bench>": {"wall_s": ...,            # pre-decoded, best of N repeats
                 "baseline_wall_s": ...,   # interpretive dispatch, same run
                 "uops_per_s": ...,        # retired uops / pre-decoded wall
                 "speedup_vs_baseline": ...,
                 "jit_wall_s": ...,        # template-jit, best of N repeats
                 "jit_uops_per_s": ...,
                 "jit_speedup_vs_baseline": ...}}

Usage:
    python benchmarks/bench_host_perf.py [--output BENCH_host.json]
        [--check BASELINE.json] [--repeats 3] [--min-jit-speedup X]

``--check`` compares the fresh measurements against a previously emitted
file and exits non-zero if any cell's pre-decoded or jit wall time
regressed more than 25% — the CI perf-smoke gate.  ``--min-jit-speedup``
additionally fails unless the *best* untimed cell's jit speedup over
interpretive reaches the given floor (the template-jit acceptance gate;
the floor is deliberately below the ~10-12x measured on a quiet machine
so shared-runner noise cannot flake it).  Run standalone, not under
pytest: the point is wall-clock, and pytest fixtures add noise.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.runtime import GuestError                     # noqa: E402
from repro.testutil.genprog import GenConfig, ProgramGenerator  # noqa: E402
from repro.vm import ATOMIC_AGGRESSIVE, TieredVM, VMOptions     # noqa: E402
from repro.workloads import get_workload                 # noqa: E402

#: allowed fast-path wall-time regression before --check fails.
REGRESSION_BUDGET = 0.25

#: the workload cells on the trajectory: the two hottest sweeps (the
#: acceptance cells), a third functional sweep, and the two hottest
#: timed cells (the timing model bounds their speedup — tracked so a
#: timing-model regression shows up here too).
WORKLOAD_CELLS = [
    ("hsqldb_sweep", "hsqldb", False),
    ("xalan_sweep", "xalan", False),
    ("jython_sweep", "jython", False),
    ("hsqldb_timed", "hsqldb", True),
    ("xalan_timed", "xalan", True),
]

DIFF_SEEDS = range(0, 10)
#: measured invocations per differential seed: enough work per program
#: that the one-time pre-decode cost is amortized the way any real sweep
#: amortizes it.
DIFF_CALLS = 25


def _measured_sweep(name: str, timing: bool, dispatch: str):
    """Warm + compile untimed, then wall-clock the measurement sweep.

    Returns (wall seconds, uops retired, outcome digest).  The digest —
    guest results plus every sample's ``ExecStats.summary()`` — is what
    the two dispatch modes must agree on byte-for-byte.
    """
    workload = get_workload(name)
    wall = 0.0
    uops = 0
    digest = []
    for sample in workload.samples:
        vm = TieredVM(
            workload.build(),
            compiler_config=ATOMIC_AGGRESSIVE,
            options=VMOptions(enable_timing=timing, compile_threshold=3,
                              dispatch=dispatch),
        )
        vm.warm_up(workload.entry, [list(a) for a in sample.warm_args])
        vm.compile_hot(min_invocations=1)
        vm.start_measurement()
        begin = time.perf_counter()
        results = [vm.run(workload.entry, list(a))
                   for a in sample.measure_args]
        wall += time.perf_counter() - begin
        stats = vm.end_measurement()
        uops += stats.uops_retired
        digest.append((results, stats.summary()))
    return wall, uops, digest


def _differential_sweep(dispatch: str):
    """The cross-tier differential matrix cell: seeded generated guests,
    profiled with one argument and measured with another."""
    wall = 0.0
    uops = 0
    digest = []
    for seed in DIFF_SEEDS:
        program = ProgramGenerator(
            GenConfig(seed=seed, parametric=True, max_statements=10)
        ).generate()
        vm = TieredVM(
            program, ATOMIC_AGGRESSIVE,
            options=VMOptions(enable_timing=False, compile_threshold=1,
                              dispatch=dispatch),
        )
        vm.warm_up("main", [[1]] * 3)
        vm.compile_hot(min_invocations=1)
        vm.start_measurement()
        outcomes = []
        begin = time.perf_counter()
        for _ in range(DIFF_CALLS):
            try:
                outcomes.append(("value", vm.run("main", [-3])))
            except GuestError as exc:
                outcomes.append(("error", type(exc).__name__))
        wall += time.perf_counter() - begin
        stats = vm.end_measurement()
        uops += stats.uops_retired
        digest.append((outcomes, stats.summary()))
    return wall, uops, digest


def _time_cell(run, repeats: int):
    """Best-of-N wall clock for one (cell, dispatch) pair."""
    best_wall = None
    uops = 0
    digest = None
    for _ in range(repeats):
        wall, uops, digest = run()
        if best_wall is None or wall < best_wall:
            best_wall = wall
    return best_wall, uops, digest


def run_suite(repeats: int) -> dict:
    results: dict[str, dict] = {}
    cells = [
        (bench, lambda d, n=name, t=timing: _measured_sweep(n, t, d))
        for bench, name, timing in WORKLOAD_CELLS
    ]
    cells.append(("differential_sweep", _differential_sweep))
    for bench, cell in cells:
        fast_wall, fast_uops, fast_digest = _time_cell(
            lambda: cell("predecoded"), repeats)
        jit_wall, jit_uops, jit_digest = _time_cell(
            lambda: cell("jit"), repeats)
        slow_wall, _slow_uops, slow_digest = _time_cell(
            lambda: cell("interpretive"), repeats)
        if fast_digest != slow_digest:
            raise AssertionError(
                f"{bench}: pre-decoded dispatch diverged from interpretive "
                "dispatch — the fast path is NOT observationally inert"
            )
        if jit_digest != slow_digest:
            raise AssertionError(
                f"{bench}: template-jit dispatch diverged from interpretive "
                "dispatch — the fused tier is NOT observationally inert"
            )
        results[bench] = {
            "wall_s": round(fast_wall, 4),
            "baseline_wall_s": round(slow_wall, 4),
            "uops_per_s": round(fast_uops / fast_wall),
            "speedup_vs_baseline": round(slow_wall / fast_wall, 2),
            "jit_wall_s": round(jit_wall, 4),
            "jit_uops_per_s": round(jit_uops / jit_wall),
            "jit_speedup_vs_baseline": round(slow_wall / jit_wall, 2),
        }
        print(f"{bench:>20}: pre {fast_wall:.3f}s "
              f"({results[bench]['speedup_vs_baseline']:.2f}x)  "
              f"jit {jit_wall:.3f}s "
              f"({results[bench]['jit_speedup_vs_baseline']:.2f}x)  "
              f"interpretive {slow_wall:.3f}s  "
              f"({results[bench]['jit_uops_per_s']:,} jit uops/s)")
    return results


def check_regression(fresh: dict, baseline_path: Path) -> int:
    baseline = json.loads(baseline_path.read_text())
    failures = []
    for bench, entry in fresh.items():
        base = baseline.get(bench)
        if base is None:
            continue
        for key, label in (("wall_s", "pre-decoded"),
                           ("jit_wall_s", "jit")):
            if key not in base:
                continue
            budget = base[key] * (1.0 + REGRESSION_BUDGET)
            if entry[key] > budget:
                failures.append(
                    f"{bench} ({label}): {entry[key]:.3f}s vs baseline "
                    f"{base[key]:.3f}s (>{REGRESSION_BUDGET:.0%} budget)"
                )
    if failures:
        print("PERF REGRESSION:", *failures, sep="\n  ")
        return 1
    print(f"perf check ok: no cell regressed more than "
          f"{REGRESSION_BUDGET:.0%} vs {baseline_path}")
    return 0


def check_jit_floor(fresh: dict, floor: float) -> int:
    """The template-jit acceptance gate: the best untimed cell must beat
    interpretive dispatch by at least ``floor``x."""
    untimed = {bench: entry["jit_speedup_vs_baseline"]
               for bench, entry in fresh.items()
               if not bench.endswith("_timed")}
    best_bench = max(untimed, key=untimed.get)
    best = untimed[best_bench]
    if best < floor:
        print(f"JIT SPEEDUP GATE FAILED: best untimed cell {best_bench} "
              f"reached {best:.2f}x vs interpretive (floor {floor:.1f}x)")
        return 1
    print(f"jit gate ok: {best_bench} at {best:.2f}x vs interpretive "
          f"(floor {floor:.1f}x)")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None,
                        help="write BENCH_host.json here "
                             "(default: repo root)")
    parser.add_argument("--check", default=None, metavar="BASELINE",
                        help="fail if fast-path wall time regressed >25%% "
                             "against this previously emitted file")
    parser.add_argument("--repeats", type=int, default=3,
                        help="wall-clock repetitions per cell (best-of)")
    parser.add_argument("--min-jit-speedup", type=float, default=None,
                        metavar="X",
                        help="fail unless the best untimed cell's jit "
                             "speedup over interpretive reaches X")
    args = parser.parse_args()

    results = run_suite(args.repeats)
    output = Path(args.output) if args.output else (
        Path(__file__).resolve().parents[1] / "BENCH_host.json"
    )
    output.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    status = 0
    if args.check:
        status = check_regression(results, Path(args.check))
    if args.min_jit_speedup is not None:
        status = check_jit_floor(results, args.min_jit_speedup) or status
    return status


if __name__ == "__main__":
    sys.exit(main())
