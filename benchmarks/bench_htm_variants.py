"""Best-effort HTM realism sweep: capacity bounds, fallback lock, delivery.

Two claims, one table.  First, the *realistic* best-effort shapes — Rock's
32-entry speculative store buffer, the 32KB 4-way L1 geometry, either
fallback-lock subscription mode, setjmp delivery — are performance-neutral
here: every region these workloads form fits comfortably, so all of them
reproduce the idealized unbounded speedup exactly.  Second, when the
bounds are deliberately tightened until they bite, the speedup inverts
(every hot region aborts to its non-speculative recovery path), and the
escalation machinery (fallback-lock serialization, setjmp condition-code
delivery) is visibly exercised without changing guest results.
"""

from repro.harness import figure_htm_variants, render


def test_htm_variant_sweep(once):
    data = once(figure_htm_variants)
    print()
    print(render(data))

    realism = ["unbounded", "rock", "cache", "lock-begin", "lock-end",
               "setjmp"]
    pressure = ["rock-4", "cache-4x2", "rock4+lock", "cache+sjmp"]
    assert set(realism + pressure) == set(data.rows)

    # Realistic bounds hold every region: byte-identical speedup, zero
    # capacity aborts, across all substrate variants.
    unbounded = data.rows["unbounded"]
    for label in realism:
        row = data.rows[label]
        assert row[0] == unbounded[0], f"{label} speedup drifted"
        assert row[2] == 0.0, f"{label} fired capacity aborts"

    # Tight bounds bite: capacity aborts fire and the speculation win is
    # wiped out (the recovery path is the non-speculative code).
    for label in pressure:
        row = data.rows[label]
        assert row[2] > 0.0, f"{label} never hit capacity"
        assert row[0] < unbounded[0] - 50.0

    # The escalation machinery is exercised, not just configured: every
    # capacity abort under the hybrid lock serialized on it, and every
    # abort under setjmp delivery re-landed at the begin with a CC.
    assert data.rows["rock4+lock"][3] == data.rows["rock4+lock"][2]
    assert data.rows["cache+sjmp"][4] > 0.0
