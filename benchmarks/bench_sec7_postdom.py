"""§7 (future work): post-dominance bounds-check elimination.

The paper's example: inside an atomic region, ``check_bounds(c_length, i)``
may be removed when post-dominated by the subsuming
``check_bounds(c_length, i+1)`` — illegal outside a region, safe inside
because a failing later check aborts to non-speculative code that re-tests
both checks precisely.
"""

from repro.atomic import FormationConfig, eliminate_postdominated_checks, form_regions
from repro.ir import Kind, build_ir
from repro.lang import ProgramBuilder
from repro.opt import optimize
from repro.runtime import Interpreter, ProfileStore


def build_program():
    pb = ProgramBuilder()
    m = pb.method("work", params=("n",))
    n = m.param(0)
    cap = m.const(512)
    arr = m.newarr(cap)
    i = m.const(0)
    one = m.const(1)
    limit = m.const(500)
    m.label("head")
    m.safepoint()
    m.br("ge", i, limit, "done")
    m.astore(arr, i, i)          # check_bounds(len, i)
    i1 = m.add(i, one)
    m.astore(arr, i1, i1)        # check_bounds(len, i+1): subsumes the above
    m.add(i, one, dst=i)
    m.jmp("head")
    m.label("done")
    z = m.const(0)
    out = m.aload(arr, z)
    m.ret(out)
    return pb.build()


def run_postdom():
    program = build_program()
    profiles = ProfileStore()
    interp = Interpreter(program, profiles=profiles)
    method = program.resolve_static("work")
    for _ in range(3):
        interp.invoke(method, [0])

    graph = build_ir(method, profiles.method("work"))
    form_regions(graph, None, FormationConfig(require_benefit=False))
    optimize(graph)

    def count():
        return sum(1 for b in graph.blocks for op in b.ops
                   if op.kind is Kind.CHECK_BOUNDS)

    before = count()
    removed = eliminate_postdominated_checks(graph)
    after = count()
    return before, removed, after


def test_section7_postdominance_checks(once):
    before, removed, after = once(run_postdom)
    print(f"\nSec 7 postdom check elimination: "
          f"{before} bounds checks -> {after} (removed {removed})")
    assert removed >= 1
    assert after == before - removed
