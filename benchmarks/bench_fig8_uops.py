"""Figure 8: dynamic micro-operation reduction.

Paper shape: ~11% average uop reduction for the atomic configurations,
roughly tracking the Figure-7 speedups; the reduction comes from removed
redundancy and SLE, not just fewer-but-bigger instructions.
"""

from repro.harness import figure8, render


def test_figure8_uop_reduction(once):
    data = once(figure8)
    print()
    print(render(data))
    averages = data.averages()
    atomic_aggr_avg = averages[2]
    assert atomic_aggr_avg > 5.0, "average uop reduction should be substantial"
    # The strongly redundancy-rich benchmarks must reduce uops the most.
    aggr = {b: v[2] for b, v in data.rows.items()}
    assert aggr["xalan"] > 10.0
    assert aggr["hsqldb"] > 10.0
    # fop barely changes (tiny regions, Table 3).
    assert abs(aggr["fop"]) < 5.0
