"""Figure 7: execution-time speedups of the four compiler configurations.

Paper shape being validated: the atomic+aggressive configuration wins on
average and beats plain aggressive inlining (speculation > pure scope
enlargement); plain atomic helps on average but *hurts* jython (the §6.1
polymorphic-getitem pathology), which the forced-monomorphic grey bar
recovers.
"""

from repro.harness import figure7, render


def test_figure7_speedups(once):
    data = once(figure7)
    print()
    print(render(data))
    averages = data.averages()
    atomic_avg, no_atomic_aggr_avg, atomic_aggr_avg = averages

    # Shape assertions (who wins, direction of effects).
    assert atomic_aggr_avg > 0, "atomic+aggressive must win on average"
    assert atomic_aggr_avg > no_atomic_aggr_avg, (
        "speculation must beat pure inlining-scope enlargement"
    )
    # jython slows down under plain atomic (paper §6.1)...
    assert data.rows["jython"][0] < 0
    # ...but wins under aggressive inlining.
    assert data.rows["jython"][2] > 0
    # pmd is the weakest benchmark (paper: ~2%).
    aggr_col = {b: v[2] for b, v in data.rows.items()}
    assert aggr_col["pmd"] <= sorted(aggr_col.values())[3]
