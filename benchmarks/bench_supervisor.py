#!/usr/bin/env python3
"""Sweep-supervisor overhead: wall-clock supervised vs bare pools.

The fault-tolerant supervisor (``repro.harness.supervisor``) wraps every
sweep in deadlines, retry accounting, and (optionally) a crash-consistent
journal.  Its contract is that all of this costs **under 5%** wall clock
on a healthy sweep — resilience must be cheap enough to leave on by
default.  This benchmark times the same busy-cell sweep three ways:

- ``bare``        — ``run_indexed`` on a plain process pool (the floor)
- ``supervised``  — ``run_supervised``, no journal
- ``journaled``   — ``run_supervised`` with the append-only fsync journal

and emits ``BENCH_supervisor.json``::

    {"bare_wall_s": ..., "supervised_wall_s": ..., "journaled_wall_s": ...,
     "supervised_overhead_pct": ..., "journaled_overhead_pct": ...,
     "cells": ..., "workers": ..., "repeats": ...}

Usage:
    python benchmarks/bench_supervisor.py [--output BENCH_supervisor.json]
        [--check] [--repeats 3] [--cells 32] [--cell-ms 50] [--workers 2]

``--check`` exits non-zero if the no-journal supervised overhead exceeds
:data:`OVERHEAD_BUDGET_PCT` — the CI perf-smoke gate.  Run standalone,
not under pytest: the point is wall-clock, and fixtures add noise.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.harness.parallel import run_indexed            # noqa: E402
from repro.harness.supervisor import (                    # noqa: E402
    SupervisorConfig,
    run_supervised,
)

#: allowed supervised-over-bare wall-clock overhead (percent, no journal).
OVERHEAD_BUDGET_PCT = 5.0

#: per-cell busy-loop calibration: iterations per millisecond, measured
#: once at startup so --cell-ms means roughly the same on any host.
_SPIN_PER_MS: int | None = None


def _busy(spec) -> int:
    """A pure CPU-bound cell: deterministic result, tunable duration."""
    index, spins = spec
    acc = index
    for k in range(spins):
        acc = (acc * 1103515245 + 12345) & 0x7FFFFFFF
    return acc


def _calibrate_spins(cell_ms: float) -> int:
    global _SPIN_PER_MS
    if _SPIN_PER_MS is None:
        probe = 200_000
        begin = time.perf_counter()
        _busy((1, probe))
        elapsed_ms = (time.perf_counter() - begin) * 1000.0
        _SPIN_PER_MS = max(1, round(probe / max(elapsed_ms, 1e-6)))
    return max(1, round(_SPIN_PER_MS * cell_ms))


def _time(run, repeats: int) -> tuple[float, object]:
    best = None
    payload = None
    for _ in range(repeats):
        begin = time.perf_counter()
        payload = run()
        wall = time.perf_counter() - begin
        if best is None or wall < best:
            best = wall
    return best, payload


def run_suite(cells: int, cell_ms: float, workers: int,
              repeats: int) -> dict:
    spins = _calibrate_spins(cell_ms)
    items = [(index, spins) for index in range(cells)]
    expected = [_busy(item) for item in items]
    config = SupervisorConfig(workers=workers)

    bare_wall, bare = _time(
        lambda: run_indexed(items, _busy, workers=workers), repeats)
    sup_wall, sup = _time(
        lambda: run_supervised(items, _busy, config=config), repeats)
    with tempfile.TemporaryDirectory() as scratch:
        journals = iter(range(10 ** 9))

        def journaled_run():
            path = Path(scratch) / f"bench{next(journals)}.journal"
            return run_supervised(
                items, _busy,
                config=SupervisorConfig(workers=workers, journal_path=path))

        jrn_wall, jrn = _time(journaled_run, repeats)

    # resilience must be observationally inert on a healthy sweep
    for label, got in (("bare", bare), ("supervised", sup.results),
                       ("journaled", jrn.results)):
        if got != expected:
            raise AssertionError(f"{label} sweep diverged from serial")
    if not (sup.ok and jrn.ok):
        raise AssertionError("supervised sweep reported failures on a "
                             "healthy run")

    def pct(wall):
        return round((wall - bare_wall) / bare_wall * 100.0, 2)

    results = {
        "cells": cells,
        "cell_ms": cell_ms,
        "workers": workers,
        "repeats": repeats,
        "bare_wall_s": round(bare_wall, 4),
        "supervised_wall_s": round(sup_wall, 4),
        "journaled_wall_s": round(jrn_wall, 4),
        "supervised_overhead_pct": pct(sup_wall),
        "journaled_overhead_pct": pct(jrn_wall),
    }
    print(f"bare {bare_wall:.3f}s  supervised {sup_wall:.3f}s "
          f"({results['supervised_overhead_pct']:+.2f}%)  "
          f"journaled {jrn_wall:.3f}s "
          f"({results['journaled_overhead_pct']:+.2f}%)")
    return results


def check_budget(results: dict) -> int:
    overhead = results["supervised_overhead_pct"]
    if overhead > OVERHEAD_BUDGET_PCT:
        print(f"SUPERVISOR OVERHEAD REGRESSION: {overhead:.2f}% > "
              f"{OVERHEAD_BUDGET_PCT:.0f}% budget")
        return 1
    print(f"overhead check ok: {overhead:.2f}% <= "
          f"{OVERHEAD_BUDGET_PCT:.0f}% budget")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--output", default=None,
                        help="write BENCH_supervisor.json here "
                             "(default: repo root)")
    parser.add_argument("--check", action="store_true",
                        help="fail if supervised overhead exceeds "
                             f"{OVERHEAD_BUDGET_PCT:.0f}%%")
    parser.add_argument("--repeats", type=int, default=3,
                        help="wall-clock repetitions per mode (best-of)")
    parser.add_argument("--cells", type=int, default=32)
    parser.add_argument("--cell-ms", type=float, default=50.0)
    parser.add_argument("--workers", type=int, default=2)
    args = parser.parse_args()

    results = run_suite(args.cells, args.cell_ms, args.workers,
                        args.repeats)
    output = Path(args.output) if args.output else (
        Path(__file__).resolve().parents[1] / "BENCH_supervisor.json"
    )
    output.write_text(json.dumps(results, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}")
    if args.check:
        return check_budget(results)
    return 0


if __name__ == "__main__":
    sys.exit(main())
