"""Register-based object-oriented bytecode: the guest language of the VM.

This plays the role that Java bytecode plays in the paper: a managed
language with objects, virtual dispatch, mandatory null/bounds checks and
Java-style monitors.  The tier-0 interpreter executes it directly
(:mod:`repro.runtime.interpreter`) and the optimizing compiler translates it
into the IR of :mod:`repro.ir`.

The bytecode is register based (not stack based) because it maps onto a
compiler IR with far less bookkeeping; the distinction is irrelevant to the
paper's contribution.

A :class:`Program` is a set of :class:`ClassDef` plus free-standing (static)
:class:`Method` objects.  Virtual methods live inside their class and receive
the receiver as parameter 0.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Op(enum.Enum):
    """Bytecode opcodes.

    Heap opcodes carry the language-mandated safety checks implicitly: the
    interpreter performs them at runtime and the IR builder makes them
    explicit ``CHECK_*`` operations so the optimizer can reason about them.
    """

    # Data movement / arithmetic.
    CONST = "const"          # dst <- imm (64-bit signed integer)
    CONST_NULL = "const_null"  # dst <- null reference
    MOV = "mov"              # dst <- a
    ADD = "add"              # dst <- a + b
    SUB = "sub"
    MUL = "mul"
    DIV = "div"              # traps ArithmeticError on b == 0
    MOD = "mod"              # traps ArithmeticError on b == 0
    AND = "and"
    OR = "or"
    XOR = "xor"
    SHL = "shl"
    SHR = "shr"

    # Control flow.
    JMP = "jmp"              # unconditional jump to target
    BR = "br"                # if cmp(cond, a, b): jump to target
    RET = "ret"              # return a (or nothing when a is None)

    # Heap access.
    NEW = "new"              # dst <- new instance of cls
    NEWARR = "newarr"        # dst <- new int/ref array of length a
    GETF = "getf"            # dst <- a.field        (null check)
    PUTF = "putf"            # a.field <- b          (null check)
    ALOAD = "aload"          # dst <- a[b]           (null + bounds check)
    ASTORE = "astore"        # a[b] <- c             (null + bounds check)
    ALEN = "alen"            # dst <- length of a    (null check)

    # Atomic read-modify-write primitives (null check, like GETF/PUTF).
    # Each executes as ONE bytecode / one machine uop, so it is indivisible
    # under the cooperative scheduler — the architectural contract contended
    # workloads build on.
    FAA = "faa"              # dst <- a.field; a.field <- dst + b   (fetch-and-add)
    CAS = "cas"              # dst <- (a.field == b); if dst: a.field <- c
    LL = "ll"                # dst <- a.field, and reserve the address
    SC = "sc"                # dst <- reservation held; if dst: a.field <- b

    # Calls.
    CALL = "call"            # dst <- method(args)          (static dispatch)
    VCALL = "vcall"          # dst <- args[0].method(args)  (virtual dispatch)

    # Synchronization (Java monitors).
    MENTER = "menter"        # acquire monitor of object a (reentrant)
    MEXIT = "mexit"          # release monitor of object a

    # Misc.
    SAFEPOINT = "safepoint"  # GC yield poll; loops carry one
    NOP = "nop"


#: Comparison conditions usable by Op.BR.
CONDITIONS = ("lt", "le", "gt", "ge", "eq", "ne")

#: Conditions applicable to references (others are integer-only).
REF_CONDITIONS = ("eq", "ne")

#: Opcodes that produce a value in ``dst``.
PRODUCES = frozenset({
    Op.CONST, Op.CONST_NULL, Op.MOV, Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD,
    Op.AND, Op.OR, Op.XOR, Op.SHL, Op.SHR, Op.NEW, Op.NEWARR, Op.GETF,
    Op.ALOAD, Op.ALEN, Op.CALL, Op.VCALL, Op.FAA, Op.CAS, Op.LL, Op.SC,
})

#: Atomic read-modify-write opcodes (all produce a value and carry a
#: ``fieldname``).
ATOMIC_OPS = frozenset({Op.FAA, Op.CAS, Op.LL, Op.SC})

#: Binary integer arithmetic opcodes.
BINOPS = frozenset({
    Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.MOD, Op.AND, Op.OR, Op.XOR,
    Op.SHL, Op.SHR,
})

#: Opcodes that terminate a basic block.
TERMINATORS = frozenset({Op.JMP, Op.BR, Op.RET})


@dataclass
class Instr:
    """One bytecode instruction.

    Operand fields are registers (small ints) unless stated otherwise:

    - ``dst``: destination register for value-producing opcodes.
    - ``a``, ``b``, ``c``: source registers (meaning depends on opcode).
    - ``imm``: integer immediate (CONST).
    - ``cond``: condition string (BR).
    - ``target``: branch-target instruction index (JMP/BR).
    - ``cls``: class name (NEW).
    - ``fieldname``: field name (GETF/PUTF).
    - ``method``: callee name (CALL/VCALL).
    - ``args``: tuple of argument registers (CALL/VCALL).
    """

    op: Op
    dst: int | None = None
    a: int | None = None
    b: int | None = None
    c: int | None = None
    imm: int | None = None
    cond: str | None = None
    target: int | None = None
    cls: str | None = None
    fieldname: str | None = None
    method: str | None = None
    args: tuple[int, ...] = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.op.value]
        if self.dst is not None:
            parts.append(f"r{self.dst} <-")
        if self.cond is not None:
            parts.append(self.cond)
        for reg in (self.a, self.b, self.c):
            if reg is not None:
                parts.append(f"r{reg}")
        if self.imm is not None:
            parts.append(str(self.imm))
        if self.cls is not None:
            parts.append(self.cls)
        if self.fieldname is not None:
            parts.append(f".{self.fieldname}")
        if self.method is not None:
            parts.append(self.method + "(" + ", ".join(f"r{r}" for r in self.args) + ")")
        if self.target is not None:
            parts.append(f"-> @{self.target}")
        return " ".join(parts)


@dataclass
class Method:
    """A compiled unit: parameters, a register file size, and instructions.

    ``owner`` is the defining class name for virtual methods and ``None`` for
    static methods.  ``synchronized`` methods are lowered by the builder into
    explicit MENTER/MEXIT pairs around the body, mirroring how a JVM treats
    synchronized methods; the flag is retained for tooling.
    """

    name: str
    num_params: int
    instrs: list[Instr] = field(default_factory=list)
    num_regs: int = 0
    owner: str | None = None
    synchronized: bool = False

    @property
    def qualified_name(self) -> str:
        return f"{self.owner}.{self.name}" if self.owner else self.name

    def __len__(self) -> int:
        return len(self.instrs)


@dataclass
class ClassDef:
    """A guest class: named fields and virtual methods.

    Field storage is flat; ``field_index`` maps a field name to its slot.
    Single inheritance: ``super_name`` may name another class whose fields
    and methods are inherited (fields are prepended by the resolver).
    """

    name: str
    fields: list[str] = field(default_factory=list)
    methods: dict[str, Method] = field(default_factory=dict)
    super_name: str | None = None


class Program:
    """A complete guest program: classes, static methods, and an entry point."""

    def __init__(self) -> None:
        self.classes: dict[str, ClassDef] = {}
        self.methods: dict[str, Method] = {}
        self.entry: str | None = None
        self._layout_cache: dict[str, dict[str, int]] = {}
        self._vtable_cache: dict[str, dict[str, Method]] = {}

    # -- construction -----------------------------------------------------
    def add_class(self, cls: ClassDef) -> ClassDef:
        if cls.name in self.classes:
            raise ValueError(f"duplicate class {cls.name!r}")
        self.classes[cls.name] = cls
        self._layout_cache.clear()
        self._vtable_cache.clear()
        return cls

    def add_method(self, method: Method) -> Method:
        key = method.qualified_name
        if method.owner:
            self.classes[method.owner].methods[method.name] = method
            self._vtable_cache.clear()
        else:
            if key in self.methods:
                raise ValueError(f"duplicate method {key!r}")
            self.methods[key] = method
        return method

    # -- resolution -------------------------------------------------------
    def field_layout(self, class_name: str) -> dict[str, int]:
        """Field name -> slot index, superclass fields first."""
        cached = self._layout_cache.get(class_name)
        if cached is not None:
            return cached
        cls = self.classes[class_name]
        layout: dict[str, int] = {}
        if cls.super_name:
            layout.update(self.field_layout(cls.super_name))
        for name in cls.fields:
            if name not in layout:
                layout[name] = len(layout)
        self._layout_cache[class_name] = layout
        return layout

    def vtable(self, class_name: str) -> dict[str, Method]:
        """Method name -> most-derived implementation for the class."""
        cached = self._vtable_cache.get(class_name)
        if cached is not None:
            return cached
        cls = self.classes[class_name]
        table: dict[str, Method] = {}
        if cls.super_name:
            table.update(self.vtable(cls.super_name))
        table.update(cls.methods)
        self._vtable_cache[class_name] = table
        return table

    def resolve_static(self, name: str) -> Method:
        try:
            return self.methods[name]
        except KeyError:
            raise KeyError(f"no static method named {name!r}") from None

    def resolve_virtual(self, class_name: str, method_name: str) -> Method:
        table = self.vtable(class_name)
        try:
            return table[method_name]
        except KeyError:
            raise KeyError(
                f"class {class_name!r} has no method {method_name!r}"
            ) from None

    def all_methods(self) -> list[Method]:
        """Every method in the program (static first, then per class)."""
        out = list(self.methods.values())
        for cls in self.classes.values():
            out.extend(cls.methods.values())
        return out
