"""Fluent builders for constructing guest programs.

Workloads and tests author bytecode through :class:`MethodBuilder` /
:class:`ProgramBuilder` rather than hand-assembling :class:`Instr` lists.
The builder manages register allocation, label patching, and the lowering of
``synchronized`` methods into explicit monitor operations.

Example::

    pb = ProgramBuilder()
    m = pb.method("sum_to", params=("n",))
    n = m.param(0)
    total = m.const(0)
    i = m.const(0)
    m.label("head")
    m.br("ge", i, n, "done")
    m.add(total, total, i, dst=total)
    ...
"""

from __future__ import annotations

from .bytecode import (
    BINOPS,
    CONDITIONS,
    ClassDef,
    Instr,
    Method,
    Op,
    Program,
)


class Reg(int):
    """A register handle; a plain ``int`` subtype so instructions store ints."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"r{int(self)}"


class MethodBuilder:
    """Builds one :class:`Method` instruction-by-instruction.

    Branch targets are string labels; :meth:`build` patches them to
    instruction indices.  Every value-producing emitter returns the
    destination :class:`Reg` (freshly allocated unless ``dst`` is given), so
    straight-line code composes naturally.
    """

    def __init__(
        self,
        name: str,
        params: tuple[str, ...] | list[str] = (),
        owner: str | None = None,
        synchronized: bool = False,
    ) -> None:
        self.name = name
        self.owner = owner
        self.synchronized = synchronized
        self.param_names = tuple(params)
        self._next_reg = len(self.param_names)
        self._instrs: list[Instr] = []
        self._labels: dict[str, int] = {}
        self._fixups: list[tuple[int, str]] = []
        self._named: dict[str, Reg] = {
            pname: Reg(i) for i, pname in enumerate(self.param_names)
        }

    # -- registers --------------------------------------------------------
    def param(self, index: int) -> Reg:
        if not 0 <= index < len(self.param_names):
            raise IndexError(f"method {self.name!r} has no parameter {index}")
        return Reg(index)

    def var(self, name: str) -> Reg:
        """A named register, allocated on first use (parameters included)."""
        reg = self._named.get(name)
        if reg is None:
            reg = self.fresh()
            self._named[name] = reg
        return reg

    def fresh(self) -> Reg:
        reg = Reg(self._next_reg)
        self._next_reg += 1
        return reg

    # -- labels -----------------------------------------------------------
    def label(self, name: str) -> None:
        if name in self._labels:
            raise ValueError(f"label {name!r} bound twice in {self.name!r}")
        self._labels[name] = len(self._instrs)

    def _emit(self, instr: Instr, label: str | None = None) -> Instr:
        if label is not None:
            self._fixups.append((len(self._instrs), label))
        self._instrs.append(instr)
        return instr

    # -- data / arithmetic ------------------------------------------------
    def const(self, value: int, dst: Reg | None = None) -> Reg:
        dst = dst if dst is not None else self.fresh()
        self._emit(Instr(Op.CONST, dst=dst, imm=int(value)))
        return dst

    def const_null(self, dst: Reg | None = None) -> Reg:
        dst = dst if dst is not None else self.fresh()
        self._emit(Instr(Op.CONST_NULL, dst=dst))
        return dst

    def mov(self, src: Reg, dst: Reg | None = None) -> Reg:
        dst = dst if dst is not None else self.fresh()
        self._emit(Instr(Op.MOV, dst=dst, a=src))
        return dst

    def _binop(self, op: Op, a: Reg, b: Reg, dst: Reg | None) -> Reg:
        dst = dst if dst is not None else self.fresh()
        self._emit(Instr(op, dst=dst, a=a, b=b))
        return dst

    def add(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.ADD, a, b, dst)

    def sub(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.SUB, a, b, dst)

    def mul(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.MUL, a, b, dst)

    def div(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.DIV, a, b, dst)

    def mod(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.MOD, a, b, dst)

    def and_(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.AND, a, b, dst)

    def or_(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.OR, a, b, dst)

    def xor(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.XOR, a, b, dst)

    def shl(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.SHL, a, b, dst)

    def shr(self, a: Reg, b: Reg, dst: Reg | None = None) -> Reg:
        return self._binop(Op.SHR, a, b, dst)

    def addi(self, a: Reg, imm: int, dst: Reg | None = None) -> Reg:
        """Convenience: dst <- a + imm (emits CONST + ADD)."""
        tmp = self.const(imm)
        return self.add(a, tmp, dst)

    # -- control flow -----------------------------------------------------
    def jmp(self, label: str) -> None:
        self._emit(Instr(Op.JMP), label=label)

    def br(self, cond: str, a: Reg, b: Reg, label: str) -> None:
        if cond not in CONDITIONS:
            raise ValueError(f"bad condition {cond!r}")
        self._emit(Instr(Op.BR, cond=cond, a=a, b=b), label=label)

    def br_null(self, a: Reg, label: str) -> None:
        """Branch to ``label`` when ``a`` is the null reference."""
        null = self.const_null()
        self.br("eq", a, null, label)

    def ret(self, value: Reg | None = None) -> None:
        self._emit(Instr(Op.RET, a=value))

    # -- heap ---------------------------------------------------------------
    def new(self, class_name: str, dst: Reg | None = None) -> Reg:
        dst = dst if dst is not None else self.fresh()
        self._emit(Instr(Op.NEW, dst=dst, cls=class_name))
        return dst

    def newarr(self, length: Reg, dst: Reg | None = None) -> Reg:
        dst = dst if dst is not None else self.fresh()
        self._emit(Instr(Op.NEWARR, dst=dst, a=length))
        return dst

    def getfield(self, obj: Reg, fieldname: str, dst: Reg | None = None) -> Reg:
        dst = dst if dst is not None else self.fresh()
        self._emit(Instr(Op.GETF, dst=dst, a=obj, fieldname=fieldname))
        return dst

    def putfield(self, obj: Reg, fieldname: str, src: Reg) -> None:
        self._emit(Instr(Op.PUTF, a=obj, b=src, fieldname=fieldname))

    def aload(self, arr: Reg, idx: Reg, dst: Reg | None = None) -> Reg:
        dst = dst if dst is not None else self.fresh()
        self._emit(Instr(Op.ALOAD, dst=dst, a=arr, b=idx))
        return dst

    def astore(self, arr: Reg, idx: Reg, src: Reg) -> None:
        self._emit(Instr(Op.ASTORE, a=arr, b=idx, c=src))

    def alen(self, arr: Reg, dst: Reg | None = None) -> Reg:
        dst = dst if dst is not None else self.fresh()
        self._emit(Instr(Op.ALEN, dst=dst, a=arr))
        return dst

    # -- atomic read-modify-write -------------------------------------------
    def faa(self, obj: Reg, fieldname: str, delta: Reg,
            dst: Reg | None = None) -> Reg:
        """Fetch-and-add: dst <- obj.field; obj.field <- dst + delta."""
        dst = dst if dst is not None else self.fresh()
        self._emit(Instr(Op.FAA, dst=dst, a=obj, b=delta, fieldname=fieldname))
        return dst

    def fai(self, obj: Reg, fieldname: str, dst: Reg | None = None) -> Reg:
        """Fetch-and-increment: FAA with delta 1 (builder sugar)."""
        one = self.const(1)
        return self.faa(obj, fieldname, one, dst=dst)

    def cas(self, obj: Reg, fieldname: str, expected: Reg, new: Reg,
            dst: Reg | None = None) -> Reg:
        """Compare-and-swap: dst <- 1 and store ``new`` iff the field still
        equals ``expected``, else dst <- 0."""
        dst = dst if dst is not None else self.fresh()
        self._emit(Instr(Op.CAS, dst=dst, a=obj, b=expected, c=new,
                         fieldname=fieldname))
        return dst

    def ll(self, obj: Reg, fieldname: str, dst: Reg | None = None) -> Reg:
        """Load-linked: dst <- obj.field, reserving the address for SC."""
        dst = dst if dst is not None else self.fresh()
        self._emit(Instr(Op.LL, dst=dst, a=obj, fieldname=fieldname))
        return dst

    def sc(self, obj: Reg, fieldname: str, value: Reg,
           dst: Reg | None = None) -> Reg:
        """Store-conditional: dst <- 1 and store ``value`` iff this thread's
        reservation on the address survived, else dst <- 0."""
        dst = dst if dst is not None else self.fresh()
        self._emit(Instr(Op.SC, dst=dst, a=obj, b=value, fieldname=fieldname))
        return dst

    # -- calls --------------------------------------------------------------
    def call(self, method: str, args: tuple[Reg, ...] = (), dst: Reg | None = None) -> Reg:
        dst = dst if dst is not None else self.fresh()
        self._emit(Instr(Op.CALL, dst=dst, method=method, args=tuple(args)))
        return dst

    def vcall(self, obj: Reg, method: str, args: tuple[Reg, ...] = (), dst: Reg | None = None) -> Reg:
        dst = dst if dst is not None else self.fresh()
        all_args = (obj, *args)
        self._emit(Instr(Op.VCALL, dst=dst, a=obj, method=method, args=all_args))
        return dst

    # -- synchronization / misc ----------------------------------------------
    def monitor_enter(self, obj: Reg) -> None:
        self._emit(Instr(Op.MENTER, a=obj))

    def monitor_exit(self, obj: Reg) -> None:
        self._emit(Instr(Op.MEXIT, a=obj))

    def safepoint(self) -> None:
        self._emit(Instr(Op.SAFEPOINT))

    def nop(self) -> None:
        self._emit(Instr(Op.NOP))

    # -- finalization ---------------------------------------------------------
    def build(self) -> Method:
        """Patch labels and return the finished :class:`Method`."""
        instrs = list(self._instrs)
        if not instrs or instrs[-1].op not in (Op.RET, Op.JMP):
            instrs.append(Instr(Op.RET))
        for index, label in self._fixups:
            try:
                instrs[index].target = self._labels[label]
            except KeyError:
                raise ValueError(
                    f"undefined label {label!r} in method {self.name!r}"
                ) from None
        if self.synchronized:
            instrs = _wrap_synchronized(instrs, len(self.param_names))
        method = Method(
            name=self.name,
            num_params=len(self.param_names),
            instrs=instrs,
            num_regs=max(self._next_reg, len(self.param_names)),
            owner=self.owner,
            synchronized=self.synchronized,
        )
        return method


def _wrap_synchronized(instrs: list[Instr], num_params: int) -> list[Instr]:
    """Bracket a method body with MENTER/MEXIT on the receiver (register 0).

    Mirrors how JVMs lower ``synchronized`` instance methods.  Every RET is
    preceded by an MEXIT; branch targets are re-patched for the prologue
    shift and for inserted exits.
    """
    if num_params == 0:
        raise ValueError("synchronized methods need a receiver parameter")
    # Compute new index for each old instruction: +1 for the prologue MENTER,
    # plus one extra slot for each preceding RET (which gains an MEXIT).
    new_index: list[int] = []
    offset = 1
    for instr in instrs:
        new_index.append(offset)
        offset += 2 if instr.op == Op.RET else 1

    out: list[Instr] = [Instr(Op.MENTER, a=0)]
    for instr in instrs:
        if instr.op == Op.RET:
            out.append(Instr(Op.MEXIT, a=0))
            out.append(instr)
        else:
            if instr.target is not None:
                instr.target = new_index[instr.target]
            out.append(instr)
    return out


class ProgramBuilder:
    """Builds a :class:`Program` from classes and methods."""

    def __init__(self) -> None:
        self.program = Program()
        self._pending: list[MethodBuilder] = []

    def cls(
        self,
        name: str,
        fields: tuple[str, ...] | list[str] = (),
        super_name: str | None = None,
    ) -> ClassDef:
        return self.program.add_class(
            ClassDef(name=name, fields=list(fields), super_name=super_name)
        )

    def method(
        self,
        name: str,
        params: tuple[str, ...] | list[str] = (),
        owner: str | None = None,
        synchronized: bool = False,
    ) -> MethodBuilder:
        builder = MethodBuilder(name, params=params, owner=owner, synchronized=synchronized)
        self._pending.append(builder)
        return builder

    def entry(self, name: str) -> None:
        self.program.entry = name

    def build(self) -> Program:
        for builder in self._pending:
            self.program.add_method(builder.build())
        self._pending.clear()
        if self.program.entry is None and "main" in self.program.methods:
            self.program.entry = "main"
        return self.program
