"""Guest language: register-based OO bytecode, builders, and validation."""

from .bytecode import (
    BINOPS,
    CONDITIONS,
    ClassDef,
    Instr,
    Method,
    Op,
    PRODUCES,
    Program,
    TERMINATORS,
)
from .builder import MethodBuilder, ProgramBuilder, Reg
from .validate import ValidationError, validate_method, validate_program

__all__ = [
    "BINOPS",
    "CONDITIONS",
    "ClassDef",
    "Instr",
    "Method",
    "MethodBuilder",
    "Op",
    "PRODUCES",
    "Program",
    "ProgramBuilder",
    "Reg",
    "TERMINATORS",
    "ValidationError",
    "validate_method",
    "validate_program",
]
