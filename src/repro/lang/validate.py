"""Static validation of guest programs.

Catches malformed bytecode before it reaches the interpreter or compiler:
out-of-range branch targets, reads of never-written registers, references to
unknown classes/methods/fields, fallthrough off the end of a method, and
conditions illegal for the opcode.  Run it once per program in tests and at
VM load time.
"""

from __future__ import annotations

from .bytecode import (
    CONDITIONS,
    Instr,
    Method,
    Op,
    PRODUCES,
    Program,
)


class ValidationError(Exception):
    """A structural problem in guest bytecode."""


def validate_program(program: Program) -> None:
    """Validate every method in ``program``; raise :class:`ValidationError`."""
    if program.entry is not None and program.entry not in program.methods:
        raise ValidationError(f"entry point {program.entry!r} is not a static method")
    for cls in program.classes.values():
        if cls.super_name is not None and cls.super_name not in program.classes:
            raise ValidationError(
                f"class {cls.name!r} extends unknown class {cls.super_name!r}"
            )
    # Detect inheritance cycles.
    for cls in program.classes.values():
        seen = set()
        cursor: str | None = cls.name
        while cursor is not None:
            if cursor in seen:
                raise ValidationError(f"inheritance cycle through {cursor!r}")
            seen.add(cursor)
            cursor = program.classes[cursor].super_name
    for method in program.all_methods():
        validate_method(program, method)


def validate_method(program: Program, method: Method) -> None:
    """Validate one method within its program."""
    where = method.qualified_name
    instrs = method.instrs
    if not instrs:
        raise ValidationError(f"{where}: empty method body")
    if instrs[-1].op not in (Op.RET, Op.JMP):
        raise ValidationError(f"{where}: control can fall off the end")
    for pc, instr in enumerate(instrs):
        _validate_instr(program, method, pc, instr)
    _check_register_flow(method)


def _validate_instr(program: Program, method: Method, pc: int, instr: Instr) -> None:
    where = f"{method.qualified_name}@{pc}"
    if instr.op in (Op.JMP, Op.BR):
        if instr.target is None or not 0 <= instr.target < len(method.instrs):
            raise ValidationError(f"{where}: branch target {instr.target} out of range")
    if instr.op == Op.BR and instr.cond not in CONDITIONS:
        raise ValidationError(f"{where}: bad condition {instr.cond!r}")
    if instr.op in PRODUCES and instr.dst is None:
        raise ValidationError(f"{where}: {instr.op.value} requires a destination")
    if instr.op == Op.NEW:
        if instr.cls not in program.classes:
            raise ValidationError(f"{where}: unknown class {instr.cls!r}")
    if instr.op in (Op.GETF, Op.PUTF, Op.FAA, Op.CAS, Op.LL, Op.SC) \
            and not instr.fieldname:
        raise ValidationError(f"{where}: field access without a field name")
    if instr.op == Op.CALL:
        if instr.method not in program.methods:
            raise ValidationError(f"{where}: unknown static method {instr.method!r}")
        callee = program.methods[instr.method]
        if len(instr.args) != callee.num_params:
            raise ValidationError(
                f"{where}: {instr.method} expects {callee.num_params} args, got {len(instr.args)}"
            )
    if instr.op == Op.VCALL:
        if not instr.args or instr.args[0] != instr.a:
            raise ValidationError(f"{where}: virtual call receiver must be args[0]")
        if not any(
            instr.method in program.vtable(name) for name in program.classes
        ):
            raise ValidationError(
                f"{where}: no class defines virtual method {instr.method!r}"
            )
    for reg in _reads(instr) + _writes(instr):
        if reg < 0 or reg >= max(method.num_regs, method.num_params):
            raise ValidationError(f"{where}: register r{reg} out of range")


def _reads(instr: Instr) -> list[int]:
    regs = [r for r in (instr.a, instr.b, instr.c) if r is not None]
    regs.extend(instr.args)
    if instr.op == Op.RET and instr.a is None:
        return []
    return regs


def _writes(instr: Instr) -> list[int]:
    return [instr.dst] if (instr.op in PRODUCES and instr.dst is not None) else []


def _check_register_flow(method: Method) -> None:
    """Forward dataflow: every read must be reachable from some write.

    A conservative 'definitely unassigned' analysis: registers written on
    *no* path to a read are flagged.  Parameters start defined.
    """
    n = len(method.instrs)
    num_regs = max(method.num_regs, method.num_params, 1)
    defined_in: list[set[int] | None] = [None] * n
    params = set(range(method.num_params))

    worklist = [(0, params)]
    while worklist:
        pc, defs = worklist.pop()
        if pc >= n:
            continue
        known = defined_in[pc]
        if known is not None and defs >= known:
            # No new definitions to propagate; meet is intersection, so a
            # superset adds nothing.
            if known == known & defs:
                continue
        defined_in[pc] = defs if known is None else (known & defs)
        current = defined_in[pc]
        assert current is not None
        instr = method.instrs[pc]
        for reg in _reads(instr):
            if reg not in current:
                raise ValidationError(
                    f"{method.qualified_name}@{pc}: register r{reg} may be read "
                    "before it is written"
                )
        new_defs = current | set(_writes(instr))
        if instr.op == Op.RET:
            continue
        if instr.op == Op.JMP:
            worklist.append((instr.target, new_defs))
        elif instr.op == Op.BR:
            worklist.append((instr.target, new_defs))
            worklist.append((pc + 1, new_defs))
        else:
            worklist.append((pc + 1, new_defs))
