"""Tier-0 profiling interpreter.

Plays the role of the DRLVM first-pass execution tier: it runs bytecode
directly, and "inserts instrumentation to profile program behaviors (e.g.,
branches, virtual calls)" (paper §4).  Everything region formation consumes
— block execution counts, branch biases, receiver histograms — is gathered
here.

Calls dispatch through a pluggable ``dispatcher`` so the tiered VM
(:mod:`repro.vm`) can substitute compiled code for hot callees; standalone,
the interpreter dispatches to itself.
"""

from __future__ import annotations

from typing import Protocol

from ..lang.bytecode import Instr, Method, Op, Program
from .errors import GuestArithmeticError, MonitorStateError, VMError
from .heap import Heap, Value, require_array, require_object
from .locks import MAIN_THREAD
from .profile import ProfileStore
from .sched import DEFAULT_LINE_SHIFT

INT_BITS = 64
_INT_MIN = -(1 << (INT_BITS - 1))
_INT_MASK = (1 << INT_BITS) - 1


def wrap_int(value: int) -> int:
    """Wrap a Python int to signed 64-bit two's-complement."""
    value &= _INT_MASK
    return value if value <= ~_INT_MIN else value - (1 << INT_BITS)


def guest_div(a: int, b: int) -> int:
    """Java-style integer division: truncates toward zero, traps on zero."""
    if b == 0:
        raise GuestArithmeticError("division by zero")
    q = abs(a) // abs(b)
    return wrap_int(-q if (a < 0) != (b < 0) else q)


def guest_mod(a: int, b: int) -> int:
    """Java-style remainder: sign follows the dividend, traps on zero."""
    if b == 0:
        raise GuestArithmeticError("remainder by zero")
    return wrap_int(a - guest_div(a, b) * b)


def compare(cond: str, a: Value, b: Value) -> bool:
    """Evaluate a branch condition on two guest values.

    References compare by identity and support only eq/ne, like Java's
    ``if_acmpeq``; integers support the full set.
    """
    a_ref = not isinstance(a, int)
    b_ref = not isinstance(b, int)
    if a_ref or b_ref:
        if cond == "eq":
            return a is b if (a_ref and b_ref) else (a is None and b == 0) or (b is None and a == 0)
        if cond == "ne":
            return not compare("eq", a, b)
        raise VMError(f"condition {cond!r} applied to a reference")
    if cond == "lt":
        return a < b
    if cond == "le":
        return a <= b
    if cond == "gt":
        return a > b
    if cond == "ge":
        return a >= b
    if cond == "eq":
        return a == b
    if cond == "ne":
        return a != b
    raise VMError(f"unknown condition {cond!r}")


class Dispatcher(Protocol):
    """Anything that can run a guest method to completion."""

    def invoke(self, method: Method, args: list[Value]) -> Value: ...


def block_leaders(method: Method) -> frozenset[int]:
    """Bytecode pcs that start a basic block (entry, targets, fallthroughs)."""
    leaders = {0}
    for pc, instr in enumerate(method.instrs):
        if instr.op in (Op.JMP, Op.BR):
            leaders.add(instr.target)
        if instr.op in (Op.JMP, Op.BR, Op.RET) and pc + 1 < len(method.instrs):
            leaders.add(pc + 1)
    return frozenset(leaders)


class Interpreter:
    """Executes bytecode while recording profiles.

    ``fuel`` bounds the total number of bytecodes executed across the
    interpreter's lifetime, so broken guest programs fail tests instead of
    hanging them.
    """

    def __init__(
        self,
        program: Program,
        heap: Heap | None = None,
        profiles: ProfileStore | None = None,
        dispatcher: Dispatcher | None = None,
        fuel: int | None = None,
    ) -> None:
        self.program = program
        self.heap = heap if heap is not None else Heap()
        self.profiles = profiles if profiles is not None else ProfileStore()
        self.dispatcher: Dispatcher = dispatcher if dispatcher is not None else self
        self.fuel = fuel
        self.bytecodes_executed = 0
        self.safepoints_polled = 0
        #: deterministic guest scheduler (attached by TieredVM.run_threads);
        #: None keeps the interpreter single-threaded.
        self.sched = None
        self._leader_cache: dict[int, frozenset[int]] = {}

    # -- entry points -------------------------------------------------------
    def run(self, entry: str | None = None, args: list[Value] | None = None) -> Value:
        """Invoke a static method by name (defaults to the program entry)."""
        name = entry if entry is not None else self.program.entry
        if name is None:
            raise VMError("program has no entry point")
        method = self.program.resolve_static(name)
        return self.invoke(method, list(args or []))

    def invoke(self, method: Method, args: list[Value]) -> Value:
        """Execute one method activation and return its result."""
        if len(args) != method.num_params:
            raise VMError(
                f"{method.qualified_name}: expected {method.num_params} args, "
                f"got {len(args)}"
            )
        prof = self.profiles.method(method.qualified_name)
        prof.invocations += 1
        leaders = self._leaders(method)

        regs: list[Value] = [0] * max(method.num_regs, method.num_params)
        regs[: len(args)] = args
        instrs = method.instrs
        pc = 0
        block_counts = prof.block_counts
        sched = self.sched
        # One activation runs on exactly one guest thread's host thread.
        tid = (sched.current.tid
               if sched is not None and sched.current is not None
               else MAIN_THREAD)
        while True:
            if sched is not None:
                sched.on_step()
            if pc in leaders:
                block_counts[pc] += 1
            instr = instrs[pc]
            self.bytecodes_executed += 1
            prof.bytecodes_executed += 1
            if self.fuel is not None and self.bytecodes_executed > self.fuel:
                raise VMError("interpreter fuel exhausted (guest loop?)")
            op = instr.op

            if op is Op.BR:
                taken = compare(instr.cond, regs[instr.a], regs[instr.b])
                bprof = prof.branch_at(pc)
                if taken:
                    bprof.taken += 1
                    pc = instr.target
                else:
                    bprof.not_taken += 1
                    pc += 1
                continue
            if op is Op.JMP:
                pc = instr.target
                continue
            if op is Op.RET:
                return regs[instr.a] if instr.a is not None else None

            if op is Op.CONST:
                regs[instr.dst] = instr.imm
            elif op is Op.CONST_NULL:
                regs[instr.dst] = None
            elif op is Op.MOV:
                regs[instr.dst] = regs[instr.a]
            elif op is Op.ADD:
                regs[instr.dst] = wrap_int(regs[instr.a] + regs[instr.b])
            elif op is Op.SUB:
                regs[instr.dst] = wrap_int(regs[instr.a] - regs[instr.b])
            elif op is Op.MUL:
                regs[instr.dst] = wrap_int(regs[instr.a] * regs[instr.b])
            elif op is Op.DIV:
                regs[instr.dst] = guest_div(regs[instr.a], regs[instr.b])
            elif op is Op.MOD:
                regs[instr.dst] = guest_mod(regs[instr.a], regs[instr.b])
            elif op is Op.AND:
                regs[instr.dst] = wrap_int(regs[instr.a] & regs[instr.b])
            elif op is Op.OR:
                regs[instr.dst] = wrap_int(regs[instr.a] | regs[instr.b])
            elif op is Op.XOR:
                regs[instr.dst] = wrap_int(regs[instr.a] ^ regs[instr.b])
            elif op is Op.SHL:
                regs[instr.dst] = wrap_int(regs[instr.a] << (regs[instr.b] & 63))
            elif op is Op.SHR:
                regs[instr.dst] = wrap_int(regs[instr.a] >> (regs[instr.b] & 63))
            elif op is Op.NEW:
                layout = self.program.field_layout(instr.cls)
                regs[instr.dst] = self.heap.new_object(instr.cls, layout)
            elif op is Op.NEWARR:
                regs[instr.dst] = self.heap.new_array(regs[instr.a])
            elif op is Op.GETF:
                regs[instr.dst] = require_object(regs[instr.a]).get(instr.fieldname)
            elif op is Op.PUTF:
                obj = require_object(regs[instr.a])
                obj.put(instr.fieldname, regs[instr.b])
                if self.heap.reservations:
                    self.heap.kill_reservations(
                        tid, obj.field_address(instr.fieldname),
                        sched.line_shift if sched is not None
                        else DEFAULT_LINE_SHIFT)
                if sched is not None and sched.logging:
                    sched.note_store(obj.field_address(instr.fieldname))
            elif op is Op.ALOAD:
                regs[instr.dst] = require_array(regs[instr.a]).load(regs[instr.b])
            elif op is Op.ASTORE:
                arr = require_array(regs[instr.a])
                arr.store(regs[instr.b], regs[instr.c])
                if self.heap.reservations:
                    self.heap.kill_reservations(
                        tid, arr.element_address(regs[instr.b]),
                        sched.line_shift if sched is not None
                        else DEFAULT_LINE_SHIFT)
                if sched is not None and sched.logging:
                    sched.note_store(arr.element_address(regs[instr.b]))
            elif op is Op.ALEN:
                regs[instr.dst] = require_array(regs[instr.a]).length
            elif op is Op.FAA:
                # One bytecode, one on_step: indivisible under the
                # cooperative scheduler, which is the whole point.
                obj = require_object(regs[instr.a])
                old = obj.get(instr.fieldname)
                obj.put(instr.fieldname, wrap_int(old + regs[instr.b]))
                regs[instr.dst] = old
                address = obj.field_address(instr.fieldname)
                if self.heap.reservations:
                    self.heap.kill_reservations(
                        tid, address,
                        sched.line_shift if sched is not None
                        else DEFAULT_LINE_SHIFT)
                if sched is not None and sched.logging:
                    sched.note_store(address)
            elif op is Op.CAS:
                obj = require_object(regs[instr.a])
                current = obj.get(instr.fieldname)
                ok = compare("eq", current, regs[instr.b])
                regs[instr.dst] = 1 if ok else 0
                if ok:
                    obj.put(instr.fieldname, regs[instr.c])
                    address = obj.field_address(instr.fieldname)
                    if self.heap.reservations:
                        self.heap.kill_reservations(
                            tid, address,
                            sched.line_shift if sched is not None
                            else DEFAULT_LINE_SHIFT)
                    if sched is not None and sched.logging:
                        sched.note_store(address)
            elif op is Op.LL:
                obj = require_object(regs[instr.a])
                regs[instr.dst] = obj.get(instr.fieldname)
                self.heap.set_reservation(
                    tid, obj.field_address(instr.fieldname))
            elif op is Op.SC:
                obj = require_object(regs[instr.a])
                address = obj.field_address(instr.fieldname)
                ok = self.heap.check_reservation(tid, address)
                self.heap.clear_reservation(tid)
                regs[instr.dst] = 1 if ok else 0
                if ok:
                    obj.put(instr.fieldname, regs[instr.b])
                    if self.heap.reservations:
                        self.heap.kill_reservations(
                            tid, address,
                            sched.line_shift if sched is not None
                            else DEFAULT_LINE_SHIFT)
                    if sched is not None and sched.logging:
                        sched.note_store(address)
            elif op is Op.CALL:
                callee = self.program.resolve_static(instr.method)
                call_args = [regs[r] for r in instr.args]
                regs[instr.dst] = self.dispatcher.invoke(callee, call_args)
            elif op is Op.VCALL:
                receiver = require_object(regs[instr.a])
                prof.call_site_at(pc).receivers[receiver.class_name] += 1
                callee = self.program.resolve_virtual(receiver.class_name, instr.method)
                call_args = [regs[r] for r in instr.args]
                regs[instr.dst] = self.dispatcher.invoke(callee, call_args)
            elif op is Op.MENTER:
                obj = require_object(regs[instr.a])
                lock = obj.lock
                outcome = lock.enter(tid)
                if outcome == "blocked":
                    if sched is None:
                        raise MonitorStateError(
                            f"monitor owned by thread {lock.owner} contended "
                            f"by thread {tid} with no scheduler attached"
                        )
                    # Park until the owner releases, then re-contend (Mesa).
                    while outcome == "blocked":
                        sched.block_on(lock)
                        outcome = lock.enter(tid)
                    lock.contended_acquisitions += 1
                    sched.contended_acquisitions += 1
                if sched is not None and sched.logging:
                    sched.note_store(obj.lock_address())
            elif op is Op.MEXIT:
                obj = require_object(regs[instr.a])
                obj.lock.exit(tid)
                if sched is not None:
                    if obj.lock.waiters:
                        sched.wake_all(obj.lock)
                    if sched.logging:
                        sched.note_store(obj.lock_address())
            elif op is Op.SAFEPOINT:
                self.safepoints_polled += 1
            elif op is Op.NOP:
                pass
            else:  # pragma: no cover - exhaustive over Op
                raise VMError(f"unhandled opcode {op}")
            pc += 1

    # -- internals ------------------------------------------------------------
    def _leaders(self, method: Method) -> frozenset[int]:
        key = id(method)
        leaders = self._leader_cache.get(key)
        if leaders is None:
            leaders = self._leader_cache[key] = block_leaders(method)
        return leaders
