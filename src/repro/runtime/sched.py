"""Deterministic cooperative scheduler for multi-threaded guest execution.

The paper's atomicity guarantee is a multi-thread property: §4's lock
elision is sound only because region memory operations appear to other
threads to happen at the commit instant, and conflict aborts exist to
preserve that isolation against concurrent writers.  Testing the guarantee
therefore needs *real* interleavings — but reproducible ones, so a failing
schedule can be replayed bit-for-bit from its seed.

This module provides that: N guest threads, each a host thread carrying one
``vm.run(...)`` activation, scheduled cooperatively by passing a baton — at
most one guest thread executes at any instant, so guest semantics are fully
sequential and every heap/lock mutation happens in a deterministic total
order.  Switch points are uop-count quanta drawn from a seeded PRNG (the
same ``derive_seed`` convention the fault subsystem uses, so one chaos seed
drives independent fault and schedule streams).  The scheduler also plays
the role of the coherence fabric: committed stores are appended to a store
log that in-flight atomic regions check their read/write sets against, so
a genuine overlap — not an injected one — raises a ``"conflict"`` abort.

Determinism argument: scheduling decisions depend only on (a) the seeded
PRNG and (b) retired-uop counts, which are themselves functions of guest
semantics; since only one guest thread runs at a time, guest semantics are
deterministic; by induction the whole interleaving is a pure function of
(program, inputs, seed).  :attr:`DeterministicScheduler.trace` records it
for replay comparison.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass
from typing import Callable

from ..faults.plan import derive_seed
from ..obs.tracer import NULL_TRACER
from .errors import DeadlockError, VMError

#: default 64-byte cache lines (the machine overrides from its config).
DEFAULT_LINE_SHIFT = 6


@dataclass(frozen=True)
class SchedulePlan:
    """Frozen description of one seeded schedule (hashable, cacheable).

    ``quantum`` is the inclusive range of retired guest steps (machine uops
    or interpreter bytecodes) a thread runs between switch points; each
    slice's length is drawn fresh from the PRNG.  Small quanta maximize
    interleaving density (good for chaos), large quanta model coarse
    preemption.
    """

    seed: int = 0
    quantum: tuple[int, int] = (16, 64)

    def __post_init__(self) -> None:
        lo, hi = self.quantum
        if lo <= 0 or hi < lo:
            raise ValueError(f"bad quantum range {self.quantum}")

    def rng(self) -> random.Random:
        """The schedule's PRNG stream (independent of the fault stream)."""
        return random.Random(derive_seed(self.seed, "sched"))

    def describe(self) -> str:
        return f"sched(seed={self.seed}, quantum={self.quantum[0]}..{self.quantum[1]})"


class GuestThread:
    """One guest thread: a host thread cooperatively running guest code."""

    __slots__ = ("tid", "name", "fn", "state", "result", "error",
                 "steps", "blocked_on", "_event", "_host")

    def __init__(self, tid: int, name: str, fn: Callable) -> None:
        self.tid = tid
        self.name = name
        self.fn = fn
        #: "new" | "runnable" | "running" | "blocked" | "finished"
        self.state = "new"
        self.result = None
        self.error: BaseException | None = None
        #: retired guest steps (machine uops / interpreter bytecodes).
        self.steps = 0
        self.blocked_on = None
        self._event = threading.Event()
        self._host: threading.Thread | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<GuestThread {self.tid}:{self.name} {self.state}>"


class DeterministicScheduler:
    """Seeded cooperative scheduler + conflict bus for guest threads.

    Lifecycle: ``spawn`` the threads, then ``run()`` (from the host's main
    thread) drives them to completion and re-raises the first guest error,
    or :class:`DeadlockError` when every live thread is parked on a monitor.

    Hooks called *by the running guest thread* (the machine/interpreter):

    - :meth:`on_step` — once per retired uop/bytecode; decrements the
      current quantum and switches when it expires;
    - :meth:`block_on` / :meth:`wake_all` — monitor park/unpark (Mesa
      semantics: woken threads re-contend for the lock);
    - :meth:`note_store`, :meth:`region_begin`/:meth:`region_end` and
      :attr:`store_log` — the committed-store log that atomic regions scan
      for genuine cross-thread conflicts.
    """

    def __init__(self, plan: SchedulePlan | None = None) -> None:
        self.plan = plan if plan is not None else SchedulePlan()
        self._rng = self.plan.rng()
        self.threads: list[GuestThread] = []
        self.current: GuestThread | None = None
        #: (global step count, tid) for every actual context switch.
        self.trace: list[tuple[int, int]] = []
        self.context_switches = 0
        self.contended_acquisitions = 0
        #: committed/non-speculative stores as (tid, cache line) while any
        #: atomic region is in flight; cleared when the last region ends.
        self.store_log: list[tuple[int, int]] = []
        self.line_shift = DEFAULT_LINE_SHIFT
        #: lifecycle tracer (attached by TieredVM.run_threads); emits one
        #: ctx_switch event per entry appended to :attr:`trace`.
        self.tracer = NULL_TRACER
        self._inflight: set[int] = set()
        self._quantum = 0
        self._steps = 0
        self._done = threading.Event()
        self._started = False
        self._deadlock: DeadlockError | None = None
        self._finish_order: list[GuestThread] = []

    # -- setup ---------------------------------------------------------------
    def spawn(self, fn: Callable, name: str | None = None) -> GuestThread:
        """Register a guest thread running ``fn()`` to completion."""
        if self._started:
            raise VMError("cannot spawn after the scheduler has started")
        tid = len(self.threads)
        thread = GuestThread(tid, name if name is not None else f"t{tid}", fn)
        self.threads.append(thread)
        return thread

    # -- main-thread driver ---------------------------------------------------
    def run(self) -> list[GuestThread]:
        """Run every spawned thread to completion; returns them in tid order.

        Re-raises the first guest error (in completion order) after all
        runnable threads have finished, so the interleaving up to the error
        is fully recorded in :attr:`trace`.
        """
        if self._started:
            raise VMError("scheduler can only run once")
        if not self.threads:
            return []
        self._started = True
        for thread in self.threads:
            thread.state = "runnable"
            thread._host = threading.Thread(
                target=self._thread_body, args=(thread,),
                name=f"guest-{thread.tid}", daemon=True,
            )
            thread._host.start()
        first = self._pick_next()
        self._quantum = self._rng.randint(*self.plan.quantum)
        self.current = first
        first.state = "running"
        self.trace.append((self._steps, first.tid))
        if self.tracer.enabled:
            self.tracer.ctx_switch(self._steps, first.tid, from_tid=-1)
        first._event.set()
        self._done.wait()
        for thread in self._finish_order:
            if thread.error is not None:
                raise thread.error
        if self._deadlock is not None:
            raise self._deadlock
        return list(self.threads)

    # -- guest-side hooks -----------------------------------------------------
    def on_step(self, n: int = 1) -> None:
        """Account ``n`` retired guest steps; switch when the quantum ends."""
        me = self.current
        me.steps += n
        self._steps += n
        self._quantum -= n
        if self._quantum <= 0:
            self._quantum = self._rng.randint(*self.plan.quantum)
            nxt = self._pick_next()
            if nxt is not me:
                me.state = "runnable"
                self._hand_over(me, nxt)

    def block_on(self, lock) -> None:
        """Park the current thread on ``lock.waiters`` and switch away.

        The caller retries ``lock.enter`` after waking (Mesa semantics), so
        a spurious wake-up is harmless.
        """
        me = self.current
        me.state = "blocked"
        me.blocked_on = lock
        lock.waiters.append(me)
        nxt = self._pick_next()
        if nxt is None:
            # Everybody is blocked: no schedule can make progress.  Raise in
            # the guest thread so the error carries the guest stack; run()
            # re-raises it after the wind-down.
            me.state = "runnable"  # keep the dump honest about *why*
            lock.waiters.remove(me)
            me.blocked_on = None
            raise DeadlockError(self._deadlock_dump(me, lock))
        self._hand_over(me, nxt)
        me.blocked_on = None

    def wake_all(self, lock) -> None:
        """Make every thread parked on ``lock`` runnable (they re-contend)."""
        for waiter in lock.waiters:
            if waiter.state == "blocked":
                waiter.state = "runnable"
        lock.waiters.clear()

    # -- conflict bus ---------------------------------------------------------
    @property
    def logging(self) -> bool:
        """True while any atomic region is in flight (stores must be logged)."""
        return bool(self._inflight)

    def note_store(self, address: int) -> None:
        """Log one committed/non-speculative store for conflict detection."""
        if self._inflight:
            self.store_log.append((self.current.tid, address >> self.line_shift))

    def note_store_line(self, tid: int, line: int) -> None:
        """Log an already-line-granular store (region commits)."""
        if self._inflight:
            self.store_log.append((tid, line))

    def region_begin(self, tid: int) -> int:
        """Register an in-flight region; returns its store-log start index."""
        self._inflight.add(tid)
        return len(self.store_log)

    def region_end(self, tid: int) -> None:
        self._inflight.discard(tid)
        if not self._inflight:
            self.store_log.clear()

    # -- internals ------------------------------------------------------------
    def _pick_next(self) -> GuestThread | None:
        runnable = [t for t in self.threads
                    if t.state in ("runnable", "running")]
        if not runnable:
            return None
        return runnable[self._rng.randrange(len(runnable))]

    def _hand_over(self, me: GuestThread, nxt: GuestThread) -> None:
        """Pass the baton: wake ``nxt``, park until re-scheduled."""
        self.context_switches += 1
        self.current = nxt
        nxt.state = "running"
        self.trace.append((self._steps, nxt.tid))
        if self.tracer.enabled:
            self.tracer.ctx_switch(self._steps, nxt.tid, from_tid=me.tid)
        me._event.clear()
        nxt._event.set()
        me._event.wait()

    def _thread_body(self, me: GuestThread) -> None:
        me._event.wait()
        try:
            me.result = me.fn()
        except BaseException as error:  # noqa: BLE001 - recorded, re-raised
            me.error = error
        me.state = "finished"
        self._finish_order.append(me)
        nxt = self._pick_next()
        if nxt is not None:
            self._quantum = self._rng.randint(*self.plan.quantum)
            self.context_switches += 1
            self.current = nxt
            nxt.state = "running"
            self.trace.append((self._steps, nxt.tid))
            if self.tracer.enabled:
                self.tracer.ctx_switch(self._steps, nxt.tid, from_tid=me.tid)
            nxt._event.set()
            return
        blocked = [t for t in self.threads if t.state == "blocked"]
        if blocked and self._deadlock is None:
            self._deadlock = DeadlockError(self._deadlock_dump(None, None))
        self.current = None
        self._done.set()

    def _deadlock_dump(self, me: GuestThread | None, lock) -> str:
        lines = ["no runnable guest thread remains:"]
        for thread in self.threads:
            what = thread.state
            if thread is me:
                what = f"about to block on {lock!r}"
            elif thread.blocked_on is not None:
                what = f"blocked on a monitor owned by {thread.blocked_on.owner}"
            lines.append(f"  thread {thread.tid} ({thread.name}): {what}")
        lines.append(f"  after {self._steps} steps, "
                     f"{self.context_switches} switches, {self.plan.describe()}")
        return "\n".join(lines)
