"""Execution profiles gathered by the tier-0 interpreter.

Region formation is "fundamentally a profile-driven" process (paper §4): the
compiler needs branch biases (to find cold edges, bias < 1%), block
execution counts (Algorithm 1 processes the hottest blocks first and uses
``GETEXECCOUNT``), loop trip counts (``LOOPWEIGHT``), and receiver-class
profiles at virtual call sites (for inlining and the jython monomorphism
discussion in §6.1).

Profiles are keyed by bytecode pc within each method, which survives the
translation to IR because the IR builder records the originating pc on every
operation.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


#: Branch-bias threshold below which an edge is *cold* (paper §4: "we define
#: as cold any paths whose branch bias is less than 1%").
COLD_EDGE_BIAS = 0.01


@dataclass
class BranchProfile:
    """Taken/not-taken counts for one conditional branch site."""

    taken: int = 0
    not_taken: int = 0

    @property
    def total(self) -> int:
        return self.taken + self.not_taken

    def bias_taken(self) -> float:
        """Fraction of executions that took the branch (0.5 when unseen)."""
        if self.total == 0:
            return 0.5
        return self.taken / self.total

    def is_cold_taken(self, threshold: float = COLD_EDGE_BIAS) -> bool:
        """The taken edge is cold: rarely or never followed."""
        return self.total > 0 and self.bias_taken() < threshold

    def is_cold_not_taken(self, threshold: float = COLD_EDGE_BIAS) -> bool:
        return self.total > 0 and (1.0 - self.bias_taken()) < threshold


@dataclass
class CallSiteProfile:
    """Receiver-class histogram for one virtual call site."""

    receivers: Counter = field(default_factory=Counter)

    @property
    def total(self) -> int:
        return sum(self.receivers.values())

    def dominant(self) -> tuple[str | None, float]:
        """The most common receiver class and its frequency share."""
        if not self.receivers:
            return None, 0.0
        name, count = self.receivers.most_common(1)[0]
        return name, count / self.total

    def is_monomorphic(self, threshold: float = 0.999) -> bool:
        name, share = self.dominant()
        return name is not None and share >= threshold

    def appears_polymorphic(self) -> bool:
        """More than one receiver class was *ever* observed.

        The paper's partial inliner refuses to inline methods containing
        polymorphic call sites (§6.1); this predicate is what it consults.
        """
        return len(self.receivers) > 1


@dataclass
class MethodProfile:
    """All profile data for one method."""

    invocations: int = 0
    bytecodes_executed: int = 0
    block_counts: Counter = field(default_factory=Counter)  # pc of block head -> count
    branches: dict[int, BranchProfile] = field(default_factory=dict)
    call_sites: dict[int, CallSiteProfile] = field(default_factory=dict)

    def branch_at(self, pc: int) -> BranchProfile:
        prof = self.branches.get(pc)
        if prof is None:
            prof = self.branches[pc] = BranchProfile()
        return prof

    def call_site_at(self, pc: int) -> CallSiteProfile:
        prof = self.call_sites.get(pc)
        if prof is None:
            prof = self.call_sites[pc] = CallSiteProfile()
        return prof


class ProfileStore:
    """Profiles for every method, keyed by qualified method name."""

    def __init__(self) -> None:
        self._methods: dict[str, MethodProfile] = {}

    def method(self, qualified_name: str) -> MethodProfile:
        prof = self._methods.get(qualified_name)
        if prof is None:
            prof = self._methods[qualified_name] = MethodProfile()
        return prof

    def __contains__(self, qualified_name: str) -> bool:
        return qualified_name in self._methods

    def snapshot_invocations(self) -> dict[str, int]:
        return {name: prof.invocations for name, prof in self._methods.items()}

    def clear(self) -> None:
        self._methods.clear()
