"""The guest heap: addressed objects and arrays.

Objects carry a simulated byte address so the hardware layer (caches,
atomic-region read/write sets, conflict detection) can operate on cache
lines, exactly as the paper's hardware tracks the data footprint of an
atomic region in the L1 (§3.3, §6.2).

Layout model (word = 8 bytes):

- object: ``base .. base+16`` header (class word + lock word), then one word
  per field slot;
- array:  ``base .. base+16`` header, ``base+16`` length word, elements from
  ``base+24``.

Allocation is bump-pointer and 16-byte aligned; there is no collector — the
paper's evaluation never depends on GC, only on safepoint *polling* cost,
which is modeled in the compiler.
"""

from __future__ import annotations

from typing import Union

from .errors import BoundsError, NullPointerError, VMError
from .locks import LockWord

OBJECT_HEADER_BYTES = 16
ARRAY_HEADER_BYTES = 24  # 16-byte header + 8-byte length word
WORD_BYTES = 8

#: Guest values are 64-bit-ish integers or references (or None for null).
Value = Union[int, "GuestObject", "GuestArray", None]


class GuestObject:
    """An instance of a guest class: a flat slot array plus a lock word."""

    __slots__ = ("class_name", "slots", "field_index", "base", "lock")

    def __init__(
        self,
        class_name: str,
        field_index: dict[str, int],
        base: int,
    ) -> None:
        self.class_name = class_name
        self.field_index = field_index
        self.slots: list[Value] = [0] * len(field_index)
        self.base = base
        self.lock = LockWord()

    def get(self, fieldname: str) -> Value:
        try:
            return self.slots[self.field_index[fieldname]]
        except KeyError:
            raise VMError(
                f"class {self.class_name!r} has no field {fieldname!r}"
            ) from None

    def put(self, fieldname: str, value: Value) -> None:
        try:
            self.slots[self.field_index[fieldname]] = value
        except KeyError:
            raise VMError(
                f"class {self.class_name!r} has no field {fieldname!r}"
            ) from None

    def field_address(self, fieldname: str) -> int:
        return self.base + OBJECT_HEADER_BYTES + self.field_index[fieldname] * WORD_BYTES

    def lock_address(self) -> int:
        """Address of the lock word (second header word)."""
        return self.base + WORD_BYTES

    def size_bytes(self) -> int:
        return OBJECT_HEADER_BYTES + len(self.slots) * WORD_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.class_name}@{self.base:#x}>"


class GuestArray:
    """A guest array of values (ints or references)."""

    __slots__ = ("values", "base")

    def __init__(self, length: int, base: int) -> None:
        if length < 0:
            raise VMError(f"negative array length {length}")
        self.values: list[Value] = [0] * length
        self.base = base

    @property
    def length(self) -> int:
        return len(self.values)

    def load(self, index: int) -> Value:
        if not 0 <= index < len(self.values):
            raise BoundsError(index, len(self.values))
        return self.values[index]

    def store(self, index: int, value: Value) -> None:
        if not 0 <= index < len(self.values):
            raise BoundsError(index, len(self.values))
        self.values[index] = value

    def element_address(self, index: int) -> int:
        return self.base + ARRAY_HEADER_BYTES + index * WORD_BYTES

    def length_address(self) -> int:
        return self.base + OBJECT_HEADER_BYTES

    def size_bytes(self) -> int:
        return ARRAY_HEADER_BYTES + len(self.values) * WORD_BYTES

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<array[{len(self.values)}]@{self.base:#x}>"


def require_object(ref: Value) -> GuestObject:
    if ref is None:
        raise NullPointerError("null object dereference")
    if not isinstance(ref, GuestObject):
        raise VMError(f"expected object reference, got {type(ref).__name__}")
    return ref


def require_array(ref: Value) -> GuestArray:
    if ref is None:
        raise NullPointerError("null array dereference")
    if not isinstance(ref, GuestArray):
        raise VMError(f"expected array reference, got {type(ref).__name__}")
    return ref


class Heap:
    """Bump-pointer allocator handing out addressed objects and arrays.

    The heap keeps its allocation log (every live object, in allocation
    order).  Atomic regions use :meth:`mark` / :meth:`rollback_to` to undo
    allocations made inside an aborted region — on real hardware the bump
    pointer and object initialization are just speculative stores, so an
    abort erases them; modeling that keeps the post-abort heap bit-identical
    to a non-speculative execution, which :meth:`fingerprint` checks.
    """

    BASE_ADDRESS = 0x10_0000

    def __init__(self) -> None:
        self._cursor = self.BASE_ADDRESS
        self.objects_allocated = 0
        self.arrays_allocated = 0
        self.bytes_allocated = 0
        self.allocations: list[Union[GuestObject, GuestArray]] = []
        #: LL/SC reservation station: tid -> reserved byte address.  One
        #: reservation per hardware thread, killed by any *other* thread's
        #: committed store to the same cache line (see
        #: :meth:`kill_reservations`).  Microarchitectural state: it is
        #: deliberately NOT part of :meth:`fingerprint`.
        self.reservations: dict[int, int] = {}

    # -- LL/SC reservations ---------------------------------------------------
    def set_reservation(self, tid: int, address: int) -> None:
        self.reservations[tid] = address

    def clear_reservation(self, tid: int) -> None:
        self.reservations.pop(tid, None)

    def check_reservation(self, tid: int, address: int) -> bool:
        return self.reservations.get(tid) == address

    def kill_reservations(self, tid: int, address: int, line_shift: int) -> None:
        """A committed store by ``tid`` kills every OTHER thread's
        reservation on the same cache line (own reservations survive own
        stores, like most LL/SC ISAs at line granularity)."""
        line = address >> line_shift
        doomed = [
            t for t, reserved in self.reservations.items()
            if t != tid and (reserved >> line_shift) == line
        ]
        for t in doomed:
            del self.reservations[t]

    def _bump(self, size: int) -> int:
        base = self._cursor
        aligned = (size + 15) & ~15
        self._cursor += aligned
        self.bytes_allocated += aligned
        return base

    def new_object(self, class_name: str, field_index: dict[str, int]) -> GuestObject:
        size = OBJECT_HEADER_BYTES + len(field_index) * WORD_BYTES
        obj = GuestObject(class_name, field_index, self._bump(size))
        self.objects_allocated += 1
        self.allocations.append(obj)
        return obj

    def new_array(self, length: int) -> GuestArray:
        size = ARRAY_HEADER_BYTES + length * WORD_BYTES
        arr = GuestArray(length, self._bump(size))
        self.arrays_allocated += 1
        self.allocations.append(arr)
        return arr

    # -- speculative allocation rollback ------------------------------------
    def mark(self) -> tuple:
        """Snapshot of the allocator state at a region entry."""
        return (
            self._cursor,
            self.objects_allocated,
            self.arrays_allocated,
            self.bytes_allocated,
            len(self.allocations),
        )

    def rollback_to(self, mark: tuple) -> None:
        """Discard every allocation made since ``mark`` (abort path)."""
        (self._cursor, self.objects_allocated, self.arrays_allocated,
         self.bytes_allocated, count) = mark
        del self.allocations[count:]

    def discard_speculative(self, mark: tuple, allocs: list) -> None:
        """Retract exactly the allocations in ``allocs`` (an aborted
        region's speculative allocations, in allocation order).

        Single-threaded, every allocation since ``mark`` belongs to the
        aborting region, so the whole allocator state — cursor included —
        rewinds to the mark, bit-identical to the old behaviour.  Under the
        deterministic scheduler, *other* guest threads may have allocated
        since the mark; a blanket rewind would destroy their live objects,
        so only the region's own allocations are unlinked (the bump cursor
        is not rewound — on real hardware the other thread's bump advanced
        it past the mark anyway, so those addresses are simply never
        reused).
        """
        count = mark[4]
        if len(self.allocations) - count == len(allocs):
            self.rollback_to(mark)
            return
        doomed = {id(x) for x in allocs}
        self.allocations = [x for x in self.allocations if id(x) not in doomed]
        for x in allocs:
            if isinstance(x, GuestObject):
                self.objects_allocated -= 1
            else:
                self.arrays_allocated -= 1
            self.bytes_allocated -= (x.size_bytes() + 15) & ~15

    # -- differential state checks ------------------------------------------
    def fingerprint(self) -> tuple:
        """Canonical image of the whole heap, in allocation order.

        References are canonicalized to allocation indexes, so two heaps
        built by semantically identical executions compare equal regardless
        of host object identity.  Lock words contribute their architectural
        (owner, depth) state — a rolled-back monitor operation must leave
        them exactly as a non-speculative run would.
        """
        index = {id(x): i for i, x in enumerate(self.allocations)}

        def canon(value):
            if isinstance(value, (GuestObject, GuestArray)):
                return ("ref", index[id(value)])
            return value

        items = []
        for x in self.allocations:
            if isinstance(x, GuestObject):
                items.append((
                    "obj", x.class_name,
                    tuple(canon(v) for v in x.slots),
                    x.lock.owner, x.lock.depth,
                ))
            else:
                items.append(("arr", tuple(canon(v) for v in x.values)))
        return tuple(items)

    def locks_quiescent(self) -> bool:
        """True when every monitor on the heap is released (owner-free)."""
        return all(
            x.lock.owner is None and x.lock.depth == 0
            for x in self.allocations if isinstance(x, GuestObject)
        )
