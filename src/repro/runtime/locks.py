"""Java-style monitors with reservation-lock fast paths.

The paper's JVM (Harmony DRLVM) uses reservation locks [Kawachiya et al.,
OOPSLA 2002]: a lock word remembers the thread that first acquired it, and
subsequent acquisitions by the *reserving* thread avoid atomic operations —
but still must **load + check + store** the lock word on both monitor enter
and exit to track nesting depth.  Speculative lock elision (§4 of the paper)
removes even that: inside an atomic region, a balanced enter/exit pair
shrinks to a single load-and-verify of the lock word on entry and nothing on
exit.

This module models the lock *state machine*; the per-operation uop costs are
charged by the code generator (:mod:`repro.hw.codegen`).
"""

from __future__ import annotations

from .errors import MonitorStateError

#: The only guest thread that runs code in this reproduction.
MAIN_THREAD = 0

#: Simulated address of the global hybrid-HTM fallback lock word.  It lives
#: well below ``Heap.BASE_ADDRESS`` (0x10_0000) in a runtime-reserved page,
#: so its cache line can never collide with a guest object: regions that
#: subscribe to it at begin time add exactly one otherwise-untouchable line
#: to their read set.
FALLBACK_LOCK_ADDRESS = 0x1040


class LockWord:
    """Monitor state for one object.

    ``reserver`` is the thread the lock is biased toward, ``owner`` the
    thread currently inside the monitor (or None), ``depth`` the recursive
    acquisition count.
    """

    __slots__ = ("reserver", "owner", "depth", "acquisitions",
                 "contended_acquisitions", "waiters")

    def __init__(self) -> None:
        self.reserver: int | None = None
        self.owner: int | None = None
        self.depth = 0
        self.acquisitions = 0
        self.contended_acquisitions = 0
        #: guest threads parked on this monitor (scheduler-managed, FIFO).
        self.waiters: list = []

    def is_free(self) -> bool:
        return self.owner is None

    def held_by_other(self, thread: int) -> bool:
        """True when a different thread is inside the monitor.

        This is exactly the condition an SLE'd monitor-enter verifies with
        its single load: if it holds, the atomic region must abort.
        """
        return self.owner is not None and self.owner != thread

    def enter(self, thread: int = MAIN_THREAD) -> str:
        """Try to acquire the monitor; returns the path taken.

        Returns one of ``"reserved"`` (reservation fast path), ``"nested"``
        (recursive acquisition), ``"unreserved"`` (first acquisition, claims
        the reservation), ``"contended"`` (acquired, but through the slow
        path because the reservation belongs to another thread), or
        ``"blocked"`` — the monitor is *owned* by another thread and was NOT
        acquired.  A ``"blocked"`` caller must either park on
        :attr:`waiters` (scheduler present) and retry after a wake-up, or
        raise :class:`MonitorStateError` (single-threaded shims, where no
        owner can ever release the lock).  Mutual exclusion lives here: the
        old behaviour of stealing the lock on contention would break the
        moment a second thread exists.
        """
        if self.owner == thread:
            self.acquisitions += 1
            self.depth += 1
            return "nested"
        if self.owner is not None:
            return "blocked"
        self.acquisitions += 1
        self.owner = thread
        self.depth = 1
        if self.reserver is None:
            self.reserver = thread
            return "unreserved"
        return "reserved" if self.reserver == thread else "contended"

    def exit(self, thread: int = MAIN_THREAD) -> None:
        if self.owner != thread:
            raise MonitorStateError(
                f"thread {thread} exited a monitor owned by {self.owner}"
            )
        self.depth -= 1
        if self.depth == 0:
            self.owner = None

    def force_owner(self, thread: int | None, depth: int = 1) -> None:
        """Test/conflict-injection hook: set the owner directly."""
        self.owner = thread
        self.depth = depth if thread is not None else 0
