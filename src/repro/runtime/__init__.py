"""Runtime substrate: heap, monitors, profiles, and the tier-0 interpreter."""

from .errors import (
    BoundsError,
    DeadlockError,
    GuestArithmeticError,
    GuestError,
    MonitorStateError,
    NullPointerError,
    VMError,
)
from .heap import (
    ARRAY_HEADER_BYTES,
    GuestArray,
    GuestObject,
    Heap,
    OBJECT_HEADER_BYTES,
    Value,
    WORD_BYTES,
)
from .interpreter import Interpreter, block_leaders, compare, guest_div, guest_mod, wrap_int
from .locks import FALLBACK_LOCK_ADDRESS, LockWord, MAIN_THREAD
from .sched import DeterministicScheduler, GuestThread, SchedulePlan
from .profile import (
    BranchProfile,
    CallSiteProfile,
    COLD_EDGE_BIAS,
    MethodProfile,
    ProfileStore,
)

__all__ = [
    "ARRAY_HEADER_BYTES",
    "BoundsError",
    "BranchProfile",
    "CallSiteProfile",
    "COLD_EDGE_BIAS",
    "DeadlockError",
    "DeterministicScheduler",
    "FALLBACK_LOCK_ADDRESS",
    "GuestArithmeticError",
    "GuestArray",
    "GuestError",
    "GuestObject",
    "GuestThread",
    "Heap",
    "Interpreter",
    "LockWord",
    "MAIN_THREAD",
    "MethodProfile",
    "MonitorStateError",
    "NullPointerError",
    "OBJECT_HEADER_BYTES",
    "ProfileStore",
    "SchedulePlan",
    "VMError",
    "Value",
    "WORD_BYTES",
    "block_leaders",
    "compare",
    "guest_div",
    "guest_mod",
    "wrap_int",
]
