"""Guest-visible runtime errors.

These model the Java safety traps whose *checks* the paper's optimizations
remove or deduplicate: null-pointer dereference, array bounds overrun, and
integer division by zero.  They are raised by the interpreter and by the
functional machine simulator when a check actually fails (which, per the
paper, is rare: the checks are almost always redundant, not almost always
failing).
"""

from __future__ import annotations


class GuestError(Exception):
    """Base class for errors raised *by the guest program's semantics*."""


class NullPointerError(GuestError):
    """Dereference of the null reference."""


class BoundsError(GuestError):
    """Array index out of range."""

    def __init__(self, index: int, length: int) -> None:
        super().__init__(f"index {index} out of bounds for length {length}")
        self.index = index
        self.length = length


class GuestArithmeticError(GuestError):
    """Integer division or remainder by zero."""


class MonitorStateError(GuestError):
    """Structurally ill-formed monitor usage (exit without enter, etc.)."""


class DeadlockError(GuestError):
    """Every live guest thread is blocked on a monitor: no schedule exists
    that makes progress.  Raised by the deterministic scheduler with a dump
    of each thread's state so the offending interleaving can be replayed."""


class VMError(Exception):
    """An internal VM invariant violation (a bug in this library, not the guest)."""
