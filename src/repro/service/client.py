"""Async client library for the sweep server.

:class:`SweepClient` wraps one NDJSON connection: typed submit/ping/
stats calls, an event pump that routes server events to the right
awaiter, and a :meth:`sweep` convenience that submits a cell list and
gathers every result (in cell order) — the closed-loop primitive the
benchmark and the CI smoke build on.

The client is deliberately thin: it never interprets payloads beyond
routing, so the bytes a caller sees are exactly the bytes the server's
canonical projection produced (which is what the determinism tests
compare against serial runs).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field

from .protocol import FRAME_LIMIT, ProtocolError, ServiceCell, decode, encode

#: events that terminate one submitted request.
_TERMINAL = ("done",)


class ServiceError(Exception):
    """A typed error event surfaced to the caller."""

    def __init__(self, code: str, detail: str) -> None:
        super().__init__(f"{code}: {detail}")
        self.code = code
        self.detail = detail


@dataclass
class SubmitHandle:
    """One accepted submit: its request id, the server-assigned cell ids,
    and the stream of its events."""

    request_id: str
    cell_ids: list[str]
    _queue: asyncio.Queue = field(default_factory=asyncio.Queue)

    async def events(self):
        """Yield this request's events until its ``done`` (exclusive)."""
        while True:
            event = await self._queue.get()
            if event.get("event") in _TERMINAL:
                return
            yield event

    async def results(self) -> dict[str, dict]:
        """cell id → result event, collected until ``done``.  A
        ``compute_failed`` error for a cell raises :class:`ServiceError`
        after the request completes (partial results are not silently
        dropped — the first failure wins)."""
        results: dict[str, dict] = {}
        failure: ServiceError | None = None
        async for event in self.events():
            if event.get("event") == "result":
                results[event["cell"]] = event
            elif event.get("event") == "error":
                failure = failure or ServiceError(
                    event.get("code", "?"), event.get("detail", ""))
        if failure is not None:
            raise failure
        return results


class SweepClient:
    """One tenant connection to a :class:`~repro.service.server.SweepServer`."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, hello: dict) -> None:
        self._reader = reader
        self._writer = writer
        self.hello = hello
        self.client_id = hello.get("client")
        self._requests: dict[str, SubmitHandle] = {}
        self._cells: dict[str, SubmitHandle] = {}
        #: events that arrived before their request handle was registered
        #: (the server may answer a hot cell before the accepted event is
        #: processed); replayed on registration.
        self._orphans: list[dict] = []
        self._control: asyncio.Queue = asyncio.Queue()
        self._watch_queue: asyncio.Queue = asyncio.Queue()
        self._pump_task = asyncio.ensure_future(self._pump())
        self._next_id = 0

    # -- lifecycle ---------------------------------------------------------
    @classmethod
    async def connect(cls, host: str, port: int) -> "SweepClient":
        # FRAME_LIMIT, not the 64 KiB readline default: a streamed Chrome
        # trace is one (large) frame.
        reader, writer = await asyncio.open_connection(
            host, port, limit=FRAME_LIMIT)
        hello = decode(await reader.readline())
        if hello.get("event") != "hello":
            raise ServiceError("bad_request",
                               f"expected hello, got {hello!r}")
        return cls(reader, writer, hello)

    async def close(self) -> None:
        self._pump_task.cancel()
        try:
            await self._pump_task
        except BaseException:
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except Exception:
            pass

    async def __aenter__(self) -> "SweepClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- event pump --------------------------------------------------------
    async def _pump(self) -> None:
        """Route incoming events: per-request queues for submit traffic,
        the control queue for pong/stats/watching acks, the watch queue
        for progress broadcasts."""
        while True:
            try:
                line = await self._reader.readline()
                event = decode(line) if line else None
            except (ProtocolError, ConnectionError, OSError, ValueError):
                event = None  # undecodable stream: treat like EOF
            if event is None:
                # connection gone: fail every outstanding request.
                eof = {"event": "error", "code": "bad_request",
                       "detail": "connection closed by server"}
                for handle in self._requests.values():
                    handle._queue.put_nowait(eof)
                    handle._queue.put_nowait({"event": "done"})
                self._control.put_nowait(eof)
                return
            kind = event.get("event")
            if kind in ("result", "trace"):
                handle = self._cells.get(event.get("cell"))
                if handle is not None:
                    handle._queue.put_nowait(event)
                else:
                    self._orphans.append(event)
            elif kind == "done":
                handle = self._requests.pop(event.get("id"), None)
                if handle is not None:
                    handle._queue.put_nowait(event)
                else:
                    self._orphans.append(event)
            elif kind == "progress":
                self._watch_queue.put_nowait(event)
            elif kind == "error" and ("request" in event or "cell" in event):
                # a per-cell compute failure inside a submit; may race
                # ahead of the accepted processing like results do.
                handle = (self._requests.get(event.get("request"))
                          or self._cells.get(event.get("cell")))
                if handle is not None:
                    handle._queue.put_nowait(event)
                else:
                    self._orphans.append(event)
            else:
                self._control.put_nowait(event)

    async def _send(self, message: dict) -> None:
        self._writer.write(encode(message))
        await self._writer.drain()

    async def _control_event(self) -> dict:
        event = await self._control.get()
        if event.get("event") == "error":
            raise ServiceError(event.get("code", "?"),
                               event.get("detail", ""))
        return event

    # -- operations --------------------------------------------------------
    async def submit(self, cells, request_id: str | None = None) -> SubmitHandle:
        """Submit a list of cells (:class:`ServiceCell` or wire dicts);
        returns the accepted handle or raises :class:`ServiceError`."""
        specs = [cell.spec() if isinstance(cell, ServiceCell) else cell
                 for cell in cells]
        message: dict = {"op": "submit", "cells": specs}
        if request_id is not None:
            message["id"] = request_id
        await self._send(message)
        accepted = await self._control_event()
        if accepted.get("event") != "accepted":
            raise ServiceError("bad_request",
                               f"expected accepted, got {accepted!r}")
        handle = SubmitHandle(request_id=accepted["id"],
                              cell_ids=list(accepted["cells"]))
        self._requests[handle.request_id] = handle
        for cell_id in handle.cell_ids:
            self._cells[cell_id] = handle
        # replay events that raced ahead of the accepted processing.
        orphans, self._orphans = self._orphans, []
        for event in orphans:
            if (event.get("cell") in handle.cell_ids
                    or event.get("request") == handle.request_id
                    or event.get("id") == handle.request_id):
                handle._queue.put_nowait(event)
                if event.get("event") == "done":
                    self._requests.pop(handle.request_id, None)
            else:
                self._orphans.append(event)
        return handle

    async def sweep(self, cells, request_id: str | None = None) -> list[dict]:
        """Submit and gather: one result event per cell, in cell order."""
        handle = await self.submit(cells, request_id=request_id)
        results = await handle.results()
        return [results[cell_id] for cell_id in handle.cell_ids]

    async def ping(self) -> dict:
        await self._send({"op": "ping"})
        return await self._control_event()

    async def stats(self) -> dict:
        """The server's counter snapshot (service + cache counters)."""
        await self._send({"op": "stats"})
        return (await self._control_event())["counters"]

    async def watch(self):
        """Subscribe to progress broadcasts; yields progress events."""
        await self._send({"op": "watch"})
        await self._control_event()  # the "watching" ack
        while True:
            yield await self._watch_queue.get()

    async def raw(self, message: dict) -> None:
        """Send an arbitrary frame (protocol tests drive this)."""
        await self._send(message)

    async def next_control(self) -> dict:
        """The next non-routed event, errors included (protocol tests)."""
        return await self._control.get()
