"""Simulation-as-a-service: the async multi-tenant sweep server.

The harness's batch machinery (sharded parallel runner, checksummed disk
cache, fault-tolerant supervisor) turned into a long-running service:

- :class:`SweepServer` — asyncio TCP server speaking newline-delimited
  JSON; validates experiment cells against the harness registries,
  dedupes identical in-flight cells across tenants, answers cached cells
  at memory speed through an LRU hot layer, and streams results,
  progress, and Chrome traces with per-tenant fairness and backpressure
  (DESIGN.md §13).
- :class:`SweepClient` — the async client library (submit / sweep /
  watch / stats), plus ``python -m repro.service`` for the CLI forms.
- :mod:`repro.service.protocol` — the wire vocabulary, cell validation,
  and the canonical result projection whose bytes are proven identical
  to serial ``compute_cell`` runs.

Determinism contract (the repo-wide invariant, one level up): any served
cell's payload is byte-identical to a serial run — cold, deduped, or
cached, under concurrent tenants and mid-stream disconnects.
"""

from .client import ServiceError, SubmitHandle, SweepClient
from .protocol import (
    ERROR_CODES,
    PROTOCOL_VERSION,
    SERVICE_HARDWARE,
    ProtocolError,
    ServiceCell,
    canonical_json,
    compute_service_cell,
    compute_service_cell_traced,
    payload_digest,
    result_payload,
    validate_cell,
)
from .server import SweepServer

__all__ = [
    "ERROR_CODES",
    "PROTOCOL_VERSION",
    "SERVICE_HARDWARE",
    "ProtocolError",
    "ServiceCell",
    "ServiceError",
    "SubmitHandle",
    "SweepClient",
    "SweepServer",
    "canonical_json",
    "compute_service_cell",
    "compute_service_cell_traced",
    "payload_digest",
    "result_payload",
    "validate_cell",
]
