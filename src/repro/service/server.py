"""The asyncio multi-tenant sweep server.

Batch sweeps made a service: a long-running :class:`SweepServer` accepts
experiment-cell requests from many concurrent clients (newline-delimited
JSON over TCP, :mod:`repro.service.protocol`), schedules them across a
persistent supervised worker pool, and streams results back as cells
complete.  Four disciplines make "simulation as a service" more than a
socket in front of ``run_indexed``:

- **In-flight dedup.**  Cells are identified by the canonical memo key;
  N tenants asking for the same (workload, config, seed) share one
  execution, each receiving its own result event.  The dedup table spans
  pending *and* executing cells, so a burst of identical submits costs
  one cell of compute no matter how it interleaves with scheduling.

- **Memory-speed cache hits.**  A bounded LRU hot cache
  (:class:`repro.harness.diskcache.HotCache`) fronts the checksummed
  disk cache: a repeat cell is answered from the event loop without
  touching the pool, the disk, or pickle.  Disk hits are promoted into
  the hot layer on first touch.

- **Per-tenant fairness + backpressure.**  Every client owns a bounded
  send queue drained by its own writer task; fan-out of a completed cell
  rotates its starting client (round-robin), so one greedy tenant cannot
  starve the others' streams.  A client that stops draining its queue is
  *evicted*: a typed ``slow_consumer`` error is written best-effort and
  the connection closed — slow consumers shed load instead of wedging
  the server.

- **Determinism.**  Cells execute via the same cache-bypassing
  ``run_workload`` path as a serial ``compute_cell``, in worker processes
  with no shared state; the payload a tenant receives is byte-identical
  (through :func:`~repro.service.protocol.canonical_json`) to a serial
  run, whether the cell was computed cold, deduped, or served from
  either cache layer.  ``tests/test_service.py`` enforces this under
  concurrent duplicate submissions and mid-stream disconnects.

The worker pool is persistent (one ``ProcessPoolExecutor`` for the
server's lifetime, sized by :func:`repro.harness.default_workers`); a
broken pool is discarded and the affected batch re-routed through the
fault-tolerant supervisor (:func:`repro.harness.run_supervised`), which
rebuilds, retries, and quarantines exactly as batch sweeps do — the
service inherits the whole resilience ladder instead of reimplementing
it.
"""

from __future__ import annotations

import asyncio
import itertools
from collections import deque
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from ..harness import diskcache
from ..harness.parallel import default_workers
from ..harness.supervisor import SupervisorConfig, run_supervised
from ..obs import NULL_TRACER, Metrics, to_chrome_trace
from .protocol import (
    FRAME_LIMIT,
    PROTOCOL_VERSION,
    ProtocolError,
    ServiceCell,
    compute_service_cell,
    compute_service_cell_traced,
    encode,
    decode,
    payload_digest,
    result_payload,
    validate_cell,
)

#: ops the dispatcher understands.
_OPS = ("submit", "watch", "ping", "stats")


@dataclass
class _Waiter:
    """One tenant's claim on a cell: where to deliver, and under which
    client-visible ids."""

    client: "_Client"
    cell_id: str
    request_id: str
    source: str  # how this waiter's copy was satisfied: cold/dedup/...


@dataclass
class _Job:
    """One scheduled execution (1 cell, N waiters)."""

    cell: ServiceCell
    key: tuple
    waiters: list[_Waiter] = field(default_factory=list)


class _Client:
    """Per-connection state: send queue, writer task, id bookkeeping."""

    def __init__(self, cid: int, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter, queue_limit: int) -> None:
        self.cid = cid
        self.reader = reader
        self.writer = writer
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=queue_limit)
        self.writer_task: asyncio.Task | None = None
        self.used_ids: set[str] = set()
        self.request_seq = itertools.count(1)
        self.cell_seq = itertools.count(1)
        #: request id -> undelivered cell count (for the ``done`` event).
        self.open_requests: dict[str, int] = {}
        self.watching = False
        self.evicted = False


class SweepServer:
    """A multi-tenant simulation server over asyncio streams.

    ``workers=None`` defers to :func:`repro.harness.default_workers`
    (the ``REPRO_WORKERS`` discipline shared with every other pool in
    the harness); ``disk_cache=None`` defers to ``REPRO_DISK_CACHE``
    exactly like batch sweeps.  ``port=0`` binds an ephemeral port
    (returned by :meth:`start`) — the in-process form the tests and the
    benchmark use.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        workers: int | None = None,
        batch_max: int = 8,
        queue_limit: int = 256,
        hot_cache: diskcache.HotCache | None = None,
        disk_cache: bool | None = None,
        supervisor: SupervisorConfig | None = None,
        tracer=NULL_TRACER,
    ) -> None:
        self.host = host
        self.port = port
        self.workers = default_workers() if workers is None else max(1, workers)
        self.batch_max = max(1, batch_max)
        self.queue_limit = max(1, queue_limit)
        self.hot = hot_cache if hot_cache is not None else diskcache.HotCache()
        self.disk = diskcache.enabled(disk_cache)
        self.supervisor = supervisor or SupervisorConfig(workers=self.workers)
        self.tracer = tracer
        self.metrics = Metrics()

        self._server: asyncio.AbstractServer | None = None
        self._clients: dict[int, _Client] = {}
        self._conn_tasks: set[asyncio.Task] = set()
        self._next_cid = itertools.count(1)
        self._pending: deque[_Job] = deque()
        self._inflight: dict[tuple, _Job] = {}
        self._wake = asyncio.Event()
        self._scheduler_task: asyncio.Task | None = None
        #: the scheduler's thread (batches block it, never the loop).
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="sweep-batch")
        self._pool: ProcessPoolExecutor | None = None
        #: round-robin rotation for fan-out fairness.
        self._rr = 0
        #: deterministic event sequence for service trace timestamps.
        self._seq = 0
        self.served = 0
        self.executions = 0

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the (host, port) actually bound."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port, limit=FRAME_LIMIT)
        self.host, self.port = self._server.sockets[0].getsockname()[:2]
        self._scheduler_task = asyncio.ensure_future(self._scheduler())
        return self.host, self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting, drop clients, and tear the pool down."""
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
            try:
                await self._scheduler_task
            except BaseException:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for client in list(self._clients.values()):
            self._drop_client(client)
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        self._discard_pool()
        self._executor.shutdown(wait=False, cancel_futures=True)

    async def __aenter__(self) -> "SweepServer":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    def _tick(self) -> int:
        self._seq += 1
        return self._seq

    # -- counters ----------------------------------------------------------
    def counters(self) -> dict:
        """JSON-safe server stats: service counters + cache counters."""
        return {
            "clients": len(self._clients),
            "served": self.served,
            "executions": self.executions,
            "dedup_hits": self.metrics.counter("service.dedup_hits"),
            "evictions": self.metrics.counter("service.evictions"),
            "pending": len(self._pending),
            "inflight": len(self._inflight),
            "workers": self.workers,
            "disk_cache": self.disk,
            "cache": self.hot.counters(),
        }

    # -- connection handling -----------------------------------------------
    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        client = _Client(next(self._next_cid), reader, writer,
                         self.queue_limit)
        self._clients[client.cid] = client
        client.writer_task = asyncio.ensure_future(self._drain(client))
        self._enqueue(client, {
            "event": "hello", "server": "repro-sweep-server",
            "version": PROTOCOL_VERSION, "client": client.cid,
        })
        try:
            while not client.evicted:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    self._enqueue(client, ProtocolError(
                        "bad_request", "frame exceeds the line limit").event())
                    break
                except (ConnectionError, OSError):
                    break
                if not line:
                    break
                try:
                    message = decode(line)
                except ProtocolError as exc:
                    self._enqueue(client, exc.event())
                    continue
                try:
                    self._dispatch(client, message)
                except ProtocolError as exc:
                    extra = {}
                    if isinstance(message.get("id"), str):
                        extra["id"] = message["id"]
                    self._enqueue(client, exc.event(**extra))
        except asyncio.CancelledError:
            # server shutdown: end the task *uncancelled* so 3.11's
            # stream-protocol completion callback doesn't re-raise into
            # the event loop.
            pass
        finally:
            self._drop_client(client)

    def _drop_client(self, client: _Client) -> None:
        """Forget a client; its pending cells keep computing (dedup peers
        may be waiting on them) but deliveries to it are skipped."""
        self._clients.pop(client.cid, None)
        if client.writer_task is not None:
            client.writer_task.cancel()
        try:
            client.writer.close()
        except Exception:
            pass

    def _evict(self, client: _Client, reason: str) -> None:
        """Disconnect a slow consumer with a typed error (best-effort
        direct write — its queue is, by definition, full)."""
        if client.evicted:
            return
        client.evicted = True
        self.metrics.inc("service.evictions")
        if self.tracer.enabled:
            self.tracer.client_evicted(self._tick(), client.cid, reason=reason)
        try:
            client.writer.write(encode(
                ProtocolError("slow_consumer",
                              f"send queue overflowed ({reason})").event()))
        except Exception:
            pass
        self._drop_client(client)

    def _enqueue(self, client: _Client, message: dict) -> None:
        """Queue one event for a client; overflow evicts the client."""
        if client.evicted or client.cid not in self._clients:
            return
        try:
            client.queue.put_nowait(message)
        except asyncio.QueueFull:
            self._evict(client, f"{self.queue_limit} events queued")

    async def _drain(self, client: _Client) -> None:
        """The client's writer task: its queue → its socket, in order."""
        try:
            while True:
                message = await client.queue.get()
                client.writer.write(encode(message))
                await client.writer.drain()
        except (asyncio.CancelledError, ConnectionError, OSError):
            pass

    # -- request dispatch --------------------------------------------------
    def _dispatch(self, client: _Client, message: dict) -> None:
        op = message.get("op")
        if op not in _OPS:
            raise ProtocolError("unknown_op",
                                f"unknown op {op!r}; expected one of {_OPS}")
        echo = ({"id": message["id"]}
                if isinstance(message.get("id"), str) else {})
        if op == "ping":
            self._enqueue(client, {"event": "pong", **echo})
        elif op == "stats":
            self._enqueue(client, {"event": "stats",
                                   "counters": self.counters(), **echo})
        elif op == "watch":
            client.watching = True
            self._enqueue(client, {"event": "watching", **echo})
        elif op == "submit":
            self._submit(client, message)

    def _request_id(self, client: _Client, message: dict) -> str:
        """Client-chosen id if fresh, else a deterministic server id
        (``r<n>`` in per-connection acceptance order)."""
        request_id = message.get("id")
        if request_id is None:
            request_id = f"r{next(client.request_seq)}"
        elif not isinstance(request_id, str) or not request_id:
            raise ProtocolError("bad_request",
                                "id must be a non-empty string")
        if request_id in client.used_ids:
            raise ProtocolError(
                "duplicate_id",
                f"request id {request_id!r} was already used on this "
                f"connection")
        return request_id

    def _submit(self, client: _Client, message: dict) -> None:
        specs = message.get("cells")
        if not isinstance(specs, list) or not specs:
            raise ProtocolError("bad_request",
                                "submit needs a non-empty cells list")
        request_id = self._request_id(client, message)
        # validate everything before scheduling anything: a submit is
        # accepted atomically or rejected atomically.
        cells = [validate_cell(spec, index)
                 for index, spec in enumerate(specs)]
        client.used_ids.add(request_id)
        cell_ids = [f"c{client.cid}-{next(client.cell_seq)}" for _ in cells]
        client.open_requests[request_id] = len(cells)
        self._enqueue(client, {"event": "accepted", "id": request_id,
                               "cells": cell_ids})
        if self.tracer.enabled:
            self.tracer.request_accepted(
                self._tick(), client.cid, request=request_id,
                cells=len(cells))
        self.metrics.inc("service.requests")
        for cell, cell_id in zip(cells, cell_ids):
            self._schedule(client, cell, cell_id, request_id)

    def _schedule(self, client: _Client, cell: ServiceCell, cell_id: str,
                  request_id: str) -> None:
        key = cell.key()
        if not cell.trace:
            # cache ladder: hot LRU, then (if enabled) the disk cache.
            result, source = self.hot.get(key, disk=self.disk)
            if result is not None:
                self.metrics.inc(f"service.{source}_served")
                self._deliver(
                    _Waiter(client, cell_id, request_id, source),
                    result_payload(result))
                if self.tracer.enabled:
                    self.tracer.cell_served(self._tick(), key=repr(key),
                                            source=source, waiters=1)
                return
        waiter = _Waiter(client, cell_id, request_id, "cold")
        job = self._inflight.get(key)
        if job is not None:
            # in-flight dedup: attach to the existing execution.
            waiter.source = "dedup"
            job.waiters.append(waiter)
            self.metrics.inc("service.dedup_hits")
            if self.tracer.enabled:
                self.tracer.cell_dedup(self._tick(), client.cid,
                                       key=repr(key),
                                       waiters=len(job.waiters))
            return
        job = _Job(cell=cell, key=key, waiters=[waiter])
        self._inflight[key] = job
        self._pending.append(job)
        self._wake.set()

    # -- delivery ----------------------------------------------------------
    def _deliver(self, waiter: _Waiter, payload: dict | None,
                 error: str | None = None, trace: dict | None = None) -> None:
        client = waiter.client
        if client.cid not in self._clients:
            return
        if error is not None:
            self._enqueue(client, ProtocolError("compute_failed", error)
                          .event(cell=waiter.cell_id, request=waiter.request_id))
        else:
            self.served += 1
            self._enqueue(client, {
                "event": "result",
                "cell": waiter.cell_id,
                "request": waiter.request_id,
                "source": waiter.source,
                "digest": payload_digest(payload),
                "payload": payload,
            })
            if trace is not None:
                self._enqueue(client, {
                    "event": "trace", "cell": waiter.cell_id,
                    "request": waiter.request_id, "trace": trace,
                })
        remaining = client.open_requests.get(waiter.request_id)
        if remaining is not None:
            remaining -= 1
            if remaining <= 0:
                client.open_requests.pop(waiter.request_id, None)
                self._enqueue(client, {"event": "done",
                                       "id": waiter.request_id})
            else:
                client.open_requests[waiter.request_id] = remaining

    def _finish(self, job: _Job, outcome: tuple) -> None:
        """Deliver one completed job to every waiter, round-robin."""
        self._inflight.pop(job.key, None)
        status, detail = outcome[0], outcome[1]
        payload = None
        trace_doc = None
        error = None
        if status == "ok":
            result, traced = detail
            if not job.cell.trace:
                self.hot.put(job.key, result, disk=self.disk)
            payload = result_payload(result)
            if traced is not None:
                events, truncated = traced
                trace_doc = to_chrome_trace(events, truncated=truncated)
        else:
            error = detail
            self.metrics.inc("service.compute_failures")
        if self.tracer.enabled:
            self.tracer.cell_served(
                self._tick(), key=repr(job.key),
                source="cold" if error is None else "failed",
                waiters=len(job.waiters))
        # rotate the fan-out start so no client is always served first.
        waiters = job.waiters
        if len(waiters) > 1:
            start = self._rr % len(waiters)
            self._rr += 1
            waiters = waiters[start:] + waiters[:start]
        for waiter in waiters:
            self._deliver(waiter, payload, error=error, trace=trace_doc)

    def _broadcast_progress(self) -> None:
        if not any(c.watching for c in self._clients.values()):
            return
        event = {"event": "progress", "pending": len(self._pending),
                 "inflight": len(self._inflight), "served": self.served,
                 "executions": self.executions}
        for client in list(self._clients.values()):
            if client.watching:
                self._enqueue(client, event)

    # -- scheduling core ---------------------------------------------------
    async def _scheduler(self) -> None:
        """Batch pending cells and run them off-loop, one batch at a time
        (each batch is itself parallel across the worker pool)."""
        loop = asyncio.get_running_loop()
        while True:
            await self._wake.wait()
            self._wake.clear()
            while self._pending:
                batch = [self._pending.popleft()
                         for _ in range(min(self.batch_max,
                                            len(self._pending)))]
                self._broadcast_progress()
                outcomes = await loop.run_in_executor(
                    self._executor, self._compute_batch,
                    [job.cell for job in batch])
                self.executions += len(batch)
                self.metrics.inc("service.cells_computed", len(batch))
                for job, outcome in zip(batch, outcomes):
                    self._finish(job, outcome)
                self._broadcast_progress()

    # -- batch execution (runs in the executor thread) ---------------------
    def _get_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return self._pool

    def _discard_pool(self) -> None:
        if self._pool is not None:
            try:
                self._pool.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
            self._pool = None

    def _compute_batch(self, cells: list[ServiceCell]) -> list[tuple]:
        """One batch → one outcome per cell:
        ``("ok", (result, events|None))`` or ``("failed", message)``."""
        outcomes: list[tuple] = [None] * len(cells)  # type: ignore[list-item]
        plain = [(i, c) for i, c in enumerate(cells) if not c.trace]
        traced = [(i, c) for i, c in enumerate(cells) if c.trace]
        if plain:
            for (index, _cell), outcome in zip(
                    plain, self._compute_plain([c for _i, c in plain])):
                outcomes[index] = outcome
        # traced cells run in-thread: the tracer rides back with the
        # result either way, and trace requests are rare debug traffic.
        for index, cell in traced:
            try:
                _key, result, events, truncated = (
                    compute_service_cell_traced(cell))
                outcomes[index] = ("ok", (result, (events, truncated)))
            except Exception as exc:  # noqa: BLE001 - typed error to tenant
                outcomes[index] = ("failed", repr(exc))
        return outcomes

    def _compute_plain(self, cells: list[ServiceCell]) -> list[tuple]:
        """Fast path: the persistent pool, submission-order drain (the
        ``run_indexed`` discipline).  A broken pool falls back to the
        fault-tolerant supervisor for this batch — retries, rebuilds,
        and quarantine included — then a fresh pool serves the next one."""
        if self.workers <= 1:
            outcomes = []
            for cell in cells:
                try:
                    _key, result = compute_service_cell(cell)
                    outcomes.append(("ok", (result, None)))
                except Exception as exc:  # noqa: BLE001
                    outcomes.append(("failed", repr(exc)))
            return outcomes
        try:
            futures = [self._get_pool().submit(compute_service_cell, cell)
                       for cell in cells]
            outcomes = []
            for future in futures:
                try:
                    _key, result = future.result()
                    outcomes.append(("ok", (result, None)))
                except BrokenProcessPool:
                    raise
                except Exception as exc:  # noqa: BLE001
                    outcomes.append(("failed", repr(exc)))
            return outcomes
        except BrokenProcessPool:
            self._discard_pool()
            self.metrics.inc("service.pool_rebuilds")
            sweep = run_supervised(cells, compute_service_cell,
                                   config=self.supervisor)
            failed = {failure.index: failure for failure in sweep.failures}
            outcomes = []
            for index, pair in enumerate(sweep.results):
                if index in failed:
                    failure = failed[index]
                    outcomes.append(
                        ("failed", f"{failure.kind}: {failure.error}"))
                elif pair is None:
                    outcomes.append(("failed", "lost cell"))
                else:
                    outcomes.append(("ok", (pair[1], None)))
            return outcomes
