"""Wire protocol for the sweep server: newline-delimited JSON.

One message per line, UTF-8 JSON, ``\\n``-terminated — trivially
streamable over asyncio streams, greppable in a packet capture, and
speakable from ``netcat``.  Client→server messages carry an ``"op"``
(``submit`` / ``watch`` / ``ping`` / ``stats``); server→client messages
carry an ``"event"`` (``hello`` / ``accepted`` / ``result`` / ``trace``
/ ``progress`` / ``error`` / ``pong`` / ``stats`` / ``done``).

The experiment vocabulary is exactly the harness's: a cell is a
(workload, compiler, hardware, seed, flags) tuple validated against the
same registries the parallel runner resolves
(:data:`repro.harness.parallel.COMPILER_CONFIGS`, the
:mod:`repro.hw.config` hardware table including the HTM variants, and
the workload registry), and its identity is the canonical
:func:`repro.harness.experiment.memo_key` — so the server, the disk
cache, and a serial ``compute_cell`` can never disagree about what a
cell *is*.  ``seed`` maps to :meth:`repro.faults.FaultPlan.seeded`
exactly as the chaos harness's default does, which is what makes a
"seed matrix of figure cells" servable.

Determinism contract: :func:`result_payload` is the *one* projection of
a :class:`~repro.harness.experiment.RunResult` onto the wire, and
:func:`canonical_json` the one byte encoding (sorted keys, compact
separators) — served bytes are comparable ``==`` against a serial run
pushed through the same two functions.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from ..faults import FaultPlan
from ..harness import experiment
from ..harness.parallel import COMPILER_CONFIGS, HARDWARE_CONFIGS
from ..hw.config import htm_variant_configs
from ..workloads import get_workload, workload_names

#: protocol version spoken in the hello event.
PROTOCOL_VERSION = 1

#: per-frame byte limit for both stream directions.  Far above any
#: control frame, but a served Chrome trace is one frame too and a
#: traced workload easily emits megabytes — asyncio's default 64 KiB
#: readline limit would kill the client pump mid-stream.
FRAME_LIMIT = 1 << 26

#: typed error codes (the full closed set a client must handle).
ERROR_CODES = (
    "bad_json",        # the line was not a JSON object
    "bad_request",     # structurally invalid op/fields
    "unknown_op",      # op not in the vocabulary
    "unknown_workload",
    "unknown_compiler",
    "unknown_hardware",
    "duplicate_id",    # request id reused on this connection
    "slow_consumer",   # evicted: the client stopped draining its queue
    "compute_failed",  # the cell itself raised/quarantined server-side
)

#: hardware table the service validates against: the figure configs plus
#: every best-effort HTM variant (all resolved from repro.hw.config).
SERVICE_HARDWARE = dict(HARDWARE_CONFIGS)
for _hw in htm_variant_configs():
    SERVICE_HARDWARE.setdefault(_hw.name, _hw)

_DISPATCH_MODES = ("auto", "interpretive", "fast", "predecoded", "jit")

_CELL_FIELDS = frozenset((
    "workload", "compiler", "hardware", "seed", "timing",
    "force_monomorphic", "adaptive", "dispatch", "trace",
))


class ProtocolError(Exception):
    """A typed protocol violation: ``code`` is one of :data:`ERROR_CODES`."""

    def __init__(self, code: str, detail: str) -> None:
        assert code in ERROR_CODES, code
        super().__init__(detail)
        self.code = code
        self.detail = detail

    def event(self, **extra) -> dict:
        """The error event a server sends for this violation."""
        return {"event": "error", "code": self.code,
                "detail": self.detail, **extra}


# -- framing -------------------------------------------------------------------

def encode(message: dict) -> bytes:
    """One wire frame: compact JSON + newline."""
    return (json.dumps(message, separators=(",", ":"), sort_keys=True)
            + "\n").encode("utf-8")


def decode(line: bytes) -> dict:
    """Parse one frame; raises :class:`ProtocolError` on garbage."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("bad_json", f"undecodable frame: {exc}") from None
    if not isinstance(message, dict):
        raise ProtocolError(
            "bad_json", f"frame must be a JSON object, got {type(message).__name__}"
        )
    return message


# -- cells ---------------------------------------------------------------------

@dataclass(frozen=True)
class ServiceCell:
    """One servable experiment cell (picklable; resolved by name in the
    worker, exactly like :class:`repro.harness.parallel.Cell`)."""

    workload: str
    compiler: str
    hardware: str = "4wide"
    seed: int | None = None
    timing: bool = True
    force_monomorphic: bool = False
    adaptive: bool = False
    dispatch: str = "auto"
    trace: bool = False

    def plan(self) -> FaultPlan | None:
        """``seed`` → the chaos harness's default seeded fault schedule."""
        return None if self.seed is None else FaultPlan.seeded(self.seed)

    def key(self) -> tuple:
        """The canonical cell identity (memo key + the trace flag —
        traced executions never alias untraced cached ones)."""
        return experiment.memo_key(
            self.workload, self.compiler, self.hardware, self.timing,
            self.force_monomorphic, self.adaptive, fault_plan=self.plan(),
            dispatch=self.dispatch,
        ) + (("traced",) if self.trace else ())

    def spec(self) -> dict:
        """The wire form (round-trips through :func:`validate_cell`)."""
        out = {"workload": self.workload, "compiler": self.compiler,
               "hardware": self.hardware}
        if self.seed is not None:
            out["seed"] = self.seed
        if not self.timing:
            out["timing"] = False
        if self.force_monomorphic:
            out["force_monomorphic"] = True
        if self.adaptive:
            out["adaptive"] = True
        if self.dispatch != "auto":
            out["dispatch"] = self.dispatch
        if self.trace:
            out["trace"] = True
        return out


def validate_cell(spec, index: int = 0) -> ServiceCell:
    """A :class:`ServiceCell` from one wire spec, or a typed error.

    Validation is total: unknown fields, wrong types, and names missing
    from the workload/compiler/hardware registries each raise the
    matching :class:`ProtocolError` *before* anything is scheduled, so a
    bad submit can never occupy worker capacity.
    """
    where = f"cells[{index}]"
    if not isinstance(spec, dict):
        raise ProtocolError("bad_request", f"{where} must be an object")
    unknown = set(spec) - _CELL_FIELDS
    if unknown:
        raise ProtocolError(
            "bad_request", f"{where} has unknown fields {sorted(unknown)}")
    for required in ("workload", "compiler"):
        if not isinstance(spec.get(required), str):
            raise ProtocolError(
                "bad_request", f"{where} needs a string {required!r}")
    workload = spec["workload"]
    if workload not in workload_names():
        raise ProtocolError(
            "unknown_workload",
            f"{where}: no workload {workload!r}; "
            f"available: {sorted(workload_names())}")
    compiler = spec["compiler"]
    if compiler not in COMPILER_CONFIGS:
        raise ProtocolError(
            "unknown_compiler",
            f"{where}: no compiler config {compiler!r}; "
            f"available: {sorted(COMPILER_CONFIGS)}")
    hardware = spec.get("hardware", "4wide")
    if hardware not in SERVICE_HARDWARE:
        raise ProtocolError(
            "unknown_hardware",
            f"{where}: no hardware config {hardware!r}; "
            f"available: {sorted(SERVICE_HARDWARE)}")
    seed = spec.get("seed")
    if seed is not None and (isinstance(seed, bool) or not isinstance(seed, int)):
        raise ProtocolError("bad_request", f"{where}: seed must be an int")
    dispatch = spec.get("dispatch", "auto")
    if dispatch not in _DISPATCH_MODES:
        raise ProtocolError(
            "bad_request",
            f"{where}: dispatch must be one of {_DISPATCH_MODES}")
    for flag in ("timing", "force_monomorphic", "adaptive", "trace"):
        if not isinstance(spec.get(flag, False), bool):
            raise ProtocolError("bad_request", f"{where}: {flag} must be a bool")
    return ServiceCell(
        workload=workload, compiler=compiler, hardware=hardware, seed=seed,
        timing=spec.get("timing", True),
        force_monomorphic=spec.get("force_monomorphic", False),
        adaptive=spec.get("adaptive", False),
        dispatch=dispatch, trace=spec.get("trace", False),
    )


# -- execution (worker entry points; must be module-level picklables) ----------

def compute_service_cell(cell: ServiceCell):
    """Worker entry: run one cell exactly as a serial ``compute_cell``
    would (cache-bypassing ``run_workload``); returns (key, result)."""
    result = experiment.run_workload(
        get_workload(cell.workload),
        COMPILER_CONFIGS[cell.compiler],
        SERVICE_HARDWARE[cell.hardware],
        timing=cell.timing,
        force_monomorphic=cell.force_monomorphic,
        adaptive=cell.adaptive,
        fault_plan=cell.plan(),
        dispatch=cell.dispatch,
        use_cache=False,
    )
    return cell.key(), result


def compute_service_cell_traced(cell: ServiceCell):
    """Worker entry for ``trace=True`` cells: same execution with a live
    region-lifecycle tracer; returns (key, result, events, truncated)."""
    from ..obs import Tracer

    tracer = Tracer()
    result = experiment.run_workload(
        get_workload(cell.workload),
        COMPILER_CONFIGS[cell.compiler],
        SERVICE_HARDWARE[cell.hardware],
        timing=cell.timing,
        force_monomorphic=cell.force_monomorphic,
        adaptive=cell.adaptive,
        fault_plan=cell.plan(),
        dispatch=cell.dispatch,
        use_cache=False,
        tracer=tracer,
    )
    return cell.key(), result, tracer.events, tracer.truncated


# -- result projection ---------------------------------------------------------

def _jsonify(value):
    """JSON-safe deep copy with a *stable* shape (tuples become lists
    eagerly, so in-memory and round-tripped payloads compare equal)."""
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonify(item) for key, item in value.items()}
    return value


def result_payload(result) -> dict:
    """The canonical wire projection of one
    :class:`~repro.harness.experiment.RunResult`: per-sample stats
    summaries and guest outcomes, plus the figure-row aggregates the
    report drivers consume.  Every served result — cold, deduped, hot,
    disk — flows through this one function, as does the serial reference
    in the determinism tests."""
    return {
        "workload": result.workload,
        "compiler": result.compiler,
        "hardware": result.hardware,
        "samples": [
            {
                "weight": sample.weight,
                "stats": _jsonify(sample.stats.summary()),
                "guest_results": _jsonify(sample.guest_results),
                "compiled_methods": sample.compiled_methods,
                "recompilations": sample.recompilations,
            }
            for sample in result.samples
        ],
        "figure_row": {
            "cycles": result.cycles,
            "uops": result.uops,
            "coverage": result.coverage,
            "unique_regions": result.unique_regions,
            "mean_region_size": result.mean_region_size,
            "abort_pct": result.abort_pct,
            "aborts_per_kuop": result.aborts_per_kuop,
        },
    }


def canonical_json(payload: dict) -> bytes:
    """The one byte-encoding of a payload (sorted keys, compact)."""
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def payload_digest(payload: dict) -> str:
    """sha256 over :func:`canonical_json` — the wire-level identity a
    client can compare against a local serial run without shipping the
    full payload back."""
    return hashlib.sha256(canonical_json(payload)).hexdigest()
