"""CLI for the sweep service: serve / submit / watch / smoke.

::

    # a long-running server (ephemeral port unless --port given)
    python -m repro.service serve --port 7781 --workers 4 --disk-cache

    # submit cells from another terminal and print their digests
    python -m repro.service submit --port 7781 hsqldb:atomic xalan:no-atomic

    # follow progress broadcasts
    python -m repro.service watch --port 7781

    # the CI smoke: N concurrent clients sweep the same cells, every
    # served payload is compared byte-for-byte against a local serial
    # compute_cell run; exit code is the verdict.
    python -m repro.service smoke --port 7781 --clients 3

Cell syntax for submit/smoke: ``workload:compiler[:hardware[:seed]]``
(e.g. ``hsqldb:atomic+aggr-inline:4wide:3``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys

from .client import SweepClient
from .protocol import (
    ServiceCell,
    canonical_json,
    compute_service_cell,
    result_payload,
)
from .server import SweepServer

#: the default smoke matrix: fast cells, two compilers, one seeded.
DEFAULT_SMOKE_CELLS = ("hsqldb:atomic", "hsqldb:no-atomic",
                       "xalan:atomic+aggr-inline", "hsqldb:atomic:4wide:3")


def parse_cell(text: str) -> ServiceCell:
    parts = text.split(":")
    if not 2 <= len(parts) <= 4:
        raise SystemExit(
            f"bad cell {text!r}: want workload:compiler[:hardware[:seed]]")
    workload, compiler = parts[0], parts[1]
    hardware = parts[2] if len(parts) > 2 and parts[2] else "4wide"
    seed = int(parts[3]) if len(parts) > 3 else None
    return ServiceCell(workload=workload, compiler=compiler,
                       hardware=hardware, seed=seed)


async def _serve(args) -> int:
    server = SweepServer(host=args.host, port=args.port,
                         workers=args.workers, disk_cache=args.disk_cache)
    host, port = await server.start()
    print(f"repro-sweep-server listening on {host}:{port}", flush=True)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.stop()
    return 0


async def _submit(args) -> int:
    cells = [parse_cell(text) for text in args.cells]
    async with await SweepClient.connect(args.host, args.port) as client:
        for event in await client.sweep(cells):
            print(f"{event['cell']}  source={event['source']:5s}  "
                  f"digest={event['digest']}")
    return 0


async def _watch(args) -> int:
    async with await SweepClient.connect(args.host, args.port) as client:
        print(f"watching {args.host}:{args.port} "
              f"(client {client.client_id}); ctrl-c to stop", flush=True)
        try:
            async for event in client.watch():
                print(json.dumps(event, sort_keys=True), flush=True)
        except asyncio.CancelledError:
            pass
    return 0


async def _smoke(args) -> int:
    """N concurrent tenants sweep the same cells; verify byte-identity
    against local serial runs and that dedup collapsed the executions."""
    cells = [parse_cell(text) for text in (args.cells or DEFAULT_SMOKE_CELLS)]

    async def one_client(index: int):
        async with await SweepClient.connect(args.host, args.port) as client:
            return index, await client.sweep(cells)

    sweeps = await asyncio.gather(
        *(one_client(index) for index in range(args.clients)))

    # the serial reference, through the same canonical projection.
    expected = []
    for cell in cells:
        _key, result = compute_service_cell(cell)
        expected.append(canonical_json(result_payload(result)))

    failures = 0
    for index, events in sweeps:
        for cell, event, reference in zip(cells, events, expected):
            served = canonical_json(event["payload"])
            verdict = "ok" if served == reference else "MISMATCH"
            if served != reference:
                failures += 1
            print(f"client {index}  {cell.workload}:{cell.compiler}"
                  f"{':' + str(cell.seed) if cell.seed is not None else ''}"
                  f"  source={event['source']:5s}  {verdict}")
    async with await SweepClient.connect(args.host, args.port) as client:
        counters = await client.stats()
    print(f"server counters: served={counters['served']} "
          f"executions={counters['executions']} "
          f"dedup={counters['dedup_hits']} "
          f"hot={counters['cache']['hot_hits']} "
          f"disk={counters['cache']['disk_hits']}")
    if failures:
        print(f"SMOKE FAILED: {failures} served payload(s) diverged from "
              f"serial compute_cell")
        return 1
    print(f"smoke ok: {args.clients} clients x {len(cells)} cells, all "
          f"byte-identical to serial")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.service",
                                     description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run a sweep server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0)
    serve.add_argument("--workers", type=int, default=None,
                       help="worker processes (default: REPRO_WORKERS)")
    serve.add_argument("--disk-cache", action="store_true", default=None,
                       help="enable the checksummed disk cache")

    submit = sub.add_parser("submit", help="submit cells, print digests")
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, required=True)
    submit.add_argument("cells", nargs="+",
                        help="workload:compiler[:hardware[:seed]]")

    watch = sub.add_parser("watch", help="stream progress broadcasts")
    watch.add_argument("--host", default="127.0.0.1")
    watch.add_argument("--port", type=int, required=True)

    smoke = sub.add_parser(
        "smoke", help="multi-client byte-identity smoke vs serial runs")
    smoke.add_argument("--host", default="127.0.0.1")
    smoke.add_argument("--port", type=int, required=True)
    smoke.add_argument("--clients", type=int, default=3)
    smoke.add_argument("--cells", nargs="*", default=None,
                       help="workload:compiler[:hardware[:seed]] "
                            "(default: the fast smoke matrix)")

    args = parser.parse_args(argv)
    handler = {"serve": _serve, "submit": _submit,
               "watch": _watch, "smoke": _smoke}[args.command]
    try:
        return asyncio.run(handler(args))
    except KeyboardInterrupt:
        return 130


if __name__ == "__main__":
    sys.exit(main())
