"""The tiered virtual machine: profiling interpreter + optimizing compiler
+ simulated hardware.

Execution starts in the tier-0 interpreter, which gathers the profiles the
tier-1 compiler consumes.  Methods whose invocation count crosses the
compile threshold are compiled (per the active :class:`CompilerConfig`) and
subsequently run on the simulated machine, including their atomic regions.

For deterministic experiments, the harness drives the tiers explicitly:
``warm_up`` interprets until profiles exist, ``compile_hot`` installs
machine code, ``start_measurement`` resets the statistics and the timing
model, and the measured calls then run on the final code, exactly like the
paper's marker-delimited samples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..faults import FaultInjector, FaultPlan
from ..hw.config import BASELINE_4WIDE, HardwareConfig
from ..hw.machine import Machine
from ..hw.stats import ExecStats
from ..hw.timing import INTERPRETER_CYCLES_PER_BYTECODE, TimingModel
from ..lang.bytecode import Method, Program
from ..lang.validate import validate_program
from ..obs.tracer import NULL_TRACER
from ..runtime.errors import VMError
from ..runtime.heap import Heap, Value
from ..runtime.interpreter import Interpreter
from ..runtime.profile import ProfileStore
from ..runtime.sched import DeterministicScheduler, SchedulePlan
from .compiler import CompilationRecord, CompilerConfig, NO_ATOMIC, compile_method


@dataclass
class VMOptions:
    compile_threshold: int = 10
    enable_timing: bool = True
    auto_compile: bool = True
    #: synthetic interrupt period in uops (None = no interrupts).
    interrupt_interval: int | None = None
    #: machine dispatch strategy: "auto" (the fastest observationally
    #: safe tier — template-jit when the hardware config's ``jit_mode``
    #: is "on", else pre-decoded), "jit", "predecoded", or
    #: "interpretive" (always the instrumented slow loop).  See
    #: :class:`repro.hw.machine.Machine`.
    dispatch: str = "auto"


class TieredVM:
    """One guest program + one compiler config + one hardware config."""

    def __init__(
        self,
        program: Program,
        compiler_config: CompilerConfig = NO_ATOMIC,
        hw_config: HardwareConfig = BASELINE_4WIDE,
        options: VMOptions | None = None,
        conflict_injector=None,
        fault_plan: FaultPlan | None = None,
        fault_injector: FaultInjector | None = None,
        validate: bool = True,
        tracer=None,
    ) -> None:
        if validate:
            validate_program(program)
        self.program = program
        self.compiler_config = compiler_config
        self.hw_config = hw_config
        self.options = options if options is not None else VMOptions()
        #: region-lifecycle tracer shared by the machine, the scheduler,
        #: the fault injector, and the adaptive controller.  Defaults to
        #: the null tracer: one attribute check, zero emission.
        self.tracer = tracer if tracer is not None else NULL_TRACER

        self.heap = Heap()
        self.profiles = ProfileStore()
        self.stats = ExecStats()
        self.timing = TimingModel(hw_config) if self.options.enable_timing else None
        self.interpreter = Interpreter(
            program, heap=self.heap, profiles=self.profiles, dispatcher=self
        )
        if fault_injector is not None and fault_plan is not None:
            raise VMError("pass either fault_plan or fault_injector, not both")
        if fault_injector is None and fault_plan is not None:
            fault_injector = FaultInjector(fault_plan)
        self.fault_injector = fault_injector
        if fault_injector is not None:
            if (conflict_injector is not None
                    or self.options.interrupt_interval is not None):
                raise VMError(
                    "legacy conflict_injector/interrupt_interval hooks "
                    "cannot be combined with a fault plan/injector"
                )
            self.machine = Machine(
                program,
                self.heap,
                config=hw_config,
                stats=self.stats,
                timing=self.timing,
                dispatcher=self,
                fault_injector=fault_injector,
                tracer=self.tracer,
                dispatch=self.options.dispatch,
            )
        else:
            self.machine = Machine(
                program,
                self.heap,
                config=hw_config,
                stats=self.stats,
                timing=self.timing,
                dispatcher=self,
                conflict_injector=conflict_injector,
                interrupt_interval=self.options.interrupt_interval,
                tracer=self.tracer,
                dispatch=self.options.dispatch,
            )
            self.fault_injector = self.machine.fault_injector
        self.compiled: dict[str, CompilationRecord] = {}
        #: per-method branch pcs barred from assert conversion (§7 adaptive).
        self.blocked_asserts: dict[str, set[int]] = {}
        self._measuring = False
        self._interp_bytecodes_at_start = 0
        self.compilations = 0

    # -- dispatch -----------------------------------------------------------
    def run(self, entry: str | None = None, args: list[Value] | None = None) -> Value:
        name = entry if entry is not None else self.program.entry
        if name is None:
            raise VMError("program has no entry point")
        method = self.program.resolve_static(name)
        return self.invoke(method, list(args or []))

    def invoke(self, method: Method, args: list[Value]) -> Value:
        qualified = method.qualified_name
        record = self.compiled.get(qualified)
        if record is not None:
            return self.machine.execute(record.compiled, args)
        if (
            self.options.auto_compile
            and self.profiles.method(qualified).invocations
            >= self.options.compile_threshold
        ):
            record = self.compile(method)
            return self.machine.execute(record.compiled, args)
        return self.interpreter.invoke(method, args)

    # -- compilation ---------------------------------------------------------
    def compile(self, method: Method) -> CompilationRecord:
        qualified = method.qualified_name
        blocked = frozenset(self.blocked_asserts.get(qualified, ()))
        record = compile_method(
            self.program, method, self.profiles, self.compiler_config,
            blocked_asserts=blocked,
        )
        previous = self.compiled.get(qualified)
        if previous is not None:
            # Forward-progress patches are durable decisions, not artifacts
            # of one code object: a region that exhausted its abort budget
            # must not resume speculating just because the method was
            # recompiled (adaptively or otherwise).  Carry every surviving
            # region's patch onto the new code.
            for region_id in sorted(previous.compiled.disabled_regions):
                if region_id in record.compiled.region_entries:
                    record.compiled.disable_region(region_id)
        self.compiled[qualified] = record
        # Build the machine's dispatch caches (pre-decode / template-jit
        # host compile) now, while we are still at compile time: the
        # first post-install activation is typically the first *measured*
        # call, and host-compilation cost must not land in the sample.
        self.machine.prepare(record.compiled)
        self.compilations += 1
        if self.tracer.enabled:
            # Tier transition: this method leaves the interpreter for the
            # machine (blocked_asserts > 0 marks an adaptive recompile).
            self.tracer.tier_compile(
                self.machine.uops_executed, qualified, len(blocked),
            )
        return record

    def compile_hot(self, min_invocations: int | None = None) -> list[str]:
        """Compile every sufficiently-invoked method; returns their names."""
        threshold = (
            min_invocations
            if min_invocations is not None
            else self.options.compile_threshold
        )
        names = []
        for method in self.program.all_methods():
            qualified = method.qualified_name
            if qualified in self.compiled:
                continue
            if qualified in self.profiles and (
                self.profiles.method(qualified).invocations >= threshold
            ):
                self.compile(method)
                names.append(qualified)
        return names

    def recompile(self, qualified: str, extra_blocked: set[int]) -> None:
        """Adaptive recompilation: bar the given branch pcs from asserts."""
        self.blocked_asserts.setdefault(qualified, set()).update(extra_blocked)
        method = self._find_method(qualified)
        self.compile(method)

    def _find_method(self, qualified: str) -> Method:
        for method in self.program.all_methods():
            if method.qualified_name == qualified:
                return method
        raise KeyError(qualified)

    # -- multi-threaded execution ---------------------------------------------
    def run_threads(
        self,
        calls: list,
        plan: SchedulePlan | None = None,
    ) -> DeterministicScheduler:
        """Run several guest calls as concurrently-scheduled guest threads.

        ``calls`` is a list of ``(entry, args)`` or ``(entry, args, name)``
        tuples; each becomes one guest thread invoking the named static
        method.  The threads are interleaved by a
        :class:`DeterministicScheduler` seeded from ``plan`` — at most one
        runs at any instant, at switch points drawn from the plan's PRNG, so
        the whole run replays bit-for-bit from the seed.  While attached,
        the scheduler doubles as the coherence fabric: committed stores are
        checked against in-flight atomic regions' read/write sets and
        genuine overlaps abort those regions with reason ``"conflict"``.

        Returns the scheduler: per-thread results/errors are on
        ``sched.threads`` and the interleaving on ``sched.trace``.  The
        first guest error (or a :class:`DeadlockError`) is re-raised after
        the wind-down.  Concurrency counters fold into :attr:`stats`.
        """
        sched = DeterministicScheduler(plan)
        sched.line_shift = self.hw_config.line_shift
        sched.tracer = self.tracer
        self.machine.sched = sched
        self.interpreter.sched = sched
        try:
            for index, call in enumerate(calls):
                entry, args = call[0], call[1]
                name = call[2] if len(call) > 2 else f"{entry}#{index}"
                method = self.program.resolve_static(entry)
                sched.spawn(
                    lambda m=method, a=list(args): self.invoke(m, list(a)),
                    name=name,
                )
            sched.run()
        finally:
            self.machine.sched = None
            self.interpreter.sched = None
            self.stats.context_switches += sched.context_switches
            self.stats.contended_acquisitions += sched.contended_acquisitions
            for thread in sched.threads:
                self.stats.uops_by_thread[thread.tid] += thread.steps
        return sched

    # -- measurement protocol ---------------------------------------------------
    def warm_up(self, entry: str, args_list: list[list[Value]]) -> None:
        """Interpret the workload to build profiles (no stats recorded).

        Auto-compilation is suspended: warm-up is a pure tier-0 profiling
        phase, so no method's profile is frozen mid-warm-up with only a
        handful of branch samples (which would misclassify warm edges as
        cold and create spurious asserts).
        """
        method = self.program.resolve_static(entry)
        previous = self.options.auto_compile
        self.options.auto_compile = False
        try:
            for args in args_list:
                self.interpreter.invoke(method, list(args))
        finally:
            self.options.auto_compile = previous

    def start_measurement(self) -> None:
        """Begin a timing sample: fresh statistics and timing state."""
        self.stats = ExecStats()
        self.machine.stats = self.stats
        if self.options.enable_timing:
            self.timing = TimingModel(self.hw_config)
            self.machine.timing = self.timing
        self._interp_bytecodes_at_start = self.interpreter.bytecodes_executed
        self._measuring = True

    def end_measurement(self) -> ExecStats:
        """Close the sample; interpreter work is charged to the cycle count."""
        interp_bytecodes = (
            self.interpreter.bytecodes_executed - self._interp_bytecodes_at_start
        )
        self.stats.interpreter_bytecodes = interp_bytecodes
        if self.timing is not None:
            self.timing.add_interpreter_cycles(interp_bytecodes)
            self.stats.cycles = self.timing.cycles
        else:
            self.stats.cycles = float(
                self.stats.uops_retired
                + interp_bytecodes * INTERPRETER_CYCLES_PER_BYTECODE
            )
        self._measuring = False
        return self.stats
