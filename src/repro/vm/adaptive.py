"""Adaptive recompilation on abort-rate feedback (paper §7).

"Maximizing the performance of atomic regions will require continuously
monitoring their abort rate, and adaptively recompiling methods when their
profiles change...  profiling is needed only when a region aborts and the
hardware reports which assertion is failing."

The controller samples the machine's abort-site counters (fed by the
hardware's abort-reason/abort-PC registers through each compiled method's
abort table), estimates per-method abort rates, and recompiles any method
whose regions abort above the threshold with the offending branches barred
from assert conversion.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .vm import TieredVM


@dataclass
class AdaptiveDecision:
    method: str
    blocked_pcs: set[int]
    observed_rate: float


@dataclass
class AdaptiveController:
    """Polls a VM's statistics and triggers recompilations."""

    vm: TieredVM
    #: recompile when a method's aborts/region-entries exceeds this (the
    #: paper: "an abort rate of even a few percent can have a significant
    #: impact").
    abort_rate_threshold: float = 0.02
    #: don't judge a method before this many of *its* region entries.
    min_region_entries: int = 50
    decisions: list[AdaptiveDecision] = field(default_factory=list)
    _seen_aborts: Counter = field(default_factory=Counter)
    _seen_entries: Counter = field(default_factory=Counter)

    def poll(self) -> list[AdaptiveDecision]:
        """Inspect abort counters; recompile offending methods.

        Rates are computed *per method* — fresh aborts over fresh region
        entries of that method's regions since the last decision — so one
        hot, well-behaved method cannot dilute another's abort storm below
        the threshold (and a quiet method is never recompiled because of a
        noisy neighbour).
        """
        stats = self.vm.stats
        sites_by_method: dict[str, Counter] = {}
        for (method_name, _rid, abort_id), count in stats.abort_sites.items():
            sites_by_method.setdefault(method_name, Counter())[abort_id] += count

        new_decisions = []
        for method_name, aborts in stats.aborts_by_method.items():
            entries = stats.entries_by_method.get(method_name, 0)
            fresh_aborts = aborts - self._seen_aborts[method_name]
            fresh_entries = entries - self._seen_entries[method_name]
            if fresh_aborts <= 0:
                continue
            if entries < self.min_region_entries:
                continue
            rate = fresh_aborts / max(fresh_entries, 1)
            if rate < self.abort_rate_threshold:
                continue
            record = self.vm.compiled.get(method_name)
            if record is None:
                continue
            blocked = set()
            for abort_id, count in sites_by_method.get(method_name, {}).items():
                site = record.compiled.abort_sites.get(abort_id)
                if site is not None and site[0] is not None:
                    blocked.add(site[0])
            if not blocked:
                continue
            self.vm.recompile(method_name, blocked)
            if self.vm.tracer.enabled:
                self.vm.tracer.adaptive_recompile(
                    self.vm.machine.uops_executed, method_name,
                    tuple(sorted(blocked)), rate,
                )
            decision = AdaptiveDecision(method_name, blocked, rate)
            self.decisions.append(decision)
            new_decisions.append(decision)
            self._seen_aborts[method_name] = aborts
            self._seen_entries[method_name] = entries
        return new_decisions
