"""Tiered VM: interpreter + optimizing compiler + simulated hardware."""

from .adaptive import AdaptiveController, AdaptiveDecision
from .compiler import (
    ATOMIC,
    ATOMIC_AGGRESSIVE,
    CompilationRecord,
    CompilerConfig,
    NO_ATOMIC,
    NO_ATOMIC_AGGRESSIVE,
    compile_method,
)
from .vm import TieredVM, VMOptions

__all__ = [
    "ATOMIC",
    "ATOMIC_AGGRESSIVE",
    "AdaptiveController",
    "AdaptiveDecision",
    "CompilationRecord",
    "CompilerConfig",
    "NO_ATOMIC",
    "NO_ATOMIC_AGGRESSIVE",
    "TieredVM",
    "VMOptions",
    "compile_method",
]
