"""The tier-1 optimizing compiler driver.

Assembles the full pipeline per compiler configuration:

- **no-atomic** (baseline): profile-guided inlining + the classical pass
  pipeline — "a baseline set of optimizations that corresponds closely to
  Harmony's default server configuration" (§6);
- **atomic**: the same passes plus atomic-region formation, partial
  inlining/unrolling (via formation), and SLE;
- either flavor **+aggressive inlining**: the inline threshold multiplied
  by five ("an unrealistically large inlining threshold (a factor of five
  larger than the baseline)", §6).

``blocked_asserts`` supports adaptive recompilation (§7): branch pcs listed
there are never converted to asserts, so a region whose profile turned
stale stops aborting after recompilation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..atomic import (
    FormationConfig,
    FormationResult,
    apply_sle,
    eliminate_postdominated_checks,
    form_regions,
)
from ..atomic.replicate import cold_edge_fn
from ..hw.codegen import generate_code
from ..hw.isa import CompiledMethod
from ..ir.build import build_ir
from ..ir.verify import verify_graph
from ..lang.bytecode import Method, Program
from ..opt.inline import InlineConfig, Inliner
from ..opt.pipeline import optimize
from ..runtime.profile import ProfileStore


@dataclass(frozen=True)
class CompilerConfig:
    """One compiler configuration (the paper's four evaluation points)."""

    name: str = "no-atomic"
    atomic: bool = False
    inline: InlineConfig = field(default_factory=InlineConfig)
    formation: FormationConfig = field(default_factory=FormationConfig)
    sle: bool = True
    postdom_checks: bool = False
    opt_rounds: int = 3
    verify: bool = False

    def with_aggressive_inlining(self) -> "CompilerConfig":
        return replace(
            self,
            name=self.name + "+aggr-inline",
            inline=replace(self.inline, aggressive=True),
        )


#: The paper's four configurations (Figures 7/8).
NO_ATOMIC = CompilerConfig(name="no-atomic", atomic=False)
ATOMIC = CompilerConfig(name="atomic", atomic=True)
NO_ATOMIC_AGGRESSIVE = NO_ATOMIC.with_aggressive_inlining()
ATOMIC_AGGRESSIVE = ATOMIC.with_aggressive_inlining()


@dataclass
class CompilationRecord:
    """Everything the VM wants to remember about one compilation."""

    compiled: CompiledMethod
    formation: FormationResult | None
    graph_nodes: int
    inlined: list[str]
    rejected_polymorphic: list[tuple[str, int]]


def compile_method(
    program: Program,
    method: Method,
    profiles: ProfileStore,
    config: CompilerConfig,
    blocked_asserts: frozenset[int] = frozenset(),
) -> CompilationRecord:
    """Compile one method to machine code under ``config``."""
    qualified = method.qualified_name
    profile = profiles.method(qualified) if qualified in profiles else None
    graph = build_ir(method, profile)

    inliner = Inliner(program, profiles, config.inline)
    inline_result = inliner.run(graph, method)

    formation_result: FormationResult | None = None
    if config.atomic:
        formation_config = config.formation
        if blocked_asserts:
            formation_config = _blocked_config(formation_config, blocked_asserts)
        formation_result = form_regions(graph, inline_result, formation_config)
        if config.verify:
            verify_graph(graph)

    optimize(graph, max_rounds=config.opt_rounds, verify=config.verify)

    if config.atomic and config.sle:
        if apply_sle(graph):
            optimize(graph, max_rounds=1, verify=config.verify)
    if config.atomic and config.postdom_checks:
        if eliminate_postdominated_checks(graph):
            optimize(graph, max_rounds=1, verify=config.verify)
    if config.verify:
        verify_graph(graph)

    compiled = generate_code(graph, uses_regions=config.atomic)
    return CompilationRecord(
        compiled=compiled,
        formation=formation_result,
        graph_nodes=graph.node_count(),
        inlined=[im.callee.qualified_name for im in inline_result.inlined],
        rejected_polymorphic=list(inline_result.rejected_polymorphic),
    )


def _blocked_config(base: FormationConfig, blocked: frozenset[int]) -> FormationConfig:
    """Derive a FormationConfig whose cold-edge test spares ``blocked`` pcs.

    Used by adaptive recompilation: an assert that fired too often maps back
    (through the hardware abort-PC register and the compiled method's abort
    table) to the bytecode pc of the branch it replaced; recompiling with
    that pc blocked keeps the branch — and its cold path — out of assert
    conversion.
    """
    return replace(base, blocked_assert_pcs=base.blocked_assert_pcs | blocked)
