"""Random straight-line uop programs for the dispatch-tier battery.

:mod:`repro.testutil.genprog` fuzzes whole guest programs through the
compiler; this module fuzzes the *machine* directly.  Each seed builds a
hand-crafted :class:`~repro.hw.isa.CompiledMethod` — a straight-line
sequence of the uops the template JIT fuses (ALU, typed memory,
spill/global traffic, allocation, lock probes, hardware traps),
optionally wrapped in an atomic region with a recovery path — plus a
deterministic seeded heap, and runs it on a fresh
:class:`~repro.hw.machine.Machine` under any dispatch tier.

The point is adversarial coverage of the fused templates' *bail* edges:
registers deliberately hold a soup of ints, nulls, objects, and arrays,
so generated operands routinely hit every deoptimization path (non-int
ALU operands, null/junk memory bases, out-of-bounds and non-int indexes,
reference comparisons, negative array lengths, division by zero, traps
inside and outside regions).  Whatever happens — a value, a guest trap,
a host ``VMError``/``TypeError`` from genuinely malformed code — every
tier must agree byte-for-byte on the outcome, the
``ExecStats.summary()``, and the heap fingerprint
(:func:`run_uop_case` returns all three; the battery in
``tests/test_templatejit.py`` compares them across tiers).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..hw.config import BASELINE_4WIDE, HardwareConfig
from ..hw.isa import CompiledMethod, MInstr, MOp
from ..hw.machine import Machine
from ..hw.stats import ExecStats
from ..hw.timing import TimingModel
from ..lang.bytecode import ClassDef, Program
from ..runtime.heap import Heap

__all__ = ["UopCase", "run_uop_case", "uop_case"]

#: the one guest class seeded heaps instantiate.
_CLASS = "Node"
_FIELDS = ("f0", "f1", "f2")

#: binary ALU uops the generator draws from.
_ALU = (MOp.ADD, MOp.SUB, MOp.MUL, MOp.DIV, MOp.MOD,
        MOp.AND, MOp.OR, MOp.XOR, MOp.SHL, MOp.SHR)

#: trap conditions (``uge`` excluded: real codegen only emits it on
#: known-int bounds checks, and on references it raises a host TypeError
#: from *inside* ``machine_compare`` rather than a modeled error).
_TRAP_CONDS = ("eq", "ne", "lt", "le", "gt", "ge")

_NUM_REGS = 12
_NUM_PARAMS = 6
_NUM_SPILL = 4


@dataclass
class UopCase:
    """One generated machine-level program plus its seeded-heap recipe."""

    seed: int
    compiled: CompiledMethod
    program: Program
    #: argument recipe: ("int", k) | ("null",) | ("obj", slot values) |
    #: ("arr", element values).  Replayed against a fresh heap per run so
    #: every tier sees identical objects at identical addresses.
    arg_specs: list = field(default_factory=list)

    def make_args(self, heap: Heap) -> list:
        args = []
        layout = self.program.field_layout(_CLASS)
        for spec in self.arg_specs:
            kind = spec[0]
            if kind == "int":
                args.append(spec[1])
            elif kind == "null":
                args.append(None)
            elif kind == "obj":
                obj = heap.new_object(_CLASS, layout)
                for slot, value in enumerate(spec[1]):
                    obj.slots[slot] = value
                args.append(obj)
            else:
                arr = heap.new_array(len(spec[1]))
                arr.values[:] = list(spec[1])
                args.append(arr)
        return args


def _base_program() -> Program:
    program = Program()
    program.add_class(ClassDef(name=_CLASS, fields=list(_FIELDS)))
    return program


def uop_case(seed: int, region_bias: float = 0.5) -> UopCase:
    """Generate one seeded straight-line case (deterministic per seed).

    ``region_bias`` is the probability the body runs inside an atomic
    region with a constant-returning recovery path.
    """
    rng = random.Random(seed)
    regs = range(_NUM_REGS)

    # Static type shadows.  Operand picks draw from the matching shadow
    # most of the time — a mistyped operand is usually *fatal* (host
    # TypeError/VMError or a guest trap), so the wildcard rate directly
    # sets expected program depth.  At 8% per operand most programs run
    # deep into the fused templates, while across a battery of seeds
    # every template's bail edge still fires many times.
    int_regs: set[int] = set()     # definitely holds an int
    small_regs: set[int] = set()   # definitely holds a small int
    tiny_regs: set[int] = set()    # definitely holds an int in 0..2
    obj_regs: set[int] = set()     # definitely holds a GuestObject
    arr_regs: set[int] = set()     # definitely holds a GuestArray

    # Always seed at least one object and one array: without them every
    # memory uop's typed pick degenerates to a (usually fatal) wildcard
    # and the whole program dies within a handful of uops.
    kinds = ["obj", "arr"] + [rng.choice(("int", "int", "obj", "arr", "null"))
                              for _ in range(_NUM_PARAMS - 2)]
    rng.shuffle(kinds)

    arg_specs = []
    for index, kind in enumerate(kinds):
        if kind == "int":
            value = rng.choice((0, 1, -1, 7, -(1 << 62), (1 << 62) + 11))
            arg_specs.append(("int", value))
            int_regs.add(index)
            if abs(value) <= 64:
                small_regs.add(index)
            if 0 <= value <= 2:
                tiny_regs.add(index)
        elif kind == "obj":
            arg_specs.append(("obj", [rng.randrange(-9, 9)
                                      for _ in _FIELDS]))
            obj_regs.add(index)
        elif kind == "arr":
            arg_specs.append(("arr", [rng.randrange(-9, 9)
                                      for _ in range(rng.randrange(1, 5))]))
            arr_regs.add(index)
        else:
            arg_specs.append(("null",))

    def wrote(reg: int) -> None:
        int_regs.discard(reg)
        small_regs.discard(reg)
        tiny_regs.discard(reg)
        obj_regs.discard(reg)
        arr_regs.discard(reg)

    def pick_from(pool: set[int]) -> int:
        if pool and rng.random() < 0.92:
            return rng.choice(sorted(pool))
        return rng.choice(regs)

    body: list[MInstr] = []

    def gen_uop() -> None:
        pick = rng.randrange(100)
        dst = rng.choice(regs)
        if pick < 12:
            imm = rng.choice((0, 1, 2, -3, 64, (1 << 63) - 1))
            body.append(MInstr(MOp.CONST, dst=dst, imm=imm))
            wrote(dst)
            int_regs.add(dst)
            if abs(imm) <= 64:
                small_regs.add(dst)
            if 0 <= imm <= 2:
                tiny_regs.add(dst)
        elif pick < 16:
            a = rng.choice(regs)
            body.append(MInstr(MOp.MOV, dst=dst, a=a))
            was = (a in int_regs, a in small_regs, a in tiny_regs,
                   a in obj_regs, a in arr_regs)
            wrote(dst)
            for member, pool in zip(
                    was,
                    (int_regs, small_regs, tiny_regs, obj_regs, arr_regs)):
                if member:
                    pool.add(dst)
        elif pick < 34:
            a, b = pick_from(int_regs), pick_from(int_regs)
            body.append(MInstr(rng.choice(_ALU), dst=dst, a=a, b=b))
            wrote(dst)
            if a in int_regs and b in int_regs:
                int_regs.add(dst)
        elif pick < 40:
            body.append(MInstr(MOp.LOADF, dst=dst, a=pick_from(obj_regs),
                               fieldname=rng.choice(_FIELDS)))
            wrote(dst)
        elif pick < 46:
            body.append(MInstr(MOp.STOREF, a=pick_from(obj_regs),
                               b=rng.choice(regs),
                               fieldname=rng.choice(_FIELDS)))
        elif pick < 52:
            body.append(MInstr(MOp.LOADA, dst=dst, a=pick_from(arr_regs),
                               b=pick_from(tiny_regs)))
            wrote(dst)
        elif pick < 58:
            body.append(MInstr(MOp.STOREA, a=pick_from(arr_regs),
                               b=pick_from(tiny_regs), c=rng.choice(regs)))
        elif pick < 62:
            body.append(MInstr(MOp.LOADLEN, dst=dst, a=pick_from(arr_regs)))
            wrote(dst)
            int_regs.add(dst)
            small_regs.add(dst)
        elif pick < 66:
            body.append(MInstr(MOp.LOADLOCK, dst=dst,
                               a=pick_from(obj_regs)))
            wrote(dst)
            int_regs.add(dst)
            small_regs.add(dst)
            tiny_regs.add(dst)
        elif pick < 70:
            body.append(MInstr(MOp.CLASSOF, dst=dst,
                               a=pick_from(obj_regs)))
            wrote(dst)
        elif pick < 75:
            body.append(MInstr(MOp.LOADSPILL, dst=dst,
                               imm=rng.randrange(_NUM_SPILL)))
            wrote(dst)
        elif pick < 80:
            body.append(MInstr(MOp.STORESPILL, a=rng.choice(regs),
                               imm=rng.randrange(_NUM_SPILL)))
        elif pick < 83:
            body.append(MInstr(MOp.LOADG, dst=dst,
                               imm=rng.choice((None, 0x7000 + 8 * dst))))
            wrote(dst)
            int_regs.add(dst)
            small_regs.add(dst)
            tiny_regs.add(dst)
        elif pick < 87:
            body.append(MInstr(MOp.NEWOBJ, dst=dst, cls=_CLASS))
            wrote(dst)
            obj_regs.add(dst)
        elif pick < 91:
            # Array length must come from a provably small register: a
            # wildcard pick could alias a 2**62 int and the host would
            # genuinely try to allocate it.
            if not tiny_regs:
                length_reg = rng.choice(regs)
                body.append(MInstr(MOp.CONST, dst=length_reg,
                                   imm=rng.randrange(3)))
                wrote(length_reg)
                int_regs.add(length_reg)
                small_regs.add(length_reg)
                tiny_regs.add(length_reg)
            else:
                length_reg = rng.choice(sorted(tiny_regs))
            body.append(MInstr(MOp.NEWARR, dst=dst, a=length_reg))
            wrote(dst)
            arr_regs.add(dst)
        elif pick < 95:
            body.append(MInstr(MOp.CONST_NULL, dst=dst))
            wrote(dst)
        else:
            a, b = pick_from(int_regs), pick_from(int_regs)
            body.append(MInstr(MOp.BR_TRAP, cond=rng.choice(_TRAP_CONDS),
                               a=a, b=None if rng.random() < 0.4 else b))

    for _ in range(rng.randrange(4, 40)):
        gen_uop()
    ret_reg = rng.choice(regs)
    regioned = rng.random() < region_bias

    instrs: list[MInstr] = []
    region_entries: dict[int, int] = {}
    if regioned:
        split = rng.randrange(len(body) + 1)
        instrs.extend(body[:split])
        begin_index = len(instrs)
        instrs.append(MInstr(MOp.AREGION_BEGIN, imm=1))
        region_entries[1] = begin_index
        instrs.extend(body[split:])
        instrs.append(MInstr(MOp.AREGION_END))
        instrs.append(MInstr(MOp.RET, a=ret_reg))
        # Recovery path: land here on any abort, return a sentinel.
        alt = len(instrs)
        instrs[begin_index].target = alt
        instrs.append(MInstr(MOp.CONST, dst=ret_reg,
                             imm=-(1000 + seed % 997)))
        instrs.append(MInstr(MOp.RET, a=ret_reg))
    else:
        instrs.extend(body)
        instrs.append(MInstr(MOp.RET, a=ret_reg))

    compiled = CompiledMethod(
        name=f"uopcase_{seed}",
        num_params=_NUM_PARAMS,
        instrs=instrs,
        num_regs=_NUM_REGS,
        num_spill_slots=_NUM_SPILL,
        region_entries=region_entries,
        uses_regions=regioned,
    )
    compiled.param_locations = tuple(  # type: ignore[attr-defined]
        ("r", index) for index in range(_NUM_PARAMS))
    return UopCase(seed=seed, compiled=compiled, program=_base_program(),
                   arg_specs=arg_specs)


def run_uop_case(case: UopCase, dispatch: str, timing: bool = False,
                 hw: HardwareConfig = BASELINE_4WIDE):
    """Run ``case`` on a fresh machine/heap under one dispatch tier.

    Returns ``(outcome, stats_summary, heap_fingerprint)`` where
    ``outcome`` is ``("value", v)`` or ``("raise", type, str)`` —
    generated programs legitimately produce guest traps *and* host-level
    ``VMError``/``TypeError`` for malformed operands, and the tiers must
    agree on those too.
    """
    heap = Heap()
    stats = ExecStats()
    machine = Machine(
        case.program, heap, config=hw, stats=stats,
        timing=TimingModel(hw) if timing else None, dispatch=dispatch,
    )
    args = case.make_args(heap)
    try:
        value = machine.execute(case.compiled, args)
        if not isinstance(value, (int, type(None))):
            # References are per-run host objects; their repr (class +
            # deterministic heap address) is the comparable identity.
            value = repr(value)
        outcome = ("value", value)
    except Exception as exc:  # noqa: BLE001 - the comparison IS the test
        outcome = ("raise", type(exc).__name__, str(exc))
    return outcome, stats.summary(), heap.fingerprint()
