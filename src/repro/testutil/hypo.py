"""Hypothesis settings profiles shared by the test and benchmark suites.

CI machines run the property suites under a bounded, derandomized profile
so the tier-1 wall-clock stays predictable and a red run is reproducible
from the log alone; local development gets a wider sweep.  Hypothesis is
an optional dependency — environments without it simply skip registration
(the property tests themselves then fail at import, which is the signal
to install it, but nothing else in the suite is affected).

Select explicitly with ``HYPOTHESIS_PROFILE=ci|dev``; otherwise the ``CI``
environment variable picks ``ci`` and everything else defaults to ``dev``.
"""

from __future__ import annotations

import os


def register_hypothesis_profiles() -> str | None:
    """Register and load the ``ci``/``dev`` profiles; returns the loaded
    profile name, or None when hypothesis is not installed."""
    try:
        from hypothesis import settings
    except ImportError:
        return None
    settings.register_profile(
        "ci", max_examples=25, deadline=None, derandomize=True,
    )
    settings.register_profile("dev", max_examples=100, deadline=None)
    profile = os.environ.get("HYPOTHESIS_PROFILE") or (
        "ci" if os.environ.get("CI") else "dev"
    )
    settings.load_profile(profile)
    return profile
