"""Testing utilities: random guest programs and differential execution."""

from .diff import (
    Outcome,
    assert_same_outcome,
    outcome_bytecode,
    outcome_ir,
    profiled,
)
from .genprog import GenConfig, ProgramGenerator, random_program
from .hypo import register_hypothesis_profiles

__all__ = [
    "GenConfig",
    "Outcome",
    "ProgramGenerator",
    "assert_same_outcome",
    "outcome_bytecode",
    "outcome_ir",
    "profiled",
    "random_program",
    "register_hypothesis_profiles",
]
