"""Testing utilities: random guest programs and differential execution."""

from .diff import (
    Outcome,
    assert_same_outcome,
    outcome_bytecode,
    outcome_ir,
    profiled,
)
from .genprog import GenConfig, ProgramGenerator, random_program
from .hypo import register_hypothesis_profiles
from .uopgen import UopCase, run_uop_case, uop_case

__all__ = [
    "GenConfig",
    "Outcome",
    "ProgramGenerator",
    "UopCase",
    "assert_same_outcome",
    "outcome_bytecode",
    "outcome_ir",
    "profiled",
    "random_program",
    "register_hypothesis_profiles",
    "run_uop_case",
    "uop_case",
]
