"""Differential execution: bytecode semantics vs. IR (optionally transformed).

``outcome_bytecode`` / ``outcome_ir`` run a program's ``main`` to an
:class:`Outcome` — the returned value, or the guest exception type — plus an
observable heap digest.  Equality of outcomes is the correctness oracle for
every compiler stage in this library.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..ir.build import build_ir
from ..ir.cfg import Graph
from ..ir.interp import IRExecutor
from ..ir.verify import verify_graph
from ..lang.bytecode import Method, Program
from ..runtime.errors import GuestError
from ..runtime.heap import GuestArray, GuestObject, Heap, Value
from ..runtime.interpreter import Interpreter
from ..runtime.profile import ProfileStore


@dataclass(frozen=True)
class Outcome:
    """Observable result of running a guest program."""

    value: object          # int / None / "<ref>" for reference returns
    error: str | None      # guest exception class name, if raised
    heap_digest: int       # order-insensitive digest of reachable heap ints

    @staticmethod
    def _digest_value(value: Value) -> object:
        if isinstance(value, (GuestObject, GuestArray)):
            return "<ref>"
        return value


def _heap_digest(roots: list[Value]) -> int:
    """Hash the integer contents of the heap reachable from ``roots``."""
    seen: set[int] = set()
    acc = 0
    stack = list(roots)
    while stack:
        value = stack.pop()
        if isinstance(value, GuestObject):
            if id(value) in seen:
                continue
            seen.add(id(value))
            for i, slot in enumerate(value.slots):
                if isinstance(slot, int):
                    acc = (acc * 1000003 + hash((value.class_name, i, slot))) & 0xFFFFFFFF
                else:
                    stack.append(slot)
        elif isinstance(value, GuestArray):
            if id(value) in seen:
                continue
            seen.add(id(value))
            for i, slot in enumerate(value.values):
                if isinstance(slot, int):
                    acc = (acc * 1000003 + hash(("arr", i, slot))) & 0xFFFFFFFF
                else:
                    stack.append(slot)
    return acc


def outcome_bytecode(
    program: Program,
    entry: str = "main",
    args: tuple = (),
    fuel: int = 5_000_000,
    profiles: ProfileStore | None = None,
) -> Outcome:
    """Run under the tier-0 interpreter; optionally collect profiles."""
    interp = Interpreter(program, profiles=profiles, fuel=fuel)
    try:
        value = interp.run(entry, list(args))
        error = None
    except GuestError as exc:
        value, error = None, type(exc).__name__
    digest = _heap_digest([value] if value is not None else [])
    return Outcome(Outcome._digest_value(value), error, digest)


class _InterpDispatcher:
    """Dispatch nested calls from the IR executor to the interpreter."""

    def __init__(self, program: Program, heap: Heap, fuel: int) -> None:
        self._interp = Interpreter(program, heap=heap, fuel=fuel)

    def invoke(self, method: Method, args: list[Value]) -> Value:
        return self._interp.invoke(method, args)


def outcome_ir(
    program: Program,
    entry: str = "main",
    args: tuple = (),
    transform: Callable[[Graph, Program], Graph | None] | None = None,
    fuel: int = 5_000_000,
    profiles: ProfileStore | None = None,
    verify: bool = True,
    check_regions: bool = True,
) -> tuple[Outcome, IRExecutor]:
    """Build IR for ``entry``, optionally transform it, execute, observe.

    ``transform`` receives ``(graph, program)`` and may mutate in place (and
    return None) or return a replacement graph.  When ``profiles`` is given,
    block counts and branch biases are attached to the IR, which profile-
    driven transforms (region formation) require.
    """
    method = program.resolve_static(entry)
    prof = profiles.method(method.qualified_name) if profiles is not None else None
    graph = build_ir(method, prof)
    if verify:
        verify_graph(graph, check_regions=check_regions)
    if transform is not None:
        try:
            transform.profiles = profiles  # convenience for test transforms
        except AttributeError:
            pass
        replacement = transform(graph, program)
        if replacement is not None:
            graph = replacement
        if verify:
            verify_graph(graph, check_regions=check_regions)

    heap = Heap()
    executor = IRExecutor(
        program,
        heap=heap,
        dispatcher=_InterpDispatcher(program, heap, fuel),
        fuel=fuel,
    )
    try:
        value = executor.run(graph, list(args))
        error = None
    except GuestError as exc:
        value, error = None, type(exc).__name__
    digest = _heap_digest([value] if value is not None else [])
    return Outcome(Outcome._digest_value(value), error, digest), executor


def assert_same_outcome(
    program: Program,
    transform: Callable[[Graph, Program], Graph | None] | None = None,
    entry: str = "main",
    args: tuple = (),
    profiles: ProfileStore | None = None,
    check_regions: bool = True,
) -> IRExecutor:
    """Oracle: transformed-IR execution must match bytecode execution."""
    expected = outcome_bytecode(program, entry, args)
    actual, executor = outcome_ir(
        program, entry, args, transform=transform, profiles=profiles,
        check_regions=check_regions,
    )
    if expected != actual:
        raise AssertionError(
            f"differential mismatch for {entry}{args}:\n"
            f"  bytecode: {expected}\n"
            f"  ir:       {actual}"
        )
    return executor


def profiled(program: Program, entry: str = "main", args: tuple = (),
             fuel: int = 5_000_000) -> ProfileStore:
    """Run once under the interpreter to gather profiles for a program."""
    profiles = ProfileStore()
    outcome_bytecode(program, entry, args, fuel=fuel, profiles=profiles)
    return profiles
