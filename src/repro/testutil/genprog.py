"""Seeded random guest-program generation for differential testing.

The optimizer in this library is validated the way production JIT teams
validate theirs: by generating random-but-terminating guest programs and
checking that every compiler stage — IR construction, each optimization
pass, atomic-region formation, code generation — preserves observable
behaviour (return value, guest exceptions, heap effects).

Programs are generated from a structured grammar so termination is
guaranteed by construction (loops iterate over bounded constant ranges).
Branch conditions are biased so that generated programs have genuinely hot
and cold paths, which exercises region formation the way real code does.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..lang.builder import MethodBuilder, ProgramBuilder, Reg
from ..lang.validate import validate_program

_FIELDS = ("f0", "f1", "f2", "f3")
_BIN_OPS = ("add", "sub", "mul", "and_", "or_", "xor")
_CONDS = ("lt", "le", "gt", "ge", "eq", "ne")


@dataclass
class GenConfig:
    """Tuning knobs for the program generator."""

    max_statements: int = 14
    max_depth: int = 2
    max_loop_trip: int = 7
    array_length: int = 6
    num_vars: int = 5
    #: probability that a generated branch compares against an extreme
    #: constant, making one side cold (bias ~100%).
    cold_branch_prob: float = 0.5
    allow_calls: bool = True
    allow_loops: bool = True
    allow_heap: bool = True
    allow_div: bool = True
    #: when set, ``main`` takes one integer parameter that perturbs the
    #: initial variable values — so a program profiled with one argument and
    #: executed with another exercises its cold paths (and fires asserts in
    #: region-formed code).
    parametric: bool = False
    seed: int = 0
    field_names: tuple[str, ...] = _FIELDS


@dataclass
class _Ctx:
    m: MethodBuilder
    vars: list[Reg]
    obj: Reg | None
    arr: Reg | None
    depth: int = 0
    label_counter: list[int] = field(default_factory=lambda: [0])

    def fresh_label(self, stem: str) -> str:
        self.label_counter[0] += 1
        return f"{stem}_{self.label_counter[0]}"


class ProgramGenerator:
    """Generates one random program per :meth:`generate` call."""

    def __init__(self, config: GenConfig | None = None) -> None:
        self.config = config if config is not None else GenConfig()
        self.rng = random.Random(self.config.seed)

    # -- public -----------------------------------------------------------
    def generate(self):
        """Build a random, validated program whose ``main()`` returns int."""
        cfg = self.config
        pb = ProgramBuilder()
        pb.cls("D", fields=list(cfg.field_names))
        if cfg.allow_calls:
            self._helper_method(pb)

        m = pb.method("main", params=("p",) if cfg.parametric else ())
        variables = [m.const(self.rng.randint(-8, 8)) for _ in range(cfg.num_vars)]
        if cfg.parametric:
            p = m.param(0)
            for var in variables[: max(1, cfg.num_vars // 2)]:
                m.add(var, p, dst=var)
        obj = arr = None
        if cfg.allow_heap:
            obj = m.new("D")
            length = m.const(cfg.array_length)
            arr = m.newarr(length)
        ctx = _Ctx(m=m, vars=variables, obj=obj, arr=arr)

        count = self.rng.randint(3, cfg.max_statements)
        for _ in range(count):
            self._statement(ctx)

        # Fold all state into one integer result.
        result = ctx.vars[0]
        for var in ctx.vars[1:]:
            result = m.xor(result, var)
        if arr is not None:
            idx = m.const(self.rng.randrange(cfg.array_length))
            elem = m.aload(arr, idx)
            result = m.add(result, elem)
        if obj is not None:
            fval = m.getfield(obj, self.rng.choice(cfg.field_names))
            result = m.add(result, fval)
        m.ret(result)
        program = pb.build()
        validate_program(program)
        return program

    # -- pieces -----------------------------------------------------------
    def _helper_method(self, pb: ProgramBuilder) -> None:
        h = pb.method("helper", params=("a", "b"))
        a, b = h.param(0), h.param(1)
        t = h.add(a, b)
        two = h.const(3)
        t2 = h.mul(t, two)
        out = h.sub(t2, a)
        h.ret(out)

    def _statement(self, ctx: _Ctx) -> None:
        cfg = self.config
        rng = self.rng
        choices: list[str] = ["assign", "assign"]
        if cfg.allow_heap:
            choices += ["field", "array"]
        if ctx.depth < cfg.max_depth:
            choices.append("if")
            if cfg.allow_loops:
                choices.append("loop")
        if cfg.allow_calls:
            choices.append("call")
        kind = rng.choice(choices)
        getattr(self, f"_stmt_{kind}")(ctx)

    def _pick_var(self, ctx: _Ctx) -> Reg:
        return self.rng.choice(ctx.vars)

    def _stmt_assign(self, ctx: _Ctx) -> None:
        m, rng = ctx.m, self.rng
        target = rng.randrange(len(ctx.vars))
        if self.config.allow_div and rng.random() < 0.15:
            # Divide by a value forced odd (never zero).
            one = m.const(1)
            divisor = m.or_(self._pick_var(ctx), one)
            value = m.div(self._pick_var(ctx), divisor)
        else:
            op = rng.choice(_BIN_OPS)
            value = getattr(m, op)(self._pick_var(ctx), self._pick_var(ctx))
        m.mov(value, dst=ctx.vars[target])

    def _stmt_field(self, ctx: _Ctx) -> None:
        m, rng = ctx.m, self.rng
        fieldname = rng.choice(self.config.field_names)
        if rng.random() < 0.5:
            m.putfield(ctx.obj, fieldname, self._pick_var(ctx))
        else:
            value = m.getfield(ctx.obj, fieldname)
            m.mov(value, dst=self._pick_var(ctx))

    def _stmt_array(self, ctx: _Ctx) -> None:
        m, rng = ctx.m, self.rng
        # Index is |v| mod length: always in bounds.
        length = m.const(self.config.array_length)
        raw = self._pick_var(ctx)
        mod = m.mod(raw, length)
        # mod may be negative (sign follows dividend); add length, mod again.
        fixed = m.add(mod, length)
        idx = m.mod(fixed, length)
        if rng.random() < 0.5:
            m.astore(ctx.arr, idx, self._pick_var(ctx))
        else:
            value = m.aload(ctx.arr, idx)
            m.mov(value, dst=self._pick_var(ctx))

    def _stmt_call(self, ctx: _Ctx) -> None:
        m = ctx.m
        out = m.call("helper", (self._pick_var(ctx), self._pick_var(ctx)))
        m.mov(out, dst=self._pick_var(ctx))

    def _branch_operands(self, ctx: _Ctx) -> tuple[str, Reg, Reg]:
        m, rng = ctx.m, self.rng
        if rng.random() < self.config.cold_branch_prob:
            # Compare against an extreme constant: one side is cold.
            extreme = m.const(rng.choice([10**6, -(10**6)]))
            return rng.choice(("gt", "lt", "eq")), self._pick_var(ctx), extreme
        return rng.choice(_CONDS), self._pick_var(ctx), self._pick_var(ctx)

    def _stmt_if(self, ctx: _Ctx) -> None:
        m = ctx.m
        cond, a, b = self._branch_operands(ctx)
        else_label = ctx.fresh_label("else")
        end_label = ctx.fresh_label("endif")
        m.br(cond, a, b, else_label)
        ctx.depth += 1
        for _ in range(self.rng.randint(1, 3)):
            self._statement(ctx)
        m.jmp(end_label)
        m.label(else_label)
        for _ in range(self.rng.randint(0, 2)):
            self._statement(ctx)
        ctx.depth -= 1
        m.label(end_label)

    def _stmt_loop(self, ctx: _Ctx) -> None:
        m = ctx.m
        trip = self.rng.randint(1, self.config.max_loop_trip)
        counter = m.const(0)
        limit = m.const(trip)
        one = m.const(1)
        head = ctx.fresh_label("loop")
        done = ctx.fresh_label("done")
        m.label(head)
        m.safepoint()
        m.br("ge", counter, limit, done)
        ctx.depth += 1
        for _ in range(self.rng.randint(1, 3)):
            self._statement(ctx)
        ctx.depth -= 1
        m.add(counter, one, dst=counter)
        m.jmp(head)
        m.label(done)


def random_program(seed: int, **overrides):
    """One-shot convenience: generate the program for ``seed``."""
    config = GenConfig(seed=seed, **overrides)
    return ProgramGenerator(config).generate()
