"""Atomic region formation: the paper's §4, Steps 1–5 and Algorithm 1.

The caller performs Step 1 (aggressive inlining) via
:class:`repro.opt.Inliner`; :func:`form_regions` then runs:

- Step 2 — boundary selection (Algorithm 1): per-iteration boundaries at
  large/call-bearing loop headers, pruning (un-inlining) of methods that
  cannot be fully encapsulated, and acyclic boundary placement along
  dominant paths minimizing Equation 1;
- Step 3 — region replication with ``aregion_begin`` / ``aregion_end``;
- Step 4 — cold branches inside regions become asserts (in replication);
- Step 5 — remaining inlined methods are restored to calls on the
  non-speculative paths;
- SSA repair for values flowing out of committed regions.

The three invariants the paper states are maintained: regions are bounded
(LOOPPATHTHRESHOLD = R = 200 HIR ops), never nested (entries are stop
blocks for the DFS), and single-entry/multi-exit with arbitrary internal
control flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.cfg import Block, Graph
from ..ir.loops import find_loops, loop_path_length
from ..ir.ops import Kind
from ..opt.inline import InlineResult, InlinedMethod, un_inline
from .boundaries import select_acyclic_boundaries
from .replicate import (
    RegionInfo,
    cold_edge_fn,
    interpose_region_entry,
    is_stop_block,
    replicate_region,
)
from .ssarepair import repair_ssa
from .trace import has_call_on_warm_path, trace_dominant_path


@dataclass
class FormationConfig:
    """Knobs.

    The paper sets LOOPPATHTHRESHOLD = R = 200 *high-level IR operations*,
    noting this "has a loose correspondence to the number of hardware
    instructions actually generated".  Our HIR is finer-grained (explicit
    checks, ALEN nodes, safepoints) and region optimization then removes a
    large fraction of the body, so R = 400 HIR ops lands the *retired-uop*
    region sizes in the paper's 30-230 range — the quantity Table 3 and
    §6.2 actually report.
    """

    loop_path_threshold: float = 400.0
    target_region_ops: float = 400.0          # R in Equation 1 (see note)
    cold_threshold: float = 0.01              # branch bias below 1% is cold
    max_region_ops: float = 1200.0            # DFS bound (best-effort hw)
    min_region_ops: float = 4.0               # skip trivial regions
    hot_seed_fraction: float = 0.01           # GETMAXBLOCKEXECCOUNT / 100
    unroll_limit: int = 6                     # partial loop unrolling cap
    enable_unroll: bool = True
    #: bytecode pcs of branches that must never become asserts — fed by
    #: adaptive recompilation after their asserts abort too frequently (§7).
    blocked_assert_pcs: frozenset = frozenset()
    #: drop regions that carry no speculation opportunity (no asserts, no
    #: monitor pairs): a region that removes no cold paths cannot pay for
    #: its begin/end overhead, so the compiler declines to form it.
    require_benefit: bool = True


@dataclass
class FormationResult:
    regions: list[RegionInfo] = field(default_factory=list)
    boundaries: list[Block] = field(default_factory=list)
    uninlined: list[str] = field(default_factory=list)
    phis_repaired: int = 0

    def assert_site_for(self, abort_id: int):
        for region in self.regions:
            for site in region.asserts:
                if site.abort_id == abort_id:
                    return site
        return None


def form_regions(
    graph: Graph,
    inline_result: InlineResult | None = None,
    config: FormationConfig | None = None,
) -> FormationResult:
    """Run region formation over an (already aggressively inlined) graph."""
    cfg = config if config is not None else FormationConfig()
    inlines = inline_result if inline_result is not None else InlineResult()
    result = FormationResult()
    cold = cold_edge_fn(cfg.cold_threshold)
    if cfg.blocked_assert_pcs:
        base_cold = cold
        blocked = cfg.blocked_assert_pcs

        def cold(block: Block, succ_index: int) -> bool:  # noqa: F811
            term = block.terminator
            if term is not None and term.bytecode_pc in blocked:
                return False
            return base_cold(block, succ_index)

    boundaries = _select_boundaries(graph, inlines, cfg, cold, result)
    boundaries = [
        b for b in boundaries
        if b is not graph.entry and not is_stop_block(b)
    ]
    result.boundaries = boundaries

    # Structural loop exits must stay region exits, not asserts, even when
    # their bias is below the cold threshold (a 300-trip loop's exit edge is
    # "cold" by bias yet taken once per loop execution).
    forest = find_loops(graph)
    loop_of = forest.loop_of_block

    def preserve_edge(block: Block, succ_index: int) -> bool:
        loop = loop_of.get(block.id)
        while loop is not None:
            if block.succs[succ_index].id not in loop.blocks:
                return True
            loop = loop.parent
        return False

    # Interpose every region entry first so that replication DFS sees other
    # regions' entries as stop blocks and exit stubs have stable targets.
    for boundary in boundaries:
        interpose_region_entry(graph, boundary)

    for boundary in boundaries:
        info = replicate_region(
            graph,
            boundary,
            cold,
            max_ops=cfg.max_region_ops,
            min_ops=cfg.min_region_ops,
            unroll_limit=cfg.unroll_limit if cfg.enable_unroll else 1,
            target_ops=cfg.target_region_ops,
            preserve_edge=preserve_edge,
        )
        if info is not None and (
            not cfg.require_benefit or _region_has_benefit(info)
        ):
            result.regions.append(info)
        else:
            _deinterpose(graph, boundary)

    # Step 5: restore calls for inlined methods on non-speculative paths.
    for im in inlines.by_innermost_first():
        if _still_inlined(graph, im):
            un_inline(graph, im)
            result.uninlined.append(im.callee.qualified_name)

    # SSA repair for values that escape committed regions.
    merged_clone_map: dict = {}
    for region in result.regions:
        for oid, clones in region.clone_map.items():
            merged_clone_map.setdefault(oid, []).extend(clones)
    if merged_clone_map:
        result.phis_repaired = repair_ssa(graph, merged_clone_map)

    graph.prune_unreachable()
    return result


# -- Algorithm 1 ------------------------------------------------------------

def _select_boundaries(graph, inlines, cfg, cold, result) -> list[Block]:
    selected: list[Block] = []
    selected_ids: set[int] = set()

    def select(block: Block) -> None:
        if block.id not in selected_ids:
            selected_ids.add(block.id)
            selected.append(block)

    # -- loops, innermost to outermost --------------------------------------
    forest = find_loops(graph)
    for loop in forest.in_postorder():
        blocks = {b.id for b in loop.block_list}
        has_warm_call = has_call_on_warm_path(loop.header, blocks, cold)
        path_length = loop_path_length(loop)
        if path_length >= cfg.loop_path_threshold or has_warm_call:
            select(loop.header)

    # -- prune inlined methods that cannot be encapsulated --------------------
    for im in inlines.by_innermost_first():
        if not _still_inlined(graph, im):
            continue
        im_blocks = im.blocks_of(graph)
        im_ids = {b.id for b in im_blocks}
        if not im_ids:
            continue
        has_warm_call = has_call_on_warm_path(im.entry_block, im_ids, cold) \
            if im.entry_block.id in im_ids else False
        has_selected_loop = bool(selected_ids & im_ids)
        if has_warm_call or has_selected_loop:
            un_inline(graph, im)
            result.uninlined.append(im.callee.qualified_name)
            # Drop any boundaries that lived inside the removed body.
            live = {b.id for b in graph.blocks}
            dead = [b for b in selected if b.id not in live]
            for b in dead:
                selected.remove(b)
                selected_ids.discard(b.id)

    # -- acyclic paths ---------------------------------------------------------
    forest = find_loops(graph)  # recompute: pruning may have changed the CFG
    trace_stops = {graph.entry.id}
    for block in graph.blocks:
        term = block.terminator
        if term is not None and term.kind is Kind.RETURN:
            trace_stops.add(block.id)
        if any(op.kind in (Kind.CALL, Kind.VCALL) for op in block.ops):
            trace_stops.add(block.id)

    max_count = max((b.count for b in graph.blocks), default=0.0)
    if max_count <= 0:
        return selected
    visited: set[int] = set()
    for block in sorted(graph.blocks, key=lambda b: b.count, reverse=True):
        if block.id in visited:
            continue
        if block.count < max_count * cfg.hot_seed_fraction:
            break  # sorted order: everything after is colder
        path = trace_dominant_path(block, selected_ids | trace_stops)
        chosen = select_acyclic_boundaries(path, forest, cfg.target_region_ops)
        for b in chosen:
            if b is not graph.entry:
                select(b)
        visited.update(b.id for b in path)
    return selected


def _region_has_benefit(info) -> bool:
    """A region is worth keeping when it speculates something: it asserted
    cold paths away, or it contains monitor pairs SLE can elide."""
    if info.asserts:
        return True
    for block in info.blocks:
        for op in block.ops:
            if op.kind is Kind.MONITOR_ENTER:
                return True
    return False


def _deinterpose(graph: Graph, boundary: Block) -> None:
    """Demote a skipped region's entry block to a plain forwarding block."""
    from ..ir.ops import Node

    begin = boundary.region_entry
    if begin is None:
        return
    graph.clear_terminator(begin)
    graph.set_terminator(begin, Node(Kind.JUMP), [boundary])
    boundary.region_entry = None
    boundary.is_recovery = False


def _still_inlined(graph: Graph, im: InlinedMethod) -> bool:
    """True when the inline is still in place (call block intact, body
    present, and the saved call not yet restored)."""
    if im.call_block not in graph.blocks:
        return False
    if im.saved_call.block is not None:
        return False  # already restored
    return any(b.inline_ctx[: len(im.ctx)] == im.ctx
               for b in graph.blocks
               if len(b.inline_ctx) >= len(im.ctx) and b.region_id is None)
