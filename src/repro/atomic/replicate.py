"""Region replication (Step 3) and cold-edge-to-assert conversion (Step 4).

Implements the paper's §4: "[Step 3] creates the atomic regions by
performing a depth first search (ignoring cold paths) starting from each
selected region boundary, stopping at other selected region boundaries, the
method exit, and any non-inlined calls and then copying the visited blocks.
An aregion_begin is placed at the entry to the region, and an aregion_end
is placed at each region exit.  All edges into the block that the region
entry was copied from are moved to the aregion_begin and an exception edge
is added from the atomic begin to the source block."

Cold branches inside the copies become ASSERT operations whose condition
encodes the *cold* direction; the cold successor edge is simply absent from
the copy (Step 4).

Partial loop unrolling (one of the paper's ~200-LoC atomic-region-enabled
optimizations) is folded into replication: a per-iteration loop region can
chain K copies of the body inside one atomic region, threading the
loop-carried values from each copy's back edge into the next copy.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..ir.cfg import Block, Graph
from ..ir.ops import Kind, Node

#: Inverted conditions, for asserts on fallthrough-side cold edges.
NEGATE = {"lt": "ge", "le": "gt", "gt": "le", "ge": "lt", "eq": "ne", "ne": "eq"}

_abort_ids = itertools.count(1)


@dataclass
class AssertSite:
    """Diagnostic record for one ASSERT: which branch it came from."""

    node: Node
    abort_id: int
    src_pc: int | None
    region_id: int


@dataclass
class RegionInfo:
    """One formed atomic region."""

    region_id: int
    begin_block: Block            # ends in REGION_BEGIN
    original_entry: Block         # the boundary block (now recovery code)
    entry_copy: Block             # speculative clone of the boundary block
    blocks: list[Block] = field(default_factory=list)       # all clones + stubs
    asserts: list[AssertSite] = field(default_factory=list)
    exit_stubs: list[Block] = field(default_factory=list)
    #: original node id -> clone nodes (one per unrolled copy), for SSA
    #: repair: each clone is an additional definition of the original value.
    clone_map: dict[int, list[Node]] = field(default_factory=dict)
    #: originals that were replicated (ids).
    source_ids: set[int] = field(default_factory=set)
    unroll_factor: int = 1

    def op_count(self) -> int:
        return sum(b.op_count() for b in self.blocks)


def is_stop_block(block: Block) -> bool:
    """Blocks a region DFS must not cross: other region entries, blocks
    performing non-inlined calls, and method exits."""
    term = block.terminator
    if term is None:
        return True
    if term.kind is Kind.REGION_BEGIN:
        return True
    if term.kind is Kind.RETURN:
        return True
    return any(op.kind in (Kind.CALL, Kind.VCALL) for op in block.ops)


def interpose_region_entry(graph: Graph, boundary: Block) -> Block:
    """Create the aregion_begin block in front of ``boundary``.

    The boundary's phis move into the new block (they are exactly the values
    live on entry to both the speculative and the recovery version), every
    edge into the boundary is re-pointed at the new block, and a
    REGION_BEGIN terminator is installed with both successors temporarily
    aimed at the (non-speculative) boundary block.
    """
    begin = graph.new_block(src_pc=boundary.src_pc)
    begin.count = boundary.count
    begin.inline_ctx = boundary.inline_ctx

    # Move phis: node identity is preserved, so all uses remain valid.
    begin.phis = boundary.phis
    for phi in begin.phis:
        phi.block = begin
    boundary.phis = []

    # Move incoming edges wholesale: preds entries and phi operands already
    # align, so a pointer swap suffices.
    begin.preds = boundary.preds
    boundary.preds = []
    for pred, succ_index in begin.preds:
        pred.succs[succ_index] = begin

    rid = graph.fresh_region_id()
    term = Node(Kind.REGION_BEGIN, region_id=rid)
    graph.set_terminator(begin, term, [boundary, boundary])
    boundary.region_entry = begin
    boundary.is_recovery = True
    return begin


def cold_edge_fn(threshold: float):
    """Edge-coldness predicate from branch profiles (paper: bias < 1%)."""

    def cold(block: Block, succ_index: int) -> bool:
        term = block.terminator
        if term is None or len(block.succs) < 2:
            return False
        counts = term.attrs.get("edge_counts")
        if counts is None:
            return False
        total = sum(counts)
        if total <= 0:
            return False
        return counts[succ_index] / total < threshold

    return cold


def collect_region_blocks(
    boundary: Block,
    cold_edge,
    max_ops: float,
) -> list[Block]:
    """Step-3 DFS from ``boundary`` along warm edges, bounded by ``max_ops``."""
    visited = [boundary]
    seen = {boundary.id}
    budget = boundary.op_count()
    stack = [boundary]
    while stack:
        block = stack.pop()
        for index, succ in enumerate(block.succs):
            if succ.id in seen:
                continue
            if cold_edge(block, index):
                continue
            if is_stop_block(succ):
                continue
            if budget + succ.op_count() > max_ops:
                continue  # best-effort bound: excess becomes a region exit
            seen.add(succ.id)
            budget += succ.op_count()
            visited.append(succ)
            stack.append(succ)
    return visited


def _clone_node(node: Node) -> Node:
    clone = Node(node.kind, [], bytecode_pc=node.bytecode_pc, **dict(node.attrs))
    return clone


class _RegionBuilder:
    """Builds the replicated body of one region (possibly unrolled)."""

    def __init__(
        self,
        graph: Graph,
        info: RegionInfo,
        body: list[Block],
        cold_edge,
        preserve_edge=None,
    ) -> None:
        self.graph = graph
        self.info = info
        self.body = body
        self.body_ids = {b.id for b in body}
        self.cold_edge = cold_edge
        #: predicate (block, succ_index) -> bool: keep this cold edge as a
        #: region exit instead of an assert.  Used for structural loop
        #: exits, which are individually cold (bias ~ 1/trip-count) but are
        #: taken once per loop execution — asserting them would charge one
        #: abort per loop, which the paper's per-iteration regions do not.
        self.preserve_edge = preserve_edge or (lambda block, index: False)

    # -- region-local dominance ---------------------------------------------
    def surviving_edges(self, block: Block) -> list[int]:
        """Successor indexes of ``block`` that the clone will retain."""
        term = block.terminator
        if term is None:
            return []
        if term.kind is Kind.JUMP:
            return [0]
        assert term.kind is Kind.BRANCH
        cold0 = self.cold_edge(block, 0) and not self.preserve_edge(block, 0)
        cold1 = self.cold_edge(block, 1) and not self.preserve_edge(block, 1)
        if cold0 and cold1:
            return [0] if block.edge_count_to(0) >= block.edge_count_to(1) else [1]
        out = []
        if not cold0:
            out.append(0)
        if not cold1:
            out.append(1)
        return out

    def _compute_region_dominance(self) -> None:
        """Dominators of the region subgraph rooted at the boundary.

        Needed because a region may begin mid-loop: values defined in the
        body but *after* the entry in region order are live-ins at the
        entry, so cloned uses earlier in region order must keep referencing
        the originals.
        """
        from ..ir.dom import DomTree, _compute_idom

        boundary = self.body[0]
        succs_of: dict[int, list[Block]] = {}
        preds_of: dict[int, list[Block]] = {b.id: [] for b in self.body}
        for block in self.body:
            internal = [
                block.succs[i]
                for i in self.surviving_edges(block)
                if block.succs[i].id in self.body_ids
            ]
            succs_of[block.id] = internal
        for block in self.body:
            for succ in succs_of[block.id]:
                preds_of[succ.id].append(block)

        # RPO of the region subgraph from the boundary.
        seen = {boundary.id}
        post: list[Block] = []
        stack: list[tuple[Block, int]] = [(boundary, 0)]
        while stack:
            block, child = stack[-1]
            succs = succs_of[block.id]
            if child < len(succs):
                stack[-1] = (block, child + 1)
                nxt = succs[child]
                if nxt.id not in seen:
                    seen.add(nxt.id)
                    stack.append((nxt, 0))
            else:
                stack.pop()
                post.append(block)
        order = list(reversed(post))
        self._region_tree = DomTree(_compute_idom(order, preds_of), order)
        self._region_reachable = seen

    def region_dominates(self, a: Block, b: Block) -> bool:
        if a.id not in self._region_reachable or b.id not in self._region_reachable:
            return False
        return self._region_tree.dominates(a, b)

    def build_copy(self, seed_map: dict[int, Node]) -> tuple[Block, dict[int, Node]]:
        """Clone the body once.  ``seed_map`` pre-maps values flowing in
        (used to thread loop-carried values between unrolled copies).

        Returns (entry_clone, value_map).  Back edges to the region's own
        entry are routed to placeholder stubs recorded in
        ``self.pending_back_edges`` so the caller can chain or close them.
        """
        graph, info = self.graph, self.info
        if not hasattr(self, "_region_tree"):
            self._compute_region_dominance()
        mapping: dict[int, Node] = dict(seed_map)
        block_map: dict[int, Block] = {}
        #: original node id -> its original block, for dominance decisions.
        src_block: dict[int, Block] = {}

        for original in self.body:
            clone = graph.new_block(src_pc=original.src_pc)
            clone.region_id = info.region_id
            clone.inline_ctx = original.inline_ctx
            clone.count = original.count
            block_map[original.id] = clone
            info.blocks.append(clone)

        # Clone phis and ops (operands resolved afterwards).
        cloned_pairs: list[tuple[Node, Node, Block]] = []
        for original in self.body:
            clone_block = block_map[original.id]
            for phi in original.phis:
                cphi = Node(Kind.PHI)
                cphi.block = clone_block
                clone_block.phis.append(cphi)
                mapping[phi.id] = cphi
                src_block[phi.id] = original
            for op in original.ops:
                cop = _clone_node(op)
                clone_block.append(cop)
                mapping[op.id] = cop
                src_block[op.id] = original
                cloned_pairs.append((op, cop, original))

        def resolve_at(value: Node, use_block: Block) -> Node:
            """Clone reference iff the def precedes the use in region order;
            otherwise the original value is the live-in at region entry."""
            mapped = mapping.get(value.id)
            if mapped is None:
                return value
            defined_in = src_block.get(value.id)
            if defined_in is None:
                return mapped  # seed entry (unroll threading): always valid
            if defined_in is use_block or self.region_dominates(defined_in, use_block):
                return mapped
            return value

        for op, cop, original in cloned_pairs:
            cop.operands = [resolve_at(v, original) for v in op.operands]

        self.pending_back_edges: list[tuple[Block, list[Node]]] = []
        for original in self.body:
            self._wire_block(original, block_map, mapping, resolve_at)

        # Record this copy's clones for SSA repair.
        for oid, clone in mapping.items():
            if oid not in seed_map:
                info.clone_map.setdefault(oid, []).append(clone)
        return block_map[self.body[0].id], mapping

    # -- per-block edge wiring --------------------------------------------
    def _wire_block(self, original, block_map, mapping, resolve) -> None:
        graph, info = self.graph, self.info
        clone_block = block_map[original.id]
        term = original.terminator
        kind = term.kind

        if kind is Kind.JUMP:
            cterm = _clone_node(term)
            cterm.operands = [resolve(v, original) for v in term.operands]
            graph.set_terminator(clone_block, cterm, [])
            self._link_edge(original, 0, clone_block, block_map, resolve)
            return

        assert kind is Kind.BRANCH, f"unexpected terminator {kind} in region body"
        surviving = self.surviving_edges(original)

        if len(surviving) == 2:
            cterm = _clone_node(term)
            cterm.operands = [resolve(v, original) for v in term.operands]
            graph.set_terminator(clone_block, cterm, [])
            self._link_edge(original, 0, clone_block, block_map, resolve)
            self._link_edge(original, 1, clone_block, block_map, resolve)
            return

        # One side is cold: Step 4 — the branch becomes an assert that
        # fires when control *would have* left the hot path.
        cold_index = 1 - surviving[0]
        cond = term.attrs["cond"] if cold_index == 0 else NEGATE[term.attrs["cond"]]
        abort_id = next(_abort_ids)
        assert_node = Node(
            Kind.ASSERT,
            [resolve(v, original) for v in term.operands],
            bytecode_pc=term.bytecode_pc,
            cond=cond,
            abort_id=abort_id,
        )
        clone_block.append(assert_node)
        info.asserts.append(
            AssertSite(assert_node, abort_id, term.bytecode_pc, info.region_id)
        )
        graph.set_terminator(
            clone_block, Node(Kind.JUMP, bytecode_pc=term.bytecode_pc), []
        )
        self._link_edge(original, surviving[0], clone_block, block_map, resolve)

    def _link_edge(self, original, succ_index, clone_block, block_map, resolve):
        """Wire one surviving out-edge of a cloned block."""
        graph, info = self.graph, self.info
        succ = original.succs[succ_index]
        values = self._edge_phi_values(original, succ_index, succ, resolve)

        internal = block_map.get(succ.id)
        if internal is not None:
            graph._link(clone_block, internal, phi_values=values)
            return
        if succ is info.begin_block:
            # Back edge to this region's own entry: per-iteration region.
            # Link to a placeholder stub immediately (preserving successor
            # order), and defer its target: chained into the next copy when
            # unrolling, otherwise closed with an AREGION_END commit.
            stub = graph.new_block(src_pc=clone_block.src_pc)
            stub.region_id = info.region_id
            stub.count = clone_block.count
            graph._link(clone_block, stub)
            info.blocks.append(stub)
            self.pending_back_edges.append((stub, values))
            return
        self._emit_exit_stub(clone_block, succ, values)

    def _edge_phi_values(self, original, succ_index, succ, resolve):
        for pos, (pred, idx) in enumerate(succ.preds):
            if pred is original and idx == succ_index:
                return [resolve(phi.operands[pos], original) for phi in succ.phis]
        raise AssertionError("original edge missing during replication")

    def _emit_exit_stub(self, clone_block, target, values):
        """AREGION_END + jump to non-speculative (or next-region) code."""
        graph, info = self.graph, self.info
        stub = graph.new_block(src_pc=clone_block.src_pc)
        stub.region_id = info.region_id
        stub.count = clone_block.count
        stub.append(Node(Kind.AREGION_END))
        graph._link(clone_block, stub)
        graph.set_terminator(stub, Node(Kind.JUMP), [])
        graph._link(stub, target, phi_values=values)
        info.blocks.append(stub)
        info.exit_stubs.append(stub)

    def close_back_edges(self) -> None:
        """Close pending back edges: commit, then re-enter the begin block
        (each loop iteration is its own atomic region)."""
        graph, info = self.graph, self.info
        for stub, values in self.pending_back_edges:
            stub.append(Node(Kind.AREGION_END))
            graph.set_terminator(stub, Node(Kind.JUMP), [])
            graph._link(stub, info.begin_block, phi_values=values)
            info.exit_stubs.append(stub)
        self.pending_back_edges = []

    def chain_back_edge_to(self, next_entry: Block) -> None:
        """Unrolling: route the pending back edge into the next body copy
        (no commit in between — the copies share one atomic region)."""
        (stub, _values), = self.pending_back_edges
        self.graph.set_terminator(stub, Node(Kind.JUMP), [])
        self.graph._link(stub, next_entry)
        self.pending_back_edges = []

    def back_edge_seed_map(self) -> dict[int, Node]:
        """Seed map for the next unrolled copy: begin-phi -> value carried
        by the (single) back edge of the current copy."""
        (stub, values), = self.pending_back_edges
        return {
            phi.id: value
            for phi, value in zip(self.info.begin_block.phis, values)
        }


def replicate_region(
    graph: Graph,
    boundary: Block,
    cold_edge,
    max_ops: float,
    min_ops: float,
    unroll_limit: int = 1,
    target_ops: float = 200.0,
    preserve_edge=None,
) -> RegionInfo | None:
    """Steps 3+4 (and partial unrolling) for one selected boundary.

    ``boundary`` must already have its region entry interposed.  Returns
    None (and removes the interposed entry is left harmless) when the region
    would be trivially small.
    """
    begin = boundary.region_entry
    assert begin is not None, "interpose_region_entry must run first"

    body = collect_region_blocks(boundary, cold_edge, max_ops)
    body_ops = sum(b.op_count() for b in body)
    if body_ops < min_ops:
        return None

    rid = begin.terminator.attrs["region_id"]
    info = RegionInfo(
        region_id=rid,
        begin_block=begin,
        original_entry=boundary,
        entry_copy=boundary,  # replaced below
        source_ids={b.id for b in body},
    )
    info.begin_block = begin
    builder = _RegionBuilder(graph, info, body, cold_edge, preserve_edge)

    # Decide the unroll factor: only for per-iteration loop regions with a
    # single back edge, sized so K copies stay near the target R.
    entry_clone, _mapping = builder.build_copy({})
    copies = 1
    if unroll_limit > 1 and body_ops > 0:
        desired = int(target_ops // max(body_ops, 1))
        factor = max(1, min(unroll_limit, desired))
        while copies < factor and len(builder.pending_back_edges) == 1:
            seed = builder.back_edge_seed_map()
            # The values threaded into the next copy are additional
            # definitions of the begin-phi variables: SSA repair must merge
            # them into any use after the region (they are the variable's
            # value after this copy's iteration).
            for phi, value in zip(begin.phis, seed.values()):
                if value is not phi:
                    info.clone_map.setdefault(phi.id, []).append(value)
            pending = builder.pending_back_edges
            next_entry, _mapping = builder.build_copy(seed)
            stub, _values = pending[0]
            graph.set_terminator(stub, Node(Kind.JUMP), [])
            graph._link(stub, next_entry)
            # build_copy reset pending_back_edges to the new copy's edges.
            copies += 1

    builder.close_back_edges()
    info.unroll_factor = copies
    info.entry_copy = entry_clone

    # Point the speculative successor of the begin block at the first copy.
    graph.replace_succ(begin, 0, entry_clone)
    for original in body:
        original.is_recovery = True
    return info
