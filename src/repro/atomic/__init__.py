"""The paper's contribution: atomic-region formation and region-enabled
optimizations (partial inlining/unrolling, SLE, post-dominance checks)."""

from .boundaries import candidate_positions, pi_cost, select_acyclic_boundaries
from .formation import FormationConfig, FormationResult, form_regions
from .postdom import eliminate_postdominated_checks
from .regionmap import blocks_by_region, region_membership
from .replicate import (
    AssertSite,
    RegionInfo,
    cold_edge_fn,
    collect_region_blocks,
    interpose_region_entry,
    is_stop_block,
    replicate_region,
)
from .sle import apply_sle
from .ssarepair import repair_ssa
from .trace import (
    dominant_in_edge,
    dominant_out_edge,
    has_call_on_warm_path,
    trace_dominant_path,
)

__all__ = [
    "AssertSite",
    "FormationConfig",
    "FormationResult",
    "RegionInfo",
    "apply_sle",
    "blocks_by_region",
    "candidate_positions",
    "cold_edge_fn",
    "collect_region_blocks",
    "dominant_in_edge",
    "dominant_out_edge",
    "eliminate_postdominated_checks",
    "form_regions",
    "has_call_on_warm_path",
    "interpose_region_entry",
    "is_stop_block",
    "pi_cost",
    "region_membership",
    "repair_ssa",
    "replicate_region",
    "select_acyclic_boundaries",
    "trace_dominant_path",
]
