"""Equation 1 boundary selection (paper's SELECTACYCLICBOUNDARIES).

Given the dominant path and the candidate boundary positions on it (path
start, path end, loop pre-headers, loop exits), choose the subset that
partitions the path into regions of size near the target R, minimizing

    Π = Σ (R − rₙ)² / (R · rₙ)                              (Equation 1)

over the region sizes rₙ.  The paper notes this objective was originally
the task-selection criterion of MSSP [Zilles & Sohi, MICRO 2002].

The optimum over "subsets of candidates that include both endpoints" is
computed exactly with an O(k²) dynamic program over candidate positions.
"""

from __future__ import annotations

from ..ir.cfg import Block
from ..ir.loops import LoopForest


def pi_cost(region_size: float, target: float) -> float:
    """Equation 1 contribution of one region of size ``region_size``."""
    if region_size <= 0:
        return float("inf")
    return (target - region_size) ** 2 / (target * region_size)


def candidate_positions(path: list[Block], forest: LoopForest) -> list[int]:
    """Indices into ``path`` that may become region boundaries.

    Candidates: the path's start and end, every loop pre-header on the path
    (a block outside a loop whose path successor is that loop's header) and
    every loop exit on the path (first block outside a loop entered from
    inside it).
    """
    if not path:
        return []
    candidates = {0, len(path) - 1}
    for i in range(1, len(path)):
        prev_loop = forest.innermost(path[i - 1])
        cur_loop = forest.innermost(path[i])
        if cur_loop is not prev_loop:
            if cur_loop is not None and path[i] is cur_loop.header:
                candidates.add(i - 1)  # pre-header position
            if prev_loop is not None and (
                cur_loop is None or path[i].id not in prev_loop.blocks
            ):
                candidates.add(i)  # loop-exit position
    return sorted(candidates)


def select_acyclic_boundaries(
    path: list[Block],
    forest: LoopForest,
    target_ops: float,
) -> list[Block]:
    """Choose boundary blocks on ``path`` minimizing Equation 1.

    Returns the selected blocks (path start always included: a region must
    begin where the trace begins).
    """
    if not path:
        return []
    positions = candidate_positions(path, forest)
    if len(positions) == 1:
        return [path[positions[0]]]

    # Prefix op counts for O(1) segment sizing.
    prefix = [0.0]
    for block in path:
        prefix.append(prefix[-1] + block.op_count())

    def segment_ops(i: int, j: int) -> float:
        """HIR ops of the region spanning candidate i (inclusive) to j."""
        return prefix[positions[j]] - prefix[positions[i]]

    k = len(positions)
    INF = float("inf")
    best = [INF] * k
    choice = [-1] * k
    best[0] = 0.0
    for j in range(1, k):
        for i in range(j):
            if best[i] == INF:
                continue
            cost = best[i] + pi_cost(segment_ops(i, j), target_ops)
            if cost < best[j]:
                best[j] = cost
                choice[j] = i

    selected_positions = []
    cursor = k - 1
    while cursor >= 0:
        selected_positions.append(positions[cursor])
        if cursor == 0:
            break
        cursor = choice[cursor]
        if cursor == -1:  # unreachable candidate chain; fall back to start
            selected_positions.append(positions[0])
            break
    selected_positions.reverse()
    # Drop the path end as a boundary unless it is also the start: regions
    # begin at boundaries; the end of the trace is where the *next* trace's
    # boundary (or an existing stop) takes over.
    blocks = [path[i] for i in selected_positions]
    if len(blocks) > 1:
        blocks = blocks[:-1]
    return blocks
