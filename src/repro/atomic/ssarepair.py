"""SSA reconstruction after region replication.

Replication clones the hot path; region exits jump from the clones back
into the original (non-speculative) flow, and per-iteration regions chain
exit → region-entry, making the entry block a *new loop header*.  Every
value that is replicated therefore has multiple definitions (the original
plus one per clone copy), and any of its uses — downstream code, recovery
code, or live-in references inside the clones themselves — must be rewired
to the definition actually reaching it.

This is the textbook SSA-reconstruction algorithm: for each replicated
value, insert phis at the iterated dominance frontier of all its definition
blocks, then rewrite every use to its reaching definition (found by a
position-aware walk up the dominator tree).

This pass is the honest compiler-side cost of the paper's design: hardware
atomicity removes per-optimization *compensation code* for aborts, but the
compiler still owns state correctness at successful region exits — which is
ordinary SSA bookkeeping, done once, for all optimizations at once.
"""

from __future__ import annotations

from ..ir.cfg import Block, Graph
from ..ir.dom import DomTree, dominance_frontiers, dominator_tree
from ..ir.ops import Kind, Node


class _Positions:
    """Lazily-computed, invalidatable node positions within blocks."""

    def __init__(self) -> None:
        self._tables: dict[int, dict[int, int]] = {}

    def pos(self, block: Block, node: Node) -> int:
        table = self._tables.get(block.id)
        if table is None:
            table = self._tables[block.id] = {
                n.id: i for i, n in enumerate(block.all_nodes())
            }
        return table.get(node.id, -1)

    def invalidate(self, block: Block) -> None:
        self._tables.pop(block.id, None)


def repair_ssa(graph: Graph, clone_map: dict[int, list[Node]]) -> int:
    """Reconstruct SSA for every original value in ``clone_map``.

    Returns the number of phi nodes inserted.
    """
    tree = dominator_tree(graph)
    frontiers = dominance_frontiers(graph, tree)
    reachable = {b.id for b in tree.order}

    nodes_by_id: dict[int, Node] = {}
    for block in graph.blocks:
        for node in block.all_nodes():
            nodes_by_id[node.id] = node

    uses = _collect_uses(graph)
    positions = _Positions()
    inserted = 0

    for original_id, clones in clone_map.items():
        original = nodes_by_id.get(original_id)
        if original is None or original.block is None:
            continue
        if original.block.id not in reachable:
            continue
        if not original.is_value():
            continue
        live_clones = [
            c for c in clones
            if c.block is not None and c.block.id in reachable
        ]
        if not live_clones:
            continue
        use_list = [
            u for u in uses.get(original_id, ())
            if u[0].block is not None and u[0].block.id in reachable
        ]
        if not use_list:
            continue
        inserted += _reconstruct_variable(
            graph, tree, frontiers, original, live_clones, use_list, positions
        )
    return inserted


def _collect_uses(graph: Graph):
    """node id -> list of (user, operand index, pred block for phi uses)."""
    uses: dict[int, list[tuple[Node, int, Block | None]]] = {}
    for block in graph.blocks:
        for phi in block.phis:
            for index, operand in enumerate(phi.operands):
                pred = block.preds[index][0] if index < len(block.preds) else None
                uses.setdefault(operand.id, []).append((phi, index, pred))
        for node in block.ops:
            for index, operand in enumerate(node.operands):
                uses.setdefault(operand.id, []).append((node, index, None))
        term = block.terminator
        if term is not None:
            for index, operand in enumerate(term.operands):
                uses.setdefault(operand.id, []).append((term, index, None))
    return uses


def _reconstruct_variable(
    graph: Graph,
    tree: DomTree,
    frontiers,
    original: Node,
    clones: list[Node],
    use_list,
    positions: _Positions,
) -> int:
    defs = [original, *clones]
    defs_in_block: dict[int, list[Node]] = {}
    for d in defs:
        defs_in_block.setdefault(d.block.id, []).append(d)
    for block_id, block_defs in defs_in_block.items():
        block_defs.sort(key=lambda d: positions.pos(d.block, d))

    # Iterated dominance frontier of the definition blocks.
    phi_blocks: dict[int, Node] = {}
    worklist = [d.block for d in defs]
    queued = {b.id for b in worklist}
    inserted = 0
    while worklist:
        block = worklist.pop()
        for join in frontiers.get(block.id, ()):
            if join.id in phi_blocks:
                continue
            phi = Node(Kind.PHI)
            phi.operands = [None] * len(join.preds)  # type: ignore[list-item]
            phi.block = join
            join.phis.append(phi)
            positions.invalidate(join)
            phi_blocks[join.id] = phi
            inserted += 1
            if join.id not in queued:
                queued.add(join.id)
                worklist.append(join)

    undef: Node | None = None

    def make_undef() -> Node:
        nonlocal undef
        if undef is None:
            undef = Node(Kind.CONST, imm=0)
            graph.entry.insert_op(0, undef)
            positions.invalidate(graph.entry)
        return undef

    def reaching(block: Block, before_pos: int | None) -> Node:
        """Definition reaching ``block`` at position ``before_pos`` (None =
        end of block)."""
        cursor: Block | None = block
        limit = before_pos
        while cursor is not None:
            for d in reversed(defs_in_block.get(cursor.id, [])):
                if limit is None or positions.pos(cursor, d) < limit:
                    return d
            phi = phi_blocks.get(cursor.id)
            if phi is not None and (
                limit is None or positions.pos(cursor, phi) < limit
            ):
                return phi
            parent = tree.idom.get(cursor.id)
            if parent is cursor or parent is None:
                break
            cursor = parent
            limit = None
        return make_undef()

    # Fill inserted phi operands.
    for block_id, phi in phi_blocks.items():
        block = phi.block
        for index, (pred, _) in enumerate(block.preds):
            if phi.operands[index] is None:
                phi.operands[index] = reaching(pred, None)

    # Rewrite every use to its reaching definition.
    for user, op_index, pred_for_phi in use_list:
        if user.operands[op_index] is not original:
            continue  # stale record (operand already rewritten)
        if user.kind is Kind.PHI:
            if pred_for_phi is None:
                continue
            target = reaching(pred_for_phi, None)
        else:
            target = reaching(user.block, positions.pos(user.block, user))
        user.operands[op_index] = target
    return inserted
