"""Speculative lock elision inside atomic regions (paper §4).

"When a balanced pair of monitor operations is contained within an atomic
region, our implementation of SLE must only load the value of the lock upon
monitor entry and verify — a compare and branch — that it is not held by
another thread.  In the common case, no action is needed at the monitor
exit."

The transformation: MONITOR_ENTER becomes SLE_ENTER (load + compare +
conditional abort), the matching MONITOR_EXIT disappears.  Balance is
established either within one block (stack matching) or across blocks when
the enter dominates the exit, the exit post-dominates the enter, and no
other monitor operation on the same object intervenes.

The isolation guarantee of hardware atomicity is what makes this sound:
memory operations in the region appear to other threads to execute at the
commit instant, so a lock that was free at SLE_ENTER is logically held for
zero time.
"""

from __future__ import annotations

from ..ir.cfg import Block, Graph
from ..ir.dom import dominator_tree, postdominator_tree
from ..ir.ops import Kind, Node
from .regionmap import blocks_by_region

_MONITOR_KINDS = (Kind.MONITOR_ENTER, Kind.MONITOR_EXIT)


def apply_sle(graph: Graph) -> int:
    """Elide balanced monitor pairs inside regions; returns pairs elided."""
    groups = blocks_by_region(graph)
    if not groups:
        return 0
    elided = 0
    for region_blocks in groups.values():
        elided += _elide_local_pairs(region_blocks)
    # Cross-block pairs need fresh dominance information.
    remaining = any(
        op.kind in _MONITOR_KINDS
        for blocks in groups.values()
        for b in blocks
        for op in b.ops
    )
    if remaining:
        tree = dominator_tree(graph)
        ptree, _virtual = postdominator_tree(graph)
        for region_blocks in blocks_by_region(graph).values():
            elided += _elide_cross_block_pairs(region_blocks, tree, ptree)
    return elided


def _elide_local_pairs(blocks: list[Block]) -> int:
    """Stack-match ENTER/EXIT pairs on the same object within one block."""
    elided = 0
    for block in blocks:
        stack: list[Node] = []
        pairs: list[tuple[Node, Node]] = []
        for op in block.ops:
            if op.kind is Kind.MONITOR_ENTER:
                stack.append(op)
            elif op.kind is Kind.MONITOR_EXIT:
                if stack and stack[-1].operands[0] is op.operands[0]:
                    pairs.append((stack.pop(), op))
                else:
                    stack.clear()  # unbalanced; stop matching in this block
        for enter, exit_op in pairs:
            _convert(block, enter, exit_op)
            elided += 1
    return elided


def _elide_cross_block_pairs(blocks, tree, ptree) -> int:
    """Match a single ENTER against a single EXIT across region blocks."""
    by_obj: dict[int, dict[str, list[tuple[Block, Node]]]] = {}
    for block in blocks:
        for op in block.ops:
            if op.kind in _MONITOR_KINDS:
                entry = by_obj.setdefault(op.operands[0].id, {"e": [], "x": []})
                entry["e" if op.kind is Kind.MONITOR_ENTER else "x"].append(
                    (block, op)
                )
    elided = 0
    for obj_id, found in by_obj.items():
        if len(found["e"]) != 1 or len(found["x"]) != 1:
            continue
        (eb, enter), (xb, exit_op) = found["e"][0], found["x"][0]
        if eb is xb:
            continue  # local matching already declined this pair
        if not tree.dominates(eb, xb):
            continue
        if not ptree.dominates(xb, eb):
            continue
        _convert_cross(eb, enter, xb, exit_op)
        elided += 1
    return elided


def _convert(block: Block, enter: Node, exit_op: Node) -> None:
    index = block.ops.index(enter)
    sle = Node(Kind.SLE_ENTER, [enter.operands[0]], bytecode_pc=enter.bytecode_pc)
    block.ops[index] = sle
    sle.block = block
    enter.block = None
    block.remove_op(exit_op)


def _convert_cross(eb: Block, enter: Node, xb: Block, exit_op: Node) -> None:
    index = eb.ops.index(enter)
    sle = Node(Kind.SLE_ENTER, [enter.operands[0]], bytecode_pc=enter.bytecode_pc)
    eb.ops[index] = sle
    sle.block = eb
    enter.block = None
    xb.remove_op(exit_op)
