"""Region membership analysis: which blocks execute inside which region.

Shared by SLE, the postdominance check eliminator, the verifier-style
invariant checks, and the code generator — all of which need to know, for
an arbitrary (possibly merged-by-simplify) graph, which blocks run
speculatively.
"""

from __future__ import annotations

from ..ir.cfg import Block, Graph
from ..ir.ops import Kind


def region_membership(graph: Graph) -> dict[int, int | None]:
    """Map block id -> region id for in-region blocks (None outside).

    Computed by forward propagation from the entry: REGION_BEGIN's first
    successor enters the region, its second leaves it (recovery), and a
    block containing AREGION_END exits it for its successors.
    """
    assert graph.entry is not None
    state: dict[int, int | None] = {graph.entry.id: None}
    worklist = [graph.entry]
    seen = {graph.entry.id}
    while worklist:
        block = worklist.pop()
        current = state.get(block.id)
        term = block.terminator
        if term is None:
            continue
        out: int | None = current
        if any(op.kind is Kind.AREGION_END for op in block.ops):
            out = None
        for index, succ in enumerate(block.succs):
            if term.kind is Kind.REGION_BEGIN:
                succ_state = term.attrs.get("region_id") if index == 0 else None
            else:
                succ_state = out
            if succ.id not in seen:
                seen.add(succ.id)
                state[succ.id] = succ_state
                worklist.append(succ)
            elif state.get(succ.id) != succ_state and succ_state is not None:
                # Conflicting states would indicate malformed regions; the
                # verifier reports those.  Keep the first state here.
                pass
    return state


def blocks_by_region(graph: Graph) -> dict[int, list[Block]]:
    """Group in-region blocks by region id."""
    membership = region_membership(graph)
    groups: dict[int, list[Block]] = {}
    for block in graph.blocks:
        rid = membership.get(block.id)
        if rid is not None:
            groups.setdefault(rid, []).append(block)
    return groups
