"""Post-dominance bounds-check elimination inside atomic regions (paper §7).

The paper's future-work observation: within an atomic region, a check A
that is *post-dominated* by a subsuming check B may be removed — normally
illegal (A might fail on an execution where B is never reached), but safe
under atomicity because "if B fails, control will be transferred to a
non-speculative version of the code that will test both A and B and report
the failing check properly to the run time."  A hardware fault from the
unguarded access likewise aborts to the precise non-speculative path.

Subsumption implemented: CHECK_BOUNDS(len, i) is removed when
CHECK_BOUNDS(len, i + c) with constant c ≥ 0 post-dominates it in the same
region — the paper's exact example (removing ``check_bounds(c_length, i)``
because ``check_bounds(c_length, i+1)`` post-dominates it, Figure 3).
"""

from __future__ import annotations

from ..ir.cfg import Graph
from ..ir.dom import postdominator_tree
from ..ir.ops import Kind, Node
from .regionmap import blocks_by_region


def _index_base_and_offset(index: Node) -> tuple[Node, int]:
    """Decompose an index as (base, constant offset)."""
    if index.kind is Kind.ADD:
        a, b = index.operands
        if b.kind is Kind.CONST:
            return a, b.attrs["imm"]
        if a.kind is Kind.CONST:
            return b, a.attrs["imm"]
    if index.kind is Kind.SUB and index.operands[1].kind is Kind.CONST:
        return index.operands[0], -index.operands[1].attrs["imm"]
    return index, 0


def _subsumes(b_check: Node, a_check: Node) -> bool:
    """Does check B imply check A (same length, index offset ≥ 0)?"""
    if b_check.operands[0] is not a_check.operands[0]:
        return False  # different length values
    b_base, b_off = _index_base_and_offset(b_check.operands[1])
    a_base, a_off = _index_base_and_offset(a_check.operands[1])
    if b_base is not a_base:
        return False
    return b_off >= a_off


def eliminate_postdominated_checks(graph: Graph) -> int:
    """Remove region checks post-dominated by subsuming checks."""
    groups = blocks_by_region(graph)
    if not groups:
        return 0
    ptree, _virtual = postdominator_tree(graph)
    removed = 0
    for region_blocks in groups.values():
        checks: list[Node] = [
            op
            for block in region_blocks
            for op in block.ops
            if op.kind is Kind.CHECK_BOUNDS
        ]
        if len(checks) < 2:
            continue
        order = {
            op.id: i for block in region_blocks
            for i, op in enumerate(block.ops)
        }
        for a in list(checks):
            if a.block is None:
                continue
            for b in checks:
                if b is a or b.block is None:
                    continue
                if not _subsumes(b, a):
                    continue
                if b.block is a.block:
                    # Same block: B must come after A.
                    if order[b.id] <= order[a.id]:
                        continue
                    a.block.remove_op(a)
                    removed += 1
                    break
                if ptree.dominates(b.block, a.block):
                    a.block.remove_op(a)
                    removed += 1
                    break
    return removed
