"""Algorithm 2 of the paper: dominant-path tracing and loop weights.

``trace_dominant_path`` reconstructs the most frequently executed path
through a seed block by greedily following the hottest out-edge forward and
the hottest in-edge backward, stopping at trace boundaries (method
entry/exit, call blocks, already-selected region boundaries).  Cycles are
broken by stopping when a block would repeat, which the paper's formulation
achieves implicitly because loop headers on hot traces are already selected
as boundaries by the loop pass.
"""

from __future__ import annotations

from ..ir.cfg import Block, Graph
from ..ir.loops import Loop, loop_weight  # re-exported: LOOPWEIGHT lives there
from ..ir.ops import Kind

__all__ = ["trace_dominant_path", "dominant_out_edge", "dominant_in_edge",
           "loop_weight", "block_has_call", "has_call_on_warm_path"]


def dominant_out_edge(block: Block) -> Block | None:
    """Paper's GETDOMINANTOUTEDGE: hottest successor of ``block``."""
    if not block.succs:
        return None
    best_index = max(
        range(len(block.succs)), key=lambda i: block.edge_count_to(i)
    )
    return block.succs[best_index]


def dominant_in_edge(block: Block) -> Block | None:
    """Paper's GETDOMINANTINEDGE: hottest predecessor of ``block``."""
    if not block.preds:
        return None
    best = None
    best_count = -1.0
    for pred, succ_index in block.preds:
        count = pred.edge_count_to(succ_index)
        if count > best_count:
            best, best_count = pred, count
    return best


def trace_dominant_path(
    seed: Block, trace_boundaries: set[int]
) -> list[Block]:
    """Algorithm 2 TRACEDOMINANTPATH: hot path through ``seed``.

    ``trace_boundaries`` holds block ids at which tracing stops (the
    terminal boundary block is *included* in the path, matching the paper's
    pseudocode which appends before testing).
    """
    path = [seed]
    on_path = {seed.id}

    # Forward.
    block = seed
    while block.id not in trace_boundaries or block is seed:
        nxt = dominant_out_edge(block)
        if nxt is None or nxt.id in on_path:
            break
        path.append(nxt)
        on_path.add(nxt.id)
        block = nxt
        if block.id in trace_boundaries:
            break

    # Backward.
    block = seed
    while block.id not in trace_boundaries or block is seed:
        prv = dominant_in_edge(block)
        if prv is None or prv.id in on_path:
            break
        path.insert(0, prv)
        on_path.add(prv.id)
        block = prv
        if block.id in trace_boundaries:
            break
    return path


def block_has_call(block: Block) -> bool:
    """True when the block performs a (non-inlined) call."""
    return any(op.kind in (Kind.CALL, Kind.VCALL) for op in block.ops)


def has_call_on_warm_path(
    start: Block,
    allowed: set[int],
    cold_edge,
) -> bool:
    """Paper's HASCALLONWARMPATH: is a call reachable from ``start`` along
    non-cold edges, staying within the ``allowed`` block-id set?

    ``cold_edge(block, succ_index)`` is the cold-edge predicate (profile
    bias below the 1% threshold).
    """
    seen = {start.id}
    stack = [start]
    while stack:
        block = stack.pop()
        if block_has_call(block):
            return True
        for index, succ in enumerate(block.succs):
            if succ.id not in allowed or succ.id in seen:
                continue
            if cold_edge(block, index):
                continue
            seen.add(succ.id)
            stack.append(succ)
    return False
