"""Natural-loop analysis.

Region formation (paper Algorithm 1) consumes loops in two ways: it
"processes loops from innermost to outermost" when placing per-iteration
region boundaries, and it evaluates ``LOOPWEIGHT`` (Algorithm 2) — the
dynamic path length through the loop — to decide whether a loop iteration
is too large to encapsulate whole.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cfg import Block, Graph
from .dom import DomTree, dominator_tree


@dataclass
class Loop:
    """One natural loop: a header and the set of blocks that reach it."""

    header: Block
    blocks: set[int] = field(default_factory=set)       # block ids
    block_list: list[Block] = field(default_factory=list)
    back_edges: list[tuple[Block, int]] = field(default_factory=list)
    parent: "Loop | None" = None
    children: list["Loop"] = field(default_factory=list)

    @property
    def depth(self) -> int:
        depth, cursor = 0, self.parent
        while cursor is not None:
            depth += 1
            cursor = cursor.parent
        return depth

    def contains_block(self, block: Block) -> bool:
        return block.id in self.blocks

    def exit_edges(self) -> list[tuple[Block, int, Block]]:
        """Edges (src, succ_index, dst) leaving the loop."""
        out = []
        for block in self.block_list:
            for index, succ in enumerate(block.succs):
                if succ.id not in self.blocks:
                    out.append((block, index, succ))
        return out

    def preheader_candidates(self) -> list[Block]:
        """Predecessors of the header from outside the loop."""
        return [
            p for p in self.header.pred_blocks() if p.id not in self.blocks
        ]

    def trip_estimate(self) -> float:
        """Average iterations per entry, from profile counts."""
        entries = sum(
            p.edge_count_to(i)
            for p in self.preheader_candidates()
            for i, s in enumerate(p.succs)
            if s is self.header
        )
        if entries <= 0:
            return self.header.count
        return self.header.count / entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Loop header={self.header} blocks={len(self.blocks)}>"


class LoopForest:
    """All natural loops of a graph, nested."""

    def __init__(self, loops: list[Loop], loop_of_block: dict[int, Loop]) -> None:
        self.loops = loops
        #: innermost loop containing each block id.
        self.loop_of_block = loop_of_block

    def in_postorder(self) -> list[Loop]:
        """Innermost-to-outermost order (paper: LOOPSINPOSTORDER)."""
        roots = [l for l in self.loops if l.parent is None]
        out: list[Loop] = []

        def visit(loop: Loop) -> None:
            for child in loop.children:
                visit(child)
            out.append(loop)

        for root in roots:
            visit(root)
        return out

    def innermost(self, block: Block) -> Loop | None:
        return self.loop_of_block.get(block.id)


def find_loops(graph: Graph, tree: DomTree | None = None) -> LoopForest:
    """Discover natural loops via back edges (tail dominated by head)."""
    if tree is None:
        tree = dominator_tree(graph)
    order = tree.order
    reachable = {b.id for b in order}

    # Group back edges by header.
    headers: dict[int, Loop] = {}
    for block in order:
        for index, succ in enumerate(block.succs):
            if succ.id in reachable and tree.dominates(succ, block):
                loop = headers.get(succ.id)
                if loop is None:
                    loop = headers[succ.id] = Loop(header=succ)
                loop.back_edges.append((block, index))

    # Populate bodies: backward walk from each back-edge tail to the header.
    by_id = {b.id: b for b in order}
    for loop in headers.values():
        loop.blocks = {loop.header.id}
        worklist = [tail for tail, _ in loop.back_edges]
        while worklist:
            block = worklist.pop()
            if block.id in loop.blocks or block.id not in reachable:
                continue
            loop.blocks.add(block.id)
            worklist.extend(block.pred_blocks())
        loop.block_list = [by_id[i] for i in loop.blocks if i in by_id]

    # Nest loops: a loop is a child of the smallest loop strictly containing
    # its header (and itself being a different loop).
    loops = sorted(headers.values(), key=lambda l: len(l.blocks))
    for i, inner in enumerate(loops):
        for outer in loops[i + 1:]:
            if outer is not inner and inner.header.id in outer.blocks:
                inner.parent = outer
                outer.children.append(inner)
                break

    # Innermost loop per block.
    loop_of_block: dict[int, Loop] = {}
    for loop in loops:  # smallest first, so first assignment wins
        for block_id in loop.blocks:
            loop_of_block.setdefault(block_id, loop)
    return LoopForest(loops, loop_of_block)


def loop_weight(loop: Loop) -> float:
    """Paper Algorithm 2 LOOPWEIGHT: sum of exec_count * ops over the body."""
    return sum(block.count * block.op_count() for block in loop.block_list)


def loop_path_length(loop: Loop) -> float:
    """Dynamic ops per loop *entry* (LOOPWEIGHT / preheader count, Alg. 1)."""
    entries = sum(
        p.edge_count_to(i)
        for p in loop.preheader_candidates()
        for i, s in enumerate(p.succs)
        if s is loop.header
    )
    weight = loop_weight(loop)
    if entries <= 0:
        # Never-entered or entry counts unavailable: treat the whole weight
        # as one path so cold loops are not misclassified as small.
        return weight
    return weight / entries
