"""Compiler IR: SSA CFG, analyses, builder, verifier, printer, executor."""

from .build import build_ir
from .cfg import Block, Graph
from .dom import DomTree, dominance_frontiers, dominator_tree, postdominator_tree
from .interp import AbortRecord, IRExecutor
from .loops import Loop, LoopForest, find_loops, loop_path_length, loop_weight
from .ops import (
    ARITH_KINDS,
    CHECK_KINDS,
    COMMUTATIVE_KINDS,
    EFFECT_KINDS,
    Kind,
    LOAD_KINDS,
    Node,
    PURE_KINDS,
    TERMINATOR_KINDS,
    VALUE_KINDS,
)
from .printer import format_block, format_graph, format_node
from .verify import IRVerifyError, verify_graph

__all__ = [
    "ARITH_KINDS",
    "AbortRecord",
    "Block",
    "CHECK_KINDS",
    "COMMUTATIVE_KINDS",
    "DomTree",
    "EFFECT_KINDS",
    "Graph",
    "IRExecutor",
    "IRVerifyError",
    "Kind",
    "LOAD_KINDS",
    "Loop",
    "LoopForest",
    "Node",
    "PURE_KINDS",
    "TERMINATOR_KINDS",
    "VALUE_KINDS",
    "build_ir",
    "dominance_frontiers",
    "dominator_tree",
    "find_loops",
    "format_block",
    "format_graph",
    "format_node",
    "loop_path_length",
    "loop_weight",
    "postdominator_tree",
    "verify_graph",
]
