"""Control-flow graph: blocks, explicit predecessor edges, phi maintenance.

Edges are first-class: each block records ``preds`` as ``(pred_block,
succ_index)`` pairs, and every PHI node's operands are positionally aligned
with that list.  All CFG mutation goes through :class:`Graph` methods so the
alignment invariant survives inlining, region replication, branch folding,
and block merging (verified by :mod:`repro.ir.verify`).

Atomic regions appear in the CFG exactly as the paper describes (§4,
"atomic regions and abort as try/catch"): a region-entry block ends in a
``REGION_BEGIN`` terminator whose successor 0 is the speculative body and
successor 1 is the non-speculative recovery code — structurally a try block
with its catch edge.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator

from .ops import Kind, Node, TERMINATOR_KINDS

_block_ids = itertools.count()


class Block:
    """A basic block: phis, straight-line ops, one terminator."""

    __slots__ = (
        "id", "phis", "ops", "terminator", "succs", "preds",
        "count", "src_pc", "inline_ctx", "region_id", "is_recovery",
        "region_entry",
    )

    def __init__(self, src_pc: int | None = None) -> None:
        self.id = next(_block_ids)
        self.phis: list[Node] = []
        self.ops: list[Node] = []
        self.terminator: Node | None = None
        self.succs: list[Block] = []
        #: (pred block, index into pred.succs) — phi operands align with this.
        self.preds: list[tuple[Block, int]] = []
        #: Profile execution count (from the tier-0 interpreter).
        self.count: float = 0.0
        #: Originating bytecode pc (region boundaries map back through this).
        self.src_pc = src_pc
        #: Inline context: tuple of callsite descriptions, () for root code.
        self.inline_ctx: tuple = ()
        #: Region id when this block is replicated speculative code.
        self.region_id: int | None = None
        #: True for blocks that are only reachable via recovery edges.
        self.is_recovery = False
        #: When region formation interposes a region-entry block in front of
        #: this block, the entry block is recorded here so later edges into
        #: the original location can be routed through it.
        self.region_entry: "Block | None" = None

    # -- contents ----------------------------------------------------------
    def append(self, node: Node) -> Node:
        if node.kind is Kind.PHI:
            node.block = self
            self.phis.append(node)
        elif node.kind in TERMINATOR_KINDS:
            raise ValueError("use Graph.set_terminator for terminators")
        else:
            node.block = self
            self.ops.append(node)
        return node

    def insert_op(self, index: int, node: Node) -> Node:
        node.block = self
        self.ops.insert(index, node)
        return node

    def remove_op(self, node: Node) -> None:
        if node.kind is Kind.PHI:
            self.phis.remove(node)
        else:
            self.ops.remove(node)
        node.block = None

    def all_nodes(self) -> Iterator[Node]:
        yield from self.phis
        yield from self.ops
        if self.terminator is not None:
            yield self.terminator

    def op_count(self) -> int:
        """High-level operation count (the unit of the paper's R = 200)."""
        return len(self.ops) + (1 if self.terminator is not None else 0)

    def pred_blocks(self) -> list["Block"]:
        return [p for p, _ in self.preds]

    def edge_count_to(self, succ_index: int) -> float:
        """Profile-estimated traversal count of out-edge ``succ_index``."""
        term = self.terminator
        if term is None:
            return 0.0
        counts = term.attrs.get("edge_counts")
        if counts is not None and succ_index < len(counts):
            return counts[succ_index]
        # No branch profile: split the block count evenly.
        return self.count / max(len(self.succs), 1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"B{self.id}"


class Graph:
    """A method's IR: blocks, an entry, and edge-mutation primitives."""

    def __init__(self, method_name: str, num_params: int = 0) -> None:
        self.method_name = method_name
        self.num_params = num_params
        self.entry: Block | None = None
        self.blocks: list[Block] = []
        #: Monotonic region-id source for REGION_BEGIN terminators.
        self._next_region_id = 0

    # -- construction --------------------------------------------------------
    def new_block(self, src_pc: int | None = None) -> Block:
        block = Block(src_pc=src_pc)
        self.blocks.append(block)
        return block

    def fresh_region_id(self) -> int:
        rid = self._next_region_id
        self._next_region_id += 1
        return rid

    def set_terminator(self, block: Block, term: Node, succs: Iterable[Block]) -> Node:
        """Install ``term`` and wire its out-edges (phi-aware)."""
        if block.terminator is not None:
            self.clear_terminator(block)
        if term.kind not in TERMINATOR_KINDS:
            raise ValueError(f"{term.kind} is not a terminator")
        term.block = block
        block.terminator = term
        for succ in succs:
            self._link(block, succ)
        return term

    def clear_terminator(self, block: Block) -> None:
        """Remove the terminator and unlink all out-edges."""
        for index in reversed(range(len(block.succs))):
            self._unlink(block, index)
        if block.terminator is not None:
            block.terminator.block = None
        block.terminator = None

    # -- edge mutation ---------------------------------------------------------
    def _link(self, pred: Block, succ: Block, phi_values: list[Node] | None = None) -> None:
        index = len(pred.succs)
        pred.succs.append(succ)
        succ.preds.append((pred, index))
        values = phi_values or []
        if succ.phis and len(values) != len(succ.phis):
            raise ValueError(
                f"edge {pred}->{succ}: {len(succ.phis)} phis need values, "
                f"got {len(values)}"
            )
        for phi, value in zip(succ.phis, values):
            phi.operands.append(value)

    def _unlink(self, pred: Block, succ_index: int) -> None:
        succ = pred.succs[succ_index]
        # Remove the phi operands and preds entry for this edge.
        for pos, (p, idx) in enumerate(succ.preds):
            if p is pred and idx == succ_index:
                del succ.preds[pos]
                for phi in succ.phis:
                    del phi.operands[pos]
                break
        else:
            raise ValueError(f"edge {pred}[{succ_index}]->{succ} not found")
        del pred.succs[succ_index]
        # Shift succ indices recorded in downstream preds entries.
        for i in range(succ_index, len(pred.succs)):
            target = pred.succs[i]
            target.preds = [
                (p, idx - 1) if (p is pred and idx == i + 1) else (p, idx)
                for (p, idx) in target.preds
            ]

    def replace_succ(
        self,
        pred: Block,
        succ_index: int,
        new_succ: Block,
        phi_values: list[Node] | None = None,
    ) -> None:
        """Point out-edge ``succ_index`` of ``pred`` at ``new_succ``.

        Phi operands on the old successor are dropped; ``phi_values`` supplies
        the operands for phis in the new successor (must match in count).
        """
        old = pred.succs[succ_index]
        for pos, (p, idx) in enumerate(old.preds):
            if p is pred and idx == succ_index:
                del old.preds[pos]
                for phi in old.phis:
                    del phi.operands[pos]
                break
        else:
            raise ValueError(f"edge {pred}[{succ_index}] not found in {old}.preds")
        pred.succs[succ_index] = new_succ
        new_succ.preds.append((pred, succ_index))
        values = phi_values or []
        if new_succ.phis and len(values) != len(new_succ.phis):
            raise ValueError(
                f"edge {pred}->{new_succ}: {len(new_succ.phis)} phis need "
                f"values, got {len(values)}"
            )
        for phi, value in zip(new_succ.phis, values):
            phi.operands.append(value)

    def redirect_all_edges(
        self,
        old_succ: Block,
        new_succ: Block,
        keep: Iterable[tuple[Block, int]] = (),
    ) -> None:
        """Redirect every edge into ``old_succ`` to ``new_succ``.

        ``keep`` lists (pred, succ_index) edges to leave untouched.  Both
        blocks must be phi-free (the only callers redirect into fresh region
        entry blocks, which never carry phis).
        """
        if old_succ.phis or new_succ.phis:
            raise ValueError("redirect_all_edges requires phi-free blocks")
        kept = set(keep)
        for pred, succ_index in list(old_succ.preds):
            if (pred, succ_index) in kept:
                continue
            self.replace_succ(pred, succ_index, new_succ)

    # -- traversal -----------------------------------------------------------
    def rpo(self) -> list[Block]:
        """Reverse postorder over blocks reachable from the entry."""
        assert self.entry is not None
        seen: set[int] = set()
        order: list[Block] = []

        stack: list[tuple[Block, int]] = [(self.entry, 0)]
        seen.add(self.entry.id)
        while stack:
            block, child = stack[-1]
            if child < len(block.succs):
                stack[-1] = (block, child + 1)
                succ = block.succs[child]
                if succ.id not in seen:
                    seen.add(succ.id)
                    stack.append((succ, 0))
            else:
                stack.pop()
                order.append(block)
        order.reverse()
        return order

    def reachable(self) -> set[int]:
        return {b.id for b in self.rpo()}

    def prune_unreachable(self) -> list[Block]:
        """Drop unreachable blocks (fixing phi/pred state); returns removals."""
        live = self.reachable()
        dead = [b for b in self.blocks if b.id not in live]
        for block in dead:
            # Unlink edges from dead blocks into live blocks.
            for index in reversed(range(len(block.succs))):
                self._unlink(block, index)
        self.blocks = [b for b in self.blocks if b.id in live]
        return dead

    def node_count(self) -> int:
        return sum(len(b.phis) + b.op_count() for b in self.blocks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Graph {self.method_name}: {len(self.blocks)} blocks>"
