"""Bytecode → SSA IR translation.

Mirrors the front end of the paper's optimizing JIT: it expands the safety
checks implicit in heap bytecodes into explicit ``CHECK_*`` IR operations
("check_NULL(cached)" / "check_bounds(c_length, i)" in the paper's Figure
2/3 notation), attaches the tier-0 profile to blocks and branch edges, and
constructs SSA form via iterated dominance frontiers.

Every IR node keeps its originating ``bytecode_pc`` so that region
boundaries, abort diagnostics, and call-site profiles can be mapped back to
the program.
"""

from __future__ import annotations

from ..lang.bytecode import Instr, Method, Op
from ..runtime.interpreter import block_leaders
from ..runtime.profile import MethodProfile
from .cfg import Block, Graph
from .dom import dominance_frontiers, dominator_tree
from .ops import Kind, Node

_BINOP_KINDS = {
    Op.ADD: Kind.ADD, Op.SUB: Kind.SUB, Op.MUL: Kind.MUL, Op.DIV: Kind.DIV,
    Op.MOD: Kind.MOD, Op.AND: Kind.AND, Op.OR: Kind.OR, Op.XOR: Kind.XOR,
    Op.SHL: Kind.SHL, Op.SHR: Kind.SHR,
}


def build_ir(method: Method, profile: MethodProfile | None = None) -> Graph:
    """Translate ``method`` into a fresh SSA graph.

    ``profile`` supplies block counts and branch biases; without it the
    graph is still correct but region formation will see zero counts.
    """
    builder = _IRBuilder(method, profile)
    return builder.build()


class _IRBuilder:
    def __init__(self, method: Method, profile: MethodProfile | None) -> None:
        self.method = method
        self.profile = profile
        self.graph = Graph(method.qualified_name, num_params=method.num_params)
        self.block_of_pc: dict[int, Block] = {}
        self.leaders: list[int] = []
        self.num_regs = max(method.num_regs, method.num_params)

    # -- pipeline -----------------------------------------------------------
    def build(self) -> Graph:
        self._make_blocks()
        self._wire_edges()
        self._insert_phis()
        self._rename()
        self.graph.prune_unreachable()
        return self.graph

    # -- step 1: skeleton -----------------------------------------------------
    def _make_blocks(self) -> None:
        leaders = sorted(block_leaders(self.method))
        self.leaders = leaders
        for pc in leaders:
            block = self.graph.new_block(src_pc=pc)
            if self.profile is not None:
                block.count = float(self.profile.block_counts.get(pc, 0))
            self.block_of_pc[pc] = block
        entry = self.graph.new_block(src_pc=None)
        if self.profile is not None:
            entry.count = float(self.profile.invocations)
        self.graph.entry = entry

    def _block_range(self, leader: int) -> tuple[int, int]:
        """Instruction span [start, end) of the block starting at ``leader``."""
        idx = self.leaders.index(leader)
        end = (
            self.leaders[idx + 1]
            if idx + 1 < len(self.leaders)
            else len(self.method.instrs)
        )
        return leader, end

    def _wire_edges(self) -> None:
        graph = self.graph
        # Entry block: PARAM nodes then a jump to pc 0.
        entry = graph.entry
        assert entry is not None
        for index in range(self.method.num_params):
            entry.append(Node(Kind.PARAM, index=index))
        graph.set_terminator(entry, Node(Kind.JUMP), [self.block_of_pc[0]])

        for leader in self.leaders:
            block = self.block_of_pc[leader]
            start, end = self._block_range(leader)
            last = self.method.instrs[end - 1]
            last_pc = end - 1
            if last.op is Op.BR:
                term = Node(Kind.BRANCH, cond=last.cond, bytecode_pc=last_pc)
                taken = self.block_of_pc[last.target]
                fall = self.block_of_pc[end]
                if self.profile is not None and last_pc in self.profile.branches:
                    bprof = self.profile.branches[last_pc]
                    term.attrs["edge_counts"] = (
                        float(bprof.taken),
                        float(bprof.not_taken),
                    )
                graph.set_terminator(block, term, [taken, fall])
            elif last.op is Op.JMP:
                graph.set_terminator(
                    block, Node(Kind.JUMP, bytecode_pc=last_pc),
                    [self.block_of_pc[last.target]],
                )
            elif last.op is Op.RET:
                graph.set_terminator(
                    block, Node(Kind.RETURN, bytecode_pc=last_pc), []
                )
            else:
                # Fallthrough into the next leader.
                graph.set_terminator(
                    block, Node(Kind.JUMP, bytecode_pc=last_pc),
                    [self.block_of_pc[end]],
                )

    # -- step 2: phi insertion ---------------------------------------------
    def _defs_in_block(self, leader: int) -> set[int]:
        start, end = self._block_range(leader)
        defs: set[int] = set()
        from ..lang.bytecode import PRODUCES

        for instr in self.method.instrs[start:end]:
            if instr.op in PRODUCES and instr.dst is not None:
                defs.add(instr.dst)
        return defs

    def _insert_phis(self) -> None:
        graph = self.graph
        tree = dominator_tree(graph)
        frontiers = dominance_frontiers(graph, tree)
        reachable = {b.id for b in tree.order}

        def_blocks: dict[int, set[Block]] = {r: set() for r in range(self.num_regs)}
        for leader in self.leaders:
            block = self.block_of_pc[leader]
            if block.id not in reachable:
                continue
            for reg in self._defs_in_block(leader):
                def_blocks[reg].add(block)
        entry = graph.entry
        assert entry is not None
        for index in range(self.method.num_params):
            def_blocks[index].add(entry)

        self.phi_reg: dict[int, int] = {}  # phi node id -> register
        for reg, blocks in def_blocks.items():
            worklist = list(blocks)
            placed: set[int] = set()
            while worklist:
                block = worklist.pop()
                for target in frontiers.get(block.id, ()):  # join points
                    if target.id in placed:
                        continue
                    placed.add(target.id)
                    phi = Node(Kind.PHI)
                    phi.operands = [None] * len(target.preds)  # type: ignore[list-item]
                    target.phis.append(phi)
                    phi.block = target
                    self.phi_reg[phi.id] = reg
                    if target not in blocks:
                        worklist.append(target)

    # -- step 3: renaming -------------------------------------------------------
    def _rename(self) -> None:
        graph = self.graph
        tree = dominator_tree(graph)
        entry = graph.entry
        assert entry is not None

        undef = Node(Kind.CONST, imm=0)
        entry.insert_op(0, undef)
        self._undef = undef

        out_maps: dict[int, dict[int, Node]] = {}

        for block in tree.walk_preorder():
            parent = tree.idom.get(block.id)
            if block is entry:
                env: dict[int, Node] = {}
                for node in list(block.ops):
                    if node.kind is Kind.PARAM:
                        env[node.attrs["index"]] = node
            else:
                assert parent is not None
                env = dict(out_maps[parent.id])
            for phi in block.phis:
                env[self.phi_reg[phi.id]] = phi
            if block.src_pc is not None:
                self._translate_block(block, env)
            out_maps[block.id] = env
            # Feed phi operands of successors along each out-edge.
            for succ in block.succs:
                for pos, (pred, idx) in enumerate(succ.preds):
                    if pred is not block:
                        continue
                    for phi in succ.phis:
                        if phi.operands[pos] is None:
                            reg = self.phi_reg[phi.id]
                            phi.operands[pos] = env.get(reg, self._undef)

        # Any phi operand still None feeds from an unreachable pred edge;
        # prune_unreachable (called by build) removes those edges, but fill
        # defensively first.
        for block in graph.blocks:
            for phi in block.phis:
                phi.operands = [
                    op if op is not None else self._undef for op in phi.operands
                ]

    # -- instruction translation -----------------------------------------------
    def _translate_block(self, block: Block, env: dict[int, Node]) -> None:
        start, end = self._block_range(block.src_pc)
        graph = self.graph

        def emit(kind: Kind, operands=(), pc: int | None = None, **attrs) -> Node:
            node = Node(kind, operands, bytecode_pc=pc, **attrs)
            block.append(node)
            return node

        def use(reg: int | None) -> Node:
            if reg is None:
                raise ValueError("missing operand register")
            return env.get(reg, self._undef)

        for pc in range(start, end):
            instr: Instr = self.method.instrs[pc]
            op = instr.op
            if op is Op.CONST:
                env[instr.dst] = emit(Kind.CONST, pc=pc, imm=instr.imm)
            elif op is Op.CONST_NULL:
                env[instr.dst] = emit(Kind.CONST_NULL, pc=pc)
            elif op is Op.MOV:
                env[instr.dst] = use(instr.a)
            elif op in _BINOP_KINDS:
                a, b = use(instr.a), use(instr.b)
                if op in (Op.DIV, Op.MOD):
                    emit(Kind.CHECK_DIV0, [b], pc=pc)
                env[instr.dst] = emit(_BINOP_KINDS[op], [a, b], pc=pc)
            elif op is Op.NEW:
                env[instr.dst] = emit(Kind.NEW, pc=pc, cls=instr.cls)
            elif op is Op.NEWARR:
                env[instr.dst] = emit(Kind.NEWARR, [use(instr.a)], pc=pc)
            elif op is Op.GETF:
                obj = use(instr.a)
                emit(Kind.CHECK_NULL, [obj], pc=pc)
                env[instr.dst] = emit(
                    Kind.GETFIELD, [obj], pc=pc, field=instr.fieldname
                )
            elif op is Op.PUTF:
                obj, value = use(instr.a), use(instr.b)
                emit(Kind.CHECK_NULL, [obj], pc=pc)
                emit(Kind.PUTFIELD, [obj, value], pc=pc, field=instr.fieldname)
            elif op is Op.FAA:
                obj, delta = use(instr.a), use(instr.b)
                emit(Kind.CHECK_NULL, [obj], pc=pc)
                env[instr.dst] = emit(
                    Kind.FAA, [obj, delta], pc=pc, field=instr.fieldname
                )
            elif op is Op.CAS:
                obj = use(instr.a)
                expected, new = use(instr.b), use(instr.c)
                emit(Kind.CHECK_NULL, [obj], pc=pc)
                env[instr.dst] = emit(
                    Kind.CAS, [obj, expected, new], pc=pc,
                    field=instr.fieldname,
                )
            elif op is Op.LL:
                obj = use(instr.a)
                emit(Kind.CHECK_NULL, [obj], pc=pc)
                env[instr.dst] = emit(
                    Kind.LL, [obj], pc=pc, field=instr.fieldname
                )
            elif op is Op.SC:
                obj, value = use(instr.a), use(instr.b)
                emit(Kind.CHECK_NULL, [obj], pc=pc)
                env[instr.dst] = emit(
                    Kind.SC, [obj, value], pc=pc, field=instr.fieldname
                )
            elif op is Op.ALOAD:
                arr, idx = use(instr.a), use(instr.b)
                emit(Kind.CHECK_NULL, [arr], pc=pc)
                length = emit(Kind.ALEN, [arr], pc=pc)
                emit(Kind.CHECK_BOUNDS, [length, idx], pc=pc)
                env[instr.dst] = emit(Kind.ALOAD, [arr, idx], pc=pc)
            elif op is Op.ASTORE:
                arr, idx, value = use(instr.a), use(instr.b), use(instr.c)
                emit(Kind.CHECK_NULL, [arr], pc=pc)
                length = emit(Kind.ALEN, [arr], pc=pc)
                emit(Kind.CHECK_BOUNDS, [length, idx], pc=pc)
                emit(Kind.ASTORE, [arr, idx, value], pc=pc)
            elif op is Op.ALEN:
                arr = use(instr.a)
                emit(Kind.CHECK_NULL, [arr], pc=pc)
                env[instr.dst] = emit(Kind.ALEN, [arr], pc=pc)
            elif op is Op.CALL:
                args = [use(r) for r in instr.args]
                env[instr.dst] = emit(
                    Kind.CALL, args, pc=pc, method=instr.method,
                    src_method=self.method.qualified_name,
                )
            elif op is Op.VCALL:
                args = [use(r) for r in instr.args]
                emit(Kind.CHECK_NULL, [args[0]], pc=pc)
                env[instr.dst] = emit(
                    Kind.VCALL, args, pc=pc, method=instr.method,
                    src_method=self.method.qualified_name,
                )
            elif op is Op.MENTER:
                obj = use(instr.a)
                emit(Kind.CHECK_NULL, [obj], pc=pc)
                emit(Kind.MONITOR_ENTER, [obj], pc=pc)
            elif op is Op.MEXIT:
                obj = use(instr.a)
                emit(Kind.CHECK_NULL, [obj], pc=pc)
                emit(Kind.MONITOR_EXIT, [obj], pc=pc)
            elif op is Op.SAFEPOINT:
                emit(Kind.SAFEPOINT, pc=pc)
            elif op is Op.NOP:
                pass
            elif op is Op.BR:
                term = block.terminator
                assert term is not None and term.kind is Kind.BRANCH
                term.operands = [use(instr.a), use(instr.b)]
            elif op is Op.RET:
                term = block.terminator
                assert term is not None and term.kind is Kind.RETURN
                if instr.a is not None:
                    term.operands = [use(instr.a)]
            elif op is Op.JMP:
                pass
            else:  # pragma: no cover - exhaustive over Op
                raise AssertionError(f"unhandled bytecode op {op}")
