"""IR node definitions.

The compiler IR is an SSA control-flow graph.  Every operation is a
:class:`Node`; value-producing nodes *are* their value (operands reference
producing nodes directly), which is the cheapest faithful model of the
def-use chains a real optimizing JVM IR maintains.

Design points taken from the paper:

- Safety checks (``CHECK_NULL``, ``CHECK_BOUNDS``, ``CHECK_DIV0``,
  ``CHECK_CLASS``) are explicit, side-effect-free operations, so redundancy
  elimination can deduplicate them like arithmetic.
- ``ASSERT`` — the atomic-region replacement for a cold branch — is "a
  simple operation that has only source operands and no side effects, like
  an ALU operation that produces no value" (§4).  Passes other than DCE can
  ignore it entirely.
- ``AREGION_END`` commits the current region; region *entry* is a block
  terminator (see :mod:`repro.ir.cfg`) because it forks control between the
  speculative body and the non-speculative recovery code.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any


class Kind(enum.Enum):
    """IR operation kinds."""

    # Pure value producers.
    CONST = enum.auto()          # attrs: imm
    CONST_NULL = enum.auto()
    CONST_CLASS = enum.auto()    # attrs: cls   (a class metadata reference)
    PARAM = enum.auto()          # attrs: index
    PHI = enum.auto()            # operands aligned with block.preds order
    ADD = enum.auto()
    SUB = enum.auto()
    MUL = enum.auto()
    DIV = enum.auto()            # value op; guarded by CHECK_DIV0
    MOD = enum.auto()
    AND = enum.auto()
    OR = enum.auto()
    XOR = enum.auto()
    SHL = enum.auto()
    SHR = enum.auto()
    CLASSOF = enum.auto()        # class metadata of a non-null reference
    ALEN = enum.auto()           # array length (immutable after allocation)

    # Memory reads (subject to kills by stores/calls).
    GETFIELD = enum.auto()       # operands: obj;       attrs: field
    ALOAD = enum.auto()          # operands: arr, idx

    # Allocation (side effect: observable identity, never removed if used;
    # unused allocations are removable — our guest has no finalizers).
    NEW = enum.auto()            # attrs: cls
    NEWARR = enum.auto()         # operands: length

    # Calls (side effects; kill all memory facts).
    CALL = enum.auto()           # operands: args;  attrs: method
    VCALL = enum.auto()          # operands: receiver+args; attrs: method

    # Memory writes.
    PUTFIELD = enum.auto()       # operands: obj, value; attrs: field
    ASTORE = enum.auto()         # operands: arr, idx, value

    # Atomic read-modify-write primitives (value-producing effects: they
    # both read and write memory in one indivisible uop, so they are never
    # CSE'd, hoisted, or removed, and they kill every memory fact).
    FAA = enum.auto()            # operands: obj, delta;          attrs: field
    CAS = enum.auto()            # operands: obj, expected, new;  attrs: field
    LL = enum.auto()             # operands: obj;                 attrs: field
    SC = enum.auto()             # operands: obj, value;          attrs: field

    # Safety checks: pure predicates that trap (or, inside an atomic
    # region, abort) when violated.
    CHECK_NULL = enum.auto()     # operands: ref
    CHECK_BOUNDS = enum.auto()   # operands: length, index
    CHECK_DIV0 = enum.auto()     # operands: divisor
    CHECK_CLASS = enum.auto()    # operands: classof-value; attrs: cls

    # Synchronization.
    MONITOR_ENTER = enum.auto()  # operands: obj
    MONITOR_EXIT = enum.auto()   # operands: obj
    SLE_ENTER = enum.auto()      # operands: obj — elided monitor entry:
                                 # load lock word, verify not held by another
                                 # thread, abort region otherwise (§4 SLE)

    # Atomic-region operations.
    ASSERT = enum.auto()         # operands: a, b; attrs: cond, abort_id —
                                 # aborts the region when cond(a, b) is TRUE
    AREGION_END = enum.auto()    # commit the current region

    # Misc effects.
    SAFEPOINT = enum.auto()      # GC yield poll (load + branch in codegen)

    # Block terminators.
    BRANCH = enum.auto()         # operands: a, b; attrs: cond; succs: [taken, fallthrough]
    JUMP = enum.auto()           # succs: [target]
    RETURN = enum.auto()         # operands: value (optional; may be empty)
    REGION_BEGIN = enum.auto()   # succs: [speculative_entry, recovery_entry]
                                 # attrs: region_id


#: Kinds that produce an SSA value.
VALUE_KINDS = frozenset({
    Kind.CONST, Kind.CONST_NULL, Kind.CONST_CLASS, Kind.PARAM, Kind.PHI,
    Kind.ADD, Kind.SUB, Kind.MUL, Kind.DIV, Kind.MOD, Kind.AND, Kind.OR,
    Kind.XOR, Kind.SHL, Kind.SHR, Kind.CLASSOF, Kind.ALEN, Kind.GETFIELD,
    Kind.ALOAD, Kind.NEW, Kind.NEWARR, Kind.CALL, Kind.VCALL,
    Kind.FAA, Kind.CAS, Kind.LL, Kind.SC,
})

#: Pure kinds: value depends only on operands; no side effects; cannot be
#: killed by stores.  (ALEN is pure because array lengths are immutable;
#: CLASSOF because object classes are immutable.)
PURE_KINDS = frozenset({
    Kind.CONST, Kind.CONST_NULL, Kind.CONST_CLASS, Kind.PARAM,
    Kind.ADD, Kind.SUB, Kind.MUL, Kind.DIV, Kind.MOD, Kind.AND, Kind.OR,
    Kind.XOR, Kind.SHL, Kind.SHR, Kind.CLASSOF, Kind.ALEN,
})

#: Checks: pure predicates over SSA values; trap/abort when violated.
CHECK_KINDS = frozenset({
    Kind.CHECK_NULL, Kind.CHECK_BOUNDS, Kind.CHECK_DIV0, Kind.CHECK_CLASS,
})

#: Memory-reading kinds, killable by stores/calls/region boundaries.
LOAD_KINDS = frozenset({Kind.GETFIELD, Kind.ALOAD})

#: Kinds with side effects that anchor them in place (never moved/removed).
EFFECT_KINDS = frozenset({
    Kind.CALL, Kind.VCALL, Kind.PUTFIELD, Kind.ASTORE, Kind.MONITOR_ENTER,
    Kind.MONITOR_EXIT, Kind.SLE_ENTER, Kind.ASSERT, Kind.AREGION_END,
    Kind.SAFEPOINT, Kind.FAA, Kind.CAS, Kind.LL, Kind.SC,
})

#: Atomic read-modify-write kinds (value-producing AND effectful).
ATOMIC_KINDS = frozenset({Kind.FAA, Kind.CAS, Kind.LL, Kind.SC})

#: Terminator kinds.
TERMINATOR_KINDS = frozenset({
    Kind.BRANCH, Kind.JUMP, Kind.RETURN, Kind.REGION_BEGIN,
})

#: Binary integer arithmetic kinds.
ARITH_KINDS = frozenset({
    Kind.ADD, Kind.SUB, Kind.MUL, Kind.DIV, Kind.MOD, Kind.AND, Kind.OR,
    Kind.XOR, Kind.SHL, Kind.SHR,
})

#: Commutative arithmetic kinds (for value-numbering canonicalization).
COMMUTATIVE_KINDS = frozenset({Kind.ADD, Kind.MUL, Kind.AND, Kind.OR, Kind.XOR})

_node_ids = itertools.count()


class Node:
    """One IR operation; value-producing nodes double as their SSA value."""

    __slots__ = ("id", "kind", "operands", "attrs", "block", "bytecode_pc")

    def __init__(
        self,
        kind: Kind,
        operands: list["Node"] | tuple["Node", ...] = (),
        bytecode_pc: int | None = None,
        **attrs: Any,
    ) -> None:
        self.id = next(_node_ids)
        self.kind = kind
        self.operands: list[Node] = list(operands)
        self.attrs: dict[str, Any] = attrs
        self.block = None  # set when appended to a block
        self.bytecode_pc = bytecode_pc

    # -- attribute accessors -------------------------------------------------
    @property
    def imm(self) -> int:
        return self.attrs["imm"]

    @property
    def cond(self) -> str:
        return self.attrs["cond"]

    @property
    def field(self) -> str:
        return self.attrs["field"]

    @property
    def cls(self) -> str:
        return self.attrs["cls"]

    @property
    def method(self) -> str:
        return self.attrs["method"]

    def is_value(self) -> bool:
        return self.kind in VALUE_KINDS

    def is_pure(self) -> bool:
        return self.kind in PURE_KINDS

    def is_check(self) -> bool:
        return self.kind in CHECK_KINDS

    def is_terminator(self) -> bool:
        return self.kind in TERMINATOR_KINDS

    def is_const(self) -> bool:
        return self.kind is Kind.CONST

    def is_null(self) -> bool:
        return self.kind is Kind.CONST_NULL

    def replace_operand(self, old: "Node", new: "Node") -> None:
        self.operands = [new if op is old else op for op in self.operands]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = ""
        if self.attrs:
            extra = " " + " ".join(f"{k}={v}" for k, v in self.attrs.items())
        ops = ", ".join(f"n{o.id}" for o in self.operands)
        return f"n{self.id}:{self.kind.name}({ops}){extra}"
