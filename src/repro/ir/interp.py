"""IR-level executor with full atomic-region semantics.

This is the reference semantics for the IR: it executes a graph directly,
including ``REGION_BEGIN`` / ``ASSERT`` / ``AREGION_END`` with genuine
rollback (heap and monitor state restored, control transferred to the
recovery successor).  Its purpose is *differential testing*: every compiler
transform must leave a graph that computes the same results as the bytecode
interpreter, and every region-formed graph must compute the same results
even when asserts fire.

It intentionally models what the paper's hardware guarantees — "either the
region commits successfully, or all changes performed in the region are
undone and control is transferred to an alternate region" (§3.2) — without
any of the microarchitecture, which lives in :mod:`repro.hw`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang.bytecode import Program
from ..runtime.errors import (
    GuestArithmeticError,
    GuestError,
    MonitorStateError,
    VMError,
)
from ..runtime.heap import GuestArray, GuestObject, Heap, Value
from ..runtime.interpreter import compare, guest_div, guest_mod, wrap_int
from ..runtime.locks import MAIN_THREAD
from ..runtime.sched import DEFAULT_LINE_SHIFT
from .cfg import Block, Graph
from .ops import Kind, Node


@dataclass
class AbortRecord:
    """One region abort observed during IR execution."""

    region_id: int | None
    reason: str            # "assert" | "exception" | "sle_conflict" | "injected"
    node_id: int | None


@dataclass
class _Checkpoint:
    begin_block: Block
    region_id: int | None
    heap_log: list = field(default_factory=list)   # undo entries
    lock_log: list = field(default_factory=list)   # (lock, owner, depth, reserver, acq, cacq)
    #: This thread's LL/SC reservation at region entry (None = none held).
    #: An abort rewinds the reservation station along with the heap.
    reservation: int | None = None


class RegionRollback(Exception):
    """Internal control transfer: unwind to the active region's recovery."""

    def __init__(self, reason: str, node: Node | None) -> None:
        super().__init__(reason)
        self.reason = reason
        self.node = node


class IRExecutor:
    """Executes IR graphs against the shared runtime heap."""

    def __init__(
        self,
        program: Program,
        heap: Heap | None = None,
        dispatcher=None,
        fuel: int | None = None,
        abort_injector=None,
    ) -> None:
        self.program = program
        self.heap = heap if heap is not None else Heap()
        #: invoked for CALL/VCALL; anything with .invoke(method, args).
        self.dispatcher = dispatcher
        self.fuel = fuel
        self.steps = 0
        self.aborts: list[AbortRecord] = []
        self.regions_entered = 0
        self.regions_committed = 0
        #: optional callable (region_id, node) -> str | None; returning a
        #: string aborts the region with that reason (conflict injection).
        self.abort_injector = abort_injector
        #: optional callable (block, env) invoked at each block entry after
        #: phi evaluation — a tracing hook for tests and debugging tools.
        self.on_block = None

    # -- public ----------------------------------------------------------------
    def run(self, graph: Graph, args: list[Value]) -> Value:
        if len(args) != graph.num_params:
            raise VMError(
                f"{graph.method_name}: expected {graph.num_params} args, "
                f"got {len(args)}"
            )
        env: dict[int, Value] = {}
        checkpoint: _Checkpoint | None = None
        block = graph.entry
        prev: tuple[Block, int] | None = None
        assert block is not None

        while True:
            # Phis first, all-at-once against the incoming edge.
            if block.phis:
                position = self._edge_position(prev, block)
                new_values = [env[phi.operands[position].id] for phi in block.phis]
                for phi, value in zip(block.phis, new_values):
                    env[phi.id] = value
            if self.on_block is not None:
                self.on_block(block, env)

            try:
                for node in block.ops:
                    if node.kind is Kind.AREGION_END:
                        if checkpoint is None:
                            raise VMError("AREGION_END outside a region")
                        self.regions_committed += 1
                        checkpoint = None
                        continue
                    self._step(node, env, args, checkpoint)
            except RegionRollback as rollback:
                assert checkpoint is not None
                self._rollback(checkpoint)
                self.aborts.append(
                    AbortRecord(
                        checkpoint.region_id,
                        rollback.reason,
                        rollback.node.id if rollback.node is not None else None,
                    )
                )
                prev = (checkpoint.begin_block, 1)
                block = checkpoint.begin_block.succs[1]
                checkpoint = None
                continue
            except GuestError:
                if checkpoint is not None:
                    # Precise exceptions: abort, rerun non-speculatively; the
                    # recovery path will re-raise outside the region.
                    self._rollback(checkpoint)
                    self.aborts.append(
                        AbortRecord(checkpoint.region_id, "exception", None)
                    )
                    prev = (checkpoint.begin_block, 1)
                    block = checkpoint.begin_block.succs[1]
                    checkpoint = None
                    continue
                raise

            term = block.terminator
            assert term is not None
            kind = term.kind
            if kind is Kind.RETURN:
                if checkpoint is not None:
                    raise VMError("RETURN inside an uncommitted atomic region")
                return env[term.operands[0].id] if term.operands else None
            if kind is Kind.JUMP:
                prev, block = (block, 0), block.succs[0]
                continue
            if kind is Kind.BRANCH:
                a = env[term.operands[0].id]
                b = env[term.operands[1].id]
                taken = compare(term.attrs["cond"], a, b)
                index = 0 if taken else 1
                prev, block = (block, index), block.succs[index]
                continue
            if kind is Kind.REGION_BEGIN:
                if checkpoint is not None:
                    raise VMError("nested REGION_BEGIN")
                checkpoint = _Checkpoint(
                    begin_block=block, region_id=term.attrs.get("region_id"),
                    reservation=self.heap.reservations.get(MAIN_THREAD),
                )
                self.regions_entered += 1
                prev, block = (block, 0), block.succs[0]
                continue
            raise VMError(f"unhandled terminator {kind}")  # pragma: no cover

    # -- helpers ------------------------------------------------------------------
    def _edge_position(
        self, prev: tuple[Block, int] | None, block: Block
    ) -> int:
        if prev is None:
            raise VMError(f"phi at graph entry {block}")
        prev_block, succ_index = prev
        for position, (pred, idx) in enumerate(block.preds):
            if pred is prev_block and idx == succ_index:
                return position
        raise VMError(f"no edge from {prev_block}[{succ_index}] to {block}")

    def _rollback(self, checkpoint: _Checkpoint) -> None:
        for entry in reversed(checkpoint.heap_log):
            target, key, old = entry
            if isinstance(target, GuestObject):
                target.slots[key] = old
            else:
                target.values[key] = old
        for lock, owner, depth, reserver, acq, cacq in reversed(checkpoint.lock_log):
            lock.owner = owner
            lock.depth = depth
            lock.reserver = reserver
            lock.acquisitions = acq
            lock.contended_acquisitions = cacq
        if checkpoint.reservation is None:
            self.heap.clear_reservation(MAIN_THREAD)
        else:
            self.heap.set_reservation(MAIN_THREAD, checkpoint.reservation)

    def _log_field_write(
        self, checkpoint: _Checkpoint | None, obj: GuestObject, slot: int
    ) -> None:
        if checkpoint is not None:
            checkpoint.heap_log.append((obj, slot, obj.slots[slot]))

    def _log_array_write(
        self, checkpoint: _Checkpoint | None, arr: GuestArray, index: int
    ) -> None:
        if checkpoint is not None:
            checkpoint.heap_log.append((arr, index, arr.values[index]))

    def _log_lock(self, checkpoint: _Checkpoint | None, lock) -> None:
        if checkpoint is not None:
            checkpoint.lock_log.append(
                (lock, lock.owner, lock.depth, lock.reserver,
                 lock.acquisitions, lock.contended_acquisitions)
            )

    # -- single-op execution -----------------------------------------------------
    def _step(
        self,
        node: Node,
        env: dict[int, Value],
        args: list[Value],
        checkpoint: _Checkpoint | None,
    ) -> None:
        self.steps += 1
        if self.fuel is not None and self.steps > self.fuel:
            raise VMError("IR executor fuel exhausted")
        if self.abort_injector is not None and checkpoint is not None:
            reason = self.abort_injector(checkpoint.region_id, node)
            if reason:
                raise RegionRollback(reason, node)

        kind = node.kind
        get = lambda i: env[node.operands[i].id]  # noqa: E731

        if kind is Kind.CONST:
            env[node.id] = node.attrs["imm"]
        elif kind is Kind.CONST_NULL:
            env[node.id] = None
        elif kind is Kind.CONST_CLASS:
            env[node.id] = node.attrs["cls"]
        elif kind is Kind.PARAM:
            env[node.id] = args[node.attrs["index"]]
        elif kind is Kind.ADD:
            env[node.id] = wrap_int(get(0) + get(1))
        elif kind is Kind.SUB:
            env[node.id] = wrap_int(get(0) - get(1))
        elif kind is Kind.MUL:
            env[node.id] = wrap_int(get(0) * get(1))
        elif kind is Kind.DIV:
            env[node.id] = guest_div(get(0), get(1))
        elif kind is Kind.MOD:
            env[node.id] = guest_mod(get(0), get(1))
        elif kind is Kind.AND:
            env[node.id] = wrap_int(get(0) & get(1))
        elif kind is Kind.OR:
            env[node.id] = wrap_int(get(0) | get(1))
        elif kind is Kind.XOR:
            env[node.id] = wrap_int(get(0) ^ get(1))
        elif kind is Kind.SHL:
            env[node.id] = wrap_int(get(0) << (get(1) & 63))
        elif kind is Kind.SHR:
            env[node.id] = wrap_int(get(0) >> (get(1) & 63))
        elif kind is Kind.CLASSOF:
            ref = get(0)
            env[node.id] = (
                ref.class_name if isinstance(ref, GuestObject) else "[array]"
            )
        elif kind is Kind.ALEN:
            env[node.id] = get(0).length
        elif kind is Kind.GETFIELD:
            env[node.id] = get(0).get(node.attrs["field"])
        elif kind is Kind.ALOAD:
            arr, idx = get(0), get(1)
            # Raw access: the guard is a separate CHECK_BOUNDS op.  A bad
            # index with the check optimized away models a hardware fault,
            # which inside a region aborts to the precise recovery path.
            env[node.id] = arr.load(idx)
        elif kind is Kind.NEW:
            layout = self.program.field_layout(node.attrs["cls"])
            env[node.id] = self.heap.new_object(node.attrs["cls"], layout)
        elif kind is Kind.NEWARR:
            env[node.id] = self.heap.new_array(get(0))
        elif kind in (Kind.CALL, Kind.VCALL):
            if self.dispatcher is None:
                raise VMError("IR executor has no call dispatcher")
            if checkpoint is not None:
                # Region formation terminates regions at non-inlined calls
                # (paper §4); a call inside a region is a formation bug, and
                # its heap effects could not be rolled back.
                raise VMError("call inside an atomic region")
            if kind is Kind.CALL:
                callee = self.program.resolve_static(node.attrs["method"])
            else:
                receiver = get(0)
                callee = self.program.resolve_virtual(
                    receiver.class_name, node.attrs["method"]
                )
            call_args = [env[op.id] for op in node.operands]
            env[node.id] = self.dispatcher.invoke(callee, call_args)
        elif kind is Kind.PUTFIELD:
            obj = get(0)
            slot = obj.field_index[node.attrs["field"]]
            self._log_field_write(checkpoint, obj, slot)
            obj.slots[slot] = get(1)
            if self.heap.reservations:
                self.heap.kill_reservations(
                    MAIN_THREAD, obj.field_address(node.attrs["field"]),
                    DEFAULT_LINE_SHIFT,
                )
        elif kind is Kind.ASTORE:
            arr, idx = get(0), get(1)
            if not 0 <= idx < len(arr.values):
                from ..runtime.errors import BoundsError

                raise BoundsError(idx, len(arr.values))
            self._log_array_write(checkpoint, arr, idx)
            arr.values[idx] = get(2)
            if self.heap.reservations:
                self.heap.kill_reservations(
                    MAIN_THREAD, arr.element_address(idx), DEFAULT_LINE_SHIFT
                )
        elif kind is Kind.FAA:
            obj = get(0)
            slot = obj.field_index[node.attrs["field"]]
            old = obj.slots[slot]
            self._log_field_write(checkpoint, obj, slot)
            obj.slots[slot] = wrap_int(old + get(1))
            env[node.id] = old
            if self.heap.reservations:
                self.heap.kill_reservations(
                    MAIN_THREAD, obj.field_address(node.attrs["field"]),
                    DEFAULT_LINE_SHIFT,
                )
        elif kind is Kind.CAS:
            obj = get(0)
            slot = obj.field_index[node.attrs["field"]]
            ok = compare("eq", obj.slots[slot], get(1))
            env[node.id] = 1 if ok else 0
            if ok:
                self._log_field_write(checkpoint, obj, slot)
                obj.slots[slot] = get(2)
                if self.heap.reservations:
                    self.heap.kill_reservations(
                        MAIN_THREAD, obj.field_address(node.attrs["field"]),
                        DEFAULT_LINE_SHIFT,
                    )
        elif kind is Kind.LL:
            obj = get(0)
            env[node.id] = obj.get(node.attrs["field"])
            self.heap.set_reservation(
                MAIN_THREAD, obj.field_address(node.attrs["field"])
            )
        elif kind is Kind.SC:
            obj = get(0)
            address = obj.field_address(node.attrs["field"])
            ok = self.heap.check_reservation(MAIN_THREAD, address)
            self.heap.clear_reservation(MAIN_THREAD)
            env[node.id] = 1 if ok else 0
            if ok:
                slot = obj.field_index[node.attrs["field"]]
                self._log_field_write(checkpoint, obj, slot)
                obj.slots[slot] = get(1)
                if self.heap.reservations:
                    self.heap.kill_reservations(
                        MAIN_THREAD, address, DEFAULT_LINE_SHIFT
                    )
        elif kind is Kind.CHECK_NULL:
            if get(0) is None:
                self._check_failed(node, checkpoint, "null dereference")
        elif kind is Kind.CHECK_BOUNDS:
            length, idx = get(0), get(1)
            if not 0 <= idx < length:
                self._check_failed(node, checkpoint, f"index {idx} of {length}")
        elif kind is Kind.CHECK_DIV0:
            if get(0) == 0:
                self._check_failed(node, checkpoint, "division by zero")
        elif kind is Kind.CHECK_CLASS:
            if get(0) != node.attrs["cls"]:
                self._check_failed(node, checkpoint, "class check failed")
        elif kind is Kind.MONITOR_ENTER:
            lock = get(0).lock
            self._log_lock(checkpoint, lock)
            if lock.enter(MAIN_THREAD) == "blocked":
                # The IR executor is a single-threaded shim: no other thread
                # can ever release the monitor, so waiting is a deadlock.
                raise MonitorStateError(
                    f"monitor owned by thread {lock.owner} contended with "
                    "no scheduler attached"
                )
        elif kind is Kind.MONITOR_EXIT:
            lock = get(0).lock
            self._log_lock(checkpoint, lock)
            lock.exit(MAIN_THREAD)
        elif kind is Kind.SLE_ENTER:
            lock = get(0).lock
            if lock.held_by_other(MAIN_THREAD):
                raise RegionRollback("sle_conflict", node)
            # Elided: no store to the lock word at all.
        elif kind is Kind.ASSERT:
            if compare(node.attrs["cond"], get(0), get(1)):
                raise RegionRollback("assert", node)
        elif kind is Kind.AREGION_END:  # handled in run(); unreachable here
            raise VMError("AREGION_END must be handled by the block loop")
        elif kind is Kind.SAFEPOINT:
            pass
        elif kind is Kind.PHI:  # handled at block entry
            raise VMError("phi executed as a straight-line op")
        else:  # pragma: no cover - exhaustive over Kind
            raise VMError(f"unhandled IR kind {kind}")

    def _check_failed(
        self, node: Node, checkpoint: _Checkpoint | None, detail: str
    ) -> None:
        if checkpoint is not None:
            raise RegionRollback("exception", node)
        kind = node.kind
        if kind is Kind.CHECK_NULL:
            from ..runtime.errors import NullPointerError

            raise NullPointerError(detail)
        if kind is Kind.CHECK_BOUNDS:
            from ..runtime.errors import BoundsError

            raise BoundsError(-1, -1)
        if kind is Kind.CHECK_DIV0:
            raise GuestArithmeticError(detail)
        raise GuestError(detail)
