"""IR structural verifier.

Run after every transform in tests (and in the compiler's debug mode) to
catch CFG/SSA corruption early: edge/pred inconsistencies, phi operand
misalignment, uses that are not dominated by their definitions, and
malformed region structure (nested regions, region code reachable without
passing a REGION_BEGIN, values flowing from speculative code into recovery
code — the paper's hardware discards those on abort, so the IR must never
consume them there).
"""

from __future__ import annotations

from .cfg import Block, Graph
from .dom import DomTree, dominator_tree
from .ops import Kind, Node, TERMINATOR_KINDS, VALUE_KINDS


class IRVerifyError(Exception):
    """The graph violates an IR invariant."""


def verify_graph(graph: Graph, check_regions: bool = True) -> None:
    """Raise :class:`IRVerifyError` on the first violated invariant."""
    if graph.entry is None:
        raise IRVerifyError("graph has no entry block")
    if graph.entry.preds:
        raise IRVerifyError("entry block has predecessors")

    _check_edges(graph)
    tree = dominator_tree(graph)
    _check_ssa(graph, tree)
    if check_regions:
        _check_regions(graph, tree)


def _check_edges(graph: Graph) -> None:
    ids = {b.id for b in graph.blocks}
    for block in graph.blocks:
        term = block.terminator
        if term is None:
            raise IRVerifyError(f"{block} has no terminator")
        if term.kind not in TERMINATOR_KINDS:
            raise IRVerifyError(f"{block} terminator is {term.kind}")
        expected = {
            Kind.BRANCH: 2,
            Kind.JUMP: 1,
            Kind.RETURN: 0,
            Kind.REGION_BEGIN: 2,
        }[term.kind]
        if len(block.succs) != expected:
            raise IRVerifyError(
                f"{block} {term.kind.name} has {len(block.succs)} succs, "
                f"expected {expected}"
            )
        for index, succ in enumerate(block.succs):
            if succ.id not in ids:
                raise IRVerifyError(f"{block} -> removed block {succ}")
            if (block, index) not in succ.preds:
                raise IRVerifyError(
                    f"edge {block}[{index}] -> {succ} missing from preds"
                )
        for pred, index in block.preds:
            if pred.id not in ids:
                raise IRVerifyError(f"{block} has removed pred {pred}")
            if index >= len(pred.succs) or pred.succs[index] is not block:
                raise IRVerifyError(
                    f"pred entry ({pred},{index}) of {block} is stale"
                )
        for phi in block.phis:
            if len(phi.operands) != len(block.preds):
                raise IRVerifyError(
                    f"phi %{phi.id} in {block} has {len(phi.operands)} "
                    f"operands for {len(block.preds)} preds"
                )
        for node in block.all_nodes():
            if node.block is not block:
                raise IRVerifyError(
                    f"node %{node.id} in {block} has stale block {node.block}"
                )


def _check_ssa(graph: Graph, tree: DomTree) -> None:
    reachable = {b.id for b in tree.order}
    defined: dict[int, Node] = {}
    for block in graph.blocks:
        if block.id not in reachable:
            continue
        for node in block.all_nodes():
            if node.kind in VALUE_KINDS:
                defined[node.id] = node

    # A definition must dominate each use (for phis: dominate the pred edge).
    block_order: dict[int, dict[int, int]] = {}
    for block in graph.blocks:
        block_order[block.id] = {
            node.id: i for i, node in enumerate(block.all_nodes())
        }

    def dominates_use(def_node: Node, use_block: Block, use_pos: int) -> bool:
        def_block = def_node.block
        if def_block is None:
            return False
        if def_block is use_block:
            return block_order[def_block.id][def_node.id] < use_pos
        return tree.dominates(def_block, use_block)

    for block in graph.blocks:
        if block.id not in reachable:
            continue
        nodes = list(block.all_nodes())
        for pos, node in enumerate(nodes):
            if node.kind is Kind.PHI:
                for (pred, _), operand in zip(block.preds, node.operands):
                    if operand is None:
                        raise IRVerifyError(f"phi %{node.id} has a None operand")
                    if operand.id not in defined:
                        raise IRVerifyError(
                            f"phi %{node.id} uses undefined %{operand.id}"
                        )
                    if pred.id in reachable and not dominates_use(
                        operand, pred, len(block_order[pred.id])
                    ):
                        raise IRVerifyError(
                            f"phi %{node.id} operand %{operand.id} does not "
                            f"dominate pred {pred}"
                        )
                continue
            for operand in node.operands:
                if operand is None:
                    raise IRVerifyError(f"node %{node.id} has a None operand")
                if operand.id not in defined:
                    raise IRVerifyError(
                        f"%{node.id} in {block} uses undefined %{operand.id}"
                    )
                if not dominates_use(operand, block, pos):
                    raise IRVerifyError(
                        f"%{node.id} in {block} uses %{operand.id} which does "
                        f"not dominate it"
                    )


def _check_regions(graph: Graph, tree: DomTree) -> None:
    """Region structure: no nesting, END/ASSERT only in regions, recovery
    blocks never contain speculative values (enforced by SSA dominance
    already, but nesting and placement need explicit checks)."""
    reachable = [b for b in graph.blocks if b.id in {x.id for x in tree.order}]

    # Compute, for every block, whether it executes inside a region: walk
    # forward from entry tracking region state.
    state: dict[int, set[int | None]] = {graph.entry.id: {None}}
    worklist = [graph.entry]
    while worklist:
        block = worklist.pop()
        states = state[block.id]
        term = block.terminator
        for index, succ in enumerate(block.succs):
            if term.kind is Kind.REGION_BEGIN:
                if None not in states or len(states) != 1:
                    raise IRVerifyError(
                        f"{block}: REGION_BEGIN reachable while already "
                        f"inside a region (nesting is forbidden)"
                    )
                rid = term.attrs.get("region_id")
                out = {rid} if index == 0 else {None}
            else:
                out = set(states)
                if any(op.kind is Kind.AREGION_END for op in block.ops):
                    out = {None}
            have = state.setdefault(succ.id, set())
            if not out <= have:
                have |= out
                worklist.append(succ)

    for block in reachable:
        states = state.get(block.id, set())
        in_region = any(s is not None for s in states)
        mixed = in_region and None in states
        if mixed:
            raise IRVerifyError(
                f"{block} reachable both inside and outside a region"
            )
        for node in block.ops:
            if node.kind is Kind.ASSERT and not in_region:
                raise IRVerifyError(f"ASSERT outside any region in {block}")
            if node.kind is Kind.SLE_ENTER and not in_region:
                raise IRVerifyError(f"SLE_ENTER outside any region in {block}")
            if node.kind is Kind.AREGION_END and not in_region:
                raise IRVerifyError(f"AREGION_END outside any region in {block}")
