"""Dominator and post-dominator analysis (Cooper–Harvey–Kennedy).

Used by SSA construction (dominance frontiers), GVN (dominator-tree walk),
region formation (``TRACEDOMINANTPATH`` sanity), and the paper's §7
future-work optimization that treats post-dominance inside an atomic region
as good as dominance for check elimination.
"""

from __future__ import annotations

from .cfg import Block, Graph


class DomTree:
    """Immediate-dominator tree over the blocks reachable from the entry."""

    def __init__(self, idom: dict[int, Block], order: list[Block]) -> None:
        #: block id -> immediate dominator block (entry maps to itself).
        self.idom = idom
        #: reverse postorder used to compute the tree.
        self.order = order
        self.children: dict[int, list[Block]] = {b.id: [] for b in order}
        root = order[0] if order else None
        for block in order:
            parent = idom.get(block.id)
            if parent is not None and block is not root:
                self.children[parent.id].append(block)

    def dominates(self, a: Block, b: Block) -> bool:
        """True when ``a`` dominates ``b`` (reflexive)."""
        cursor: Block | None = b
        while cursor is not None:
            if cursor is a:
                return True
            parent = self.idom.get(cursor.id)
            if parent is cursor:
                return False
            cursor = parent
        return False

    def walk_preorder(self) -> list[Block]:
        if not self.order:
            return []
        out: list[Block] = []
        stack = [self.order[0]]
        while stack:
            block = stack.pop()
            out.append(block)
            stack.extend(reversed(self.children[block.id]))
        return out


def _compute_idom(
    order: list[Block],
    preds_of: dict[int, list[Block]],
) -> dict[int, Block]:
    """CHK iterative dominator algorithm over an RPO ``order``."""
    if not order:
        return {}
    rpo_index = {b.id: i for i, b in enumerate(order)}
    root = order[0]
    idom: dict[int, Block] = {root.id: root}

    def intersect(a: Block, b: Block) -> Block:
        while a is not b:
            while rpo_index[a.id] > rpo_index[b.id]:
                a = idom[a.id]
            while rpo_index[b.id] > rpo_index[a.id]:
                b = idom[b.id]
        return a

    changed = True
    while changed:
        changed = False
        for block in order[1:]:
            new_idom: Block | None = None
            for pred in preds_of[block.id]:
                if pred.id not in idom or pred.id not in rpo_index:
                    continue
                new_idom = pred if new_idom is None else intersect(pred, new_idom)
            if new_idom is not None and idom.get(block.id) is not new_idom:
                idom[block.id] = new_idom
                changed = True
    return idom


def dominator_tree(graph: Graph) -> DomTree:
    """Dominators of ``graph`` (over reachable blocks, entry-rooted)."""
    order = graph.rpo()
    reachable = {b.id for b in order}
    preds_of = {
        b.id: [p for p in b.pred_blocks() if p.id in reachable] for b in order
    }
    return DomTree(_compute_idom(order, preds_of), order)


def postdominator_tree(graph: Graph) -> tuple[DomTree, Block]:
    """Post-dominators on the reversed CFG, rooted at a *virtual exit*.

    Returns ``(tree, virtual_exit)``; the virtual exit block is not part of
    the graph but appears as the tree root, post-dominating every block that
    reaches a RETURN.  Blocks inside infinite loops never appear.
    """
    order = graph.rpo()
    exits = [b for b in order if not b.succs]
    virtual = Block()
    if not exits:
        return DomTree({virtual.id: virtual}, [virtual]), virtual

    reachable = {b.id for b in order}
    # Reversed graph: succ(X) = original preds, pred(X) = original succs.
    rsucc: dict[int, list[Block]] = {virtual.id: list(exits)}
    rpred: dict[int, list[Block]] = {virtual.id: []}
    for block in order:
        rsucc[block.id] = [p for p in block.pred_blocks() if p.id in reachable]
        rpred[block.id] = list(block.succs)
        if not block.succs:
            rpred[block.id] = [virtual]

    # RPO over the reversed graph from the virtual exit.
    seen = {virtual.id}
    post: list[Block] = []
    stack: list[tuple[Block, int]] = [(virtual, 0)]
    while stack:
        block, child = stack[-1]
        succs = rsucc[block.id]
        if child < len(succs):
            stack[-1] = (block, child + 1)
            nxt = succs[child]
            if nxt.id not in seen:
                seen.add(nxt.id)
                stack.append((nxt, 0))
        else:
            stack.pop()
            post.append(block)
    rorder = list(reversed(post))

    preds_of = {b.id: [p for p in rpred[b.id] if p.id in seen] for b in rorder}
    return DomTree(_compute_idom(rorder, preds_of), rorder), virtual


def dominance_frontiers(graph: Graph, tree: DomTree) -> dict[int, set[Block]]:
    """Cytron-style dominance frontiers via the CHK two-pointer walk."""
    frontiers: dict[int, set[Block]] = {b.id: set() for b in tree.order}
    reachable = {b.id for b in tree.order}
    for block in tree.order:
        preds = [p for p in block.pred_blocks() if p.id in reachable]
        if len(preds) < 2:
            continue
        target_idom = tree.idom[block.id]
        for pred in preds:
            runner = pred
            while runner is not target_idom:
                frontiers[runner.id].add(block)
                nxt = tree.idom.get(runner.id)
                if nxt is None or nxt is runner:
                    break
                runner = nxt
    return frontiers
