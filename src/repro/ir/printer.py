"""Human-readable IR dumps, used by examples, tests, and debugging."""

from __future__ import annotations

from .cfg import Block, Graph
from .ops import Kind, Node


def format_node(node: Node) -> str:
    ops = ", ".join(f"%{o.id}" for o in node.operands)
    attrs = []
    for key, value in node.attrs.items():
        if key == "edge_counts":
            continue
        attrs.append(f"{key}={value}")
    attr_text = (" [" + ", ".join(attrs) + "]") if attrs else ""
    prefix = f"%{node.id} = " if node.is_value() else ""
    return f"{prefix}{node.kind.name.lower()}({ops}){attr_text}"


def format_block(block: Block) -> str:
    lines = []
    tags = []
    if block.region_id is not None:
        tags.append(f"region={block.region_id}")
    if block.is_recovery:
        tags.append("recovery")
    if block.count:
        tags.append(f"count={block.count:.0f}")
    header = f"B{block.id}:" + ((" ; " + " ".join(tags)) if tags else "")
    lines.append(header)
    for phi in block.phis:
        srcs = ", ".join(
            f"[{pred}: %{op.id}]" for (pred, _), op in zip(block.preds, phi.operands)
        )
        lines.append(f"  %{phi.id} = phi {srcs}")
    for node in block.ops:
        lines.append(f"  {format_node(node)}")
    term = block.terminator
    if term is not None:
        succ_text = ", ".join(str(s) for s in term.block.succs)
        if term.kind is Kind.BRANCH:
            a, b = term.operands
            lines.append(
                f"  branch {term.attrs['cond']} %{a.id}, %{b.id} -> [{succ_text}]"
            )
        elif term.kind is Kind.REGION_BEGIN:
            lines.append(
                f"  aregion_begin id={term.attrs.get('region_id')} "
                f"-> [spec={term.block.succs[0]}, recover={term.block.succs[1]}]"
            )
        elif term.kind is Kind.RETURN:
            val = f" %{term.operands[0].id}" if term.operands else ""
            lines.append(f"  return{val}")
        else:
            lines.append(f"  jump -> [{succ_text}]")
    return "\n".join(lines)


def format_graph(graph: Graph) -> str:
    lines = [f"graph {graph.method_name} (entry {graph.entry}):"]
    for block in graph.rpo():
        lines.append(format_block(block))
    return "\n".join(lines)
