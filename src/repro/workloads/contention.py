"""High-contention scaling scenarios built on the atomic primitives.

Three classic shared-memory scenarios, each implementable with every
architectural primitive the machine offers (``FAA``, a ``CAS`` retry loop,
an ``LL``/``SC`` retry loop, or monitor-based locking — which the atomic
compiler config turns into elided-lock regions):

- **counter** — N workers bump one shared counter.  The canonical
  lost-update benchmark: FAA is indivisible (one uop), so its cost per
  increment is flat in the thread count, while the CAS/LL-SC loops span
  several guest steps and their retry traffic grows superlinearly as
  threads pile onto the line.
- **ticket** — a ticket lock (Mellor-Crummey/Scott style): FAA on
  ``next_ticket`` to acquire, spin on ``now_serving``, non-atomic critical
  section guarded only by the protocol.  The critical section stamps an
  ``owner`` field and checks it on entry, so any mutual-exclusion failure
  is observed *by the guest itself* and returned from the worker.
- **msqueue** — a Michael-Scott-flavoured bounded queue: producers claim
  slots by advancing ``tail``, consumers claim by advancing ``head`` (CAS
  class, so an empty check can precede the claim) and wait for the slot's
  value to appear.  Items encode ``(producer << 16) | seq`` so FIFO order
  per producer is checkable from the consumer logs alone.

Worker *results* are schedule-independent by construction (counts and
violation tallies, never raw interleaving-dependent values), so counter and
ticket runs are whole-thread serializable and the oracle can match them
against a serial order.  Which consumer pops which item **is** legitimately
schedule-dependent, so the queue workload sets ``serializable=False`` and
is checked by its linearizability invariants instead (FIFO per producer,
no loss, no duplication).
"""

from __future__ import annotations

from ..lang.builder import ProgramBuilder
from .base import ThreadedWorkload

#: every way each scenario can implement its atomic step.
PRIMITIVES = ("faa", "cas", "llsc", "lock")

#: the scenarios themselves.
SCENARIOS = ("counter", "ticket", "msqueue")


def _check_primitive(primitive: str) -> None:
    if primitive not in PRIMITIVES:
        raise ValueError(f"unknown primitive {primitive!r}; "
                         f"expected one of {PRIMITIVES}")


# -- shared counter ----------------------------------------------------------

def build_counter(primitive: str):
    """One shared ``Counter``; ``worker(c, iters)`` bumps it ``iters`` times."""
    _check_primitive(primitive)
    pb = ProgramBuilder()
    pb.cls("Counter", fields=["n"])

    if primitive == "lock":
        inc = pb.method("inc", params=("this",), owner="Counter",
                        synchronized=True)
        this = inc.param(0)
        v = inc.getfield(this, "n")
        one = inc.const(1)
        v2 = inc.add(v, one)
        inc.putfield(this, "n", v2)
        inc.ret(v2)

    s = pb.method("setup")
    c = s.new("Counter")
    s.ret(c)

    w = pb.method("worker", params=("c", "iters"))
    c, iters = w.param(0), w.param(1)
    zero = w.const(0)
    one = w.const(1)
    i = w.const(0)
    w.label("head")
    w.safepoint()
    w.br("ge", i, iters, "done")
    if primitive == "faa":
        w.faa(c, "n", one)
    elif primitive == "cas":
        w.label("retry")
        w.safepoint()
        old = w.getfield(c, "n")
        nv = w.add(old, one)
        ok = w.cas(c, "n", old, nv)
        w.br("eq", ok, zero, "retry")
    elif primitive == "llsc":
        w.label("retry")
        w.safepoint()
        v = w.ll(c, "n")
        nv = w.add(v, one)
        ok = w.sc(c, "n", nv)
        w.br("eq", ok, zero, "retry")
    else:  # lock
        w.vcall(c, "inc")
    w.add(i, one, dst=i)
    w.jmp("head")
    w.label("done")
    w.ret(iters)
    return pb.build()


def _counter_total_invariant(expected: int):
    def check(shared, results, heap):
        n = shared.get("n")
        if n != expected:
            return (f"counter total {n} != {expected} "
                    f"(lost updates: {expected - n})")
        return None
    return check


def counter_workload(primitive: str, threads: int,
                     iters: int = 4) -> ThreadedWorkload:
    return ThreadedWorkload(
        name=f"contend-counter-{primitive}-t{threads}",
        description=(f"{threads} workers bump one shared counter via "
                     f"{primitive} ({iters} increments each)"),
        build=lambda: build_counter(primitive),
        setup="setup",
        worker="worker",
        thread_args=[[iters] for _ in range(threads)],
        warm_args=[[3]] * 3,
        symmetric=True,
        invariants=[_counter_total_invariant(threads * iters)],
    )


# -- ticket lock -------------------------------------------------------------

def build_ticket(primitive: str):
    """Ticket lock protecting a non-atomic critical section.

    ``worker(lk, iters, me)`` performs ``iters`` acquire/increment/release
    rounds; ``me`` (nonzero, unique per thread) stamps the ``owner`` field
    inside the critical section.  The worker returns the number of
    mutual-exclusion violations it *observed* (another thread's stamp live
    at entry) — zero when the protocol holds.
    """
    _check_primitive(primitive)
    pb = ProgramBuilder()
    pb.cls("TicketLock",
           fields=["next_ticket", "now_serving", "owner", "crit"])

    s = pb.method("setup")
    lk = s.new("TicketLock")
    s.ret(lk)

    w = pb.method("worker", params=("lk", "iters", "me"))
    lk, iters, me = w.param(0), w.param(1), w.param(2)
    zero = w.const(0)
    one = w.const(1)
    i = w.const(0)
    violations = w.const(0)
    w.label("head")
    w.safepoint()
    w.br("ge", i, iters, "done")
    # -- acquire ----------------------------------------------------------
    if primitive == "faa":
        t = w.faa(lk, "next_ticket", one)
    elif primitive == "cas":
        t = w.fresh()
        w.label("acq")
        w.safepoint()
        t0 = w.getfield(lk, "next_ticket")
        t1 = w.add(t0, one)
        ok = w.cas(lk, "next_ticket", t0, t1)
        w.br("eq", ok, zero, "acq")
        w.mov(t0, dst=t)
    elif primitive == "llsc":
        t = w.fresh()
        w.label("acq")
        w.safepoint()
        t0 = w.ll(lk, "next_ticket")
        t1 = w.add(t0, one)
        ok = w.sc(lk, "next_ticket", t1)
        w.br("eq", ok, zero, "acq")
        w.mov(t0, dst=t)
    else:  # lock: the monitor *is* the lock; no ticket protocol
        t = None
        w.monitor_enter(lk)
    if t is not None:
        w.label("spin")
        w.safepoint()
        sv = w.getfield(lk, "now_serving")
        w.br("ne", sv, t, "spin")
    # -- critical section (plain loads/stores; the lock is the only guard) --
    own = w.getfield(lk, "owner")
    w.br("eq", own, zero, "excl_ok")
    w.add(violations, one, dst=violations)
    w.label("excl_ok")
    w.putfield(lk, "owner", me)
    cv = w.getfield(lk, "crit")
    cv2 = w.add(cv, one)
    w.putfield(lk, "crit", cv2)
    w.putfield(lk, "owner", zero)
    # -- release ----------------------------------------------------------
    if t is None:
        w.monitor_exit(lk)
    else:
        t2 = w.add(t, one)
        w.putfield(lk, "now_serving", t2)
    w.add(i, one, dst=i)
    w.jmp("head")
    w.label("done")
    w.ret(violations)
    return pb.build()


def _ticket_invariant(total: int, ticketed: bool):
    def check(shared, results, heap):
        problems = []
        if any(r != 0 for r in results):
            problems.append(
                f"mutual-exclusion violations observed by workers: {results}")
        crit = shared.get("crit")
        if crit != total:
            problems.append(f"critical-section count {crit} != {total}")
        if shared.get("owner") != 0:
            problems.append(f"owner stamp {shared.get('owner')} left set")
        if ticketed:
            nt = shared.get("next_ticket")
            ns = shared.get("now_serving")
            if nt != total or ns != total:
                problems.append(
                    f"ticket counters next={nt} serving={ns} != {total}")
        return "; ".join(problems) or None
    return check


def ticket_workload(primitive: str, threads: int,
                    iters: int = 4) -> ThreadedWorkload:
    return ThreadedWorkload(
        name=f"contend-ticket-{primitive}-t{threads}",
        description=(f"{threads} workers round-trip a ticket lock via "
                     f"{primitive} ({iters} critical sections each)"),
        build=lambda: build_ticket(primitive),
        setup="setup",
        worker="worker",
        thread_args=[[iters, tid + 1] for tid in range(threads)],
        warm_args=[[3, 99]] * 3,
        symmetric=True,
        invariants=[_ticket_invariant(threads * iters,
                                      ticketed=primitive != "lock")],
    )


# -- bounded MS-style queue --------------------------------------------------

def build_msqueue(primitive: str, producers: int, consumers: int,
                  items: int):
    """Bounded array queue: producers advance ``tail``, consumers ``head``.

    Capacity equals the total item count, so indices never wrap and a
    claimed slot is claimed exactly once.  A consumer's pop must not pass
    ``tail``, so the empty check and the ``head`` bump form a CAS-class
    retry loop even in the ``faa`` build (an unconditional fetch-and-add on
    ``head`` could overrun the queue); the ``faa`` build keeps FAA on the
    producer side, which is where the primitive is safe.
    """
    _check_primitive(primitive)
    total = producers * items
    if total % consumers != 0:
        raise ValueError(
            f"total items {total} not divisible by {consumers} consumers")
    quota = total // consumers

    pb = ProgramBuilder()
    pb.cls("Queue", fields=["slots", "head", "tail", "logs"])

    s = pb.method("setup")
    q = s.new("Queue")
    cap = s.const(total)
    slots = s.newarr(cap)
    s.putfield(q, "slots", slots)
    nc = s.const(consumers)
    logs = s.newarr(nc)
    s.putfield(q, "logs", logs)
    qn = s.const(quota)
    one = s.const(1)
    i = s.const(0)
    s.label("mk")
    s.br("ge", i, nc, "mkdone")
    log = s.newarr(qn)
    s.astore(logs, i, log)
    s.add(i, one, dst=i)
    s.jmp("mk")
    s.label("mkdone")
    s.ret(q)

    w = pb.method(
        "worker", params=("q", "me", "produce_n", "consume_n", "log_slot"))
    q = w.param(0)
    me = w.param(1)
    produce_n = w.param(2)
    consume_n = w.param(3)
    log_slot = w.param(4)
    zero = w.const(0)
    one = w.const(1)
    sixteen = w.const(16)
    slots = w.getfield(q, "slots")

    # -- produce ----------------------------------------------------------
    j = w.const(0)
    w.label("prod")
    w.safepoint()
    w.br("ge", j, produce_n, "proddone")
    seq = w.add(j, one)
    hi = w.shl(me, sixteen)
    item = w.or_(hi, seq)
    if primitive == "faa":
        idx = w.faa(q, "tail", one)
    elif primitive == "cas":
        idx = w.fresh()
        w.label("eacq")
        w.safepoint()
        t0 = w.getfield(q, "tail")
        t1 = w.add(t0, one)
        ok = w.cas(q, "tail", t0, t1)
        w.br("eq", ok, zero, "eacq")
        w.mov(t0, dst=idx)
    elif primitive == "llsc":
        idx = w.fresh()
        w.label("eacq")
        w.safepoint()
        t0 = w.ll(q, "tail")
        t1 = w.add(t0, one)
        ok = w.sc(q, "tail", t1)
        w.br("eq", ok, zero, "eacq")
        w.mov(t0, dst=idx)
    else:  # lock
        idx = w.fresh()
        w.monitor_enter(q)
        t0 = w.getfield(q, "tail")
        t1 = w.add(t0, one)
        w.putfield(q, "tail", t1)
        w.monitor_exit(q)
        w.mov(t0, dst=idx)
    w.astore(slots, idx, item)
    w.add(j, one, dst=j)
    w.jmp("prod")
    w.label("proddone")

    # -- consume ----------------------------------------------------------
    logsarr = w.getfield(q, "logs")
    mylog = w.aload(logsarr, log_slot)
    k = w.const(0)
    w.label("cons")
    w.safepoint()
    w.br("ge", k, consume_n, "consdone")
    cidx = w.fresh()
    if primitive == "lock":
        w.label("pacq")
        w.safepoint()
        w.monitor_enter(q)
        h0 = w.getfield(q, "head")
        t0 = w.getfield(q, "tail")
        w.br("lt", h0, t0, "claim")
        w.monitor_exit(q)
        w.jmp("pacq")
        w.label("claim")
        h1 = w.add(h0, one)
        w.putfield(q, "head", h1)
        w.monitor_exit(q)
        w.mov(h0, dst=cidx)
    elif primitive == "llsc":
        w.label("pacq")
        w.safepoint()
        h0 = w.ll(q, "head")
        t0 = w.getfield(q, "tail")
        w.br("ge", h0, t0, "pacq")
        h1 = w.add(h0, one)
        ok = w.sc(q, "head", h1)
        w.br("eq", ok, zero, "pacq")
        w.mov(h0, dst=cidx)
    else:  # faa, cas: empty-checked CAS pop
        w.label("pacq")
        w.safepoint()
        h0 = w.getfield(q, "head")
        t0 = w.getfield(q, "tail")
        w.br("ge", h0, t0, "pacq")
        h1 = w.add(h0, one)
        ok = w.cas(q, "head", h0, h1)
        w.br("eq", ok, zero, "pacq")
        w.mov(h0, dst=cidx)
    # the slot index is claimed before the value lands: wait for it.
    w.label("fill")
    w.safepoint()
    v = w.aload(slots, cidx)
    w.br("eq", v, zero, "fill")
    w.astore(mylog, k, v)
    w.add(k, one, dst=k)
    w.jmp("cons")
    w.label("consdone")
    out = w.add(produce_n, consume_n)
    w.ret(out)
    return pb.build()


def _queue_invariant(producers: int, consumers: int, items: int):
    def check(shared, results, heap):
        problems = []
        logs = shared.get("logs")
        consumed = []
        for ci in range(consumers):
            log = logs.values[ci]
            last_seq: dict[int, int] = {}
            for v in log.values:
                if v == 0:
                    problems.append(f"consumer {ci}: unfilled log slot")
                    continue
                pid, seq = v >> 16, v & 0xFFFF
                prev = last_seq.get(pid)
                if prev is not None and seq <= prev:
                    problems.append(
                        f"consumer {ci}: producer {pid} out of FIFO order "
                        f"(seq {seq} after {prev})")
                last_seq[pid] = seq
                consumed.append((pid, seq))
        expected = [(p, s) for p in range(1, producers + 1)
                    for s in range(1, items + 1)]
        if sorted(consumed) != expected:
            problems.append(
                f"consumed {len(consumed)} items; multiset != produced "
                f"({producers}x{items}): loss or duplication")
        return "; ".join(problems) or None
    return check


def msqueue_workload(primitive: str, threads: int,
                     items: int = 4) -> ThreadedWorkload:
    """``threads`` splits evenly into producers and consumers (min 1+1)."""
    producers = max(1, threads // 2)
    consumers = max(1, threads - producers)
    total = producers * items
    if total % consumers != 0:
        # round the per-producer count up so consumers divide the total.
        while (producers * items) % consumers != 0:
            items += 1
        total = producers * items
    quota = total // consumers
    thread_args = (
        [[pid + 1, items, 0, 0] for pid in range(producers)]
        + [[0, 0, quota, ci] for ci in range(consumers)]
    )
    return ThreadedWorkload(
        name=f"contend-msqueue-{primitive}-t{producers + consumers}",
        description=(f"{producers} producers / {consumers} consumers on a "
                     f"bounded queue via {primitive} "
                     f"({items} items per producer)"),
        build=lambda: build_msqueue(primitive, producers, consumers, items),
        setup="setup",
        worker="worker",
        thread_args=thread_args,
        warm_args=[[1, 2, 2, 0]] * 3,
        serializable=False,
        invariants=[_queue_invariant(producers, consumers, items)],
    )


def contention_workload(scenario: str, primitive: str, threads: int,
                        iters: int = 4) -> ThreadedWorkload:
    """Factory over the full (scenario, primitive, threads) matrix."""
    if scenario == "counter":
        return counter_workload(primitive, threads, iters)
    if scenario == "ticket":
        return ticket_workload(primitive, threads, iters)
    if scenario == "msqueue":
        return msqueue_workload(primitive, threads, iters)
    raise ValueError(f"unknown scenario {scenario!r}; "
                     f"expected one of {SCENARIOS}")
