"""xalan — XSLT processor analogue.

Recreates the paper's §2 motivating example verbatim: a
``SuballocatedIntVector`` whose synchronized ``addElement`` has a fast path
(insert into the cached chunk, 99.8% of calls) and a slow path (allocate a
new chunk).  The hottest call site calls ``addElement`` twice in sequence
on the same object, which is exactly the redundancy Figure 3 eliminates
(second null check, second length load, constant-folded ``++i``) — but only
once the cold grow-path stops being a branch.

Published characteristics targeted (Table 3, atomic+aggressive):
coverage 78%, ~37 unique regions, region size ~78 uops, abort rate 0.28%
(the grow path fires about twice per thousand inserts), large speedup with
heavy SLE contribution (classlib monitors).
"""

from __future__ import annotations

from ..lang.builder import ProgramBuilder
from .base import Sample, Workload

#: chunk capacity: grow path bias = 2/CHUNK ≈ 0.1% — cold but non-zero.
CHUNK = 2048


def build():
    pb = ProgramBuilder()
    pb.cls(
        "SuballocatedIntVector",
        fields=["m_cached", "m_firstFree", "m_chunks", "m_checksum"],
    )

    # -- synchronized addElement: Figure 2(a) ------------------------------
    add = pb.method("addElement", params=("this", "value"),
                    owner="SuballocatedIntVector", synchronized=True)
    this, value = add.param(0), add.param(1)
    i = add.getfield(this, "m_firstFree")
    cached = add.getfield(this, "m_cached")
    limit = add.const(CHUNK)
    add.br("ge", i, limit, "grow")
    add.astore(cached, i, value)          # null + bounds checks implicit
    one = add.const(1)
    i2 = add.add(i, one)
    add.putfield(this, "m_firstFree", i2)
    add.ret(i2)
    add.label("grow")                      # cold: allocate a fresh chunk
    size = add.const(CHUNK)
    fresh = add.newarr(size)
    add.putfield(this, "m_cached", fresh)
    zero = add.const(0)
    add.astore(fresh, zero, value)
    one2 = add.const(1)
    add.putfield(this, "m_firstFree", one2)
    chunks = add.getfield(this, "m_chunks")
    chunks2 = add.add(chunks, one2)
    add.putfield(this, "m_chunks", chunks2)
    add.ret(one2)

    # -- a tokenizer-ish producer of values to insert -----------------------
    tok = pb.method("next_token", params=("state",))
    s = tok.param(0)
    c1103 = tok.const(1103515245)
    c12345 = tok.const(12345)
    t = tok.mul(s, c1103)
    t2 = tok.add(t, c12345)
    mask = tok.const((1 << 31) - 1)
    out = tok.and_(t2, mask)
    tok.ret(out)

    # -- a deliberately large "output formatting" method: beyond even the
    # aggressive inline threshold, so its call stays on the warm path and
    # bounds atomic-region coverage (like xalan's serializer code) ---------
    fmt = pb.method("format_block", params=("seed", "len"))
    fs, fl = fmt.param(0), fmt.param(1)
    acc = fmt.mov(fs)
    j = fmt.const(0)
    fone = fmt.const(1)
    c3 = fmt.const(3)
    c5 = fmt.const(5)
    c7 = fmt.const(7)
    mask = fmt.const((1 << 40) - 1)
    fmt.label("floop")
    fmt.safepoint()
    fmt.br("ge", j, fl, "fdone")
    # 45 unrolled mixing rounds keep the method above the aggressive threshold.
    for _round in range(45):
        a1 = fmt.mul(acc, c3)
        a2 = fmt.add(a1, c5)
        a3 = fmt.xor(a2, c7)
        a4 = fmt.or_(a3, fone)
        a5 = fmt.and_(a4, mask)
        fmt.mov(a5, dst=acc)
    fmt.add(j, fone, dst=j)
    fmt.jmp("floop")
    fmt.label("fdone")
    fmt.ret(acc)

    # -- driver: transform "documents" ---------------------------------------
    w = pb.method("work", params=("n",))
    n = w.param(0)
    vec = w.new("SuballocatedIntVector")
    first = w.const(CHUNK)
    chunk0 = w.newarr(first)
    w.putfield(vec, "m_cached", chunk0)
    zero = w.const(0)
    w.putfield(vec, "m_firstFree", zero)
    state = w.const(42)
    i = w.const(0)
    one = w.const(1)
    w.label("head")
    w.safepoint()
    w.br("ge", i, n, "done")
    # The paper's hottest call site: two sequential insertions.
    s2 = w.call("next_token", (state,))
    w.mov(s2, dst=state)
    text_start = w.mod(state, w.const(4096))
    length = w.mod(text_start, w.const(97))
    w.vcall(vec, "addElement", (text_start,))
    w.vcall(vec, "addElement", (length,))
    w.add(i, one, dst=i)
    w.jmp("head")
    w.label("done")
    # Cold-ish epilogue: format the output once per document.
    flen = w.const(40)
    digest = w.call("format_block", (state, flen))
    ff = w.getfield(vec, "m_firstFree")
    ch = w.getfield(vec, "m_chunks")
    d1 = w.add(digest, ff)
    big = w.const(100000)
    ch_scaled = w.mul(ch, big)
    out = w.add(d1, ch_scaled)
    w.ret(out)
    return pb.build()


WORKLOAD = Workload(
    name="xalan",
    description="Converts XML documents into HTML (Table 2)",
    build=build,
    samples=[
        Sample(warm_args=[[400]] * 6, measure_args=[[400]] * 3, weight=1.0),
    ],
    paper_coverage=0.78,
    paper_region_size=78,
    paper_abort_pct=0.28,
    paper_speedup_aggressive=30.0,
)
