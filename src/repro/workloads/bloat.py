"""bloat — bytecode-analysis/optimization tool analogue.

High-coverage dataflow-style kernels (Table 3: 69% coverage, region size
~128, 93 unique regions) with the paper's §6.1 anomaly: "almost all of
bloat's aborts occur in one of its four execution samples — the one from
the least dominant phase — and that sample incurs a 33% slowdown.  Without
that phase, bloat's speedup would be 40% (up from 32%)".

Three of the four samples here run a redundancy-rich use-def propagation
kernel whose cold paths stay cold; the fourth (lowest weight) changes
behavior after profiling, so its asserts fire at several percent and drag
the overall abort rate to ~4% (Table 3: 4.3%).
"""

from __future__ import annotations

from ..lang.builder import ProgramBuilder
from .base import Sample, Workload

NODES = 256


def build():
    pb = ProgramBuilder()
    pb.cls("FlowGraph", fields=["defs", "uses", "changed", "checksum"])

    # Small accessor methods — the object-soup style the paper blames for
    # frequent small-method calls; all inline away.
    gd = pb.method("def_at", params=("this", "i"), owner="FlowGraph")
    g1, g2 = gd.param(0), gd.param(1)
    darr = gd.getfield(g1, "defs")
    dv = gd.aload(darr, g2)
    gd.ret(dv)

    su = pb.method("set_use", params=("this", "i", "v"), owner="FlowGraph")
    s1, s2, s3 = su.param(0), su.param(1), su.param(2)
    uarr = su.getfield(s1, "uses")
    su.astore(uarr, s2, s3)
    z = su.const(0)
    su.ret(z)

    # -- one dataflow pass over the graph -----------------------------------------
    w = pb.method("work", params=("iters", "odd_period"))
    iters, odd_period = w.param(0), w.param(1)
    fg = w.new("FlowGraph")
    nn = w.const(NODES)
    defs = w.newarr(nn)
    uses = w.newarr(nn)
    w.putfield(fg, "defs", defs)
    w.putfield(fg, "uses", uses)
    one = w.const(1)
    zero = w.const(0)
    # init defs
    f = w.const(0)
    w.label("init")
    w.br("ge", f, nn, "inited")
    fv = w.mul(f, w.const(37))
    w.astore(defs, f, fv)
    w.add(f, one, dst=f)
    w.jmp("init")
    w.label("inited")

    i = w.const(0)
    acc = w.const(0)
    w.label("pass_")
    w.safepoint()
    w.br("ge", i, iters, "done")
    node = w.mod(i, nn)
    # redundancy-rich kernel: repeated loads of the same fields/elements
    d1 = w.vcall(fg, "def_at", (node,))
    d2 = w.vcall(fg, "def_at", (node,))       # redundant after inlining
    sum_ = w.add(d1, d2)
    prev_idx = w.fresh()
    w.const(0, dst=prev_idx)
    w.br("eq", node, zero, "no_prev")
    pi = w.sub(node, one)
    w.mov(pi, dst=prev_idx)
    w.label("no_prev")
    d3 = w.vcall(fg, "def_at", (prev_idx,))
    merged = w.xor(sum_, d3)
    w.vcall(fg, "set_use", (node, merged))
    w.add(acc, merged, dst=acc)
    # occasionally (cold in profile; phase-dependent in samples) re-init
    w.br("le", odd_period, zero, "cont")
    r = w.mod(i, odd_period)
    w.br("ne", r, zero, "cont")
    ch = w.getfield(fg, "changed")
    ch2 = w.add(ch, one)
    w.putfield(fg, "changed", ch2)
    rv = w.mul(merged, w.const(5))
    w.astore(defs, node, rv)
    w.label("cont")
    w.add(i, one, dst=i)
    w.jmp("pass_")
    w.label("done")
    chf = w.getfield(fg, "changed")
    big = w.const(1 << 24)
    cm = w.mul(chf, big)
    out = w.add(acc, cm)
    w.ret(out)
    return pb.build()


WORKLOAD = Workload(
    name="bloat",
    description="Bytecode analysis and optimization tool (Table 2)",
    build=build,
    samples=[
        Sample(warm_args=[[400, 500]] * 5, measure_args=[[500, 500]], weight=0.30),
        Sample(warm_args=[[400, 500]] * 5, measure_args=[[500, 450]], weight=0.30),
        Sample(warm_args=[[400, 500]] * 5, measure_args=[[500, 500]], weight=0.25),
        # Least dominant phase: behavior changes after profiling (the
        # 33%-slowdown sample of §6.1).
        Sample(warm_args=[[400, 500]] * 5, measure_args=[[500, 60]], weight=0.15),
    ],
    paper_coverage=0.69,
    paper_region_size=128,
    paper_abort_pct=4.3,
    paper_speedup_aggressive=32.0,
)
