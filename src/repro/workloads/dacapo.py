"""Registry of the DaCapo-shaped benchmarks (the paper's Table 2)."""

from __future__ import annotations

from .antlr import WORKLOAD as ANTLR
from .base import Sample, Workload
from .bloat import WORKLOAD as BLOAT
from .fop import WORKLOAD as FOP
from .hsqldb import WORKLOAD as HSQLDB
from .jython import WORKLOAD as JYTHON
from .pmd import WORKLOAD as PMD
from .xalan import WORKLOAD as XALAN

#: Table 2 order.
ALL_WORKLOADS: dict[str, Workload] = {
    w.name: w for w in (ANTLR, BLOAT, FOP, HSQLDB, JYTHON, PMD, XALAN)
}


def get_workload(name: str) -> Workload:
    try:
        return ALL_WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; available: {sorted(ALL_WORKLOADS)}"
        ) from None


def workload_names() -> list[str]:
    return list(ALL_WORKLOADS)
