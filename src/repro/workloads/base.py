"""Workload infrastructure: the shape of one synthetic DaCapo benchmark.

We cannot run Java, so each benchmark from the paper's Table 2 is recreated
as a guest program engineered to exhibit the *mechanisms* that give its
namesake its published behavior: hot/cold path structure, monitor density,
receiver-class distributions, region-size potential, and profile/phase
changes.  The per-benchmark docstrings state which published
characteristics (Table 3 columns, §6.1 anecdotes) each program targets.

A workload has one or more *samples* (the paper uses up to four SimPoint
phases per benchmark, Table 2); each sample is a (warm-up args, measured
args, weight) triple executed against a fresh VM, and weighted results are
combined exactly as the paper does: "we report data by weighting the
results for each sample by its phase's contribution".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..lang.bytecode import Program


@dataclass
class Sample:
    """One measured phase of a workload."""

    warm_args: list[list]
    measure_args: list[list]
    weight: float = 1.0


@dataclass
class Workload:
    """One synthetic benchmark."""

    name: str
    description: str
    build: Callable[[], Program]
    samples: list[Sample]
    entry: str = "work"
    #: call sites to treat as monomorphic when the harness applies the
    #: paper's §6.1 jython fix: (method qualified name, bytecode pc).
    force_monomorphic_sites: Callable[[Program], frozenset] | None = None
    #: paper-reported values for EXPERIMENTS.md comparisons.
    paper_coverage: float | None = None
    paper_region_size: float | None = None
    paper_abort_pct: float | None = None
    paper_speedup_aggressive: float | None = None

    def total_weight(self) -> float:
        return sum(s.weight for s in self.samples)


@dataclass
class ThreadedWorkload:
    """A workload run as N concurrent guest threads over shared state.

    The paper's benchmarks are measured single-threaded (Table 2 samples),
    but the atomicity guarantee under test is a multi-thread property; the
    concurrency harness (:func:`repro.harness.run_concurrency_chaos`) runs
    these under the deterministic scheduler and checks every seeded
    interleaving against serial-order executions.

    ``setup`` names a static method that allocates and returns the shared
    state object; ``worker`` a static method whose first parameter receives
    it.  One guest thread is spawned per entry of ``thread_args`` (the
    remaining worker arguments).  Per-thread worker *results* must be
    schedule-independent by construction (workers partition their key
    ranges); the shared state is where interleavings collide, and its final
    fingerprint is the serializability signal.
    """

    name: str
    description: str
    build: Callable[[], Program]
    #: static method allocating the shared state; invoked once per run.
    setup: str
    #: static method each guest thread runs: ``worker(shared, *extra)``.
    worker: str
    #: one extra-argument list per guest thread.
    thread_args: list[list]
    #: worker argument lists used (each against a fresh setup object) to
    #: warm profiles before compilation.
    warm_args: list[list] = field(default_factory=list)
    #: the workers are interchangeable (identical code, commutative effect
    #: on the shared state), so one serial order represents them all and
    #: the oracle need not enumerate ``threads!`` permutations.  Required
    #: for the high-thread-count contention scenarios, where enumerating
    #: permutations is infeasible.
    symmetric: bool = False
    #: whole-thread serializability holds for this workload: a threaded
    #: run's results/heap must equal *some* serial order of the workers.
    #: False for workloads whose outcome legitimately depends on the
    #: interleaving (e.g. competing queue consumers — which consumer gets
    #: which item is schedule-determined); those are checked by replay
    #: determinism plus :attr:`invariants` instead.
    serializable: bool = True
    #: linearizability invariants, each ``fn(shared, results, heap) ->
    #: str | None`` — ``shared`` is the setup object after the threaded
    #: run, ``results`` the per-thread worker returns in tid order; a
    #: non-None return describes the violation.
    invariants: list = field(default_factory=list)

    @property
    def threads(self) -> int:
        return len(self.thread_args)


def checksum_method(pb, fields=()):
    """Helper used by several workloads: a tiny pure static method that the
    inliner happily inlines, modeling small leaf classlib calls."""
    h = pb.method("mix", params=("a", "b"))
    a, b = h.param(0), h.param(1)
    c13 = h.const(13)
    t = h.mul(a, c13)
    t2 = h.xor(t, b)
    c7 = h.const(7)
    out = h.add(t2, c7)
    h.ret(out)
    return h
