"""antlr — parser-generator analogue.

The paper's outlier (§6.1): only 9% of executed uops sit inside atomic
regions, yet uop reduction reaches 17% and the speedup is solid, because
"on average, two-thirds of the instructions in antlr's atomic regions get
optimized away... from two main sources: generic redundancy elimination
and elimination of monitor overhead of calls to synchronized classlib
methods".

This program spends most of its time in a large, non-inlinable DFA-step
method (no regions there), plus a token-emission path engineered so the
baseline compiler *cannot* remove its redundancy: cold buffer-refill
branches store to the very fields the hot path keeps reloading, so
available-load analysis kills the facts at every join.  Once region
formation turns those branches into asserts, the joins disappear and
GVN/load-elimination collapse the region body; the synchronized token sink
adds the SLE savings on top.
"""

from __future__ import annotations

from ..lang.builder import ProgramBuilder
from .base import Sample, Workload

BUF = 4096


def build():
    pb = ProgramBuilder()
    pb.cls("TokenSink", fields=["buf", "pos", "flushes", "checksum"])

    # Synchronized token append with repeated interleaved cold refill checks
    # (modeled on classlib Vector/StringBuffer usage).
    app = pb.method("append", params=("this", "tok"), owner="TokenSink",
                    synchronized=True)
    this, tok = app.param(0), app.param(1)
    limit = app.const(BUF)
    one = app.const(1)
    # Four emission segments (token id, type, line marker, terminator),
    # each guarded by a cold buffer-refill check whose store kills the
    # baseline's available-load facts.  Once the refills become asserts,
    # every reload of buf/pos and every repeated null/bounds check in the
    # later segments is a dominated redundancy — roughly two-thirds of the
    # region body optimizes away, matching the paper's antlr anecdote.
    fields = [tok, app.xor(tok, one), app.and_(tok, app.const(255)),
              app.or_(tok, app.const(1))]
    for seg, payload in enumerate(fields):
        buf = app.getfield(this, "buf")
        pos = app.getfield(this, "pos")
        app.br("ge", pos, limit, f"flush{seg}")
        app.jmp(f"emit{seg}")
        app.label(f"flush{seg}")   # cold: replace the buffer
        fresh = app.newarr(limit)
        app.putfield(this, "buf", fresh)
        zseg = app.const(0)
        app.putfield(this, "pos", zseg)
        fl = app.getfield(this, "flushes")
        fl2 = app.add(fl, one)
        app.putfield(this, "flushes", fl2)
        app.label(f"emit{seg}")
        buf_r = app.getfield(this, "buf")   # redundant once flush is an assert
        pos_r = app.getfield(this, "pos")
        app.astore(buf_r, pos_r, payload)
        pnext = app.add(pos_r, one)
        app.putfield(this, "pos", pnext)
    ck = app.getfield(this, "checksum")
    ck2 = app.add(ck, tok)
    app.putfield(this, "checksum", ck2)
    final_pos = app.getfield(this, "pos")
    app.ret(final_pos)

    # Large lexer DFA step: dominates execution, never inlined, no regions.
    dfa = pb.method("dfa_step", params=("state", "rounds"))
    s, n = dfa.param(0), dfa.param(1)
    acc = dfa.mov(s)
    j = dfa.const(0)
    one_d = dfa.const(1)
    c3 = dfa.const(3)
    c11 = dfa.const(11)
    c29 = dfa.const(29)
    mask = dfa.const((1 << 40) - 1)
    dfa.label("loop")
    dfa.safepoint()
    dfa.br("ge", j, n, "done")
    for _ in range(45):
        a1 = dfa.mul(acc, c3)
        a2 = dfa.add(a1, c11)
        a3 = dfa.xor(a2, c29)
        a4 = dfa.or_(a3, one_d)
        a5 = dfa.and_(a4, mask)
        dfa.mov(a5, dst=acc)
    dfa.add(j, one_d, dst=j)
    dfa.jmp("loop")
    dfa.label("done")
    dfa.ret(acc)

    # -- driver: lex+parse, emitting tokens -----------------------------------
    w = pb.method("work", params=("n",))
    n = w.param(0)
    sink = w.new("TokenSink")
    cap = w.const(BUF)
    buf0 = w.newarr(cap)
    w.putfield(sink, "buf", buf0)
    state = w.const(31337)
    i = w.const(0)
    one = w.const(1)
    w.label("head")
    w.safepoint()
    w.br("ge", i, n, "done")
    # heavyweight DFA stepping (most of the time)
    two = w.const(2)
    s2 = w.call("dfa_step", (state, two))
    w.mov(s2, dst=state)
    # token emission (the 9%-coverage region material)
    tok = w.mod(state, w.const(65536))
    w.vcall(sink, "append", (tok,))
    w.add(i, one, dst=i)
    w.jmp("head")
    w.label("done")
    ck = w.getfield(sink, "checksum")
    fl = w.getfield(sink, "flushes")
    big = w.const(1 << 24)
    fm = w.mul(fl, big)
    out = w.add(ck, fm)
    w.ret(out)
    return pb.build()


WORKLOAD = Workload(
    name="antlr",
    description="Generates parser/lexical analyzers (Table 2)",
    build=build,
    samples=[
        Sample(warm_args=[[150]] * 5, measure_args=[[200]], weight=0.3),
        Sample(warm_args=[[150]] * 5, measure_args=[[220]], weight=0.3),
        Sample(warm_args=[[150]] * 5, measure_args=[[180]], weight=0.2),
        Sample(warm_args=[[150]] * 5, measure_args=[[210]], weight=0.2),
    ],
    paper_coverage=0.09,
    paper_region_size=47,
    paper_abort_pct=0.02,
    paper_speedup_aggressive=17.0,
)
