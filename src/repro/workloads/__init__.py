"""Synthetic DaCapo-shaped benchmarks (paper Table 2)."""

from .base import Sample, ThreadedWorkload, Workload
from .dacapo import ALL_WORKLOADS, get_workload, workload_names
from .hsqldb import THREADED as HSQLDB_THREADED

__all__ = [
    "ALL_WORKLOADS",
    "HSQLDB_THREADED",
    "Sample",
    "ThreadedWorkload",
    "Workload",
    "get_workload",
    "workload_names",
]
