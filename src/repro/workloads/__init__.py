"""Synthetic DaCapo-shaped benchmarks (paper Table 2)."""

from .base import Sample, ThreadedWorkload, Workload
from .contention import (
    PRIMITIVES,
    SCENARIOS,
    contention_workload,
    counter_workload,
    msqueue_workload,
    ticket_workload,
)
from .dacapo import ALL_WORKLOADS, get_workload, workload_names
from .hsqldb import THREADED as HSQLDB_THREADED

__all__ = [
    "ALL_WORKLOADS",
    "HSQLDB_THREADED",
    "PRIMITIVES",
    "SCENARIOS",
    "Sample",
    "ThreadedWorkload",
    "Workload",
    "contention_workload",
    "counter_workload",
    "get_workload",
    "msqueue_workload",
    "ticket_workload",
    "workload_names",
]
