"""Synthetic DaCapo-shaped benchmarks (paper Table 2)."""

from .base import Sample, Workload
from .dacapo import ALL_WORKLOADS, get_workload, workload_names

__all__ = [
    "ALL_WORKLOADS",
    "Sample",
    "Workload",
    "get_workload",
    "workload_names",
]
