"""fop — XSL-FO → PDF formatter analogue.

The paper's smallest beneficiary: tiny regions (Table 3: mean size 32
uops, 20% coverage, essentially zero aborts) because the hot code
alternates short loops with frequent calls to *large* layout/metric
methods that no inliner threshold will swallow — each call terminates any
atomic region.  The speedup is correspondingly small (a few percent).
"""

from __future__ import annotations

from ..lang.builder import ProgramBuilder
from .base import Sample, Workload


def _big_method(pb, name: str, rounds: int = 45):
    """A method body large enough to defeat aggressive inlining."""
    m = pb.method(name, params=("seed", "n"))
    s, n = m.param(0), m.param(1)
    acc = m.mov(s)
    j = m.const(0)
    one = m.const(1)
    c3 = m.const(3)
    c5 = m.const(5)
    c17 = m.const(17)
    mask = m.const((1 << 40) - 1)
    m.label("loop")
    m.safepoint()
    m.br("ge", j, n, "done")
    for _ in range(rounds):
        a1 = m.mul(acc, c3)
        a2 = m.add(a1, c5)
        a3 = m.xor(a2, c17)
        a4 = m.or_(a3, one)
        a5 = m.and_(a4, mask)
        m.mov(a5, dst=acc)
    m.add(j, one, dst=j)
    m.jmp("loop")
    m.label("done")
    m.ret(acc)


def build():
    pb = ProgramBuilder()
    pb.cls("Page", fields=["lines", "cursor", "checksum"])

    _big_method(pb, "layout_block", rounds=45)
    _big_method(pb, "measure_fonts", rounds=45)

    # Small hot helper: line-break accumulation (inlines, forms regions).
    brk = pb.method("advance", params=("page", "width"))
    p, width = brk.param(0), brk.param(1)
    zero = brk.const(0)
    # Defensive clamp: never taken, so it becomes a region assert — fop's
    # regions are tiny but real (Table 3: size 32, abort ~0).
    brk.br("ge", width, zero, "okw")
    brk.mov(zero, dst=width)
    brk.label("okw")
    cur = brk.getfield(p, "cursor")
    c2 = brk.add(cur, width)
    # Wrap every ~20 advances: clearly warm, so it stays a branch inside
    # regions (fop's regions are small but essentially never abort).
    limit = brk.const(230)
    brk.br("ge", c2, limit, "wrap")
    brk.putfield(p, "cursor", c2)
    brk.ret(c2)
    brk.label("wrap")
    lines = brk.getfield(p, "lines")
    one = brk.const(1)
    l2 = brk.add(lines, one)
    brk.putfield(p, "lines", l2)
    zero = brk.const(0)
    brk.putfield(p, "cursor", zero)
    brk.ret(zero)

    w = pb.method("work", params=("n",))
    n = w.param(0)
    page = w.new("Page")
    state = w.const(777)
    i = w.const(0)
    one = w.const(1)
    w.label("head")
    w.safepoint()
    w.br("ge", i, n, "done")
    # Short hot stretch: a handful of advance() calls per block...
    m1 = w.const(1103515245)
    m2 = w.const(12345)
    s1 = w.mul(state, m1)
    s2 = w.add(s1, m2)
    mask = w.const((1 << 31) - 1)
    w.and_(s2, mask, dst=state)
    width = w.mod(state, w.const(23))
    w.call("advance", (page, width))
    w2 = w.add(width, one)
    w.call("advance", (page, w2))
    w3 = w.add(w2, one)
    w.call("advance", (page, w3))
    # ...then heavyweight layout/metrics calls dominate (regions end here).
    r1 = w.call("layout_block", (state, w.const(2)))
    r2 = w.call("measure_fonts", (r1, w.const(2)))
    ck = w.getfield(page, "checksum")
    ck2 = w.xor(ck, r2)
    w.putfield(page, "checksum", ck2)
    w.add(i, one, dst=i)
    w.jmp("head")
    w.label("done")
    lines = w.getfield(page, "lines")
    ck = w.getfield(page, "checksum")
    big = w.const(1 << 20)
    lm = w.mul(lines, big)
    out = w.add(ck, lm)
    w.ret(out)
    return pb.build()


WORKLOAD = Workload(
    name="fop",
    description="Parses and formats XSL-FO into PDF-like output (Table 2)",
    build=build,
    samples=[
        Sample(warm_args=[[60]] * 5, measure_args=[[100]], weight=0.5),
        Sample(warm_args=[[60]] * 5, measure_args=[[110]], weight=0.5),
    ],
    paper_coverage=0.20,
    paper_region_size=32,
    paper_abort_pct=0.01,
    paper_speedup_aggressive=5.0,
)
