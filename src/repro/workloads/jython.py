"""jython — Python-interpreter analogue running a pybench-ish loop.

Recreates the paper's two jython findings:

- **one huge hot loop** (Figure 1: the hottest path runs hundreds of
  instructions through dozens of biased branches): a bytecode-dispatch loop
  whose opcode cases are chained compare-and-branches over a strongly
  biased opcode distribution.  With regions formed, the cold cases become
  asserts and the dispatch flattens — Table 3: coverage 87%, only ~14
  unique regions, the largest mean region size (227 uops).
- **the getitem pathology** (§6.1): the hot ``getitem`` helper performs a
  virtual ``get`` on a container that is *globally* bimorphic (PyList +
  PyDict) but 99.97% PyList at the hot site.  The default partial inliner
  refuses methods containing polymorphic calls, so plain ``atomic`` chops
  regions at the call and *slows down*; the aggressive configuration (or
  forcing the site monomorphic, the paper's grey bar) guard-inlines it, and
  the rare PyDict receivers become guard-assert aborts (~0.7%, Table 3).
"""

from __future__ import annotations

from ..lang.builder import ProgramBuilder
from .base import Sample, Workload

# Opcode ids of the toy interpreter.
OP_LOAD, OP_STORE, OP_ADD, OP_MUL, OP_GETITEM, OP_JUMP_HOT, OP_RARE = range(7)

#: dispatch program: a long, strongly-biased opcode sequence.
_PROGRAM = ([OP_LOAD, OP_ADD, OP_GETITEM, OP_STORE, OP_MUL, OP_ADD,
             OP_GETITEM, OP_LOAD, OP_ADD, OP_STORE] * 200) + [OP_RARE]


def build():
    pb = ProgramBuilder()
    pb.cls("PyList", fields=["items"])
    pb.cls("PyDict", fields=["items"])

    # Virtual container access: PyList indexes directly, PyDict "hashes".
    lget = pb.method("get", params=("this", "i"), owner="PyList")
    lt, li = lget.param(0), lget.param(1)
    items = lget.getfield(lt, "items")
    length = lget.alen(items)
    i2 = lget.mod(li, length)
    pos = lget.add(i2, length)
    pos2 = lget.mod(pos, length)
    v = lget.aload(items, pos2)
    lget.ret(v)

    dget = pb.method("get", params=("this", "i"), owner="PyDict")
    dt, di = dget.param(0), dget.param(1)
    ditems = dget.getfield(dt, "items")
    dlen = dget.alen(ditems)
    c31 = dget.const(31)
    dh = dget.mul(di, c31)
    dh2 = dget.mod(dh, dlen)
    dh3 = dget.add(dh2, dlen)
    dh4 = dget.mod(dh3, dlen)
    dv = dget.aload(ditems, dh4)
    dget.ret(dv)

    # The §6.1 helper: contains the apparently-polymorphic call site.
    getitem = pb.method("getitem", params=("container", "index"))
    gc, gi = getitem.param(0), getitem.param(1)
    gv = getitem.vcall(gc, "get", (gi,))
    getitem.ret(gv)

    # -- the interpreter dispatch loop ----------------------------------------
    w = pb.method("work", params=("iters", "dict_period"))
    iters, dict_period = w.param(0), w.param(1)
    # interpreter state
    nstack = w.const(32)
    stack = w.newarr(nstack)
    nlocals = w.const(16)
    locs = w.newarr(nlocals)
    nops = w.const(len(_PROGRAM))
    ops = w.newarr(nops)
    # install the program
    k = w.const(0)
    one = w.const(1)
    w.label("install")
    w.br("ge", k, nops, "installed")
    period = w.const(10)
    phase = w.mod(k, period)
    code = w.fresh()
    w.const(OP_LOAD, dst=code)
    # Reconstruct _PROGRAM structurally: positions map to opcodes.
    w.br("ne", phase, w.const(1), "p2")
    w.const(OP_ADD, dst=code)
    w.label("p2")
    w.br("ne", phase, w.const(2), "p3")
    w.const(OP_GETITEM, dst=code)
    w.label("p3")
    w.br("ne", phase, w.const(3), "p4")
    w.const(OP_STORE, dst=code)
    w.label("p4")
    w.br("ne", phase, w.const(4), "p5")
    w.const(OP_MUL, dst=code)
    w.label("p5")
    w.br("ne", phase, w.const(5), "p6")
    w.const(OP_ADD, dst=code)
    w.label("p6")
    w.br("ne", phase, w.const(6), "p7")
    w.const(OP_GETITEM, dst=code)
    w.label("p7")
    w.br("ne", phase, w.const(8), "p8")
    w.const(OP_ADD, dst=code)
    w.label("p8")
    w.br("ne", phase, w.const(9), "p9")
    w.const(OP_STORE, dst=code)
    w.label("p9")
    w.astore(ops, k, code)
    w.add(k, one, dst=k)
    w.jmp("install")
    w.label("installed")
    last = w.sub(nops, one)
    rare = w.const(OP_RARE)
    w.astore(ops, last, rare)

    # containers: the hot list and a rarely-touched dict
    nitems = w.const(64)
    list_items = w.newarr(nitems)
    pylist = w.new("PyList")
    w.putfield(pylist, "items", list_items)
    pydict = w.new("PyDict")
    dict_items = w.newarr(nitems)
    w.putfield(pydict, "items", dict_items)
    f = w.const(0)
    w.label("fill")
    w.br("ge", f, nitems, "filled")
    v3 = w.mul(f, w.const(3))
    w.astore(list_items, f, v3)
    v7 = w.mul(f, w.const(7))
    w.astore(dict_items, f, v7)
    w.add(f, one, dst=f)
    w.jmp("fill")
    w.label("filled")

    # main dispatch
    tos = w.const(0)       # top-of-stack value (register-cached)
    acc = w.const(0)
    steps = w.const(0)
    pc = w.const(0)
    gcount = w.const(0)    # getitem counter: drives rare PyDict receivers
    w.label("dispatch")
    w.safepoint()
    w.br("ge", steps, iters, "halt")
    opcode = w.aload(ops, pc)
    zero = w.const(0)
    # chained dispatch (the paper: "an indirect branch [simplified] to a
    # conditional branch (as only 2 of the 9 cases were not-cold)")
    w.br("ne", opcode, w.const(OP_LOAD), "try_store")
    slot = w.mod(steps, w.const(16))
    lv = w.aload(locs, slot)
    tagged = w.or_(lv, w.const(1))          # "boxing" flavor: tag, untag
    untagged = w.shr(tagged, w.const(1))
    mixed = w.xor(untagged, acc)
    w.add(tos, mixed, dst=tos)
    w.jmp("next")
    w.label("try_store")
    w.br("ne", opcode, w.const(OP_STORE), "try_add")
    sslot = w.mod(steps, w.const(16))
    boxed = w.shl(tos, w.const(1))
    stamped = w.or_(boxed, w.const(1))
    w.astore(locs, sslot, stamped)
    w.jmp("next")
    w.label("try_add")
    w.br("ne", opcode, w.const(OP_ADD), "try_mul")
    carry = w.and_(acc, w.const(15))
    summed = w.add(acc, tos)
    w.add(summed, carry, dst=acc)
    w.jmp("next")
    w.label("try_mul")
    w.br("ne", opcode, w.const(OP_MUL), "try_getitem")
    three = w.const(3)
    w.mul(tos, three, dst=tos)
    scaled = w.add(tos, w.const(17))
    folded = w.xor(scaled, acc)
    w.and_(folded, w.const((1 << 40) - 1), dst=tos)
    w.jmp("next")
    w.label("try_getitem")
    w.br("ne", opcode, w.const(OP_GETITEM), "try_rare")
    # choose container: PyDict once per dict_period getitems
    w.add(gcount, one, dst=gcount)
    container = w.fresh()
    w.mov(pylist, dst=container)
    w.br("le", dict_period, zero, "mono")
    r = w.mod(gcount, dict_period)
    w.br("ne", r, zero, "mono")
    w.mov(pydict, dst=container)
    w.label("mono")
    got = w.call("getitem", (container, tos))
    w.add(acc, got, dst=acc)
    w.jmp("next")
    w.label("try_rare")
    w.br("ne", opcode, w.const(OP_RARE), "next")
    # rare opcode: flush accumulator into the stack array
    w.astore(stack, zero, acc)
    w.label("next")
    w.add(pc, one, dst=pc)
    w.br("lt", pc, nops, "no_wrap")
    w.const(0, dst=pc)
    w.label("no_wrap")
    w.add(steps, one, dst=steps)
    w.jmp("dispatch")
    w.label("halt")
    out = w.xor(acc, tos)
    w.ret(out)
    return pb.build()


def force_monomorphic_sites(program) -> frozenset:
    """The grey-bar experiment: treat getitem's call site as monomorphic."""
    method = program.resolve_static("getitem")
    from ..lang.bytecode import Op

    sites = frozenset(
        ("getitem", pc)
        for pc, instr in enumerate(method.instrs)
        if instr.op is Op.VCALL
    )
    return sites


WORKLOAD = Workload(
    name="jython",
    description="Interprets pybench-like Python bytecode (Table 2)",
    build=build,
    samples=[
        Sample(warm_args=[[1500, 250]] * 5, measure_args=[[2500, 250]] * 2,
               weight=1.0),
    ],
    force_monomorphic_sites=force_monomorphic_sites,
    paper_coverage=0.87,
    paper_region_size=227,
    paper_abort_pct=0.69,
    paper_speedup_aggressive=25.0,
)
