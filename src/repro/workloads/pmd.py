"""pmd — Java source-analyzer analogue.

The paper's problem child: "pmd actually slows down in the atomic
configuration, because it has relatively low coverage, but incurs a 2.2%
abort rate... the result of a behavioral change in four atomic regions
that occurs between when the behavior is profiled and where our execution
sample is taken" (§6.1).

This program recreates that exactly: rule-checking loops over a stream of
AST nodes whose "violation" node frequency is ~0.3% in the profiled
documents but ~2.5% in the measured sample; the violation branch was
asserted away, so the regions abort mid-flight.  Coverage is bounded to
~30% by a large non-inlinable report-rendering method on the warm path.
Adaptive recompilation (§7) recovers the loss — exercised by the
``bench_sec7_adaptive`` benchmark.

Published targets: coverage 32%, region size ~42, abort 2.2%, ~2% speedup
only with aggressive inlining.
"""

from __future__ import annotations

from ..lang.builder import ProgramBuilder
from .base import Sample, Workload


def build():
    pb = ProgramBuilder()
    pb.cls("RuleCtx", fields=["violations", "nodes", "hash"])

    # Small helpers the inliner folds into the rule loop.
    cls_hash = pb.method("node_hash", params=("kind", "depth"))
    hk, hd = cls_hash.param(0), cls_hash.param(1)
    c31 = cls_hash.const(31)
    t = cls_hash.mul(hk, c31)
    out = cls_hash.add(t, hd)
    cls_hash.ret(out)

    # Large report renderer: beyond the aggressive inline threshold, keeps
    # region coverage low like pmd's reporting/XML code.
    rep = pb.method("render_report", params=("seed", "rounds"))
    rs, rr = rep.param(0), rep.param(1)
    acc = rep.mov(rs)
    j = rep.const(0)
    one = rep.const(1)
    c3 = rep.const(3)
    c5 = rep.const(5)
    c9 = rep.const(9)
    mask = rep.const((1 << 40) - 1)
    rep.label("rloop")
    rep.safepoint()
    rep.br("ge", j, rr, "rdone")
    for _ in range(45):
        a1 = rep.mul(acc, c3)
        a2 = rep.add(a1, c5)
        a3 = rep.xor(a2, c9)
        a4 = rep.or_(a3, one)
        a5 = rep.and_(a4, mask)
        rep.mov(a5, dst=acc)
    rep.add(j, one, dst=j)
    rep.jmp("rloop")
    rep.label("rdone")
    rep.ret(acc)

    # -- the rule-check loop ----------------------------------------------------
    w = pb.method("work", params=("n", "violation_period"))
    n, vperiod = w.param(0), w.param(1)
    ctx = w.new("RuleCtx")
    state = w.const(99991)
    i = w.const(0)
    one = w.const(1)
    zero = w.const(0)
    w.label("scan")
    w.safepoint()
    w.br("ge", i, n, "report")
    # pseudo-random node kind/depth
    m1 = w.const(1103515245)
    m2 = w.const(12345)
    s1 = w.mul(state, m1)
    s2 = w.add(s1, m2)
    mask31 = w.const((1 << 31) - 1)
    w.and_(s2, mask31, dst=state)
    kind = w.mod(state, w.const(23))
    depth = w.mod(state, w.const(7))
    h = w.call("node_hash", (kind, depth))
    oldh = w.getfield(ctx, "hash")
    newh = w.xor(oldh, h)
    w.putfield(ctx, "hash", newh)
    nodes = w.getfield(ctx, "nodes")
    n2 = w.add(nodes, one)
    w.putfield(ctx, "nodes", n2)
    # Violation branch: cold in the profiled phase, warm in the sample.
    w.br("le", vperiod, zero, "next")
    r = w.mod(i, vperiod)
    w.br("ne", r, zero, "next")
    v = w.getfield(ctx, "violations")
    v2 = w.add(v, one)
    w.putfield(ctx, "violations", v2)
    vh = w.mul(newh, w.const(17))
    w.putfield(ctx, "hash", vh)
    w.label("next")
    w.add(i, one, dst=i)
    w.jmp("scan")
    w.label("report")
    # Render a report chunk every document: the coverage-bounding warm call.
    rounds = w.const(90)
    digest = w.call("render_report", (state, rounds))
    viol = w.getfield(ctx, "violations")
    hsh = w.getfield(ctx, "hash")
    big = w.const(1 << 22)
    vm_ = w.mul(viol, big)
    d1 = w.add(digest, vm_)
    out = w.xor(d1, hsh)
    w.ret(out)
    return pb.build()


WORKLOAD = Workload(
    name="pmd",
    description="Analyzes a set of Java classes for rule violations (Table 2)",
    build=build,
    samples=[
        # Four phases (Table 2: 4 samples).  Profiling sees violations every
        # 400 nodes (0.25%: cold); the measured documents trigger them every
        # 40 nodes (2.5%) in the phases with the behavior change.
        Sample(warm_args=[[300, 2000]] * 5, measure_args=[[350, 400]], weight=0.3),
        Sample(warm_args=[[300, 2000]] * 5, measure_args=[[350, 420]], weight=0.3),
        Sample(warm_args=[[300, 2000]] * 5, measure_args=[[350, 440]], weight=0.2),
        Sample(warm_args=[[300, 2000]] * 5, measure_args=[[350, 2000]], weight=0.2),
    ],
    paper_coverage=0.32,
    paper_region_size=42,
    paper_abort_pct=2.2,
    paper_speedup_aggressive=2.0,
)
