"""hsqldb — embedded database analogue (JDBCbench-like driver).

The paper's biggest winner (56% speedup with aggressive inlining), driven
by two effects this program recreates:

- **monitor density**: every row operation goes through small synchronized
  methods (insert/lookup/update on a table object), so the reservation-lock
  load/branch/store pairs dominate; inside atomic regions SLE reduces each
  balanced pair to one load+branch (§4);
- **early, cheap aborts** (Table 3: abort rate 2.74% yet large speedup;
  §6.1: "the aborts occur very early in the atomic region so they have
  little negative impact"): the hash-probe collision path sits at the very
  top of ``insert``; it stays below the 1% cold threshold while the table
  is near-empty during profiling, but the measured run inserts more rows,
  raising collisions to a few percent.

Published targets: coverage 76%, region size ~88 uops, abort 2.74%.
"""

from __future__ import annotations

from ..lang.builder import ProgramBuilder
from .base import Sample, ThreadedWorkload, Workload

BUCKETS = 4096


def build(threads: int = 1):
    pb = ProgramBuilder()
    pb.cls("Table", fields=["keys", "values", "count", "probes", "checksum"])

    # -- synchronized insert with a collision path at region start -----------
    ins = pb.method("insert", params=("this", "key", "value"),
                    owner="Table", synchronized=True)
    this, key, value = ins.param(0), ins.param(1), ins.param(2)
    keys = ins.getfield(this, "keys")
    nbuckets = ins.const(BUCKETS)
    h = ins.mod(key, nbuckets)
    occupied = ins.aload(keys, h)
    zero = ins.const(0)
    ins.br("ne", occupied, zero, "collide")   # cold while table is empty
    ins.label("store")
    marker = ins.or_(key, ins.const(1))
    ins.astore(keys, h, marker)
    vals = ins.getfield(this, "values")
    ins.astore(vals, h, value)
    count = ins.getfield(this, "count")
    one = ins.const(1)
    c2 = ins.add(count, one)
    ins.putfield(this, "count", c2)
    ins.ret(h)
    ins.label("collide")                      # linear probe (rarely long)
    probes = ins.getfield(this, "probes")
    pone = ins.const(1)
    p2 = ins.add(probes, pone)
    ins.putfield(this, "probes", p2)
    hh = ins.mov(h)
    ins.label("probe")
    ins.safepoint()
    hp = ins.add(hh, pone)
    nb = ins.const(BUCKETS)
    hp2 = ins.mod(hp, nb)
    ins.mov(hp2, dst=hh)
    slot = ins.aload(keys, hh)
    z2 = ins.const(0)
    ins.br("ne", slot, z2, "probe")
    ins.mov(hh, dst=h)
    ins.jmp("store")

    # -- synchronized lookup ---------------------------------------------------
    look = pb.method("lookup", params=("this", "key"),
                     owner="Table", synchronized=True)
    lt, lk = look.param(0), look.param(1)
    lkeys = look.getfield(lt, "keys")
    lb = look.const(BUCKETS)
    lh = look.mod(lk, lb)
    lvals = look.getfield(lt, "values")
    lv = look.aload(lvals, lh)
    look.ret(lv)

    # -- synchronized update -----------------------------------------------------
    upd = pb.method("update", params=("this", "key", "delta"),
                    owner="Table", synchronized=True)
    ut, uk, ud = upd.param(0), upd.param(1), upd.param(2)
    ub = upd.const(BUCKETS)
    uh = upd.mod(uk, ub)
    uvals = upd.getfield(ut, "values")
    uv = upd.aload(uvals, uh)
    uv2 = upd.add(uv, ud)
    upd.astore(uvals, uh, uv2)
    upd.ret(uv2)

    # -- JDBCbench-ish transaction driver ------------------------------------------
    w = pb.method("work", params=("n", "collide_period"))
    n, collide_period = w.param(0), w.param(1)
    table = w.new("Table")
    nb = w.const(BUCKETS)
    karr = w.newarr(nb)
    varr = w.newarr(nb)
    w.putfield(table, "keys", karr)
    w.putfield(table, "values", varr)
    state = w.const(12345)
    acc = w.const(0)
    i = w.const(0)
    one = w.const(1)
    w.label("txn")
    w.safepoint()
    w.br("ge", i, n, "done")
    # next pseudo-random payload value
    m1 = w.const(1103515245)
    m2 = w.const(12345)
    s1 = w.mul(state, m1)
    s2 = w.add(s1, m2)
    maskc = w.const((1 << 31) - 1)
    w.and_(s2, maskc, dst=state)
    # Sequential row keys; every collide_period-th transaction re-inserts
    # the previous key, deterministically taking the collision path (the
    # profile run never does: its period exceeds the run length).
    key = w.fresh()
    w.mov(i, dst=key)
    w.br("le", collide_period, zero, "key_ready")
    rcp = w.mod(i, collide_period)
    cpm1 = w.sub(collide_period, one)
    w.br("ne", rcp, cpm1, "key_ready")
    km1 = w.sub(i, one)
    w.mov(km1, dst=key)
    w.label("key_ready")
    # one insert + two reads + one update, as in a TPC-B-ish transaction
    w.vcall(table, "insert", (key, state))
    r1 = w.vcall(table, "lookup", (key,))
    half = w.const(2)
    k2 = w.div(key, half)
    r2 = w.vcall(table, "lookup", (k2,))
    delta = w.and_(r1, w.const(255))
    r3 = w.vcall(table, "update", (key, delta))
    t1 = w.add(acc, r2)
    t2 = w.xor(t1, r3)
    w.mov(t2, dst=acc)
    w.add(i, one, dst=i)
    w.jmp("txn")
    w.label("done")
    cnt = w.getfield(table, "count")
    prb = w.getfield(table, "probes")
    big = w.const(1 << 20)
    pm = w.mul(prb, big)
    a2 = w.add(acc, cnt)
    out = w.add(a2, pm)
    w.ret(out)
    # threads=1 (the default) emits exactly the single-threaded program, so
    # every Table 2/3 and Figure 7 number is untouched; the N-worker driver
    # methods exist only when a multi-threaded build is requested.
    if threads > 1:
        _emit_threaded(pb)
    return pb.build()


def _emit_threaded(pb: ProgramBuilder) -> None:
    """JDBCbench-style N-worker driver: shared table, partitioned keys.

    ``setup`` allocates the shared table; each guest thread runs ``worker``
    over its own key range (``offset .. offset+n``), so per-thread results
    are schedule-independent by construction while every transaction's
    ``insert`` still does a read-modify-write of the shared ``count`` field
    — the classic lost-update site the serializability oracle watches, and
    (since the Table header fields share cache lines) a dense source of
    *genuine* cross-thread region conflicts.
    """
    s = pb.method("setup", params=())
    table = s.new("Table")
    nb = s.const(BUCKETS)
    karr = s.newarr(nb)
    varr = s.newarr(nb)
    s.putfield(table, "keys", karr)
    s.putfield(table, "values", varr)
    s.ret(table)

    w = pb.method("worker", params=("table", "n", "offset"))
    table, n, offset = w.param(0), w.param(1), w.param(2)
    state = w.const(54321)
    acc = w.const(0)
    i = w.const(0)
    one = w.const(1)
    w.label("txn")
    w.safepoint()
    w.br("ge", i, n, "done")
    m1 = w.const(1103515245)
    m2 = w.const(12345)
    s1 = w.mul(state, m1)
    s2 = w.add(s1, m2)
    maskc = w.const((1 << 31) - 1)
    w.and_(s2, maskc, dst=state)
    key = w.add(offset, i)
    # insert + read-back + update, all within this worker's key range.
    w.vcall(table, "insert", (key, state))
    r1 = w.vcall(table, "lookup", (key,))
    delta = w.and_(r1, w.const(255))
    r3 = w.vcall(table, "update", (key, delta))
    t1 = w.add(acc, r1)
    t2 = w.xor(t1, r3)
    w.mov(t2, dst=acc)
    w.add(i, one, dst=i)
    w.jmp("txn")
    w.label("done")
    w.ret(acc)


WORKLOAD = Workload(
    name="hsqldb",
    description="Executes JDBCbench-like in-memory transactions (Table 2)",
    build=build,
    samples=[
        # Profiled transactions never collide (period >> n); the measured
        # run's forced re-insertions abort a few percent of regions.
        Sample(warm_args=[[80, 1000000]] * 6, measure_args=[[300, 220]] * 3,
               weight=1.0),
    ],
    paper_coverage=0.76,
    paper_region_size=88,
    paper_abort_pct=2.74,
    paper_speedup_aggressive=56.0,
)

#: two JDBCbench workers sharing one table, key ranges a cache-line-dense
#: ``count`` field apart — the concurrency-chaos target.
THREADED = ThreadedWorkload(
    name="hsqldb-mt",
    description="JDBCbench driver with concurrent workers on one table",
    build=lambda: build(threads=2),
    setup="setup",
    worker="worker",
    thread_args=[[60, 0], [60, 1024]],
    warm_args=[[40, 0]] * 3,
)
