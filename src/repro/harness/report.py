"""Plain-text rendering of figure/table data."""

from __future__ import annotations

from .figures import FigureData


def render(data: FigureData, width: int = 10) -> str:
    """Render one figure as an aligned text table."""
    lines = [data.title, "-" * len(data.title)]
    header = f"{'bench':10s}" + "".join(
        f"{col:>{max(width, len(col) + 2)}s}" for col in data.columns
    )
    lines.append(header)
    for bench, values in data.rows.items():
        cells = "".join(
            f"{value:>{max(width, len(col) + 2)}.2f}"
            for value, col in zip(values, data.columns)
        )
        lines.append(f"{bench:10s}" + cells)
    averages = data.averages()
    if averages and len(data.rows) > 1:
        cells = "".join(
            f"{value:>{max(width, len(col) + 2)}.2f}"
            for value, col in zip(averages, data.columns)
        )
        lines.append(f"{'average':10s}" + cells)
    for note in data.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def render_all(figures: list[FigureData]) -> str:
    return "\n\n".join(render(f) for f in figures)


def render_concurrency(report) -> str:
    """Render a :class:`~repro.harness.chaos.ConcurrencyReport` with the
    per-schedule concurrency counters (real vs. injected conflict aborts,
    contended acquisitions, context switches, per-thread retired uops)."""
    header = (
        f"{'schedule':24s}{'ok':>5s}{'serial':>10s}{'switch':>8s}"
        f"{'real':>6s}{'inj':>6s}{'cont':>6s}  per-thread uops"
    )
    lines = ["serializability sweep", "-" * len(header), header]
    for check in report.checks:
        stats = check.stats
        per_thread = " ".join(
            f"t{tid}:{uops}" for tid, uops in sorted(stats.uops_by_thread.items())
        )
        order = ("".join(map(str, check.serial_order))
                 if check.serial_order is not None else "NONE")
        lines.append(
            f"{check.workload + ' seed=' + str(check.seed):24s}"
            f"{'ok' if check.ok else 'FAIL':>5s}{order:>10s}"
            f"{stats.context_switches:>8d}"
            f"{stats.real_conflict_aborts:>6d}"
            f"{stats.injected_conflict_aborts:>6d}"
            f"{stats.contended_acquisitions:>6d}  {per_thread}"
        )
    failures = report.failures()
    lines.append(
        f"{len(report.checks)} schedules, {len(failures)} failure(s)"
    )
    for check in failures:
        if check.violation is not None:
            lines.append(check.violation)
    return "\n".join(lines)
