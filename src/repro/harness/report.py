"""Plain-text rendering of figure/table data and event timelines."""

from __future__ import annotations

from .figures import FigureData


def _format_cell(value, width: int) -> str:
    """Right-align one table cell; floats get the figures' 2-decimal form."""
    if isinstance(value, float):
        return f"{value:>{width}.2f}"
    return f"{value!s:>{width}}"


def _aligned_table(
    first_header: str,
    first_width: int,
    columns: list[str],
    rows: list[tuple[str, list]],
    min_width: int = 10,
    trailer_header: str | None = None,
    trailers: list[str] | None = None,
) -> list[str]:
    """The shared bar/table renderer: a left-aligned label column plus
    right-aligned value columns sized to their headers.

    Every tabular report (figures, concurrency sweeps) routes through this
    one formatter so alignment rules live in exactly one place.
    ``trailer_header``/``trailers`` append one free-form left-aligned
    column (e.g. per-thread uop lists) after the aligned cells.
    """
    widths = [max(min_width, len(col) + 2) for col in columns]
    header = f"{first_header:<{first_width}s}" + "".join(
        f"{col:>{width}s}" for col, width in zip(columns, widths)
    )
    if trailer_header is not None:
        header += f"  {trailer_header}"
    lines = [header]
    for index, (label, cells) in enumerate(rows):
        line = f"{label:<{first_width}s}" + "".join(
            _format_cell(cell, width) for cell, width in zip(cells, widths)
        )
        if trailers is not None:
            line += f"  {trailers[index]}"
        lines.append(line)
    return lines


def render(data: FigureData, width: int = 10) -> str:
    """Render one figure as an aligned text table."""
    lines = [data.title, "-" * len(data.title)]
    rows = [(bench, values) for bench, values in data.rows.items()]
    averages = data.averages()
    if averages and len(data.rows) > 1:
        rows.append(("average", averages))
    lines.extend(_aligned_table("bench", 10, data.columns, rows,
                                min_width=width))
    for note in data.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def render_all(figures: list[FigureData]) -> str:
    return "\n\n".join(render(f) for f in figures)


def render_concurrency(report) -> str:
    """Render a :class:`~repro.harness.chaos.ConcurrencyReport` with the
    per-schedule concurrency counters (real vs. injected conflict aborts,
    contended acquisitions, context switches, per-thread retired uops)."""
    columns = ["ok", "serial", "switch", "real", "inj", "cont"]
    rows = []
    trailers = []
    for check in report.checks:
        stats = check.stats
        order = ("".join(map(str, check.serial_order))
                 if check.serial_order is not None else "NONE")
        rows.append((
            f"{check.workload} seed={check.seed}",
            ["ok" if check.ok else "FAIL", order, stats.context_switches,
             stats.real_conflict_aborts, stats.injected_conflict_aborts,
             stats.contended_acquisitions],
        ))
        trailers.append(" ".join(
            f"t{tid}:{uops}" for tid, uops in sorted(stats.uops_by_thread.items())
        ))
    body = _aligned_table(
        "schedule", 24, columns, rows, min_width=6,
        trailer_header="per-thread uops", trailers=trailers,
    )
    lines = ["serializability sweep", "-" * len(body[0])] + body
    failures = report.failures()
    lines.append(
        f"{len(report.checks)} schedules, {len(failures)} failure(s)"
    )
    for check in failures:
        if check.violation is not None:
            lines.append(check.violation)
        if check.trace_path is not None:
            lines.append(f"  trace dumped to {check.trace_path}")
    return "\n".join(lines)


def render_supervisor(outcome, title: str = "sweep supervisor") -> str:
    """Render a :class:`~repro.harness.supervisor.SweepOutcome`: one row
    of lifecycle counters (cells, completions, resumes, retries,
    timeouts, pool rebuilds, quarantines, serial degradation) followed by
    the failure manifest — the at-a-glance answer to "what did the
    fault-tolerance ladder have to do to finish this sweep?"."""
    columns = ["cells", "done", "resumed", "retry", "timeout", "rebuild",
               "quar", "serial"]
    rows = [(
        "sweep",
        [len(outcome.results), outcome.completed, outcome.resumed,
         outcome.retries, outcome.timeouts, outcome.pool_rebuilds,
         outcome.quarantined,
         "yes" if outcome.degraded_serial else "no"],
    )]
    body = _aligned_table("supervised", 12, columns, rows, min_width=8)
    lines = [title, "-" * len(body[0])] + body
    for failure in outcome.failures:
        lines.append(
            f"  QUARANTINED {failure.key}: {failure.kind} "
            f"x{failure.attempts} — {failure.error}"
        )
    return "\n".join(lines)


def render_cache(counters: dict, title: str = "result cache") -> str:
    """Render a cache counter snapshot (:meth:`~repro.harness.diskcache.
    HotCache.counters`): hot/disk hits, misses, quarantined disk entries,
    occupancy, and the answered-without-compute hit rate — the
    at-a-glance answer to "how much work is the cache saving?"."""
    hot = counters.get("hot_hits", 0)
    disk = counters.get("disk_hits", 0)
    miss = counters.get("misses", 0)
    lookups = hot + disk + miss
    hit_pct = (hot + disk) / lookups * 100.0 if lookups else 0.0
    columns = ["hot", "disk", "miss", "quar", "entries", "cap", "hit%"]
    rows = [(
        "lookups",
        [hot, disk, miss, counters.get("quarantined", 0),
         counters.get("entries", 0), counters.get("capacity", 0),
         hit_pct],
    )]
    body = _aligned_table("cache", 12, columns, rows, min_width=8)
    return "\n".join([title, "-" * len(body[0])] + body)


def render_timeline(events, limit: int | None = None,
                    title: str = "region-lifecycle timeline") -> str:
    """Render a list of :class:`~repro.obs.TraceEvent` as a text timeline.

    One line per event — deterministic timestamp, thread, kind, and the
    typed arguments — so a failing chaos seed's interleaving reads top to
    bottom without loading the Chrome dump into a viewer.  ``limit`` keeps
    only the last N events (where failures live).
    """
    shown = list(events)
    dropped = 0
    if limit is not None and len(shown) > limit:
        dropped = len(shown) - limit
        shown = shown[-limit:]
    lines = [title, "-" * len(title),
             f"{'ts':>10s} {'tid':>4s}  {'event':<18s} detail"]
    if dropped:
        lines.append(f"{'...':>10s} {'':>4s}  ({dropped} earlier events omitted)")
    for event in shown:
        detail = " ".join(f"{key}={value}" for key, value in event.args)
        lines.append(
            f"{event.ts:>10d} {event.tid:>4d}  {event.kind:<18s} {detail}".rstrip()
        )
    lines.append(f"{len(events)} event(s)")
    return "\n".join(lines)
