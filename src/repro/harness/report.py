"""Plain-text rendering of figure/table data."""

from __future__ import annotations

from .figures import FigureData


def render(data: FigureData, width: int = 10) -> str:
    """Render one figure as an aligned text table."""
    lines = [data.title, "-" * len(data.title)]
    header = f"{'bench':10s}" + "".join(
        f"{col:>{max(width, len(col) + 2)}s}" for col in data.columns
    )
    lines.append(header)
    for bench, values in data.rows.items():
        cells = "".join(
            f"{value:>{max(width, len(col) + 2)}.2f}"
            for value, col in zip(values, data.columns)
        )
        lines.append(f"{bench:10s}" + cells)
    averages = data.averages()
    if averages and len(data.rows) > 1:
        cells = "".join(
            f"{value:>{max(width, len(col) + 2)}.2f}"
            for value, col in zip(averages, data.columns)
        )
        lines.append(f"{'average':10s}" + cells)
    for note in data.notes:
        lines.append(f"  note: {note}")
    return "\n".join(lines)


def render_all(figures: list[FigureData]) -> str:
    return "\n\n".join(render(f) for f in figures)
