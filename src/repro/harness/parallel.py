"""Sharded parallel experiment runner with a deterministic merge order.

Figure sweeps and chaos matrices decompose into independent cells — one
(workload, compiler, hardware, flags) experiment, or one fault seed — and
every cell builds its own VM from scratch, so cells parallelize across a
process pool with no shared state.  Two disciplines keep the parallel
runs byte-identical to serial ones:

- **Deterministic partitioning.**  Work is sharded *by cell*, never by
  splitting a cell: seeds keep their identity (each worker derives its
  fault schedule from its own seed exactly as the serial loop does, the
  ``derive_seed`` discipline), so no PRNG stream ever depends on which
  worker ran it.
- **Deterministic merge.**  Results are collected in *submission* order,
  not completion order, and chaos checks are re-sorted into the serial
  loop's (sample, seed-position) order — so reports, tables, and
  EXPERIMENTS.md output are independent of scheduling noise.

``run_indexed`` degrades to a plain in-process loop for ``workers <= 1``
(the default when ``REPRO_WORKERS`` is unset), which is also the
reference behavior the differential suite compares against.
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from ..faults import FaultPlan
from ..hw.config import (
    BASELINE_4WIDE,
    CHKPT_20CYCLE,
    CHKPT_SINGLE_INFLIGHT,
    OOO_2WIDE,
    OOO_2WIDE_HALF,
)
from ..vm.compiler import (
    ATOMIC,
    ATOMIC_AGGRESSIVE,
    NO_ATOMIC,
    NO_ATOMIC_AGGRESSIVE,
)
from ..workloads import get_workload
from . import experiment
from .chaos import ChaosReport, run_chaos
from .figures import BENCH_ORDER

#: named configs a worker process can resolve from a picklable cell spec.
COMPILER_CONFIGS = {
    c.name: c
    for c in (NO_ATOMIC, ATOMIC, NO_ATOMIC_AGGRESSIVE, ATOMIC_AGGRESSIVE)
}
HARDWARE_CONFIGS = {
    h.name: h
    for h in (BASELINE_4WIDE, CHKPT_20CYCLE, CHKPT_SINGLE_INFLIGHT,
              OOO_2WIDE, OOO_2WIDE_HALF)
}


def default_workers() -> int:
    """The harness-wide worker count: ``REPRO_WORKERS`` clamped to >= 1,
    else 1 (serial; parallelism is opt-in).

    This is *the* one place worker counts come from — ``run_indexed``,
    the sweep supervisor, and the sweep server all defer here, so one
    environment variable steers every pool.  The value is clamped, not
    trusted: ``REPRO_WORKERS=0`` or a negative count means serial, and a
    malformed value (``"four"``, ``"4x"``) falls back to serial with a
    warning instead of raising ``ValueError`` deep inside a sweep — a
    bad environment variable must never kill hours of cells.
    """
    env = os.environ.get("REPRO_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            warnings.warn(
                f"malformed REPRO_WORKERS={env!r}; falling back to serial "
                "(workers=1)", RuntimeWarning, stacklevel=2,
            )
            return 1
    return 1


def run_indexed(items, fn, workers: int | None = None) -> list:
    """Map ``fn`` over ``items``; results always in ``items`` order.

    With ``workers <= 1`` this is a plain loop.  Otherwise the calls run
    on a process pool and the futures are drained in submission order —
    the merge is deterministic no matter how the pool schedules them.
    """
    items = list(items)
    if workers is None:
        workers = default_workers()
    if workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(workers, len(items))) as pool:
        futures = [pool.submit(fn, item) for item in items]
        return [future.result() for future in futures]


# -- figure-sweep cells -------------------------------------------------------

@dataclass(frozen=True)
class Cell:
    """One picklable experiment cell (resolved by name in the worker)."""

    workload: str
    compiler: str
    hardware: str = BASELINE_4WIDE.name
    timing: bool = True
    force_monomorphic: bool = False
    adaptive: bool = False
    dispatch: str = "auto"

    def key(self) -> tuple:
        return experiment.memo_key(
            self.workload, self.compiler, self.hardware, self.timing,
            self.force_monomorphic, self.adaptive, dispatch=self.dispatch,
        )


def figure_cells(benches: list[str] | None = None) -> list[Cell]:
    """Every registry cell the figure drivers consume, in a fixed order.

    Covers Figures 7/8/9, Tables 2/3, and §6.2/§6.3 (§7's adaptive run
    uses a derived workload that only exists in-process, so it stays
    serial).  Order is deterministic: benchmark-major, then config.
    """
    benches = list(benches) if benches is not None else list(BENCH_ORDER)
    cells: list[Cell] = []
    for bench in benches:
        for compiler in (NO_ATOMIC, ATOMIC, NO_ATOMIC_AGGRESSIVE,
                         ATOMIC_AGGRESSIVE):
            cells.append(Cell(bench, compiler.name))
        if (bench == "jython"
                and get_workload(bench).force_monomorphic_sites is not None):
            cells.append(Cell(bench, ATOMIC.name, force_monomorphic=True))
        for hw in (CHKPT_20CYCLE, CHKPT_SINGLE_INFLIGHT):
            cells.append(Cell(bench, ATOMIC_AGGRESSIVE.name, hw.name))
        for hw in (OOO_2WIDE, OOO_2WIDE_HALF):
            cells.append(Cell(bench, NO_ATOMIC.name, hw.name))
            cells.append(Cell(bench, ATOMIC_AGGRESSIVE.name, hw.name))
    return cells


def compute_cell(cell: Cell):
    """Worker entry: run one cell; returns (memo key, result)."""
    result = experiment.run_workload(
        get_workload(cell.workload),
        COMPILER_CONFIGS[cell.compiler],
        HARDWARE_CONFIGS[cell.hardware],
        timing=cell.timing,
        force_monomorphic=cell.force_monomorphic,
        adaptive=cell.adaptive,
        dispatch=cell.dispatch,
        use_cache=False,
    )
    return cell.key(), result


def prewarm_figures(
    benches: list[str] | None = None,
    workers: int | None = None,
    cells: list[Cell] | None = None,
    supervisor=None,
) -> int:
    """Compute figure cells (in parallel) and seed the in-process memo.

    After this, the figure drivers (:func:`repro.harness.figures.figure7`
    etc.) find every registry cell already cached and only glue results
    together.  Returns the number of cells installed.  Cells already in
    the memo (or the enabled disk cache) are not recomputed.

    ``supervisor`` (a :class:`repro.harness.supervisor.SupervisorConfig`)
    routes the sweep through the fault-tolerant supervisor instead of the
    bare pool: worker crashes, hangs, and transient failures are retried
    and, with a journal configured, an interrupted prewarm resumes
    without recomputation.  Quarantined cells simply stay uncached — the
    figure drivers compute them serially on demand, so a partial prewarm
    degrades gracefully rather than failing the sweep.
    """
    if supervisor is not None:
        outcome = prewarm_figures_supervised(
            benches, config=supervisor, cells=cells)
        return outcome.completed + outcome.resumed
    pending = [
        cell for cell in (cells if cells is not None
                          else figure_cells(benches))
        if cell.key() not in experiment._cache
    ]
    for key, result in run_indexed(pending, compute_cell, workers):
        experiment.install_cached(key, result)
    return len(pending)


def prewarm_figures_supervised(
    benches: list[str] | None = None,
    config=None,
    cells: list[Cell] | None = None,
    tracer=None,
):
    """:func:`prewarm_figures` through the sweep supervisor.

    Returns the full :class:`repro.harness.supervisor.SweepOutcome`
    (lifecycle counters, failure manifest, metrics) after installing
    every completed cell in the in-process memo.
    """
    from .supervisor import SupervisorConfig, run_supervised

    pending = [
        cell for cell in (cells if cells is not None
                          else figure_cells(benches))
        if cell.key() not in experiment._cache
    ]
    kwargs = {"config": config or SupervisorConfig()}
    if tracer is not None:
        kwargs["tracer"] = tracer
    outcome = run_supervised(pending, compute_cell, **kwargs)
    for pair in outcome.results:
        if pair is not None:
            experiment.install_cached(*pair)
    return outcome


# -- sharded chaos sweeps -----------------------------------------------------

def _chaos_shard(spec: tuple) -> ChaosReport:
    """Worker entry: the full sample matrix for one fault seed."""
    (workload_name, compiler_name, seed, hw_name, storm_reason,
     max_samples) = spec
    plan_factory = (
        None if storm_reason is None
        else (lambda _seed: FaultPlan.storm(storm_reason, offset=2))
    )
    return run_chaos(
        get_workload(workload_name),
        COMPILER_CONFIGS[compiler_name],
        seeds=(seed,),
        hw_config=HARDWARE_CONFIGS[hw_name],
        plan_factory=plan_factory,
        max_samples=max_samples,
    )


def run_chaos_parallel(
    workload_name: str,
    compiler_name: str = ATOMIC_AGGRESSIVE.name,
    seeds=(0, 1, 2),
    hw_name: str = BASELINE_4WIDE.name,
    storm_reason: str | None = None,
    max_samples: int | None = None,
    workers: int | None = None,
    supervisor=None,
) -> ChaosReport:
    """Seed-sharded :func:`repro.harness.chaos.run_chaos`.

    Each worker runs the complete sample matrix for one seed — the fault
    schedule is a pure function of that seed, so sharding cannot perturb
    it — and the merged report re-sorts checks into the serial loop's
    (sample index, seed position) order, making the merged report
    byte-identical to a serial ``run_chaos`` over the same seeds.

    ``supervisor`` (a :class:`repro.harness.supervisor.SupervisorConfig`)
    hardens the shard sweep: crashed/hung/flaky shards are retried with
    backoff, a journal makes an interrupted matrix resumable, and a
    shard that exhausts its budget lands in ``ChaosReport.host_failures``
    (the merged report stays partial-but-explicit instead of dying).
    """
    seeds = list(seeds)
    specs = [
        (workload_name, compiler_name, seed, hw_name, storm_reason,
         max_samples)
        for seed in seeds
    ]
    host_failures = []
    if supervisor is not None:
        from .supervisor import run_supervised

        outcome = run_supervised(specs, _chaos_shard, config=supervisor)
        shards = [shard for shard in outcome.results if shard is not None]
        host_failures = list(outcome.failures)
    else:
        shards = run_indexed(specs, _chaos_shard, workers)
    seed_position = {seed: i for i, seed in enumerate(seeds)}
    merged = ChaosReport()
    merged.host_failures = host_failures
    merged.checks = sorted(
        (check for shard in shards for check in shard.checks),
        key=lambda c: (c.sample_index, seed_position[c.seed]),
    )
    return merged
