"""On-disk experiment-result cache keyed by content hash.

A figure sweep recomputes the same (workload, config) cells across
benchmark scripts and CI jobs.  This cache persists each
:class:`repro.harness.experiment.RunResult` under a key that hashes the
full cell configuration *and the simulator source tree*, so a stale
entry can never survive a code change: touch any ``src/repro`` module and
every key moves.

The cache is opt-in (``REPRO_DISK_CACHE=1``) so tests and default runs
never read state left by a previous process; the directory defaults to
``.repro-cache`` under the current directory (``REPRO_DISK_CACHE_DIR``
overrides).  Writes are atomic (temp file + rename), so a crashed or
concurrent writer can only ever leave a complete entry or none.

Entries are self-verifying: each file is ``magic + sha256(payload) +
payload`` and :func:`load` re-hashes before unpickling, so raw pickle
bytes are never trusted.  A corrupt entry (bit rot, torn write, hostile
edit — :func:`repro.harness.hostchaos.corrupt_cache_entries` exercises
exactly this) is **quarantined**: renamed to ``*.corrupt`` so it is
never re-read, counted in :data:`quarantined_entries`, and reported as a
miss — the cell silently recomputes, which is the supervisor's
"failures are non-fatal" contract applied to storage.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path

_TRUTHY = ("1", "true", "yes", "on")

#: entry-file magic; everything before it existed pre-checksums and is
#: quarantined on sight (the content-hash keys moved anyway).
_MAGIC = b"RPROCACHE1\n"
_DIGEST_SIZE = 32

#: memoized source-tree digest (one walk per process).
_code_version: str | None = None

#: corrupt entries quarantined by this process (observability hook).
quarantined_entries: int = 0


def enabled(explicit: bool | None = None) -> bool:
    """Explicit argument wins; otherwise the ``REPRO_DISK_CACHE`` env var."""
    if explicit is not None:
        return explicit
    return os.environ.get("REPRO_DISK_CACHE", "").lower() in _TRUTHY


def cache_dir() -> Path:
    return Path(os.environ.get("REPRO_DISK_CACHE_DIR", ".repro-cache"))


def code_version() -> str:
    """Digest of every ``src/repro`` Python source file, path-ordered."""
    global _code_version
    if _code_version is None:
        root = Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_version = digest.hexdigest()
    return _code_version


def entry_key(cell_key: tuple) -> str:
    """Content hash of (source tree, cell configuration)."""
    payload = repr((code_version(), cell_key)).encode()
    return hashlib.sha256(payload).hexdigest()


def _entry_path(cell_key: tuple) -> Path:
    return cache_dir() / f"{entry_key(cell_key)}.pickle"


def _verified_payload(data: bytes) -> bytes | None:
    """The pickle payload iff magic and checksum hold, else None."""
    if not data.startswith(_MAGIC):
        return None
    digest = data[len(_MAGIC):len(_MAGIC) + _DIGEST_SIZE]
    payload = data[len(_MAGIC) + _DIGEST_SIZE:]
    if len(digest) < _DIGEST_SIZE:
        return None
    if hashlib.sha256(payload).digest() != digest:
        return None
    return payload


def _quarantine(path: Path) -> None:
    """Move a corrupt entry aside so it is never re-read (delete as a
    last resort); always counted."""
    global quarantined_entries
    quarantined_entries += 1
    try:
        os.replace(path, path.with_suffix(".corrupt"))
    except OSError:
        try:
            os.unlink(path)
        except OSError:
            pass


def load(cell_key: tuple):
    """The cached result for ``cell_key``, or None (never raises).

    Verifies the per-entry sha256 before unpickling; a failed check or a
    payload that will not unpickle quarantines the entry and misses.
    """
    path = _entry_path(cell_key)
    try:
        data = path.read_bytes()
    except OSError:
        return None
    payload = _verified_payload(data)
    if payload is None:
        _quarantine(path)
        return None
    try:
        return pickle.loads(payload)
    except Exception:
        # checksum held but the payload is not loadable here (e.g. a
        # class renamed mid-flight): same treatment, never re-read it.
        _quarantine(path)
        return None


def store(cell_key: tuple, result) -> None:
    """Persist ``result`` atomically; failures are non-fatal.

    *Any* failure — OSError on the temp file, but equally a
    ``PicklingError`` on an unpicklable result — leaves no temp litter
    and no entry; the next run simply recomputes the cell.
    """
    path = _entry_path(cell_key)
    try:
        payload = pickle.dumps(result)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(_MAGIC)
                handle.write(hashlib.sha256(payload).digest())
                handle.write(payload)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except Exception:
        pass
