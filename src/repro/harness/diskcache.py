"""On-disk experiment-result cache keyed by content hash.

A figure sweep recomputes the same (workload, config) cells across
benchmark scripts and CI jobs.  This cache persists each
:class:`repro.harness.experiment.RunResult` under a key that hashes the
full cell configuration *and the simulator source tree*, so a stale
entry can never survive a code change: touch any ``src/repro`` module and
every key moves.

The cache is opt-in (``REPRO_DISK_CACHE=1``) so tests and default runs
never read state left by a previous process; the directory defaults to
``.repro-cache`` under the current directory (``REPRO_DISK_CACHE_DIR``
overrides).  Writes are atomic (temp file + rename), so a crashed or
concurrent writer can only ever leave a complete entry or none.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path

_TRUTHY = ("1", "true", "yes", "on")

#: memoized source-tree digest (one walk per process).
_code_version: str | None = None


def enabled(explicit: bool | None = None) -> bool:
    """Explicit argument wins; otherwise the ``REPRO_DISK_CACHE`` env var."""
    if explicit is not None:
        return explicit
    return os.environ.get("REPRO_DISK_CACHE", "").lower() in _TRUTHY


def cache_dir() -> Path:
    return Path(os.environ.get("REPRO_DISK_CACHE_DIR", ".repro-cache"))


def code_version() -> str:
    """Digest of every ``src/repro`` Python source file, path-ordered."""
    global _code_version
    if _code_version is None:
        root = Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_version = digest.hexdigest()
    return _code_version


def entry_key(cell_key: tuple) -> str:
    """Content hash of (source tree, cell configuration)."""
    payload = repr((code_version(), cell_key)).encode()
    return hashlib.sha256(payload).hexdigest()


def _entry_path(cell_key: tuple) -> Path:
    return cache_dir() / f"{entry_key(cell_key)}.pickle"


def load(cell_key: tuple):
    """The cached result for ``cell_key``, or None (never raises)."""
    path = _entry_path(cell_key)
    try:
        with open(path, "rb") as handle:
            return pickle.load(handle)
    except (OSError, pickle.PickleError, EOFError, AttributeError):
        return None


def store(cell_key: tuple, result) -> None:
    """Persist ``result`` atomically; failures are non-fatal."""
    path = _entry_path(cell_key)
    try:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle)
            os.replace(tmp, path)
        except BaseException:
            os.unlink(tmp)
            raise
    except OSError:
        pass
