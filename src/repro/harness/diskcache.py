"""On-disk experiment-result cache keyed by content hash.

A figure sweep recomputes the same (workload, config) cells across
benchmark scripts and CI jobs.  This cache persists each
:class:`repro.harness.experiment.RunResult` under a key that hashes the
full cell configuration *and the simulator source tree*, so a stale
entry can never survive a code change: touch any ``src/repro`` module and
every key moves.

The cache is opt-in (``REPRO_DISK_CACHE=1``) so tests and default runs
never read state left by a previous process; the directory defaults to
``.repro-cache`` under the current directory (``REPRO_DISK_CACHE_DIR``
overrides).  Writes are atomic (temp file, flush+fsync, then
``os.replace``), so a crashed, SIGKILLed, or concurrent writer can only
ever leave a complete entry or none — a torn entry is *impossible to
observe* at the final path, not merely caught by the checksum.

:class:`HotCache` adds an in-memory LRU layer in front of :func:`load`
(the sweep server's memory-speed answer path): :func:`load_hot` consults
the hot layer first, falls through to disk, and counts
``hot_hits`` / ``disk_hits`` / ``misses`` alongside the module's
``quarantined_entries`` — rendered by
:func:`repro.harness.report.render_cache`.

Entries are self-verifying: each file is ``magic + sha256(payload) +
payload`` and :func:`load` re-hashes before unpickling, so raw pickle
bytes are never trusted.  A corrupt entry (bit rot, torn write, hostile
edit — :func:`repro.harness.hostchaos.corrupt_cache_entries` exercises
exactly this) is **quarantined**: renamed to ``*.corrupt`` so it is
never re-read, counted in :data:`quarantined_entries`, and reported as a
miss — the cell silently recomputes, which is the supervisor's
"failures are non-fatal" contract applied to storage.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from pathlib import Path

_TRUTHY = ("1", "true", "yes", "on")

#: entry-file magic; everything before it existed pre-checksums and is
#: quarantined on sight (the content-hash keys moved anyway).
_MAGIC = b"RPROCACHE1\n"
_DIGEST_SIZE = 32

#: memoized source-tree digest (one walk per process).
_code_version: str | None = None

#: corrupt entries quarantined by this process (observability hook).
quarantined_entries: int = 0


def enabled(explicit: bool | None = None) -> bool:
    """Explicit argument wins; otherwise the ``REPRO_DISK_CACHE`` env var."""
    if explicit is not None:
        return explicit
    return os.environ.get("REPRO_DISK_CACHE", "").lower() in _TRUTHY


def cache_dir() -> Path:
    return Path(os.environ.get("REPRO_DISK_CACHE_DIR", ".repro-cache"))


def code_version() -> str:
    """Digest of every ``src/repro`` Python source file, path-ordered."""
    global _code_version
    if _code_version is None:
        root = Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_version = digest.hexdigest()
    return _code_version


def entry_key(cell_key: tuple) -> str:
    """Content hash of (source tree, cell configuration)."""
    payload = repr((code_version(), cell_key)).encode()
    return hashlib.sha256(payload).hexdigest()


def _entry_path(cell_key: tuple) -> Path:
    return cache_dir() / f"{entry_key(cell_key)}.pickle"


def _verified_payload(data: bytes) -> bytes | None:
    """The pickle payload iff magic and checksum hold, else None."""
    if not data.startswith(_MAGIC):
        return None
    digest = data[len(_MAGIC):len(_MAGIC) + _DIGEST_SIZE]
    payload = data[len(_MAGIC) + _DIGEST_SIZE:]
    if len(digest) < _DIGEST_SIZE:
        return None
    if hashlib.sha256(payload).digest() != digest:
        return None
    return payload


def _quarantine(path: Path) -> None:
    """Move a corrupt entry aside so it is never re-read (delete as a
    last resort); always counted."""
    global quarantined_entries
    quarantined_entries += 1
    try:
        os.replace(path, path.with_suffix(".corrupt"))
    except OSError:
        try:
            os.unlink(path)
        except OSError:
            pass


def load(cell_key: tuple):
    """The cached result for ``cell_key``, or None (never raises).

    Verifies the per-entry sha256 before unpickling; a failed check or a
    payload that will not unpickle quarantines the entry and misses.
    """
    path = _entry_path(cell_key)
    try:
        data = path.read_bytes()
    except OSError:
        return None
    payload = _verified_payload(data)
    if payload is None:
        _quarantine(path)
        return None
    try:
        return pickle.loads(payload)
    except Exception:
        # checksum held but the payload is not loadable here (e.g. a
        # class renamed mid-flight): same treatment, never re-read it.
        _quarantine(path)
        return None


def store(cell_key: tuple, result) -> None:
    """Persist ``result`` atomically; failures are non-fatal.

    The entry is written to a temp file in the cache directory, flushed
    *and fsynced*, and only then published with ``os.replace`` — so the
    bytes at the final path are always a complete record, even if the
    writer is SIGKILLed at any instant (a kill before the replace leaves
    no entry; a kill after leaves the full one; the page cache can never
    expose a prefix at the final name).  The checksum in :func:`load`
    remains a second line of defence against bit rot, not the only thing
    standing between a torn write and a bad unpickle.

    *Any* failure — OSError on the temp file, but equally a
    ``PicklingError`` on an unpicklable result — leaves no temp litter
    and no entry; the next run simply recomputes the cell.
    """
    path = _entry_path(cell_key)
    try:
        payload = pickle.dumps(result)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(_MAGIC)
                handle.write(hashlib.sha256(payload).digest())
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
    except Exception:
        pass


# -- in-memory LRU hot layer ---------------------------------------------------

def hot_capacity_default() -> int:
    """``REPRO_HOT_CACHE_SIZE`` if set and sane, else 256 entries."""
    env = os.environ.get("REPRO_HOT_CACHE_SIZE")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return 256


class HotCache:
    """A bounded LRU of deserialized results in front of :func:`load`.

    The disk cache answers in milliseconds (read + sha256 + unpickle);
    a long-running sweep server answering the same hot cells to many
    tenants wants memory speed.  :meth:`get` consults the LRU first and
    falls through to the disk entry (promoting it on a hit), counting
    every outcome: ``hot_hits`` (answered from memory), ``disk_hits``
    (answered from disk, now promoted), ``misses`` (nowhere — compute).

    Not thread-safe by design: the sweep server mutates it only from its
    event loop, and sweeps use one instance per process.
    """

    def __init__(self, capacity: int | None = None) -> None:
        self.capacity = (hot_capacity_default()
                         if capacity is None else max(1, int(capacity)))
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self.hot_hits = 0
        self.disk_hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, cell_key: tuple, disk: bool = True):
        """``(result, source)`` — source is ``"hot"``, ``"disk"``, or
        ``None`` on a miss.  ``disk=False`` skips the disk fall-through
        (a server running with the disk cache disabled still gets the
        memory layer)."""
        if cell_key in self._entries:
            self._entries.move_to_end(cell_key)
            self.hot_hits += 1
            return self._entries[cell_key], "hot"
        if disk:
            result = load(cell_key)
            if result is not None:
                self.disk_hits += 1
                self.put(cell_key, result)
                return result, "disk"
        self.misses += 1
        return None, None

    def put(self, cell_key: tuple, result, disk: bool = False) -> None:
        """Install a computed result; ``disk=True`` also persists it
        (atomically, via :func:`store`)."""
        self._entries[cell_key] = result
        self._entries.move_to_end(cell_key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        if disk:
            store(cell_key, result)

    def counters(self) -> dict:
        """JSON-safe counter snapshot (includes the module-global
        quarantine count: corrupt disk entries this process moved aside)."""
        return {
            "hot_hits": self.hot_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "quarantined": quarantined_entries,
            "entries": len(self._entries),
            "capacity": self.capacity,
        }

    def clear(self) -> None:
        self._entries.clear()
        self.hot_hits = 0
        self.disk_hits = 0
        self.misses = 0


#: the shared default hot layer (one per process, like the memo table).
_HOT = HotCache()


def load_hot(cell_key: tuple, disk: bool = True):
    """:meth:`HotCache.get` on the shared default instance."""
    return _HOT.get(cell_key, disk=disk)


def store_hot(cell_key: tuple, result, disk: bool = False) -> None:
    """:meth:`HotCache.put` on the shared default instance."""
    _HOT.put(cell_key, result, disk=disk)


def clear_hot() -> None:
    _HOT.clear()
