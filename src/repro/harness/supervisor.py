"""Fault-tolerant sweep supervisor: experiment cells as host transactions.

The machine under study gets its reliability from atomic execution plus
abort-and-re-execute; the *host* harness historically had neither — one
worker crash in :mod:`repro.harness.parallel` aborted an entire figure
sweep, and a hung cell hung it forever.  This module mirrors the
machine's retry → backoff → fallback ladder one level up: each cell of a
sweep is an all-or-nothing transaction whose only observable effect is a
completed result (or an explicit failure record), re-executable any
number of times.

The ladder, top to bottom (DESIGN.md §11):

1. **Run** each cell on a process pool (submission-order results, exactly
   as :func:`repro.harness.parallel.run_indexed`).
2. **Timeout** — a cell past its wall budget is abandoned; the pool that
   hosts the hung worker is killed and rebuilt.
3. **Retry with backoff** — a failed cell (exception, timeout, lost
   worker) is re-enqueued after a bounded exponential backoff, up to
   ``max_attempts`` total tries.
4. **Pool rebuild** — a broken pool (worker ``os._exit``, OOM-kill, hang)
   is torn down and rebuilt; cells whose work was merely *lost* (their
   worker died of someone else's fault) are re-enqueued without being
   charged an attempt.
5. **Degrade to serial** — after ``max_pool_rebuilds`` rebuilds the pool
   is abandoned entirely and remaining cells run in-process, one by one.
6. **Quarantine** — a cell that exhausts its attempt budget is recorded
   in the failure manifest and the sweep *continues*: partial results
   plus an explicit manifest, never a dead sweep.

Crash consistency comes from an append-only **journal** of completed
cells (:class:`Journal`): each record is length-prefixed and
sha256-checksummed, so a SIGKILL mid-write leaves a torn tail that load
detects and discards.  Re-running the same sweep with the same journal
resumes: already-journaled cells are spliced in without recomputation.

Determinism contract (the headline invariant, enforced by
``tests/test_hostchaos.py``): cells are pure functions of their items, so
no matter which faults fire — kills, hangs, transient exceptions,
corrupted cache entries — a supervised sweep that completes produces
results byte-identical to a clean serial run.

Lifecycle is observable end to end: ``cell_retry`` / ``cell_timeout`` /
``pool_rebuild`` / ``quarantine`` / ``degrade_serial`` trace events
(timestamped by the supervisor's own deterministic event sequence
number), the same counters in a :class:`repro.obs.Metrics` registry on
the outcome, and :func:`repro.harness.report.render_supervisor`.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field
from pathlib import Path

from ..obs import NULL_TRACER, Metrics

#: patchable sleep so tests can run retry ladders without wall delay.
_sleep = time.sleep


@dataclass(frozen=True)
class SupervisorConfig:
    """Tuning knobs for one supervised sweep.

    ``workers=None`` defers to :func:`repro.harness.parallel.default_workers`
    (the ``REPRO_WORKERS`` discipline); ``cell_timeout_s=None`` disables
    the wall budget (cells of unknown duration); ``journal_path=None``
    disables checkpoint/resume.
    """

    workers: int | None = None
    cell_timeout_s: float | None = None
    max_attempts: int = 3
    backoff_base_s: float = 0.005
    backoff_factor: float = 2.0
    backoff_max_s: float = 0.25
    max_pool_rebuilds: int = 3
    journal_path: str | os.PathLike | None = None


@dataclass(frozen=True)
class CellFailure:
    """One quarantined cell: the failure manifest entry."""

    index: int
    key: str
    attempts: int
    kind: str  # "exception" | "timeout" | "worker_lost"
    error: str


@dataclass
class SweepOutcome:
    """Everything one supervised sweep produced.

    ``results`` is in submission order, exactly like ``run_indexed``;
    quarantined slots hold ``None`` (consult :attr:`failures` for truth —
    a legitimate ``None`` result is indistinguishable by design, and no
    harness cell returns one).
    """

    results: list
    failures: list[CellFailure]
    completed: int
    resumed: int
    retries: int
    timeouts: int
    pool_rebuilds: int
    degraded_serial: bool
    metrics: Metrics

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def quarantined(self) -> int:
        return len(self.failures)

    def manifest(self) -> dict:
        """JSON-safe failure manifest (the CI artifact on red runs)."""
        return {
            "cells": len(self.results),
            "completed": self.completed,
            "resumed": self.resumed,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "pool_rebuilds": self.pool_rebuilds,
            "degraded_serial": self.degraded_serial,
            "quarantined": self.quarantined,
            "failures": [asdict(f) for f in self.failures],
        }

    def raise_on_failure(self) -> None:
        if self.failures:
            detail = "\n".join(
                f"  {f.key}: {f.kind} x{f.attempts} — {f.error}"
                for f in self.failures
            )
            raise RuntimeError(
                f"{self.quarantined} cell(s) quarantined:\n{detail}"
            )


# -- crash-consistent completion journal --------------------------------------

#: per-record magic; a record is MAGIC + <u64 payload length> +
#: <sha256(payload)> + payload, payload = pickle((key, result)).
_JOURNAL_MAGIC = b"RSJ1"
_HEADER = struct.Struct("<8sQ")  # magic padded to 8, then length


class Journal:
    """Append-only journal of completed cells, torn-tail tolerant.

    Records are self-delimiting and individually checksummed;
    :meth:`load` replays the longest valid prefix and silently discards
    anything after the first torn or corrupt record — exactly the state a
    SIGKILL mid-append leaves behind.  Appends flush and fsync so a
    record that :meth:`load` returns really survived the crash.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)

    def load(self) -> dict[str, object]:
        """key → result for every intact record (empty if no journal)."""
        try:
            data = self.path.read_bytes()
        except OSError:
            return {}
        entries: dict[str, object] = {}
        offset = 0
        header_size = _HEADER.size + 32
        while offset + header_size <= len(data):
            magic, length = _HEADER.unpack_from(data, offset)
            if magic[:4] != _JOURNAL_MAGIC:
                break
            start = offset + header_size
            payload = data[start:start + length]
            if len(payload) < length:
                break  # torn tail: the append was interrupted
            digest = data[offset + _HEADER.size:start]
            if hashlib.sha256(payload).digest() != digest:
                break  # corrupt record: stop replay here
            try:
                key, result = pickle.loads(payload)
            except Exception:
                break
            entries[key] = result
            offset = start + length
        return entries

    def append(self, key: str, result) -> None:
        """Durably record one completed cell; failures are non-fatal
        (an unjournaled completion merely recomputes on resume)."""
        try:
            payload = pickle.dumps((key, result))
            record = (
                _HEADER.pack(_JOURNAL_MAGIC.ljust(8, b"\0"), len(payload))
                + hashlib.sha256(payload).digest()
                + payload
            )
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "ab") as handle:
                handle.write(record)
                handle.flush()
                os.fsync(handle.fileno())
        except Exception:
            pass


# -- the supervisor ------------------------------------------------------------

class _Supervisor:
    """State machine for one supervised sweep (see module docstring)."""

    def __init__(self, items, fn, config, tracer, key_fn) -> None:
        self.items = items
        self.fn = fn
        self.config = config
        self.tracer = tracer
        self.keys = [key_fn(item) for item in items]
        n = len(items)
        self.results: list = [None] * n
        self.done = [False] * n
        self.attempts = [0] * n
        self.failures: list[CellFailure] = []
        self.metrics = Metrics()
        self.journal = (
            Journal(config.journal_path)
            if config.journal_path is not None else None
        )
        #: deterministic event sequence number: trace timestamps.
        self.seq = 0
        self.completed = 0
        self.resumed = 0
        self.retries = 0
        self.timeouts = 0
        self.pool_rebuilds = 0
        self.degraded = False

    def _tick(self) -> int:
        self.seq += 1
        return self.seq

    # -- cell bookkeeping --------------------------------------------------
    def _complete(self, index: int, result) -> None:
        self.results[index] = result
        self.done[index] = True
        self.completed += 1
        self.metrics.inc("supervisor.cells_completed")
        if self.journal is not None:
            self.journal.append(self.keys[index], result)

    def _handle_failure(self, index: int, kind: str, error: str,
                        backoff: bool = True) -> str:
        """Retry or quarantine a failed attempt; returns which it chose."""
        config = self.config
        if kind == "timeout":
            self.timeouts += 1
            self.metrics.inc("supervisor.cell_timeout")
            if self.tracer.enabled:
                self.tracer.cell_timeout(
                    self._tick(), index, key=self.keys[index],
                    timeout_s=config.cell_timeout_s,
                )
        if self.attempts[index] >= config.max_attempts:
            self.done[index] = True  # done-with-failure; result slot stays None
            self.failures.append(CellFailure(
                index=index, key=self.keys[index],
                attempts=self.attempts[index], kind=kind, error=error,
            ))
            self.metrics.inc("supervisor.quarantine")
            if self.tracer.enabled:
                self.tracer.quarantine(
                    self._tick(), index, key=self.keys[index],
                    attempts=self.attempts[index], failure=kind,
                )
            return "quarantined"
        self.retries += 1
        self.metrics.inc("supervisor.cell_retry")
        delay = 0.0
        if backoff:
            delay = min(
                config.backoff_max_s,
                config.backoff_base_s
                * config.backoff_factor ** (self.attempts[index] - 1),
            )
        if self.tracer.enabled:
            self.tracer.cell_retry(
                self._tick(), index, key=self.keys[index],
                attempt=self.attempts[index], backoff_s=delay, failure=kind,
            )
        if delay > 0:
            _sleep(delay)
        return "retry"

    # -- serial execution (workers<=1 and the degraded endgame) ------------
    def _run_serial(self, pending) -> None:
        """In-process loop with the same retry/quarantine ladder.

        No wall budget applies here: a hang in the supervisor's own
        process cannot be preempted portably, which is exactly why the
        pool path (which *can* kill a hung worker) is the default."""
        queue = deque(pending)
        while queue:
            index = queue.popleft()
            self.attempts[index] += 1
            try:
                result = self.fn(self.items[index])
            except Exception as exc:  # noqa: BLE001 - the ladder is the point
                if self._handle_failure(
                        index, "exception", repr(exc)) == "retry":
                    queue.appendleft(index)
                continue
            self._complete(index, result)

    # -- pool execution ----------------------------------------------------
    def _new_pool(self, workers: int) -> ProcessPoolExecutor:
        outstanding = sum(1 for d in self.done if not d)
        return ProcessPoolExecutor(max_workers=min(workers, max(outstanding, 1)))

    def _kill_pool(self, pool: ProcessPoolExecutor) -> None:
        """Tear a pool down even when a worker is hung: terminate first
        (the only way to unblock a hung worker), then shut down."""
        for process in list((getattr(pool, "_processes", None) or {}).values()):
            try:
                process.terminate()
            except Exception:
                pass
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass

    def _rebuild(self, pool: ProcessPoolExecutor, workers: int,
                 reason: str) -> ProcessPoolExecutor | None:
        """Replace a broken pool; None means the rebuild budget is spent
        and the sweep degrades to serial."""
        self._kill_pool(pool)
        self.pool_rebuilds += 1
        self.metrics.inc("supervisor.pool_rebuild")
        if self.tracer.enabled:
            self.tracer.pool_rebuild(
                self._tick(), rebuilds=self.pool_rebuilds, reason=reason)
        if self.pool_rebuilds > self.config.max_pool_rebuilds:
            self.degraded = True
            self.metrics.inc("supervisor.degrade_serial")
            if self.tracer.enabled:
                self.tracer.degrade_serial(
                    self._tick(), rebuilds=self.pool_rebuilds)
            return None
        return self._new_pool(workers)

    def _run_pool(self, pending, workers: int) -> None:
        config = self.config
        queue: deque[int] = deque(pending)
        pool: ProcessPoolExecutor | None = self._new_pool(workers)
        in_flight: dict = {}  # future -> (cell index, wall deadline | None)

        def abandon_in_flight() -> None:
            """Re-enqueue cells whose work was lost through no fault of
            their own — uncharged, per the transaction model."""
            for future, (index, _deadline) in in_flight.items():
                future.cancel()
                self.attempts[index] -= 1
                queue.append(index)
            in_flight.clear()

        try:
            while queue or in_flight:
                broken_reason = None
                # fill the pool (one wave at a time so a submitted
                # future's deadline approximates its start time)
                while queue and len(in_flight) < workers:
                    index = queue.popleft()
                    self.attempts[index] += 1
                    try:
                        future = pool.submit(self.fn, self.items[index])
                    except BrokenProcessPool as exc:
                        self.attempts[index] -= 1
                        queue.appendleft(index)
                        broken_reason = repr(exc)
                        break
                    deadline = (
                        time.monotonic() + config.cell_timeout_s
                        if config.cell_timeout_s is not None else None
                    )
                    in_flight[future] = (index, deadline)

                if broken_reason is None and in_flight:
                    deadlines = [
                        deadline for _idx, deadline in in_flight.values()
                        if deadline is not None
                    ]
                    wait_timeout = (
                        max(0.0, min(deadlines) - time.monotonic())
                        if deadlines else None
                    )
                    finished, _ = wait(
                        set(in_flight), timeout=wait_timeout,
                        return_when=FIRST_COMPLETED,
                    )
                    for future in finished:
                        index, _deadline = in_flight.pop(future)
                        try:
                            result = future.result()
                        except BrokenProcessPool as exc:
                            broken_reason = repr(exc)
                            if self._handle_failure(
                                    index, "worker_lost", repr(exc),
                                    backoff=False) == "retry":
                                queue.appendleft(index)
                        except Exception as exc:  # noqa: BLE001
                            if self._handle_failure(
                                    index, "exception",
                                    repr(exc)) == "retry":
                                queue.appendleft(index)
                        else:
                            self._complete(index, result)
                    if broken_reason is None:
                        now = time.monotonic()
                        hung = [
                            future
                            for future, (_idx, deadline) in in_flight.items()
                            if deadline is not None and now >= deadline
                        ]
                        for future in hung:
                            index, _deadline = in_flight.pop(future)
                            if self._handle_failure(
                                    index, "timeout",
                                    f"exceeded {config.cell_timeout_s}s wall "
                                    f"budget", backoff=False) == "retry":
                                queue.appendleft(index)
                        if hung:
                            # the hung worker still occupies a pool slot
                            # and cannot be cancelled individually
                            broken_reason = "cell timeout (hung worker)"

                if broken_reason is not None:
                    abandon_in_flight()
                    pool = self._rebuild(pool, workers, broken_reason)
                    if pool is None:
                        remaining = list(queue)
                        queue.clear()
                        self._run_serial(remaining)
                        return
        finally:
            if pool is not None:
                self._kill_pool(pool)

    # -- entry -------------------------------------------------------------
    def run(self) -> SweepOutcome:
        self.metrics.set("supervisor.cells_total", len(self.items))
        if self.journal is not None:
            journaled = self.journal.load()
            for index, key in enumerate(self.keys):
                if not self.done[index] and key in journaled:
                    self.results[index] = journaled[key]
                    self.done[index] = True
                    self.resumed += 1
            self.metrics.set("supervisor.cells_resumed", self.resumed)
        pending = [i for i in range(len(self.items)) if not self.done[i]]
        workers = self.config.workers
        if workers is None:
            from .parallel import default_workers
            workers = default_workers()
        if workers <= 1 or len(pending) <= 1:
            self._run_serial(pending)
        else:
            self._run_pool(pending, workers)
        return SweepOutcome(
            results=self.results,
            failures=self.failures,
            completed=self.completed,
            resumed=self.resumed,
            retries=self.retries,
            timeouts=self.timeouts,
            pool_rebuilds=self.pool_rebuilds,
            degraded_serial=self.degraded,
            metrics=self.metrics,
        )


def run_supervised(items, fn, config: SupervisorConfig | None = None,
                   tracer=NULL_TRACER, key_fn=repr) -> SweepOutcome:
    """Map ``fn`` over ``items`` under the fault-tolerance ladder.

    Drop-in hardened ``run_indexed``: results come back in submission
    order.  ``fn`` must be a pure function of its item (that is what
    makes re-execution safe — the same discipline the machine's
    abort-and-re-execute relies on) and picklable for the pool path.
    ``key_fn`` names a cell for the journal and the failure manifest;
    the default ``repr`` is stable for the harness's dataclass/tuple
    cells.
    """
    return _Supervisor(
        list(items), fn, config or SupervisorConfig(), tracer, key_fn,
    ).run()
