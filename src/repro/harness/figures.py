"""Per-figure/table experiment drivers.

Each function regenerates one table or figure from the paper's evaluation
(§5–§7) and returns structured rows; :mod:`repro.harness.report` renders
them as text.  Benchmarks under ``benchmarks/`` call straight into these.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hw.config import (
    BASELINE_4WIDE,
    CHKPT_20CYCLE,
    CHKPT_SINGLE_INFLIGHT,
    OOO_2WIDE,
    OOO_2WIDE_HALF,
)
from ..vm.compiler import (
    ATOMIC,
    ATOMIC_AGGRESSIVE,
    NO_ATOMIC,
    NO_ATOMIC_AGGRESSIVE,
)
from ..workloads import ALL_WORKLOADS, get_workload
from ..workloads.contention import SCENARIOS, contention_workload
from .chaos import run_concurrency_chaos
from .experiment import RunResult, run_workload

#: benchmark order used by every figure (the paper's Table 2 order).
BENCH_ORDER = ["antlr", "bloat", "fop", "hsqldb", "jython", "pmd", "xalan"]


@dataclass
class FigureData:
    """One figure/table: named columns of per-benchmark series."""

    title: str
    columns: list[str]
    rows: dict[str, list[float]] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add(self, bench: str, values: list[float]) -> None:
        self.rows[bench] = values

    def averages(self) -> list[float]:
        if not self.rows:
            return []
        n = len(self.columns)
        return [
            sum(vals[i] for vals in self.rows.values()) / len(self.rows)
            for i in range(n)
        ]


def _runs_for(bench: str, timing: bool = True):
    workload = get_workload(bench)
    base = run_workload(workload, NO_ATOMIC, BASELINE_4WIDE, timing=timing)
    atomic = run_workload(workload, ATOMIC, BASELINE_4WIDE, timing=timing)
    no_atomic_aggr = run_workload(
        workload, NO_ATOMIC_AGGRESSIVE, BASELINE_4WIDE, timing=timing
    )
    atomic_aggr = run_workload(
        workload, ATOMIC_AGGRESSIVE, BASELINE_4WIDE, timing=timing
    )
    return workload, base, atomic, no_atomic_aggr, atomic_aggr


def figure7(benches: list[str] | None = None) -> FigureData:
    """Execution-time speedups over the no-atomic baseline (Figure 7)."""
    data = FigureData(
        title="Figure 7: Execution time speedups (% over no-atomic baseline)",
        columns=["atomic", "no-atomic+aggr-inline", "atomic+aggr-inline"],
    )
    for bench in benches or BENCH_ORDER:
        workload, base, atomic, na, aa = _runs_for(bench)
        values = [
            atomic.speedup_over(base),
            na.speedup_over(base),
            aa.speedup_over(base),
        ]
        data.add(bench, values)
        if bench == "jython" and workload.force_monomorphic_sites is not None:
            forced = run_workload(
                workload, ATOMIC, BASELINE_4WIDE, timing=True,
                force_monomorphic=True,
            )
            data.notes.append(
                f"jython atomic+forced-monomorphic (grey bar): "
                f"{forced.speedup_over(base):+.1f}%"
            )
    return data


def figure8(benches: list[str] | None = None) -> FigureData:
    """Dynamic micro-operation reduction (Figure 8)."""
    data = FigureData(
        title="Figure 8: uop reduction (% over no-atomic baseline)",
        columns=["atomic", "no-atomic+aggr-inline", "atomic+aggr-inline"],
    )
    for bench in benches or BENCH_ORDER:
        _, base, atomic, na, aa = _runs_for(bench)
        data.add(bench, [
            atomic.uop_reduction_over(base),
            na.uop_reduction_over(base),
            aa.uop_reduction_over(base),
        ])
    return data


def table2() -> FigureData:
    """The benchmark roster (Table 2)."""
    data = FigureData(
        title="Table 2: DaCapo benchmarks used in evaluation",
        columns=["#samples"],
    )
    for bench in BENCH_ORDER:
        data.add(bench, [float(len(get_workload(bench).samples))])
        data.notes.append(f"{bench}: {get_workload(bench).description}")
    return data


def table3(benches: list[str] | None = None) -> FigureData:
    """Atomic region statistics (Table 3), atomic+aggressive configuration."""
    data = FigureData(
        title="Table 3: Atomic region statistics (atomic+aggr-inline)",
        columns=["coverage", "unique", "size", "abort%", "aborts/1k-uop"],
    )
    for bench in benches or BENCH_ORDER:
        workload = get_workload(bench)
        run = run_workload(workload, ATOMIC_AGGRESSIVE, BASELINE_4WIDE)
        data.add(bench, [
            run.coverage,
            run.unique_regions,
            run.mean_region_size,
            run.abort_pct,
            run.aborts_per_kuop,
        ])
    return data


def figure9(benches: list[str] | None = None) -> FigureData:
    """Sensitivity to the aregion_begin implementation (Figure 9).

    All rows run the atomic+aggressive code; the hardware varies: the
    checkpoint substrate, a 20-cycle stall at each begin, and a
    single-in-flight-region decode stall.  Speedups are over the no-atomic
    baseline on the unmodified hardware (region knobs don't affect code
    without regions).
    """
    data = FigureData(
        title="Figure 9: Sensitivity to atomic-primitive implementation "
              "(% speedup of atomic+aggr-inline code)",
        columns=["chkpt", "chkpt+20-cycle", "single-inflight"],
    )
    for bench in benches or BENCH_ORDER:
        workload = get_workload(bench)
        base = run_workload(workload, NO_ATOMIC, BASELINE_4WIDE)
        values = []
        for hw in (BASELINE_4WIDE, CHKPT_20CYCLE, CHKPT_SINGLE_INFLIGHT):
            run = run_workload(workload, ATOMIC_AGGRESSIVE, hw)
            values.append(run.speedup_over(base))
        data.add(bench, values)
    return data


def section62(benches: list[str] | None = None) -> FigureData:
    """Region footprint analysis (§6.2): sizes vs. the 128-entry window and
    cache-line footprints vs. the L1."""
    data = FigureData(
        title="Sec 6.2: Region size and data footprint "
              "(atomic+aggr-inline)",
        columns=["%regions>128uops", "median-lines", "p99-lines", "max-lines"],
    )
    for bench in benches or BENCH_ORDER:
        workload = get_workload(bench)
        run = run_workload(workload, ATOMIC_AGGRESSIVE, BASELINE_4WIDE)
        sizes: list[int] = []
        lines: list[int] = []
        for sample in run.samples:
            sizes.extend(sample.stats.region_sizes)
            lines.extend(sample.stats.region_lines)
        if not sizes:
            data.add(bench, [0.0, 0.0, 0.0, 0.0])
            continue
        over_window = 100.0 * sum(1 for s in sizes if s > 128) / len(sizes)
        ordered = sorted(lines)
        median = float(ordered[len(ordered) // 2])
        p99 = float(ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))])
        data.add(bench, [over_window, median, p99, float(max(ordered))])
    return data


def section63(benches: list[str] | None = None) -> FigureData:
    """Narrower cores (§6.3): speedups on 2-wide and 2-wide-half machines
    should track the 4-wide results within a couple of percent."""
    data = FigureData(
        title="Sec 6.3: atomic+aggr-inline speedup across core widths",
        columns=["4wide", "2wide", "2wide-half"],
    )
    for bench in benches or BENCH_ORDER:
        workload = get_workload(bench)
        values = []
        for hw in (BASELINE_4WIDE, OOO_2WIDE, OOO_2WIDE_HALF):
            base = run_workload(workload, NO_ATOMIC, hw)
            run = run_workload(workload, ATOMIC_AGGRESSIVE, hw)
            values.append(run.speedup_over(base))
        data.add(bench, values)
    return data


def section7_adaptive(bench: str = "pmd") -> FigureData:
    """Adaptive recompilation (§7): the phase-changed benchmark, with and
    without the abort-rate-driven controller.

    The measured window is extended to several invocations per phase so the
    controller's recompilation (triggered by the hardware's abort-site
    reports after the first invocation) has a chance to pay off within the
    sample — the paper's continuous-monitoring scenario.
    """
    from dataclasses import replace as dc_replace

    source = get_workload(bench)
    extended = dc_replace(
        source,
        name=f"{bench}-adaptive-window",
        samples=[
            dc_replace(s, measure_args=[list(a) for a in s.measure_args] * 4)
            for s in source.samples
        ],
    )
    base = run_workload(extended, NO_ATOMIC, BASELINE_4WIDE)
    plain = run_workload(extended, ATOMIC_AGGRESSIVE, BASELINE_4WIDE)
    adaptive = run_workload(
        extended, ATOMIC_AGGRESSIVE, BASELINE_4WIDE, adaptive=True,
    )
    data = FigureData(
        title=f"Sec 7: adaptive recompilation on {bench}",
        columns=["speedup%", "abort%", "recompilations"],
    )
    data.add("static", [plain.speedup_over(base), plain.abort_pct, 0.0])
    data.add("adaptive", [
        adaptive.speedup_over(base),
        adaptive.abort_pct,
        float(sum(s.recompilations for s in adaptive.samples)),
    ])
    return data


def figure_htm_variants(bench: str = "hsqldb") -> FigureData:
    """Best-effort HTM realism sweep: one benchmark across the substrate
    variants — idealized unbounded regions, the Rock-style speculative
    store buffer, the cache-set-shaped bound, both hybrid fallback-lock
    subscription modes, and setjmp-style abort delivery.

    Rows are variants (not benches); the trailer columns surface the new
    failure machinery: capacity aborts, fallback-lock acquisitions, and
    setjmp condition-code deliveries across the sample set.  The named
    realism variants (Rock's 32-entry buffer, the 32KB 4-way L1 shape)
    comfortably hold every region these workloads form — the zero rows
    are the result — so a second block of deliberately tightened
    "pressure" variants shows each mechanism actually biting.
    """
    from ..hw.config import CacheConfig, htm_variant_configs

    workload = get_workload(bench)
    base = run_workload(workload, NO_ATOMIC, BASELINE_4WIDE)
    data = FigureData(
        title=f"HTM realism: atomic+aggr-inline on {bench} across "
              "best-effort substrate variants",
        columns=["speedup%", "abort%", "capacity", "lock-acq", "setjmp-dlv"],
    )
    tight_cache = CacheConfig(512, 2, 64, 4)   # 4 sets x 2 ways
    pressure = [
        BASELINE_4WIDE.scaled(
            name="rock-4", htm_mode="store_buffer",
            spec_store_buffer_entries=4),
        BASELINE_4WIDE.scaled(
            name="cache-4x2", htm_mode="cache_shaped",
            l1_config=tight_cache),
        BASELINE_4WIDE.scaled(
            name="rock4+lock", htm_mode="store_buffer",
            spec_store_buffer_entries=4, fallback_lock_mode="begin"),
        BASELINE_4WIDE.scaled(
            name="cache+sjmp", htm_mode="cache_shaped",
            l1_config=tight_cache, abort_delivery="setjmp"),
    ]
    for hw in list(htm_variant_configs()) + pressure:
        run = run_workload(workload, ATOMIC_AGGRESSIVE, hw)
        label = hw.name.replace("4wide-htm-", "")
        if label == BASELINE_4WIDE.name:
            label = "unbounded"
        capacity = sum(s.stats.capacity_aborts for s in run.samples)
        lock_acq = sum(s.stats.fallback_lock_acquisitions
                       for s in run.samples)
        setjmp = sum(s.stats.setjmp_deliveries for s in run.samples)
        data.add(label, [
            run.speedup_over(base),
            run.abort_pct,
            float(capacity),
            float(lock_acq),
            float(setjmp),
        ])
    return data


#: the primitive axis of the contention figure: the three architectural
#: atomics, monitor locking, and monitor locking under the atomic compiler
#: config (elided-lock regions) — the region-formation-policy dimension.
CONTENTION_PRIMITIVES = ("faa", "cas", "llsc", "lock", "lock-sle")


def run_contention_cell(scenario: str, primitive: str, threads: int,
                        iters: int = 4, seed: int = 0,
                        quantum: tuple[int, int] = (8, 32)) -> dict:
    """One cell of the contention matrix, oracle-checked.

    Runs the (scenario, primitive, threads) workload under the seeded
    deterministic scheduler via :func:`run_concurrency_chaos` — so every
    cell's guest results are validated against the serializability oracle
    (or the linearizability invariants where whole-thread serializability
    does not apply) — and distills the stats into the throughput/retry
    numbers the scaling figure plots.  ``primitive`` may be any of
    :data:`CONTENTION_PRIMITIVES`; ``lock-sle`` runs the monitor build
    under the atomic compiler config, so its critical sections execute as
    speculative elided-lock regions and its retry traffic is conflict
    aborts rather than failed CAS/SC attempts.
    """
    guest_primitive = "lock" if primitive == "lock-sle" else primitive
    compiler_config = ATOMIC if primitive == "lock-sle" else NO_ATOMIC
    workload = contention_workload(scenario, guest_primitive, threads, iters)
    report = run_concurrency_chaos(
        workload, compiler_config, seeds=(seed,), quantum=quantum,
    )
    check = report.checks[0]
    stats = check.stats
    steps = sum(stats.uops_by_thread.values())
    if scenario == "msqueue":
        ops = sum(args[1] + args[2] for args in workload.thread_args)
    else:
        ops = threads * iters
    retries = (stats.cas_failures + stats.sc_failures
               + stats.conflict_retries)
    return {
        "scenario": scenario,
        "primitive": primitive,
        "threads": threads,
        "iters": iters,
        "seed": seed,
        "ops": ops,
        "steps": steps,
        "steps_per_op": round(steps / ops, 2) if ops else 0.0,
        "throughput_ops_per_kstep": (
            round(1000.0 * ops / steps, 3) if steps else 0.0),
        "cas_failures": stats.cas_failures,
        "sc_failures": stats.sc_failures,
        "conflict_retries": stats.conflict_retries,
        "retries": retries,
        "retries_per_op": round(retries / ops, 4) if ops else 0.0,
        "regions_entered": stats.regions_entered,
        "regions_aborted": stats.regions_aborted,
        "real_conflict_aborts": stats.real_conflict_aborts,
        "context_switches": stats.context_switches,
        "oracle": ("serial-order" if workload.serializable
                   else "invariants"),
        "oracle_ok": check.ok,
        "serial_order_matched": check.serial_order is not None,
    }


def figure_contention(
    scenarios: tuple = SCENARIOS,
    primitives: tuple = CONTENTION_PRIMITIVES,
    threads: tuple = (2, 8, 32),
    iters: int = 4,
    seed: int = 0,
) -> FigureData:
    """Contention scaling: throughput and retry curves vs. thread count.

    The repo's first O(n) vs O(n²) figure: FAA is one indivisible uop, so
    its steps-per-op stays flat as threads pile onto the line, while the
    CAS/LL-SC retry loops span several guest steps and their lost-attempt
    retry traffic grows superlinearly with the thread count.  Not part of
    :func:`all_figures` — the paper's single-threaded figures are pinned
    byte-identical and this one is deliberately additive.
    """
    data = FigureData(
        title="Contention scaling: shared-memory primitives vs. threads",
        columns=["ops/kstep", "steps/op", "retries/op", "aborts", "oracle"],
    )
    for scenario in scenarios:
        for primitive in primitives:
            for count in threads:
                cell = run_contention_cell(
                    scenario, primitive, count, iters=iters, seed=seed,
                )
                data.add(f"{scenario}/{primitive}/t{count}", [
                    cell["throughput_ops_per_kstep"],
                    cell["steps_per_op"],
                    cell["retries_per_op"],
                    float(cell["regions_aborted"]),
                    1.0 if cell["oracle_ok"] else 0.0,
                ])
    data.notes.append(
        "oracle 1.00 = the threaded run matched a serial order "
        "(or every linearizability invariant, for msqueue)")
    return data


def all_figures() -> list[FigureData]:
    """Everything, in paper order (used by the quickstart example).

    :func:`figure_contention` is deliberately NOT included: the paper's
    figures are single-threaded and pinned; the contention figure is the
    additive multi-threaded scaling study (see ``bench_contention.py``).
    """
    return [table2(), figure7(), figure8(), table3(), figure9(),
            section62(), section63(), section7_adaptive(),
            figure_htm_variants()]
