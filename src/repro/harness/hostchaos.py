"""Deterministic host-level chaos for the sweep supervisor.

The guest-level chaos harness (:mod:`repro.harness.chaos`) attacks the
*machine* with seeded aborts; this module attacks the *host harness* the
same way: seeded worker kills (``os._exit``), hangs past the cell wall
budget, transient exceptions, and disk-cache corruption, injected around
otherwise-pure sweep cells.  The check mirrors the guest contract one
level up — under every seeded fault schedule, a supervised sweep must
converge to results **byte-identical** to a clean serial run
(``pickle.dumps`` equality), with quarantine firing only after the
configured retry budget.

Faults are decided by :class:`HostFaultPlan` — a pure function of
``(seed, cell key, attempt)`` — so a schedule replays; the attempt number
is claimed through a lock-free on-disk counter (:func:`claim_attempt`)
because retries re-run cells in fresh worker processes.  Kills and hangs
only fire inside pool workers (``multiprocessing.parent_process()`` is
set), so a sweep that degrades to serial execution converges instead of
killing the supervisor itself.

Run as a module, this doubles as the checkpoint-resume smoke CLI used by
CI (start a journaled sweep, SIGKILL it mid-flight, re-run with
``--expect-resume``, diff against the serial reference)::

    python -m repro.harness.hostchaos --journal J --cells 12 --cell-ms 200
    # ... kill -9 mid-flight, then:
    python -m repro.harness.hostchaos --journal J --cells 12 --cell-ms 200 \\
        --expect-resume
"""

from __future__ import annotations

import argparse
import hashlib
import json
import multiprocessing
import os
import pickle
import sys
import time
from dataclasses import dataclass
from pathlib import Path

from .supervisor import SupervisorConfig, SweepOutcome, run_supervised


class TransientHostFault(RuntimeError):
    """The injected transient failure (a stand-in for OOM, ENOSPC, a
    flaky import — anything a retry genuinely cures)."""


def claim_attempt(state_dir: str | os.PathLike, key: str) -> int:
    """Claim and return the next attempt number for ``key``.

    ``O_CREAT | O_EXCL`` on ``<sha1(key)>.<n>`` is a crash-safe,
    lock-free counter that works across the supervisor's worker
    processes — each invocation of a cell (original or retry, any
    process) claims a distinct attempt number in order.
    """
    directory = Path(state_dir)
    directory.mkdir(parents=True, exist_ok=True)
    stem = hashlib.sha1(key.encode()).hexdigest()
    attempt = 0
    while True:
        try:
            fd = os.open(directory / f"{stem}.{attempt}",
                         os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            attempt += 1
            continue
        os.close(fd)
        return attempt


@dataclass(frozen=True)
class HostFaultPlan:
    """Seeded host-fault schedule: a pure function of (cell key, attempt).

    Rates partition the unit interval — at most one fault fires per
    attempt — and ``max_faults_per_cell`` bounds how many *consecutive
    leading attempts* of a cell may fault, so any plan with
    ``max_faults_per_cell < max_attempts`` is guaranteed to converge
    within the supervisor's retry budget (the chaos matrix asserts
    quarantine never fires there).
    """

    seed: int
    kill_rate: float = 0.0
    hang_rate: float = 0.0
    error_rate: float = 0.0
    max_faults_per_cell: int = 2
    hang_s: float = 20.0

    def fault_for(self, key: str, attempt: int) -> str | None:
        """"kill" | "hang" | "error" | None for this (cell, attempt)."""
        if attempt >= self.max_faults_per_cell:
            return None
        digest = hashlib.sha256(
            f"{self.seed}|{key}|{attempt}".encode()).digest()
        u = int.from_bytes(digest[:8], "big") / 2.0 ** 64
        if u < self.kill_rate:
            return "kill"
        u -= self.kill_rate
        if u < self.hang_rate:
            return "hang"
        u -= self.hang_rate
        if u < self.error_rate:
            return "error"
        return None

    def total_rate(self) -> float:
        return self.kill_rate + self.hang_rate + self.error_rate


class ChaoticCell:
    """Picklable wrapper enacting the plan's fault before running ``fn``.

    Kills and hangs fire only inside pool workers; in the supervisor's
    own process (serial mode, or the degraded endgame) they are no-ops —
    a host fault that killed the supervisor would be a test-harness bug,
    not a finding.  A "hang" sleeps ``plan.hang_s`` and then *completes*
    normally: if the supervisor's timeout works the result is abandoned
    and retried, and if it ever did not, the sweep still terminates.
    """

    def __init__(self, fn, plan: HostFaultPlan,
                 state_dir: str | os.PathLike) -> None:
        self.fn = fn
        self.plan = plan
        self.state_dir = os.fspath(state_dir)

    def __call__(self, item):
        key = repr(item)
        attempt = claim_attempt(self.state_dir, key)
        fault = self.plan.fault_for(key, attempt)
        in_worker = multiprocessing.parent_process() is not None
        if fault == "kill" and in_worker:
            os._exit(113)
        if fault == "hang" and in_worker:
            time.sleep(self.plan.hang_s)
        if fault == "error":
            raise TransientHostFault(
                f"injected transient fault (attempt {attempt}) for {key}")
        return self.fn(item)


def run_host_chaos(items, fn, plan: HostFaultPlan,
                   config: SupervisorConfig,
                   state_dir: str | os.PathLike,
                   tracer=None, key_fn=repr) -> SweepOutcome:
    """One supervised sweep with ``plan``'s faults injected around ``fn``."""
    chaotic = ChaoticCell(fn, plan, state_dir)
    kwargs = {"config": config, "key_fn": key_fn}
    if tracer is not None:
        kwargs["tracer"] = tracer
    return run_supervised(items, chaotic, **kwargs)


def assert_matches_serial(outcome: SweepOutcome, items, fn) -> None:
    """The headline invariant: supervised == clean serial, byte for byte."""
    outcome.raise_on_failure()
    expected = [fn(item) for item in items]
    if pickle.dumps(outcome.results) != pickle.dumps(expected):
        raise AssertionError(
            "supervised sweep diverged from clean serial run:\n"
            f"  supervised: {outcome.results!r}\n"
            f"  serial:     {expected!r}"
        )


def corrupt_cache_entries(cache_dir: str | os.PathLike, seed: int,
                          rate: float = 0.5) -> list[Path]:
    """Seeded disk-cache corruption: flip one payload byte in a
    deterministic subset of entries.  Returns the corrupted paths; the
    hardened :mod:`repro.harness.diskcache` must quarantine every one of
    them (checksum mismatch) and recompute, never serve garbage."""
    corrupted = []
    for path in sorted(Path(cache_dir).glob("*.pickle")):
        digest = hashlib.sha256(f"{seed}|{path.name}".encode()).digest()
        if int.from_bytes(digest[:8], "big") / 2.0 ** 64 >= rate:
            continue
        data = bytearray(path.read_bytes())
        if not data:
            continue
        position = digest[8] % len(data)
        data[position] ^= 0xFF
        path.write_bytes(bytes(data))
        corrupted.append(path)
    return corrupted


def write_manifest(outcome: SweepOutcome, path: str | os.PathLike) -> Path:
    """Dump the failure manifest as JSON (the CI artifact on red runs)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(outcome.manifest(), indent=2, sort_keys=True)
                      + "\n")
    return target


# -- checkpoint-resume smoke CLI ----------------------------------------------

def _smoke_value(index: int) -> int:
    """The deterministic result of smoke cell ``index`` (pure compute)."""
    acc = 0
    for k in range(1, 2000):
        acc = (acc * 31 + index * k) % 1000003
    return acc


def _smoke_cell(spec: tuple) -> int:
    """Worker entry for the smoke sweep: sleep (so a SIGKILL lands
    mid-flight), then return the pure value."""
    index, cell_ms = spec
    time.sleep(cell_ms / 1000.0)
    return _smoke_value(index)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="checkpoint-resume smoke: run a journaled supervised "
                    "sweep of deterministic cells; exits non-zero if the "
                    "merged results differ from the serial reference (or, "
                    "with --expect-resume, if nothing was resumed)."
    )
    parser.add_argument("--journal", required=True,
                        help="append-only completion journal path")
    parser.add_argument("--cells", type=int, default=12)
    parser.add_argument("--cell-ms", type=int, default=200,
                        help="per-cell sleep so kills land mid-sweep")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--expect-resume", action="store_true",
                        help="fail unless at least one cell was resumed "
                             "from the journal")
    parser.add_argument("--manifest", default=None,
                        help="write the failure manifest JSON here")
    args = parser.parse_args(argv)

    items = [(index, args.cell_ms) for index in range(args.cells)]
    outcome = run_supervised(
        items, _smoke_cell,
        config=SupervisorConfig(workers=args.workers,
                                journal_path=args.journal),
    )
    if args.manifest:
        write_manifest(outcome, args.manifest)
    expected = [_smoke_value(index) for index in range(args.cells)]
    identical = pickle.dumps(outcome.results) == pickle.dumps(expected)
    print(json.dumps({
        "cells": args.cells,
        "completed": outcome.completed,
        "resumed": outcome.resumed,
        "quarantined": outcome.quarantined,
        "identical_to_serial": identical,
    }))
    if not outcome.ok or not identical:
        return 1
    if args.expect_resume and outcome.resumed == 0:
        print("expected a journal resume but every cell was recomputed",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
