"""Experiment harness: drivers and renderers for every table and figure."""

from .chaos import (
    ChaosCheck,
    ChaosReport,
    ConcurrencyCheck,
    ConcurrencyReport,
    run_chaos,
    run_concurrency_chaos,
)
from .experiment import (
    RunResult,
    SampleResult,
    clear_cache,
    run_workload,
    verify_workload_correctness,
)
from .figures import (
    BENCH_ORDER,
    FigureData,
    all_figures,
    figure7,
    figure8,
    figure9,
    figure_htm_variants,
    section62,
    section63,
    section7_adaptive,
    table2,
    table3,
)
from .parallel import (
    Cell,
    figure_cells,
    prewarm_figures,
    run_chaos_parallel,
    run_indexed,
)
from .report import render, render_all, render_concurrency, render_timeline

__all__ = [
    "BENCH_ORDER",
    "Cell",
    "ChaosCheck",
    "ChaosReport",
    "ConcurrencyCheck",
    "ConcurrencyReport",
    "FigureData",
    "RunResult",
    "SampleResult",
    "all_figures",
    "clear_cache",
    "figure7",
    "figure8",
    "figure9",
    "figure_cells",
    "figure_htm_variants",
    "prewarm_figures",
    "render",
    "render_all",
    "render_concurrency",
    "render_timeline",
    "run_chaos",
    "run_chaos_parallel",
    "run_concurrency_chaos",
    "run_indexed",
    "run_workload",
    "section62",
    "section63",
    "section7_adaptive",
    "table2",
    "table3",
    "verify_workload_correctness",
]
