"""Differential chaos checker: fault-injected machine vs. clean references.

The paper's reliability claim (§3, §5) is that every abort — assert,
footprint overflow, interrupt, coherence conflict, guest fault — rolls back
totally and recovery re-produces the non-speculative execution exactly.
Flückiger et al. machine-check the same equivalence for deoptimizing JITs;
this module checks it dynamically under *adversarial* fault schedules
instead of only the ones the workloads happen to trigger.

Each workload sample runs three ways:

1. **faulted** — the tiered VM with a seeded :class:`FaultPlan` injecting
   interrupts, conflicts, capacity shrinks, spurious asserts, and guest
   exceptions;
2. **clean** — the identical VM with no fault plan (same compiled code);
3. **reference** — the tier-0 interpreter (pure bytecode semantics).

The checker then asserts, per sample:

- faulted return values == clean return values == interpreter return values;
- faulted heap fingerprint == clean heap fingerprint, bit for bit (the
  compiler may legitimately drop dead allocations relative to the
  interpreter, so machine-vs-machine is the strict heap oracle; the
  interpreter comparison is recorded too and holds whenever the optimizer
  preserved every allocation);
- every monitor on the faulted heap ends quiescent (lock-state restoration);
- forced abort storms terminated through the retry-budget fallback rather
  than looping (``region_fallbacks`` whenever a storm plan is used).

Every faulted/threaded run records a region-lifecycle trace
(:mod:`repro.obs`); when a check fails, the trace is dumped as Chrome
trace-event JSON next to the seed (``CHAOS_TRACE_DIR``, default the
current directory), so the failing interleaving is diagnosable offline
without re-running under a debugger.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field

from ..faults import FaultInjector, FaultPlan
from ..hw.config import BASELINE_4WIDE, HardwareConfig
from ..hw.stats import ExecStats
from ..obs import Tracer, dump_chrome_trace
from ..runtime.interpreter import Interpreter
from ..runtime.sched import SchedulePlan
from ..vm.compiler import CompilerConfig
from ..vm.vm import TieredVM, VMOptions
from ..workloads.base import ThreadedWorkload, Workload


@dataclass
class ChaosCheck:
    """Outcome of one (workload, seed, sample) differential run."""

    workload: str
    seed: int
    sample_index: int
    results_match_interpreter: bool
    heap_matches_clean: bool
    heap_matches_interpreter: bool
    locks_quiescent: bool
    stats: ExecStats
    faults_scheduled: dict = field(default_factory=dict)
    faulted_results: list = field(default_factory=list)
    expected_results: list = field(default_factory=list)
    #: Chrome trace-event JSON dumped for failing checks (else None).
    trace_path: str | None = None

    @property
    def ok(self) -> bool:
        return (self.results_match_interpreter
                and self.heap_matches_clean
                and self.locks_quiescent)

    def describe(self) -> str:
        status = "ok" if self.ok else "FAILED"
        aborted = self.stats.regions_aborted
        out = (
            f"{self.workload}[sample {self.sample_index}] seed={self.seed}: "
            f"{status} ({aborted} aborts, "
            f"faults={dict(self.faults_scheduled) or 'none'}, "
            f"retries={self.stats.conflict_retries}, "
            f"fallbacks={sum(self.stats.region_fallbacks.values())})"
        )
        if self.trace_path is not None:
            out += f"\n  trace dumped to {self.trace_path}"
        return out


@dataclass
class ChaosReport:
    """All checks from one :func:`run_chaos` sweep.

    ``host_failures`` holds the supervisor's failure manifest when the
    sweep ran sharded under :func:`repro.harness.parallel.run_chaos_parallel`
    with a supervisor: shards (seeds) whose *host* execution exhausted
    the retry budget.  The report is then explicitly partial — its
    checks cover the surviving seeds — rather than the whole sweep dying.
    """

    checks: list[ChaosCheck] = field(default_factory=list)
    #: :class:`repro.harness.supervisor.CellFailure` per lost shard.
    host_failures: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks) and not self.host_failures

    @property
    def total_aborts(self) -> int:
        return sum(c.stats.regions_aborted for c in self.checks)

    @property
    def total_faults_scheduled(self) -> int:
        return sum(sum(c.faults_scheduled.values()) for c in self.checks)

    def failures(self) -> list[ChaosCheck]:
        return [c for c in self.checks if not c.ok]

    def describe(self) -> str:
        lines = [c.describe() for c in self.checks]
        lines.append(
            f"{len(self.checks)} checks, {self.total_aborts} aborts, "
            f"{self.total_faults_scheduled} faults scheduled, "
            f"{len(self.failures())} failure(s)"
        )
        for failure in self.host_failures:
            lines.append(
                f"HOST SHARD LOST {failure.key}: {failure.kind} "
                f"x{failure.attempts} — {failure.error}"
            )
        return "\n".join(lines)

    def raise_on_failure(self) -> None:
        if not self.ok:
            raise AssertionError(
                "chaos differential check failed:\n" + self.describe()
            )


def _run_machine(
    workload: Workload,
    sample,
    compiler_config: CompilerConfig,
    hw_config: HardwareConfig,
    fault_plan: FaultPlan | None,
    tracer: Tracer | None = None,
):
    """One VM execution of a sample; returns (results, stats, vm)."""
    program = workload.build()
    vm = TieredVM(
        program,
        compiler_config=compiler_config,
        hw_config=hw_config,
        options=VMOptions(enable_timing=False, compile_threshold=3),
        fault_plan=fault_plan,
        tracer=tracer,
    )
    vm.warm_up(workload.entry, [list(a) for a in sample.warm_args])
    vm.compile_hot(min_invocations=1)
    vm.start_measurement()
    results = [vm.run(workload.entry, list(a)) for a in sample.measure_args]
    stats = vm.end_measurement()
    return results, stats, vm


def _interpreter_reference(workload: Workload, sample):
    """Tier-0 interpreter execution; returns (results, heap)."""
    program = workload.build()
    interp = Interpreter(program)
    method = program.resolve_static(workload.entry)
    for args in sample.warm_args:
        interp.invoke(method, list(args))
    results = [interp.invoke(method, list(args)) for args in sample.measure_args]
    return results, interp.heap


def _resolve_trace_dir(trace_dir: str | None) -> str:
    """Failure dumps land here: explicit arg, else $CHAOS_TRACE_DIR, else cwd."""
    if trace_dir is not None:
        return trace_dir
    return os.environ.get("CHAOS_TRACE_DIR", ".")


def run_chaos(
    workload: Workload,
    compiler_config: CompilerConfig,
    seeds=(0, 1, 2),
    hw_config: HardwareConfig = BASELINE_4WIDE,
    plan_factory=None,
    max_samples: int | None = None,
    trace_dir: str | None = None,
    trace_capacity: int = 1 << 16,
) -> ChaosReport:
    """Differential sweep: every sample × every seed, three-way compared.

    ``plan_factory`` maps a seed to a :class:`FaultPlan`; the default is
    :meth:`FaultPlan.seeded` with the standard chaos rates.  Pass e.g.
    ``lambda seed: FaultPlan.storm("conflict")`` for adversarial schedules.

    Every faulted run is traced; a failing check dumps its Chrome trace
    next to the seed (see :func:`_resolve_trace_dir`) and records the path
    on the check.
    """
    if plan_factory is None:
        plan_factory = lambda seed: FaultPlan.seeded(seed)  # noqa: E731

    report = ChaosReport()
    samples = workload.samples[:max_samples]
    for index, sample in enumerate(samples):
        expected, ref_heap = _interpreter_reference(workload, sample)
        ref_fp = ref_heap.fingerprint()
        clean_results, _clean_stats, clean_vm = _run_machine(
            workload, sample, compiler_config, hw_config, None,
        )
        clean_fp = clean_vm.heap.fingerprint()
        for seed in seeds:
            plan = plan_factory(seed)
            tracer = Tracer(capacity=trace_capacity)
            results, stats, vm = _run_machine(
                workload, sample, compiler_config, hw_config, plan, tracer,
            )
            faulted_fp = vm.heap.fingerprint()
            injector = vm.fault_injector
            check = ChaosCheck(
                workload=workload.name,
                seed=seed,
                sample_index=index,
                results_match_interpreter=(
                    results == expected and clean_results == expected
                ),
                heap_matches_clean=(faulted_fp == clean_fp),
                heap_matches_interpreter=(faulted_fp == ref_fp),
                locks_quiescent=vm.heap.locks_quiescent(),
                stats=stats,
                faults_scheduled=(
                    dict(injector.scheduled) if injector is not None else {}
                ),
                faulted_results=results,
                expected_results=expected,
            )
            if not check.ok:
                check.trace_path = dump_chrome_trace(
                    tracer.events,
                    os.path.join(
                        _resolve_trace_dir(trace_dir),
                        f"chaos-{workload.name}-seed{seed}"
                        f"-sample{index}.trace.json",
                    ),
                    truncated=tracer.truncated,
                )
            report.checks.append(check)
    return report


# -- serializability oracle for deterministic multi-threaded runs -------------

@dataclass
class ConcurrencyCheck:
    """Outcome of one (threaded workload, schedule seed) oracle run.

    A seeded interleaving passes when (a) the per-thread worker results and
    the final heap fingerprint equal *some* serial-order execution of the
    same workers — on both the compiled machine and the tier-0 interpreter
    — (b) re-running the same seed reproduces the run bit-for-bit (results,
    fingerprint, and context-switch trace), and (c) every monitor ends
    quiescent.  A serializability failure is exactly a lost update /
    atomicity violation, and :attr:`violation` pins the schedule: the
    interleaving trace and the per-region commit/abort counts.
    """

    workload: str
    seed: int
    threads: int
    serializable: bool
    replay_identical: bool
    heap_matches_interpreter: bool
    locks_quiescent: bool
    #: the serial order the threaded run matched (None on violation, and
    #: None when the workload opted out of serial-order matching).
    serial_order: tuple | None
    stats: ExecStats
    trace: list = field(default_factory=list)
    threaded_results: list = field(default_factory=list)
    violation: str | None = None
    #: one entry per failed workload invariant (linearizability battery).
    invariant_failures: list = field(default_factory=list)
    #: Chrome trace-event JSON dumped for failing checks (else None).
    trace_path: str | None = None

    @property
    def ok(self) -> bool:
        return (self.serializable and self.replay_identical
                and self.locks_quiescent
                and not self.invariant_failures)

    def describe(self) -> str:
        status = "ok" if self.ok else "FAILED"
        out = (
            f"{self.workload} seed={self.seed} threads={self.threads}: "
            f"{status} (serial_order={self.serial_order}, "
            f"replay={'ok' if self.replay_identical else 'DIVERGED'}, "
            f"switches={self.stats.context_switches}, "
            f"real_conflicts={self.stats.real_conflict_aborts}, "
            f"contended={self.stats.contended_acquisitions})"
        )
        if self.violation is not None:
            out += "\n" + self.violation
        for failure in self.invariant_failures:
            out += f"\n  invariant violated: {failure}"
        if self.trace_path is not None:
            out += f"\n  trace dumped to {self.trace_path}"
        return out


@dataclass
class ConcurrencyReport:
    """All checks from one :func:`run_concurrency_chaos` sweep."""

    checks: list[ConcurrencyCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    def failures(self) -> list[ConcurrencyCheck]:
        return [c for c in self.checks if not c.ok]

    def describe(self) -> str:
        lines = [c.describe() for c in self.checks]
        lines.append(
            f"{len(self.checks)} schedules, "
            f"{sum(c.stats.real_conflict_aborts for c in self.checks)} real "
            f"conflict aborts, {len(self.failures())} failure(s)"
        )
        return "\n".join(lines)

    def raise_on_failure(self) -> None:
        if not self.ok:
            raise AssertionError(
                "serializability check failed:\n" + self.describe()
            )


def _threaded_vm(
    workload: ThreadedWorkload,
    compiler_config: CompilerConfig,
    hw_config: HardwareConfig,
    tracer: Tracer | None = None,
) -> TieredVM:
    """Fresh VM with profiles warmed and hot methods compiled."""
    vm = TieredVM(
        workload.build(),
        compiler_config=compiler_config,
        hw_config=hw_config,
        options=VMOptions(enable_timing=False, compile_threshold=3),
        tracer=tracer,
    )
    for args in workload.warm_args:
        shared = vm.run(workload.setup)
        vm.warm_up(workload.worker, [[shared] + list(args)])
    vm.compile_hot(min_invocations=1)
    return vm


def _threaded_run(
    workload: ThreadedWorkload,
    compiler_config: CompilerConfig,
    hw_config: HardwareConfig,
    plan: SchedulePlan,
    tracer: Tracer | None = None,
):
    """One scheduled N-thread execution.

    Returns ``(results, fp, stats, sched, vm, shared)`` — the setup object
    rides along so invariant hooks can inspect the final shared state.
    """
    vm = _threaded_vm(workload, compiler_config, hw_config, tracer)
    shared = vm.run(workload.setup)
    vm.start_measurement()
    sched = vm.run_threads(
        [(workload.worker, [shared] + list(args), f"w{tid}")
         for tid, args in enumerate(workload.thread_args)],
        plan=plan,
    )
    stats = vm.end_measurement()
    results = [thread.result for thread in sched.threads]
    return results, vm.heap.fingerprint(), stats, sched, vm, shared


def _serial_machine(
    workload: ThreadedWorkload,
    compiler_config: CompilerConfig,
    hw_config: HardwareConfig,
    order: tuple,
):
    """The same workers run to completion one at a time, in ``order``."""
    vm = _threaded_vm(workload, compiler_config, hw_config)
    shared = vm.run(workload.setup)
    results: dict[int, object] = {}
    for tid in order:
        results[tid] = vm.run(
            workload.worker, [shared] + list(workload.thread_args[tid])
        )
    return ([results[t] for t in range(workload.threads)],
            vm.heap.fingerprint())


def _serial_interpreter(workload: ThreadedWorkload, order: tuple):
    """Pure tier-0 bytecode semantics for one serial order."""
    program = workload.build()
    interp = Interpreter(program)
    setup = program.resolve_static(workload.setup)
    worker = program.resolve_static(workload.worker)
    for args in workload.warm_args:
        shared = interp.invoke(setup, [])
        interp.invoke(worker, [shared] + list(args))
    shared = interp.invoke(setup, [])
    results: dict[int, object] = {}
    for tid in order:
        results[tid] = interp.invoke(
            worker, [shared] + list(workload.thread_args[tid])
        )
    return ([results[t] for t in range(workload.threads)],
            interp.heap.fingerprint())


def _violation_report(workload, sched, stats, results, serial) -> str:
    """Pin a serializability failure to its schedule and regions."""
    lines = [
        f"atomicity violation: no serial order of {workload.threads} "
        f"workers reproduces schedule {sched.plan.describe()}",
        f"  threaded results: {results}",
    ]
    for order, (s_results, _fp) in serial.items():
        lines.append(f"  serial {order}: {s_results}")
    for key, entries in sorted(stats.entries_by_region.items()):
        aborts = stats.aborts_by_region.get(key, 0)
        lines.append(
            f"  region {key}: {entries} entries, {aborts} aborts"
        )
    trace = sched.trace
    shown = trace[-40:]
    prefix = f"(last {len(shown)} of {len(trace)}) " if len(shown) < len(trace) else ""
    lines.append(
        "  interleaving " + prefix
        + " ".join(f"@{step}->t{tid}" for step, tid in shown)
    )
    return "\n".join(lines)


def run_concurrency_chaos(
    workload: ThreadedWorkload,
    compiler_config: CompilerConfig,
    seeds=(0, 1, 2),
    hw_config: HardwareConfig = BASELINE_4WIDE,
    quantum: tuple[int, int] = (8, 32),
    trace_dir: str | None = None,
    trace_capacity: int = 1 << 16,
) -> ConcurrencyReport:
    """Serializability sweep: every seeded schedule vs. every serial order.

    For each seed the workload's workers run under the deterministic
    scheduler (twice — the second run checks bit-for-bit replay, including
    the recorded event stream), and the outcome is compared against
    serial-order executions on both the compiled machine and the tier-0
    interpreter.  Any schedule whose committed results/heap match no
    serial order is an atomicity violation and is reported with its
    interleaving and region counters; failing checks also dump the Chrome
    trace of the offending schedule next to the seed.

    The serial-order set adapts to the workload: all ``threads!``
    permutations by default; only the identity order when the workload is
    ``symmetric`` (interchangeable workers — the high-thread-count
    contention scenarios, where enumerating permutations is infeasible);
    none at all when ``serializable`` is False (schedule-dependent
    outcomes, e.g. competing queue consumers).  Either way, every
    workload ``invariant`` runs against the threaded outcome, so the
    linearizability battery (counter totals, mutual exclusion, FIFO per
    producer) applies even where whole-thread serializability does not.
    """
    if not workload.serializable:
        orders = []
    elif workload.symmetric:
        orders = [tuple(range(workload.threads))]
    else:
        orders = list(itertools.permutations(range(workload.threads)))
    serial_m = {
        order: _serial_machine(workload, compiler_config, hw_config, order)
        for order in orders
    }
    serial_i = {
        order: _serial_interpreter(workload, order) for order in orders
    }

    report = ConcurrencyReport()
    for seed in seeds:
        plan = SchedulePlan(seed=seed, quantum=quantum)
        tracer = Tracer(capacity=trace_capacity)
        replay_tracer = Tracer(capacity=trace_capacity)
        results, fp, stats, sched, vm, shared = _threaded_run(
            workload, compiler_config, hw_config, plan, tracer,
        )
        r_results, r_fp, _r_stats, r_sched, _r_vm, _r_shared = _threaded_run(
            workload, compiler_config, hw_config, plan, replay_tracer,
        )
        replay_identical = (
            results == r_results and fp == r_fp
            and sched.trace == r_sched.trace
            and tracer.events == replay_tracer.events
        )
        match = None
        for order in orders:
            m_results, m_fp = serial_m[order]
            i_results, _i_fp = serial_i[order]
            if results == m_results == i_results and fp == m_fp:
                match = order
                break
        violation = None
        if workload.serializable and match is None:
            violation = _violation_report(
                workload, sched, stats, results, serial_m,
            )
        invariant_failures = []
        for invariant in workload.invariants:
            message = invariant(shared, results, vm.heap)
            if message is not None:
                invariant_failures.append(message)
        check = ConcurrencyCheck(
            workload=workload.name,
            seed=seed,
            threads=workload.threads,
            serializable=(match is not None if workload.serializable
                          else True),
            replay_identical=replay_identical,
            heap_matches_interpreter=(
                match is not None and fp == serial_i[match][1]
            ),
            locks_quiescent=vm.heap.locks_quiescent(),
            serial_order=match,
            stats=stats,
            trace=list(sched.trace),
            threaded_results=results,
            violation=violation,
            invariant_failures=invariant_failures,
        )
        if not check.ok:
            check.trace_path = dump_chrome_trace(
                tracer.events,
                os.path.join(
                    _resolve_trace_dir(trace_dir),
                    f"concurrency-{workload.name}-seed{seed}.trace.json",
                ),
                truncated=tracer.truncated,
            )
        report.checks.append(check)
    return report
