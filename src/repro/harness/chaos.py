"""Differential chaos checker: fault-injected machine vs. clean references.

The paper's reliability claim (§3, §5) is that every abort — assert,
footprint overflow, interrupt, coherence conflict, guest fault — rolls back
totally and recovery re-produces the non-speculative execution exactly.
Flückiger et al. machine-check the same equivalence for deoptimizing JITs;
this module checks it dynamically under *adversarial* fault schedules
instead of only the ones the workloads happen to trigger.

Each workload sample runs three ways:

1. **faulted** — the tiered VM with a seeded :class:`FaultPlan` injecting
   interrupts, conflicts, capacity shrinks, spurious asserts, and guest
   exceptions;
2. **clean** — the identical VM with no fault plan (same compiled code);
3. **reference** — the tier-0 interpreter (pure bytecode semantics).

The checker then asserts, per sample:

- faulted return values == clean return values == interpreter return values;
- faulted heap fingerprint == clean heap fingerprint, bit for bit (the
  compiler may legitimately drop dead allocations relative to the
  interpreter, so machine-vs-machine is the strict heap oracle; the
  interpreter comparison is recorded too and holds whenever the optimizer
  preserved every allocation);
- every monitor on the faulted heap ends quiescent (lock-state restoration);
- forced abort storms terminated through the retry-budget fallback rather
  than looping (``region_fallbacks`` whenever a storm plan is used).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..faults import FaultInjector, FaultPlan
from ..hw.config import BASELINE_4WIDE, HardwareConfig
from ..hw.stats import ExecStats
from ..runtime.interpreter import Interpreter
from ..vm.compiler import CompilerConfig
from ..vm.vm import TieredVM, VMOptions
from ..workloads.base import Workload


@dataclass
class ChaosCheck:
    """Outcome of one (workload, seed, sample) differential run."""

    workload: str
    seed: int
    sample_index: int
    results_match_interpreter: bool
    heap_matches_clean: bool
    heap_matches_interpreter: bool
    locks_quiescent: bool
    stats: ExecStats
    faults_scheduled: dict = field(default_factory=dict)
    faulted_results: list = field(default_factory=list)
    expected_results: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (self.results_match_interpreter
                and self.heap_matches_clean
                and self.locks_quiescent)

    def describe(self) -> str:
        status = "ok" if self.ok else "FAILED"
        aborted = self.stats.regions_aborted
        return (
            f"{self.workload}[sample {self.sample_index}] seed={self.seed}: "
            f"{status} ({aborted} aborts, "
            f"faults={dict(self.faults_scheduled) or 'none'}, "
            f"retries={self.stats.conflict_retries}, "
            f"fallbacks={sum(self.stats.region_fallbacks.values())})"
        )


@dataclass
class ChaosReport:
    """All checks from one :func:`run_chaos` sweep."""

    checks: list[ChaosCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    @property
    def total_aborts(self) -> int:
        return sum(c.stats.regions_aborted for c in self.checks)

    @property
    def total_faults_scheduled(self) -> int:
        return sum(sum(c.faults_scheduled.values()) for c in self.checks)

    def failures(self) -> list[ChaosCheck]:
        return [c for c in self.checks if not c.ok]

    def describe(self) -> str:
        lines = [c.describe() for c in self.checks]
        lines.append(
            f"{len(self.checks)} checks, {self.total_aborts} aborts, "
            f"{self.total_faults_scheduled} faults scheduled, "
            f"{len(self.failures())} failure(s)"
        )
        return "\n".join(lines)

    def raise_on_failure(self) -> None:
        if not self.ok:
            raise AssertionError(
                "chaos differential check failed:\n" + self.describe()
            )


def _run_machine(
    workload: Workload,
    sample,
    compiler_config: CompilerConfig,
    hw_config: HardwareConfig,
    fault_plan: FaultPlan | None,
):
    """One VM execution of a sample; returns (results, stats, vm)."""
    program = workload.build()
    vm = TieredVM(
        program,
        compiler_config=compiler_config,
        hw_config=hw_config,
        options=VMOptions(enable_timing=False, compile_threshold=3),
        fault_plan=fault_plan,
    )
    vm.warm_up(workload.entry, [list(a) for a in sample.warm_args])
    vm.compile_hot(min_invocations=1)
    vm.start_measurement()
    results = [vm.run(workload.entry, list(a)) for a in sample.measure_args]
    stats = vm.end_measurement()
    return results, stats, vm


def _interpreter_reference(workload: Workload, sample):
    """Tier-0 interpreter execution; returns (results, heap)."""
    program = workload.build()
    interp = Interpreter(program)
    method = program.resolve_static(workload.entry)
    for args in sample.warm_args:
        interp.invoke(method, list(args))
    results = [interp.invoke(method, list(args)) for args in sample.measure_args]
    return results, interp.heap


def run_chaos(
    workload: Workload,
    compiler_config: CompilerConfig,
    seeds=(0, 1, 2),
    hw_config: HardwareConfig = BASELINE_4WIDE,
    plan_factory=None,
    max_samples: int | None = None,
) -> ChaosReport:
    """Differential sweep: every sample × every seed, three-way compared.

    ``plan_factory`` maps a seed to a :class:`FaultPlan`; the default is
    :meth:`FaultPlan.seeded` with the standard chaos rates.  Pass e.g.
    ``lambda seed: FaultPlan.storm("conflict")`` for adversarial schedules.
    """
    if plan_factory is None:
        plan_factory = lambda seed: FaultPlan.seeded(seed)  # noqa: E731

    report = ChaosReport()
    samples = workload.samples[:max_samples]
    for index, sample in enumerate(samples):
        expected, ref_heap = _interpreter_reference(workload, sample)
        ref_fp = ref_heap.fingerprint()
        clean_results, _clean_stats, clean_vm = _run_machine(
            workload, sample, compiler_config, hw_config, None,
        )
        clean_fp = clean_vm.heap.fingerprint()
        for seed in seeds:
            plan = plan_factory(seed)
            results, stats, vm = _run_machine(
                workload, sample, compiler_config, hw_config, plan,
            )
            faulted_fp = vm.heap.fingerprint()
            injector = vm.fault_injector
            report.checks.append(ChaosCheck(
                workload=workload.name,
                seed=seed,
                sample_index=index,
                results_match_interpreter=(
                    results == expected and clean_results == expected
                ),
                heap_matches_clean=(faulted_fp == clean_fp),
                heap_matches_interpreter=(faulted_fp == ref_fp),
                locks_quiescent=vm.heap.locks_quiescent(),
                stats=stats,
                faults_scheduled=(
                    dict(injector.scheduled) if injector is not None else {}
                ),
                faulted_results=results,
                expected_results=expected,
            ))
    return report
