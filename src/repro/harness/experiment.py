"""Experiment driver: run a workload under a compiler+hardware config.

Mirrors the paper's method (§5): warm the VM up until the staged optimizer
has produced fully optimized code, then measure a bounded amount of
program-level work, identical across compiler configurations, and weight
multi-phase benchmarks by each phase's contribution.

Results are memoized per (workload, compiler, hardware, flags) because
every figure shares runs with every other figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..faults import FaultPlan
from ..hw.config import BASELINE_4WIDE, HardwareConfig
from ..hw.stats import ExecStats
from ..vm.adaptive import AdaptiveController
from ..vm.compiler import CompilerConfig
from ..vm.vm import TieredVM, VMOptions
from ..workloads.base import Workload
from . import diskcache


@dataclass
class SampleResult:
    """One measured phase."""

    weight: float
    stats: ExecStats
    guest_results: list
    compiled_methods: int
    recompilations: int = 0

    @property
    def cycles(self) -> float:
        return self.stats.cycles

    @property
    def uops(self) -> int:
        return self.stats.uops_retired


@dataclass
class RunResult:
    """One workload under one configuration (all phases)."""

    workload: str
    compiler: str
    hardware: str
    samples: list[SampleResult] = field(default_factory=list)

    def weighted(self, metric) -> float:
        total_weight = sum(s.weight for s in self.samples)
        return sum(metric(s) * s.weight for s in self.samples) / total_weight

    @property
    def cycles(self) -> float:
        return self.weighted(lambda s: s.cycles)

    @property
    def uops(self) -> float:
        return self.weighted(lambda s: float(s.uops))

    def weighted_ratio(self, baseline: "RunResult", metric) -> float:
        """Per-sample ratio vs. baseline, phase-weighted (the paper's
        methodology for multi-sample benchmarks)."""
        total_weight = sum(s.weight for s in self.samples)
        acc = 0.0
        for mine, base in zip(self.samples, baseline.samples):
            acc += (metric(base) / metric(mine)) * mine.weight
        return acc / total_weight

    def speedup_over(self, baseline: "RunResult") -> float:
        """Percent execution-time speedup over ``baseline`` (Figure 7)."""
        return (self.weighted_ratio(baseline, lambda s: s.cycles) - 1.0) * 100.0

    def uop_reduction_over(self, baseline: "RunResult") -> float:
        """Percent dynamic-uop reduction (Figure 8)."""
        ratio = self.weighted_ratio(baseline, lambda s: float(s.uops))
        return (1.0 - 1.0 / ratio) * 100.0

    # -- Table 3 aggregates ---------------------------------------------------
    @property
    def coverage(self) -> float:
        return self.weighted(lambda s: s.stats.coverage)

    @property
    def unique_regions(self) -> float:
        return self.weighted(lambda s: float(len(s.stats.unique_regions)))

    @property
    def mean_region_size(self) -> float:
        return self.weighted(lambda s: s.stats.mean_region_size)

    @property
    def abort_pct(self) -> float:
        return self.weighted(lambda s: s.stats.abort_rate) * 100.0

    @property
    def aborts_per_kuop(self) -> float:
        return self.weighted(lambda s: s.stats.aborts_per_kuop)


_cache: dict[tuple, RunResult] = {}


def clear_cache() -> None:
    _cache.clear()


def memo_key(
    workload_name: str,
    compiler_name: str,
    hardware_name: str = BASELINE_4WIDE.name,
    timing: bool = True,
    force_monomorphic: bool = False,
    adaptive: bool = False,
    interrupt_interval: int | None = None,
    fault_plan: FaultPlan | None = None,
    dispatch: str = "auto",
) -> tuple:
    """The canonical memoization key for one experiment cell.

    Shared by :func:`run_workload` and the parallel runner (which computes
    cells in worker processes and installs the results here), so the two
    can never disagree about what identifies a cell.
    """
    return (
        workload_name, compiler_name, hardware_name, timing,
        force_monomorphic, adaptive, interrupt_interval, fault_plan,
        dispatch,
    )


def install_cached(key: tuple, result: RunResult) -> None:
    """Seed the in-memory memo table with an externally computed cell."""
    _cache[key] = result


def run_workload(
    workload: Workload,
    compiler_config: CompilerConfig,
    hw_config: HardwareConfig = BASELINE_4WIDE,
    timing: bool = True,
    force_monomorphic: bool = False,
    adaptive: bool = False,
    interrupt_interval: int | None = None,
    fault_plan: FaultPlan | None = None,
    use_cache: bool = True,
    tracer=None,
    dispatch: str = "auto",
    disk_cache: bool | None = None,
) -> RunResult:
    """Run every sample of ``workload`` under the given configuration.

    ``tracer`` (a :class:`repro.obs.Tracer`) records region-lifecycle
    events across all samples; traced runs bypass the cache so a stateful
    tracer never leaks into (or out of) memoized results.

    ``dispatch`` selects the machine's uop dispatch strategy (see
    :class:`repro.hw.machine.Machine`); it participates in the memo key
    even though every strategy is observationally identical, so
    dispatch-equivalence tests always compare two real executions.

    ``disk_cache`` additionally consults/updates the on-disk result cache
    (:mod:`repro.harness.diskcache`, content-hash keyed so any source
    change invalidates it); None defers to ``REPRO_DISK_CACHE``.
    """
    if fault_plan is not None and interrupt_interval is not None:
        raise ValueError("fault_plan subsumes interrupt_interval; pick one")
    if tracer is not None:
        use_cache = False
    key = memo_key(
        workload.name, compiler_config.name, hw_config.name, timing,
        force_monomorphic, adaptive, interrupt_interval, fault_plan,
        dispatch,
    )
    if use_cache and key in _cache:
        return _cache[key]
    on_disk = diskcache.enabled(disk_cache) and tracer is None
    if on_disk:
        cached = diskcache.load(key)
        if cached is not None:
            if use_cache:
                _cache[key] = cached
            return cached

    result = RunResult(
        workload=workload.name,
        compiler=compiler_config.name,
        hardware=hw_config.name,
    )
    for sample in workload.samples:
        program = workload.build()
        config = compiler_config
        if force_monomorphic and workload.force_monomorphic_sites is not None:
            sites = workload.force_monomorphic_sites(program)
            config = replace(
                config,
                name=config.name + "+mono",
                inline=replace(config.inline, force_monomorphic=sites),
            )
        vm = TieredVM(
            program,
            compiler_config=config,
            hw_config=hw_config,
            options=VMOptions(
                enable_timing=timing,
                compile_threshold=3,
                interrupt_interval=interrupt_interval,
                dispatch=dispatch,
            ),
            fault_plan=fault_plan,
            tracer=tracer,
        )
        vm.warm_up(workload.entry, [list(a) for a in sample.warm_args])
        vm.compile_hot(min_invocations=1)

        controller = (
            AdaptiveController(vm, abort_rate_threshold=0.01,
                               min_region_entries=20)
            if adaptive else None
        )
        vm.start_measurement()
        guest_results = []
        for args in sample.measure_args:
            guest_results.append(vm.run(workload.entry, list(args)))
            if controller is not None:
                controller.poll()
        stats = vm.end_measurement()
        result.samples.append(
            SampleResult(
                weight=sample.weight,
                stats=stats,
                guest_results=guest_results,
                compiled_methods=len(vm.compiled),
                recompilations=len(controller.decisions) if controller else 0,
            )
        )
    if use_cache:
        _cache[key] = result
    if on_disk:
        diskcache.store(key, result)
    return result


def verify_workload_correctness(workload: Workload, compiler_config,
                                hw_config=BASELINE_4WIDE) -> None:
    """Assert VM results equal pure-interpreter results for every sample."""
    from ..runtime.interpreter import Interpreter

    run = run_workload(workload, compiler_config, hw_config, timing=False,
                       use_cache=False)
    for sample_cfg, sample_run in zip(workload.samples, run.samples):
        program = workload.build()
        interp = Interpreter(program)
        method = program.resolve_static(workload.entry)
        for args in sample_cfg.warm_args:
            interp.invoke(method, list(args))
        expected = [
            interp.invoke(method, list(args)) for args in sample_cfg.measure_args
        ]
        if expected != sample_run.guest_results:
            raise AssertionError(
                f"{workload.name} under {compiler_config.name}: "
                f"VM results {sample_run.guest_results} != interpreter "
                f"{expected}"
            )
