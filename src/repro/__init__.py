"""repro — a reproduction of "Hardware Atomicity for Reliable Software
Speculation" (Neelakantam, Rajwar, Srinivas, Srinivasan, Zilles; ISCA 2007).

The package provides:

- :mod:`repro.lang` — a register-based OO guest bytecode (the "Java" stand-in),
- :mod:`repro.runtime` — heap, monitors, and a tier-0 profiling interpreter,
- :mod:`repro.ir` — the optimizing compiler's CFG/SSA intermediate form,
- :mod:`repro.opt` — classical non-speculative optimization passes,
- :mod:`repro.atomic` — the paper's contribution: atomic-region formation
  (Algorithms 1 and 2), assert conversion, partial inlining/unrolling, SLE,
- :mod:`repro.hw` — the simulated checkpoint-architecture processor with the
  ``aregion_begin`` / ``aregion_end`` / ``aregion_abort`` ISA extensions,
- :mod:`repro.vm` — the tiered VM binding all of the above together,
- :mod:`repro.workloads` — DaCapo-shaped synthetic benchmarks,
- :mod:`repro.harness` — experiment drivers for every table and figure.

Quickstart::

    from repro.harness import run_workload
    from repro.vm import ATOMIC_AGGRESSIVE, NO_ATOMIC
    from repro.workloads import get_workload

    workload = get_workload("xalan")
    base = run_workload(workload, NO_ATOMIC)
    atomic = run_workload(workload, ATOMIC_AGGRESSIVE)
    print(f"speedup: {atomic.speedup_over(base):+.1f}%")
"""

__version__ = "1.0.0"
