"""The simulated machine ISA, including the paper's three extensions.

Machine code is a linear list of :class:`MInstr` (micro-operation-level
instructions) produced by :mod:`repro.hw.codegen`.  Because the guest heap
is an object heap rather than flat memory, memory uops are typed
(field/array/lock-word/length accesses) but still carry real simulated byte
addresses, which is what the cache model, the atomic region's read/write-set
tracking, and the footprint statistics consume.

The atomic-region extensions follow §3.2 of the paper exactly:

- ``AREGION_BEGIN <alt>`` — checkpoint registers, start buffering stores and
  tracking the read/write sets, and remember the alternate (recovery) PC;
- ``AREGION_END`` — commit the region's stores atomically;
- ``AREGION_ABORT`` — roll back and transfer control to the alternate PC;
  the abort reason and the aborting instruction's PC are exposed to software
  through two registers (modeled as fields on the machine), which is what
  enables adaptive recompilation.

Abort *delivery* additionally comes in two commercial-ISA flavours
(selected by :attr:`repro.hw.config.HardwareConfig.abort_delivery`):

- **handler** (Intel RTM-style): control lands on the alternate PC with
  the numeric reason code (:data:`ABORT_REASON_CODES`) and a retry hint
  (:data:`RETRYABLE_REASONS`) in architectural registers — the handler's
  "argument";
- **setjmp** (Power/z-style): control re-lands on the ``AREGION_BEGIN``
  itself with a condition code set; the begin then branches to the
  software path instead of opening a region, like a ``tbegin.`` that
  "returns twice".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class MOp(enum.Enum):
    # ALU (1-cycle latency; MUL/DIV longer).
    CONST = enum.auto()       # dst <- imm
    CONST_NULL = enum.auto()  # dst <- null
    MOV = enum.auto()         # dst <- a
    ADD = enum.auto()
    SUB = enum.auto()
    MUL = enum.auto()
    DIV = enum.auto()
    MOD = enum.auto()
    AND = enum.auto()
    OR = enum.auto()
    XOR = enum.auto()
    SHL = enum.auto()
    SHR = enum.auto()
    CLASSOF = enum.auto()     # dst <- class word of a (a load, header cycle)
    CONST_CLASS = enum.auto()  # dst <- class metadata handle

    # Memory.
    LOADF = enum.auto()       # dst <- a.field
    STOREF = enum.auto()      # a.field <- b
    LOADA = enum.auto()       # dst <- a[b]      (machine faults on bad idx)
    STOREA = enum.auto()      # a[b] <- c
    LOADLEN = enum.auto()     # dst <- a.length
    LOADLOCK = enum.auto()    # dst <- lock word of a (0 free/self, 1 other)
    STORELOCK = enum.auto()   # lock-word update: imm=+1 enter, -1 exit
    LOADSPILL = enum.auto()   # dst <- spill slot imm
    STORESPILL = enum.auto()  # spill slot imm <- a
    LOADG = enum.auto()       # dst <- global cell imm (safepoint flag)

    # Atomic read-modify-write (one uop: load + ALU + store, serialized
    # through the store port like a lock-word update).
    FAA = enum.auto()         # dst <- a.field; a.field <- dst + b
    CAS = enum.auto()         # dst <- (a.field == b); if dst: a.field <- c
    LL = enum.auto()          # dst <- a.field, reserving the address
    SC = enum.auto()          # dst <- reservation held; if dst: a.field <- b

    # Allocation.
    NEWOBJ = enum.auto()      # dst <- new cls
    NEWARR = enum.auto()      # dst <- new array of length a

    # Control.
    BR = enum.auto()          # fused compare+branch: if cond(a, b) goto target
    JMP = enum.auto()
    RET = enum.auto()         # return a (or nothing)
    BR_TRAP = enum.auto()     # safety check: if cond(a, b) -> guest trap
                              # (inside a region: abort with reason "exception")
    BR_ABORT = enum.auto()    # assert: if cond(a, b) goto abort stub target

    # Calls bridge to the VM (tiered dispatch decides interp vs compiled).
    CALLVM = enum.auto()      # dst <- call method(args...)
    VCALLVM = enum.auto()     # dst <- virtual call a.method(args...)

    # Atomic-region extensions.
    AREGION_BEGIN = enum.auto()   # target = alternate (recovery) pc
    AREGION_END = enum.auto()
    AREGION_ABORT = enum.auto()   # imm = abort_id


#: uops whose result comes from memory (timing: cache access).
LOAD_MOPS = frozenset({
    MOp.LOADF, MOp.LOADA, MOp.LOADLEN, MOp.LOADLOCK, MOp.LOADSPILL, MOp.LOADG,
    MOp.CLASSOF,
})

STORE_MOPS = frozenset({MOp.STOREF, MOp.STOREA, MOp.STORELOCK, MOp.STORESPILL})

#: Atomic read-modify-write uops.  Deliberately in NEITHER ``LOAD_MOPS``
#: nor ``STORE_MOPS``: they touch both ports and the timing model gives
#: them the serialized RMW treatment explicitly (like ``STORELOCK``),
#: leaving every pre-existing load/store path byte-identical.
ATOMIC_MOPS = frozenset({MOp.FAA, MOp.CAS, MOp.LL, MOp.SC})

BRANCH_MOPS = frozenset({MOp.BR, MOp.BR_TRAP, MOp.BR_ABORT, MOp.JMP})

#: Architectural abort-reason encoding (the value software sees in the
#: abort-code register / setjmp condition code; 0 means "no abort").
ABORT_REASON_CODES = {
    "assert": 1,
    "exception": 2,
    "sle": 3,
    "conflict": 4,
    "overflow": 5,
    "interrupt": 6,
    "capacity": 7,
}

#: Reasons for which the hardware hints that a retry may succeed (the
#: RTM ``_XABORT_RETRY`` analog): transient conditions only.  Capacity and
#: overflow are *deterministic* for a given region footprint — retrying
#: the same region against the same bound re-aborts — so they hint "take
#: the software path".
RETRYABLE_REASONS = frozenset({"conflict", "interrupt"})

#: Hardware-originated reasons that escalate to the global fallback lock
#: (when a fallback mode is configured): the region cannot make progress
#: speculatively, so its recovery pass serializes.  Software-originated
#: aborts (assert/exception/sle) re-execute their precise slow path and
#: need no mutual exclusion.
HW_ESCALATION_REASONS = frozenset(
    {"conflict", "overflow", "interrupt", "capacity"}
)

#: Execution latencies for non-memory uops (cycles).
ALU_LATENCY = {
    MOp.MUL: 3,
    MOp.DIV: 20,
    MOp.MOD: 20,
}
DEFAULT_LATENCY = 1


@dataclass
class MInstr:
    """One machine instruction (uop)."""

    op: MOp
    dst: int | None = None
    a: int | None = None
    b: int | None = None
    c: int | None = None
    imm: int | None = None
    cond: str | None = None
    target: int | None = None          # instruction index
    fieldname: str | None = None
    cls: str | None = None
    method: str | None = None
    args: tuple[int, ...] = ()
    #: diagnostics: bytecode pc / abort id this uop derives from.
    src_pc: int | None = None
    abort_id: int | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [self.op.name.lower()]
        if self.dst is not None:
            parts.append(f"r{self.dst}<-")
        for r in (self.a, self.b, self.c):
            if r is not None:
                parts.append(f"r{r}")
        if self.cond:
            parts.append(self.cond)
        if self.imm is not None:
            parts.append(str(self.imm))
        if self.fieldname:
            parts.append("." + self.fieldname)
        if self.method:
            parts.append(self.method)
        if self.target is not None:
            parts.append(f"->@{self.target}")
        return " ".join(parts)


@dataclass
class CompiledMethod:
    """Machine code plus the metadata the runtime needs."""

    name: str
    num_params: int
    instrs: list[MInstr] = field(default_factory=list)
    num_regs: int = 32
    num_spill_slots: int = 0
    #: abort_id -> (bytecode pc, region id) for adaptive recompilation.
    abort_sites: dict[int, tuple[int | None, int]] = field(default_factory=dict)
    #: region id -> entry instruction index (for statistics).
    region_entries: dict[int, int] = field(default_factory=dict)
    #: distinguishes code compiled with/without atomic regions in reports.
    uses_regions: bool = False
    #: region ids patched to permanent non-speculative fallback: their
    #: ``aregion_begin`` jumps straight to the alt-PC (forward-progress
    #: escalation).  The patch is a *durable* forward-progress decision:
    #: recompilation carries it over to the new code object (the VM copies
    #: the surviving region ids across), so a region that exhausted its
    #: abort budget never speculates again.  Patch through
    #: :meth:`disable_region` so the pre-decoded dispatch cache is
    #: invalidated alongside the patch.
    disabled_regions: set = field(default_factory=set)
    #: cached pre-decoded dispatch form (:mod:`repro.hw.codegen`'s
    #: ``predecode``); not part of value semantics.
    _predecoded: object = field(default=None, repr=False, compare=False)
    #: cached template-jit dispatch form (:mod:`repro.hw.templatejit`'s
    #: ``jit_compile``); dropped together with ``_predecoded``.
    _jitted: object = field(default=None, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.instrs)

    def disable_region(self, region_id: int) -> None:
        """Patch ``region_id`` to its permanent non-speculative fallback.

        Mutating :attr:`disabled_regions` changes what the installed code
        *does* at the region's ``aregion_begin``, so any pre-decoded
        dispatch form built from the old code is stale; this is the one
        sanctioned patch point and it drops that cache atomically with
        the patch.
        """
        self.disabled_regions.add(region_id)
        self.invalidate_predecode()

    def invalidate_predecode(self) -> None:
        """Drop every cached installed-code form (pre-decoded arrays and
        template-jit fused functions); both rebuild lazily from the
        patched code on the next fast-path activation."""
        self._predecoded = None
        self._jitted = None
