"""Simulated hardware: ISA, codegen, checkpoint machine, caches, timing."""

from .branchpred import CombiningPredictor
from .cache import CacheLevel, MemoryHierarchy
from .codegen import CodeGenerator, generate_code, lower_phis, split_critical_edges
from .config import (
    ABORT_DELIVERY_MODES,
    BASELINE_4WIDE,
    CHKPT_20CYCLE,
    CHKPT_SINGLE_INFLIGHT,
    CacheConfig,
    FALLBACK_LOCK_MODES,
    HTM_CACHE_SHAPED,
    HTM_FALLBACK_LOCK_BEGIN,
    HTM_FALLBACK_LOCK_END,
    HTM_MODES,
    HTM_ROCK_STORE_BUFFER,
    HTM_SETJMP_DELIVERY,
    HardwareConfig,
    JIT_MODES,
    OOO_2WIDE,
    OOO_2WIDE_HALF,
    htm_variant_configs,
)
from .isa import (
    ABORT_REASON_CODES,
    HW_ESCALATION_REASONS,
    RETRYABLE_REASONS,
    CompiledMethod,
    MInstr,
    MOp,
)
from .machine import Machine
from .stats import ExecStats, RegionExecution
from .templatejit import (
    FUSABLE_MOPS,
    JitProfile,
    JittedMethod,
    fused_runs,
    get_jitted,
    jit_source,
)
from .timing import INTERPRETER_CYCLES_PER_BYTECODE, TimingModel

__all__ = [
    "ABORT_DELIVERY_MODES",
    "ABORT_REASON_CODES",
    "BASELINE_4WIDE",
    "CHKPT_20CYCLE",
    "CHKPT_SINGLE_INFLIGHT",
    "CacheConfig",
    "CacheLevel",
    "CodeGenerator",
    "CombiningPredictor",
    "CompiledMethod",
    "ExecStats",
    "FUSABLE_MOPS",
    "FALLBACK_LOCK_MODES",
    "HTM_CACHE_SHAPED",
    "HTM_FALLBACK_LOCK_BEGIN",
    "HTM_FALLBACK_LOCK_END",
    "HTM_MODES",
    "HTM_ROCK_STORE_BUFFER",
    "HTM_SETJMP_DELIVERY",
    "HW_ESCALATION_REASONS",
    "HardwareConfig",
    "INTERPRETER_CYCLES_PER_BYTECODE",
    "JIT_MODES",
    "JitProfile",
    "JittedMethod",
    "MInstr",
    "MOp",
    "Machine",
    "MemoryHierarchy",
    "OOO_2WIDE",
    "OOO_2WIDE_HALF",
    "RETRYABLE_REASONS",
    "RegionExecution",
    "TimingModel",
    "fused_runs",
    "generate_code",
    "get_jitted",
    "htm_variant_configs",
    "jit_source",
    "lower_phis",
    "split_critical_edges",
]
