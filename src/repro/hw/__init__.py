"""Simulated hardware: ISA, codegen, checkpoint machine, caches, timing."""

from .branchpred import CombiningPredictor
from .cache import CacheLevel, MemoryHierarchy
from .codegen import CodeGenerator, generate_code, lower_phis, split_critical_edges
from .config import (
    BASELINE_4WIDE,
    CHKPT_20CYCLE,
    CHKPT_SINGLE_INFLIGHT,
    CacheConfig,
    HardwareConfig,
    OOO_2WIDE,
    OOO_2WIDE_HALF,
)
from .isa import CompiledMethod, MInstr, MOp
from .machine import Machine
from .stats import ExecStats, RegionExecution
from .timing import INTERPRETER_CYCLES_PER_BYTECODE, TimingModel

__all__ = [
    "BASELINE_4WIDE",
    "CHKPT_20CYCLE",
    "CHKPT_SINGLE_INFLIGHT",
    "CacheConfig",
    "CacheLevel",
    "CodeGenerator",
    "CombiningPredictor",
    "CompiledMethod",
    "ExecStats",
    "HardwareConfig",
    "INTERPRETER_CYCLES_PER_BYTECODE",
    "MInstr",
    "MOp",
    "Machine",
    "MemoryHierarchy",
    "OOO_2WIDE",
    "OOO_2WIDE_HALF",
    "RegionExecution",
    "TimingModel",
    "generate_code",
    "lower_phis",
    "split_critical_edges",
]
