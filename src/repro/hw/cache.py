"""Two-level data-cache model with LRU replacement.

Produces access latencies for the timing model and hit/miss statistics.
The atomic-region read/write sets (the per-line speculative R/W bits of
§3.3) are tracked by the machine's region state and checked against the L1
capacity (best-effort overflow aborts); this module is the latency/locality
model.
"""

from __future__ import annotations

from .config import CacheConfig, HardwareConfig


class CacheLevel:
    """One set-associative cache level, true-LRU."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.line_shift = config.line_bytes.bit_length() - 1
        self.set_mask = config.num_sets - 1
        #: per-set list of tags, most-recently-used last.
        self.sets: list[list[int]] = [[] for _ in range(config.num_sets)]
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Touch the line holding ``address``; True on hit."""
        line = address >> self.line_shift
        index = line & self.set_mask
        ways = self.sets[index]
        if line in ways:
            ways.remove(line)
            ways.append(line)
            self.hits += 1
            return True
        self.misses += 1
        ways.append(line)
        if len(ways) > self.config.ways:
            ways.pop(0)
        return False

    def contains(self, address: int) -> bool:
        line = address >> self.line_shift
        return line in self.sets[line & self.set_mask]

    def invalidate(self, address: int) -> None:
        line = address >> self.line_shift
        ways = self.sets[line & self.set_mask]
        if line in ways:
            ways.remove(line)


class MemoryHierarchy:
    """L1 + L2 + memory; returns load-to-use latency per access."""

    def __init__(self, config: HardwareConfig) -> None:
        self.config = config
        self.l1 = CacheLevel(config.l1_config)
        self.l2 = CacheLevel(config.l2_config)
        self.accesses = 0

    def access(self, address: int) -> int:
        """Access ``address``; returns the latency in cycles."""
        self.accesses += 1
        if self.l1.access(address):
            return self.config.l1_config.hit_cycles
        if self.l2.access(address):
            return self.config.l1_config.hit_cycles + self.config.l2_config.hit_cycles
        return (
            self.config.l1_config.hit_cycles
            + self.config.l2_config.hit_cycles
            + self.config.memory_latency_cycles
        )

    def line_of(self, address: int) -> int:
        return address >> self.l1.line_shift

    @property
    def l1_miss_rate(self) -> float:
        total = self.l1.hits + self.l1.misses
        return self.l1.misses / total if total else 0.0
