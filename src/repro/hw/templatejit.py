"""Template JIT: fused straight-line uop runs compiled to Python source.

PR 4's pre-decoded handler arrays (:mod:`repro.hw.codegen`) pay one
Python call, two counter stores, and a retirement-check call per retired
uop.  This module is the third dispatch tier: it walks a compiled
method's decoded uops, partitions every basic block into maximal runs of
*fusable* uops, and emits real Python source for each run — one function
per run, registers resolved to list indexes, immediates/field names/
branch targets baked in as constants, and the per-uop bookkeeping
collapsed into batched counter flushes at the run's exit points
(superinstruction fusion).  The source is ``compile()``/``exec()``d once
and cached on the :class:`~repro.hw.isa.CompiledMethod` alongside the
pre-decode arrays, under the same ``disable_region``/recompile
invalidation.

The contract is the same strict observational equivalence the
pre-decoded tier obeys: byte-identical :class:`ExecStats`, identical
timing-model inputs in identical order, identical heap/address
allocation order, and identical exception/abort behaviour versus the
interpretive loop (enforced by ``tests/test_differential.py`` and the
generative battery in ``tests/test_templatejit.py``).  Three mechanisms
make that hold:

**Side exits re-land on the per-uop tier.**  Any situation the emitted
fast path cannot (or should not) handle inline — a non-integer ALU
operand, a missing field, an out-of-bounds or non-integer array index, a
reference comparison under an ordered condition, a negative array length
— *bails*: it flushes the batched counters for the uops already
completed and tail-calls the pre-decoded handler of the *current* uop,
which replays it from scratch with exactly the slow path's semantics
(counters, traps, aborts, errors).  A bail always happens before the
current uop has any observable effect, so the replay is exact.

**Retirement checks only where they can fire.**  The interpretive loop
probes ``Machine._hw_condition`` after every retired uop; under the
JIT's admission profile (no scheduler, no tracer, no fault injector)
that probe's verdict can only change when a uop grows the region's
read/write line sets or store buffer.  Fused code therefore emits the
(profile-specialised) check only after the memory-tracking uops —
CLASSOF/LOADF/STOREF/LOADA/STOREA/LOADLEN — in the region body, and the
checks it emits mirror ``_hw_condition``'s order and detail-register
writes exactly.  Lock-word *stores*, atomic-RMW, call, return, and
region begin/end/abort uops are never fused; they stay on their
pre-decoded handlers, splitting runs.  ``LOADLOCK`` — the SLE'd
monitor-enter's single probing load — *is* fused: it is a pure read
(read-set add + lock-owner probe) and sits on the hottest
elided-monitor paths.

**Stateful timing stays per-uop.**  Every fused run has two variants —
an untimed one and a timed one that calls ``timing.uop``/
``timing.branch`` in exactly the slow path's order (branch-predictor
updates are stateful, so a trap/abort path never bails *after* the
predictor was touched: it finishes the uop inline instead).  The
machine selects the table matching its ``timing`` attribute per
activation; each variant's source is emitted and ``compile()``d only
on first use, so a machine that never runs timed (or never untimed)
pays half the host-compile cost, and the
:meth:`~repro.hw.machine.Machine.prepare` hook lets the VM hoist that
cost to method-install time, outside any measured window.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..runtime.errors import GuestError
from ..runtime.heap import GuestArray, GuestObject
from ..runtime.interpreter import guest_div, guest_mod, wrap_int
from .codegen import (
    _machine_blocks,
    _trap_error,
    get_predecoded,
    machine_compare,
)
from .isa import CompiledMethod, MOp

__all__ = [
    "FUSABLE_MOPS",
    "JitProfile",
    "JittedMethod",
    "fused_runs",
    "get_jitted",
    "jit_compile",
    "jit_profile",
    "jit_source",
]

#: uops the emitter knows how to fuse.  Everything else (atomics,
#: lock-word ops, calls, return, region begin/end/abort) stays on its
#: pre-decoded handler and splits the surrounding run.
FUSABLE_MOPS = frozenset({
    MOp.CONST, MOp.CONST_NULL, MOp.CONST_CLASS, MOp.MOV,
    MOp.ADD, MOp.SUB, MOp.MUL, MOp.DIV, MOp.MOD,
    MOp.AND, MOp.OR, MOp.XOR, MOp.SHL, MOp.SHR,
    MOp.CLASSOF, MOp.LOADF, MOp.STOREF, MOp.LOADA, MOp.STOREA,
    MOp.LOADLEN, MOp.LOADLOCK, MOp.LOADSPILL, MOp.STORESPILL, MOp.LOADG,
    MOp.NEWOBJ, MOp.NEWARR,
    MOp.BR, MOp.JMP, MOp.BR_TRAP, MOp.BR_ABORT,
})

#: a run must cover at least this many uops to be worth a fused function.
MIN_RUN = 2

#: uops that grow the region's read/write line sets or store buffer —
#: the only points where the retirement-time hardware condition can
#: newly fire under the JIT admission profile.
_MEM_TRACK = frozenset({
    MOp.CLASSOF, MOp.LOADF, MOp.STOREF, MOp.LOADA, MOp.STOREA, MOp.LOADLEN,
    MOp.LOADLOCK,
})

_BRANCHY = frozenset({MOp.BR, MOp.BR_TRAP, MOp.BR_ABORT})
_SPILLY = frozenset({MOp.LOADSPILL, MOp.STORESPILL})

_INT_MIN = -(1 << 63)
_INT_MAX = (1 << 63) - 1
_MASK64 = (1 << 64) - 1

_CMP_PY = {"lt": "<", "le": "<=", "gt": ">", "ge": ">=",
           "eq": "==", "ne": "!="}


@dataclass(frozen=True)
class JitProfile:
    """Machine parameters baked into generated source.

    Only knobs that appear as *constants* in the emitted code belong
    here; anything read dynamically through ``fr.machine`` (L1 geometry
    for the cache-shaped probe, the fallback lock object) does not force
    a recompile.
    """

    line_shift: int
    region_line_limit: int
    store_bound: int | None
    cache_shaped: bool
    fallback_begin: bool


def jit_profile(machine) -> JitProfile:
    """The profile of ``machine`` (see :class:`JitProfile`)."""
    return JitProfile(
        line_shift=machine._line_shift,
        region_line_limit=machine.config.region_line_limit,
        store_bound=machine._store_bound,
        cache_shaped=machine._cache_shaped,
        fallback_begin=machine._fallback_mode == "begin",
    )


@dataclass
class JittedMethod:
    """The template-JIT dispatch form of one :class:`CompiledMethod`.

    :meth:`table` returns a pc-indexed list of callables: the fused run
    function at each run-start pc, the pre-decoded per-uop handler
    everywhere else.  The machine's jit loop is identical in shape to
    the pre-decoded loop — ``pc = table[pc](fr)`` — so entering and
    leaving fused code costs nothing beyond the table load.

    Each variant (untimed/timed) is emitted and host-``compile()``d
    lazily on its first :meth:`table` call: CPython's ``compile`` of a
    large generated module is by far the dominant jit cost, and most
    machines only ever run one variant.
    """

    #: machine constants the source was specialised for.
    profile: JitProfile
    #: fused spans ``(start, end)`` over the instruction array.
    runs: list = field(default_factory=list)
    #: the code object the runs were cut from.
    _compiled: CompiledMethod | None = field(
        default=None, repr=False, compare=False)
    #: the pre-decoded handler array the tables fall back to.
    _handlers: list = field(default_factory=list, repr=False, compare=False)
    #: lazily-built dispatch tables, indexed ``[timed]``.
    _tables: list = field(default_factory=lambda: [None, None],
                          repr=False, compare=False)

    def table(self, timed: bool) -> list:
        """The dispatch table for one timing variant (built on first
        use, cached for the lifetime of this jit form)."""
        tab = self._tables[timed]
        if tab is None:
            tab = self._tables[timed] = _build_table(self, timed)
        return tab


def fused_runs(compiled: CompiledMethod) -> list[tuple[int, int]]:
    """Maximal fusable straight-line spans, one per ``(start, end)``.

    Runs never cross basic-block boundaries (every branch target is a
    block leader, so control can only *enter* a fused function at its
    first uop) and never include an unfusable uop.
    """
    instrs = compiled.instrs
    blocks, _ = _machine_blocks(instrs)
    runs: list[tuple[int, int]] = []
    for start, end, _succs in blocks:
        i = start
        while i < end:
            if instrs[i].op in FUSABLE_MOPS:
                j = i
                while j < end and instrs[j].op in FUSABLE_MOPS:
                    j += 1
                if j - i >= MIN_RUN:
                    runs.append((i, j))
                i = j
            else:
                i += 1
    return runs


# ---------------------------------------------------------------------------
# Source emission
# ---------------------------------------------------------------------------

class _Body:
    """Emits one body (plain or region) of one fused-run variant.

    Tracks the statically-known counter increments of the uops completed
    so far; every exit point flushes them in one batch, so the per-uop
    ``uops_retired``/``loads``/``stores``/``branches`` stores of the
    handler tier collapse into a handful of ``+= K`` statements.
    """

    def __init__(self, regioned: bool, timed: bool, profile: JitProfile,
                 base_depth: int) -> None:
        self.regioned = regioned
        self.timed = timed
        self.profile = profile
        self.base = base_depth
        self.lines: list[str] = []
        # completed-uop counter batch: uops, loads, stores, branches,
        # monitor ops
        self.u = self.l = self.s = self.b = self.m = 0

    # -- plumbing ---------------------------------------------------------
    def w(self, text: str, depth: int = 0) -> None:
        self.lines.append("    " * (self.base + depth) + text)

    def _flush_stmts(self, u: int, l: int, s: int, b: int,
                     m: int) -> list[str]:
        out = []
        if u:
            out.append(f"mach.uops_executed += {u}")
            out.append(f"st.uops_retired += {u}")
            if self.regioned:
                out.append(f"region.uops += {u}")
                out.append(f"region.record.uops += {u}")
        if l:
            out.append(f"st.loads += {l}")
        if s:
            out.append(f"st.stores += {s}")
        if b:
            out.append(f"st.branches += {b}")
        if m:
            out.append(f"st.monitor_ops += {m}")
        return out

    def flush(self, depth: int, inc=(0, 0, 0, 0, 0)) -> None:
        for stmt in self._flush_stmts(self.u + inc[0], self.l + inc[1],
                                      self.s + inc[2], self.b + inc[3],
                                      self.m + inc[4]):
            self.w(stmt, depth)

    def bail(self, i: int, depth: int) -> None:
        """Deoptimise: replay uop ``i`` on its pre-decoded handler.

        Must be emitted before the current uop has any observable
        effect; the flush covers only the uops already completed.
        """
        self.flush(depth)
        self.w(f"return H[{i}](fr)", depth)

    def tick(self, i: int, mem: str, depth: int = 0) -> None:
        if self.timed:
            self.w(f"T.uop(I[{i}], {mem})", depth)

    def hw_check(self, i: int, inc) -> None:
        """The retirement-time hardware condition, specialised and
        emitted only after set-growing uops (mirrors
        ``Machine._hw_condition``'s order and detail writes)."""
        if not self.regioned:
            return
        p = self.profile
        nxt = i + 1
        if p.fallback_begin:
            self.w("if fbl.held_by_other(region.owner_tid):")
            self.w("region.real_conflict = True", 1)
            self.flush(1, inc)
            self.w(f"return mach._fast_abort(fr, 'conflict', {nxt})", 1)
        self.w(f"if len(rl) + len(wl) > {p.region_line_limit}:")
        self.flush(1, inc)
        self.w(f"return mach._fast_abort(fr, 'overflow', {nxt})", 1)
        if p.store_bound is not None:
            self.w(f"if len(sb) > {p.store_bound}:")
            self.w("region.capacity_detail = "
                   f"('store_buffer', len(sb), {p.store_bound})", 1)
            self.flush(1, inc)
            self.w(f"return mach._fast_abort(fr, 'capacity', {nxt})", 1)
        if p.cache_shaped:
            self.w("if mach._set_overflow(region):")
            self.flush(1, inc)
            self.w(f"return mach._fast_abort(fr, 'capacity', {nxt})", 1)

    def _wrap_store(self, dst: int, expr: str) -> None:
        """Store ``expr`` (an int expression that may exceed 64 bits)
        into ``regs[dst]`` with the slow path's wrap-around."""
        self.w(f"v = {expr}")
        self.w(f"regs[{dst}] = v if {_INT_MIN} <= v <= {_INT_MAX} "
               "else _wi(v)")

    def _cond(self, i: int, cond: str, a: int, b: int | None) -> None:
        """Evaluate branch condition ``cond`` into local ``t``.

        Integer operands run inline; reference equality falls back to
        ``machine_compare`` (which cannot raise for eq/ne); ordered
        conditions on non-integers bail so the handler raises the slow
        path's ``VMError`` with exact counter state.
        """
        self.w(f"x = regs[{a}]")
        if b is not None:
            self.w(f"y = regs[{b}]")
        if cond == "uge":
            self.w("if type(x) is int and type(y) is int:")
            self.w(f"t = (x & {_MASK64}) >= (y & {_MASK64})", 1)
            self.w("else:")
            self.bail(i, 1)
            return
        op = _CMP_PY[cond]
        if cond in ("eq", "ne"):
            if b is None:
                null = "is None" if cond == "eq" else "is not None"
                self.w(f"t = (x {op} 0) if type(x) is int else (x {null})")
            else:
                # Full compare() semantics, inlined: ints by value,
                # references by identity, int-vs-ref equal only for the
                # null/0 pair (ne branches are the negations).
                eq = cond == "eq"
                self.w("if type(x) is int:")
                self.w(f"t = (x {op} y) if type(y) is int else "
                       + ("(y is None and x == 0)" if eq
                          else "(y is not None or x != 0)"), 1)
                self.w("elif type(y) is int:")
                self.w(("t = x is None and y == 0" if eq
                        else "t = x is not None or y != 0"), 1)
                self.w("else:")
                self.w(f"t = x is{'' if eq else ' not'} y", 1)
            return
        if b is None:
            self.w("if type(x) is int:")
            self.w(f"t = x {op} 0", 1)
            self.w("else:")
            self.bail(i, 1)
            return
        self.w("if type(x) is int and type(y) is int:")
        self.w(f"t = x {op} y", 1)
        self.w("else:")
        self.bail(i, 1)

    def _mem_ref(self, i: int, a: int, kind) -> None:
        """Load ``regs[a]`` into ``o`` and bail unless it is a ``kind``
        guest reference (null and junk replay on the handler, which
        raises/aborts exactly like the slow path)."""
        self.w(f"o = regs[{a}]")
        self.w(f"if not isinstance(o, {kind}):")
        self.bail(i, 1)

    # -- per-uop templates ------------------------------------------------
    def emit_uop(self, i: int, instr) -> None:
        op = instr.op
        regioned = self.regioned
        shift = self.profile.line_shift
        inc = (1, 0, 0, 0, 0)

        if op is MOp.CONST or op is MOp.CONST_NULL or op is MOp.CONST_CLASS:
            value = (instr.imm if op is MOp.CONST
                     else None if op is MOp.CONST_NULL else instr.cls)
            self.w(f"regs[{instr.dst}] = {value!r}")
            self.tick(i, "None")

        elif op is MOp.MOV:
            self.w(f"regs[{instr.dst}] = regs[{instr.a}]")
            self.tick(i, "None")

        elif op in (MOp.ADD, MOp.SUB, MOp.MUL, MOp.AND, MOp.OR, MOp.XOR,
                    MOp.SHL, MOp.SHR, MOp.DIV, MOp.MOD):
            self.w(f"x = regs[{instr.a}]")
            self.w(f"y = regs[{instr.b}]")
            zero = " or y == 0" if op in (MOp.DIV, MOp.MOD) else ""
            self.w(f"if type(x) is not int or type(y) is not int{zero}:")
            self.bail(i, 1)
            if op is MOp.ADD:
                self._wrap_store(instr.dst, "x + y")
            elif op is MOp.SUB:
                self._wrap_store(instr.dst, "x - y")
            elif op is MOp.MUL:
                self._wrap_store(instr.dst, "x * y")
            elif op is MOp.AND:
                # Bitwise ops on in-range operands stay in range.
                self.w(f"regs[{instr.dst}] = x & y")
            elif op is MOp.OR:
                self.w(f"regs[{instr.dst}] = x | y")
            elif op is MOp.XOR:
                self.w(f"regs[{instr.dst}] = x ^ y")
            elif op is MOp.SHL:
                self._wrap_store(instr.dst, "x << (y & 63)")
            elif op is MOp.SHR:
                self.w(f"regs[{instr.dst}] = x >> (y & 63)")
            elif op is MOp.DIV:
                self.w(f"regs[{instr.dst}] = _gdiv(x, y)")
            else:
                self.w(f"regs[{instr.dst}] = _gmod(x, y)")
            self.tick(i, "None")

        elif op is MOp.CLASSOF:
            self.w(f"o = regs[{instr.a}]")
            self.w("if isinstance(o, GuestObject):")
            self.w(f"regs[{instr.dst}] = o.class_name", 1)
            self.w("elif isinstance(o, GuestArray):")
            self.w(f"regs[{instr.dst}] = '[array]'", 1)
            self.w("else:")
            self.bail(i, 1)
            inc = (1, 1, 0, 0, 0)
            if regioned:
                self.w(f"rl.add(o.base >> {shift})")
            self.tick(i, "o.base")
            self.hw_check(i, inc)

        elif op is MOp.LOADF or op is MOp.STOREF:
            self._mem_ref(i, instr.a, "GuestObject")
            self.w(f"n = o.field_index.get({instr.fieldname!r})")
            self.w("if n is None:")
            self.bail(i, 1)
            mem = "o.base + 16 + n * 8"
            if op is MOp.LOADF:
                inc = (1, 1, 0, 0, 0)
                if regioned:
                    self.w(f"m = {mem}")
                    self.w(f"rl.add(m >> {shift})")
                    self.w("b0 = sb.get((id(o), 'f', n))")
                    self.w(f"regs[{instr.dst}] = "
                           "o.slots[n] if b0 is None else b0[2]")
                    self.tick(i, "m")
                else:
                    self.w(f"regs[{instr.dst}] = o.slots[n]")
                    self.tick(i, mem)
            else:
                inc = (1, 0, 1, 0, 0)
                if regioned:
                    self.w(f"m = {mem}")
                    self.w(f"sb[(id(o), 'f', n)] = (o, n, regs[{instr.b}])")
                    self.w(f"wl.add(m >> {shift})")
                    self.tick(i, "m")
                else:
                    self.w(f"o.slots[n] = regs[{instr.b}]")
                    self.tick(i, mem)
            self.hw_check(i, inc)

        elif op is MOp.LOADA or op is MOp.STOREA:
            self._mem_ref(i, instr.a, "GuestArray")
            self.w(f"x = regs[{instr.b}]")
            self.w("vs = o.values")
            self.w("if type(x) is not int or x < 0 or x >= len(vs):")
            self.bail(i, 1)
            mem = "o.base + 24 + x * 8"
            if op is MOp.LOADA:
                inc = (1, 1, 0, 0, 0)
                if regioned:
                    self.w(f"m = {mem}")
                    self.w(f"rl.add(m >> {shift})")
                    self.w("b0 = sb.get((id(o), 'a', x))")
                    self.w(f"regs[{instr.dst}] = "
                           "vs[x] if b0 is None else b0[2]")
                    self.tick(i, "m")
                else:
                    self.w(f"regs[{instr.dst}] = vs[x]")
                    self.tick(i, mem)
            else:
                inc = (1, 0, 1, 0, 0)
                if regioned:
                    self.w(f"m = {mem}")
                    self.w(f"sb[(id(o), 'a', x)] = (o, x, regs[{instr.c}])")
                    self.w(f"wl.add(m >> {shift})")
                    self.tick(i, "m")
                else:
                    self.w(f"vs[x] = regs[{instr.c}]")
                    self.tick(i, mem)
            self.hw_check(i, inc)

        elif op is MOp.LOADLEN:
            self._mem_ref(i, instr.a, "GuestArray")
            inc = (1, 1, 0, 0, 0)
            if regioned:
                self.w(f"rl.add((o.base + 16) >> {shift})")
            self.w(f"regs[{instr.dst}] = o.length")
            self.tick(i, "o.base + 16")
            self.hw_check(i, inc)

        elif op is MOp.LOADLOCK:
            # The SLE'd monitor-enter probe: one tracked load of the
            # lock word, result 1 iff another thread holds the monitor.
            self._mem_ref(i, instr.a, "GuestObject")
            inc = (1, 1, 0, 0, 1)
            if regioned:
                self.w(f"rl.add((o.base + 8) >> {shift})")
            self.w("lo = o.lock.owner")
            self.w(f"regs[{instr.dst}] = "
                   "0 if lo is None or lo == fr.tid else 1")
            self.tick(i, "o.base + 8")
            self.hw_check(i, inc)

        elif op is MOp.LOADSPILL:
            inc = (1, 1, 0, 0, 0)
            self.w(f"regs[{instr.dst}] = spill[{instr.imm}]")
            self.tick(i, f"sbase + {instr.imm * 8}")

        elif op is MOp.STORESPILL:
            inc = (1, 0, 1, 0, 0)
            self.w(f"spill[{instr.imm}] = regs[{instr.a}]")
            self.tick(i, f"sbase + {instr.imm * 8}")

        elif op is MOp.LOADG:
            self.w(f"regs[{instr.dst}] = 0")
            if instr.imm is not None:
                inc = (1, 1, 0, 0, 0)
            self.tick(i, repr(instr.imm))

        elif op is MOp.NEWOBJ:
            self.w(f"o = mach.heap.new_object({instr.cls!r}, "
                   f"mach.program.field_layout({instr.cls!r}))")
            self.w(f"regs[{instr.dst}] = o")
            if regioned:
                self.w("region.allocs.append(o)")
            self.tick(i, "None")

        elif op is MOp.NEWARR:
            self.w(f"x = regs[{instr.a}]")
            self.w("if type(x) is not int or x < 0:")
            self.bail(i, 1)
            self.w("o = mach.heap.new_array(x)")
            self.w(f"regs[{instr.dst}] = o")
            if regioned:
                self.w("region.allocs.append(o)")
            self.tick(i, "None")

        elif op is MOp.JMP:
            self.flush(0, inc)
            self.tick(i, "None")
            self.w(f"return {instr.target}")

        elif op is MOp.BR or op is MOp.BR_ABORT:
            inc = (1, 0, 0, 1, 0)
            self._cond(i, instr.cond, instr.a, instr.b)
            if self.timed:
                self.w(f"if not T.branch(cbase + {i}, t):")
                self.w("st.mispredicts += 1", 1)
            self.w("if t:")
            self.flush(1, inc)
            self.tick(i, "None", 1)
            self.w(f"return {instr.target}", 1)
            self.flush(0, inc)
            self.tick(i, "None")
            self.w(f"return {i + 1}")

        elif op is MOp.BR_TRAP:
            inc = (1, 0, 0, 1, 0)
            self._cond(i, instr.cond, instr.a, instr.b)
            if self.timed:
                self.w(f"if not T.branch(cbase + {i}, t):")
                self.w("st.mispredicts += 1", 1)
            self.w("if t:")
            self.flush(1, inc)
            if regioned:
                # Hardware fault inside a region: abort without ticking
                # the faulting uop, exactly like the slow path's handler.
                self.w(f"return mach._fast_exception(fr, {i})", 1)
            else:
                self.w(f"raise _te(I[{i}])", 1)
            self.tick(i, "None")

        else:  # pragma: no cover - guarded by FUSABLE_MOPS
            raise AssertionError(f"cannot fuse {op}")

        self.u += inc[0]
        self.l += inc[1]
        self.s += inc[2]
        self.b += inc[3]
        self.m += inc[4]

    def finish(self, end: int) -> None:
        """Fall-through exit: flush everything and hand the next pc
        (an unfusable uop's handler or the next run) back to the loop."""
        self.flush(0)
        self.w(f"return {end}")


def _emit_fn(compiled: CompiledMethod, start: int, end: int,
             profile: JitProfile, timed: bool) -> list[str]:
    instrs = compiled.instrs
    ops = {instrs[i].op for i in range(start, end)}
    uses_spill = bool(ops & _SPILLY)
    uses_mem = bool(ops & _MEM_TRACK)
    terminated = instrs[end - 1].op in (MOp.BR, MOp.JMP, MOp.BR_ABORT)

    name = f"_f{start}_{'t' if timed else 'u'}"
    out = [f"def {name}(fr):"]
    pre = ["mach = fr.machine", "st = fr.stats", "regs = fr.regs"]
    if uses_spill:
        pre.append("spill = fr.spill")
    if timed:
        pre.append("T = fr.timing")
        if ops & _BRANCHY:
            pre.append("cbase = fr.code_base")
        if uses_spill:
            pre.append("sbase = fr.spill_base")
    pre.append("region = fr.region")
    out += ["    " + stmt for stmt in pre]

    out.append("    if region is None:")
    plain = _Body(False, timed, profile, 2)
    for i in range(start, end):
        plain.emit_uop(i, instrs[i])
    if not terminated:
        plain.finish(end)
    out += plain.lines

    if uses_mem:
        out.append("    rl = region.read_lines")
        out.append("    wl = region.write_lines")
        out.append("    sb = region.store_buffer")
        if profile.fallback_begin:
            out.append("    fbl = mach.fallback_lock")
    region = _Body(True, timed, profile, 1)
    for i in range(start, end):
        region.emit_uop(i, instrs[i])
    if not terminated:
        region.finish(end)
    out += region.lines
    return out


def _source_header(compiled: CompiledMethod, profile: JitProfile,
                   runs: list) -> list[str]:
    return [
        f"# template-jit: {compiled.name}",
        f"# profile: line_shift={profile.line_shift} "
        f"line_limit={profile.region_line_limit} "
        f"store_bound={profile.store_bound} "
        f"cache_shaped={profile.cache_shaped} "
        f"fallback_begin={profile.fallback_begin}",
        f"# fused runs: {runs}",
    ]


def _variant_source(compiled: CompiledMethod, profile: JitProfile,
                    runs: list, timed: bool) -> str:
    """One timing variant's module source (what actually gets
    host-compiled; half of :func:`jit_source`)."""
    parts = _source_header(compiled, profile, runs)
    for start, end in runs:
        parts.append("")
        parts.extend(_emit_fn(compiled, start, end, profile, timed))
    return "\n".join(parts) + "\n"


def jit_source(compiled: CompiledMethod, profile: JitProfile) -> str:
    """The full generated module source for ``compiled`` under
    ``profile``, both variants interleaved per run (deterministic;
    pinned by the golden-source test)."""
    runs = fused_runs(compiled)
    parts = _source_header(compiled, profile, runs)
    for start, end in runs:
        for timed in (False, True):
            parts.append("")
            parts.extend(_emit_fn(compiled, start, end, profile, timed))
    return "\n".join(parts) + "\n"


# ---------------------------------------------------------------------------
# Compilation and caching
# ---------------------------------------------------------------------------

def _build_table(jm: JittedMethod, timed: bool) -> list:
    """Emit, ``compile()``, and ``exec()`` one variant of the fused
    source; returns its pc-indexed dispatch table."""
    compiled = jm._compiled
    source = _variant_source(compiled, jm.profile, jm.runs, timed)
    namespace = {
        "H": jm._handlers,
        "I": tuple(compiled.instrs),
        "MC": machine_compare,
        "GuestObject": GuestObject,
        "GuestArray": GuestArray,
        "GuestError": GuestError,
        "_wi": wrap_int,
        "_gdiv": guest_div,
        "_gmod": guest_mod,
        "_te": _trap_error,
    }
    variant = "t" if timed else "u"
    exec(compile(source, f"<jit:{compiled.name}:{variant}>", "exec"),
         namespace)
    table = list(jm._handlers)
    for start, _end in jm.runs:
        table[start] = namespace[f"_f{start}_{variant}"]
    return table


def jit_compile(compiled: CompiledMethod, machine) -> JittedMethod:
    """Build the fused form of ``compiled`` for ``machine``'s profile
    and install it on the code object (the same cache slot
    ``disable_region``/recompile drop).  Variant tables compile lazily
    on first :meth:`JittedMethod.table` call."""
    profile = jit_profile(machine)
    pre = get_predecoded(compiled, profile.line_shift)
    jm = JittedMethod(
        profile=profile, runs=fused_runs(compiled),
        _compiled=compiled, _handlers=pre.handlers,
    )
    compiled._jitted = jm
    return jm


def get_jitted(compiled: CompiledMethod, machine) -> JittedMethod:
    """Return the cached fused form, rebuilding when the cache is stale
    (dropped by ``disable_region``/``invalidate_predecode``) or built
    for a different machine profile."""
    jm = compiled._jitted
    if jm is None or jm.profile != machine._jit_profile:
        jm = jit_compile(compiled, machine)
    return jm
