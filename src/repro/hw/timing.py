"""Trace-driven out-of-order timing model.

A scoreboard approximation of the paper's detailed uop-level simulator
(Table 1): uops are fetched at ``fetch_width`` per cycle, held back by
instruction-window (ROB) occupancy, issue when their register inputs are
ready (register renaming is implicit: only true dependences are tracked),
complete after an execution latency (loads consult the two-level cache
hierarchy), and retire in order at ``retire_width`` per cycle.  Branches are
predicted by the gshare+bimodal combiner; mispredictions insert the Table-1
20-cycle bubble after branch resolution.

Atomic-region costs follow §6.3 / Figure 9:

- the baseline checkpoint substrate executes ``aregion_begin`` with no
  stall (a rename-table checkpoint);
- the "+20-cycle" configuration stalls the front end at every begin;
- the "single-inflight" configuration stalls a begin at decode until the
  previous region's commit retires;
- an abort drains the pipeline like a branch mispredict.
"""

from __future__ import annotations

from collections import deque

from .branchpred import CombiningPredictor
from .cache import MemoryHierarchy
from .config import BASELINE_4WIDE, HardwareConfig
from .isa import (
    ALU_LATENCY,
    ATOMIC_MOPS,
    DEFAULT_LATENCY,
    LOAD_MOPS,
    MInstr,
    MOp,
    STORE_MOPS,
)

#: cycles charged per interpreted bytecode (tier-0 execution).
INTERPRETER_CYCLES_PER_BYTECODE = 12

#: lock-word update latency: reservation-lock stores behave like lightweight
#: RMW operations on the monitor word.
LOCK_STORE_LATENCY = 16

#: front-end serialization charged at a VM call boundary.
CALL_BOUNDARY_CYCLES = 4


class TimingModel:
    """One instance per measured execution sample."""

    def __init__(self, config: HardwareConfig = BASELINE_4WIDE) -> None:
        self.config = config
        self.memory = MemoryHierarchy(config)
        self.predictor = CombiningPredictor(
            config.gshare_entries, config.bimodal_entries
        )
        self._reg_ready = [0.0] * 64
        #: completion time of the last store per address: loads depend on it
        #: (store→load forwarding through the store buffer).  Lock-word
        #: updates carry an atomic-RMW-class latency, so the baseline's
        #: monitor enter/exit chains serialize exactly as §3.3 describes —
        #: the serialization SLE removes.
        self._store_ready: dict[int, float] = {}
        self._fetch_cycle = 0.0
        self._fetched_this_cycle = 0
        self._retire_cycle = 0.0
        self._retired_this_cycle = 0
        #: completion times of uops still in the window (ROB occupancy).
        self._window: deque[float] = deque()
        self._pending_mispredict = False
        self._last_region_commit = 0.0
        self._record_commit_next = False
        self.uops = 0

    # -- per-uop processing ------------------------------------------------
    def branch(self, pc: int, taken: bool) -> bool:
        """Predict/train the branch at ``pc``; returns prediction success."""
        correct = self.predictor.predict_and_update(pc, taken)
        if not correct:
            self._pending_mispredict = True
        return correct

    def uop(self, instr: MInstr, mem_address: int | None) -> None:
        """Account one retired uop."""
        self.uops += 1
        config = self.config

        # Fetch: width-limited, gated by window occupancy.
        if len(self._window) >= config.instruction_window:
            oldest = self._window.popleft()
            if oldest > self._fetch_cycle:
                self._fetch_cycle = oldest
                self._fetched_this_cycle = 0
        if self._fetched_this_cycle >= config.fetch_width:
            self._fetch_cycle += 1.0
            self._fetched_this_cycle = 0
        dispatch = self._fetch_cycle
        self._fetched_this_cycle += 1

        # Issue: wait for register inputs.
        ready = dispatch
        for src in (instr.a, instr.b, instr.c):
            if src is not None and src >= 0:
                ready = max(ready, self._reg_ready[src])
        for src in instr.args:
            if src >= 0:
                ready = max(ready, self._reg_ready[src])

        # Execute.
        op = instr.op
        if op in LOAD_MOPS and mem_address is not None:
            forwarded = self._store_ready.get(mem_address)
            if forwarded is not None and forwarded > ready:
                ready = forwarded  # store-to-load dependency
            latency = self.memory.access(mem_address)
        elif op in STORE_MOPS:
            if mem_address is not None:
                self.memory.access(mem_address)
            latency = LOCK_STORE_LATENCY if op is MOp.STORELOCK else 1
            if op is MOp.STORELOCK and mem_address is not None:
                # RMW semantics: lock-word updates serialize on the line —
                # the monitor-chain cost SLE removes (§3.3, §6.1).
                prior = self._store_ready.get(mem_address)
                if prior is not None and prior > ready:
                    ready = prior
            if mem_address is not None:
                self._store_ready[mem_address] = ready + latency
        elif op in ATOMIC_MOPS:
            # Atomic RMW: one cache access, lock-class latency, and full
            # serialization against prior RMWs/stores on the same address —
            # contended FAA/CAS chains cost what a lock-word chain costs.
            if mem_address is not None:
                self.memory.access(mem_address)
                prior = self._store_ready.get(mem_address)
                if prior is not None and prior > ready:
                    ready = prior
            latency = LOCK_STORE_LATENCY
            if mem_address is not None:
                self._store_ready[mem_address] = ready + latency
        else:
            latency = ALU_LATENCY.get(op, DEFAULT_LATENCY)
        complete = ready + latency

        if instr.dst is not None:
            self._reg_ready[instr.dst] = complete

        # In-order retirement at retire_width per cycle.
        retire = max(complete, self._retire_cycle)
        if retire == self._retire_cycle:
            self._retired_this_cycle += 1
            if self._retired_this_cycle >= config.retire_width:
                retire += 1.0
                self._retired_this_cycle = 0
        else:
            self._retired_this_cycle = 1
        self._retire_cycle = retire
        self._window.append(retire)

        if self._record_commit_next:
            self._last_region_commit = retire
            self._record_commit_next = False

        # Branch misprediction bubble: fetch resumes after resolution.
        if self._pending_mispredict:
            self._pending_mispredict = False
            self._fetch_cycle = max(
                self._fetch_cycle, complete + config.branch_mispredict_penalty
            )
            self._fetched_this_cycle = 0

    # -- region events --------------------------------------------------------
    def region_begin(self) -> None:
        if self.config.aregion_begin_stall:
            self._fetch_cycle += self.config.aregion_begin_stall
            self._fetched_this_cycle = 0
        if self.config.single_inflight_regions:
            if self._last_region_commit > self._fetch_cycle:
                self._fetch_cycle = self._last_region_commit
                self._fetched_this_cycle = 0

    def region_end(self) -> None:
        # The commit time is the retirement of the next uop (the END itself
        # is processed via uop() right after this call).
        self._record_commit_next = True

    def region_abort(self) -> None:
        """Aborts flush the pipeline like a mispredict."""
        self._fetch_cycle = max(
            self._fetch_cycle,
            self._retire_cycle + self.config.branch_mispredict_penalty,
        )
        self._fetched_this_cycle = 0
        self._last_region_commit = self._fetch_cycle

    def stall(self, cycles: float) -> None:
        """Freeze the front end for ``cycles`` (conflict-retry backoff)."""
        self._fetch_cycle = max(self._fetch_cycle, self._retire_cycle) + cycles
        self._fetched_this_cycle = 0

    def call_boundary(self) -> None:
        """VM call bridge: light front-end serialization."""
        self._fetch_cycle = max(self._fetch_cycle, self._retire_cycle)
        self._fetch_cycle += CALL_BOUNDARY_CYCLES
        self._fetched_this_cycle = 0

    def add_interpreter_cycles(self, bytecodes: int) -> None:
        """Charge tier-0 interpreter execution (serial)."""
        cost = bytecodes * INTERPRETER_CYCLES_PER_BYTECODE
        base = max(self._fetch_cycle, self._retire_cycle) + cost
        self._fetch_cycle = base
        self._retire_cycle = base
        self._fetched_this_cycle = 0
        self._retired_this_cycle = 0

    # -- results -----------------------------------------------------------------
    @property
    def cycles(self) -> float:
        return max(self._fetch_cycle, self._retire_cycle)
