"""Combining branch predictor: 64K-entry gshare + 16K-entry bimodal (Table 1)."""

from __future__ import annotations

from array import array


class _Counters:
    """A table of 2-bit saturating counters."""

    __slots__ = ("table", "mask")

    def __init__(self, entries: int, init: int = 1) -> None:
        self.table = array("b", [init]) * entries
        self.mask = entries - 1

    def predict(self, index: int) -> bool:
        return self.table[index & self.mask] >= 2

    def update(self, index: int, taken: bool) -> None:
        i = index & self.mask
        value = self.table[i]
        if taken:
            if value < 3:
                self.table[i] = value + 1
        else:
            if value > 0:
                self.table[i] = value - 1


class CombiningPredictor:
    """gshare/bimodal tournament predictor with a per-pc chooser."""

    def __init__(self, gshare_entries: int = 64 * 1024,
                 bimodal_entries: int = 16 * 1024) -> None:
        self.gshare = _Counters(gshare_entries)
        self.bimodal = _Counters(bimodal_entries)
        self.chooser = _Counters(bimodal_entries)  # >=2 selects gshare
        self.history = 0
        self.history_mask = gshare_entries - 1
        self.predictions = 0
        self.mispredictions = 0

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict branch at ``pc``; train with the actual ``taken``.

        Returns True when the prediction was correct.
        """
        g_index = (pc ^ self.history) & self.history_mask
        g_pred = self.gshare.predict(g_index)
        b_pred = self.bimodal.predict(pc)
        use_gshare = self.chooser.predict(pc)
        prediction = g_pred if use_gshare else b_pred

        self.predictions += 1
        correct = prediction == taken
        if not correct:
            self.mispredictions += 1

        # Train components and the chooser (only when they disagree).
        self.gshare.update(g_index, taken)
        self.bimodal.update(pc, taken)
        if g_pred != b_pred:
            self.chooser.update(pc, g_pred == taken)
        self.history = ((self.history << 1) | (1 if taken else 0)) & self.history_mask
        return correct

    @property
    def misprediction_rate(self) -> float:
        if self.predictions == 0:
            return 0.0
        return self.mispredictions / self.predictions
